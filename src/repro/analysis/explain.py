"""Human-readable compilation reports (the paper's Fig. 6, as text).

``explain_plan`` renders everything the static parallelizer decided about
a loop — extracted loop information, per-array dependence vectors, the
chosen strategy with its candidates, and DistArray placements — in the
layout of the paper's Fig. 6 walkthrough.  Exposed on the API as
``ParallelLoop.explain()``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from repro.analysis.loop_info import LoopInfo
from repro.analysis.strategy import Plan, Strategy

if TYPE_CHECKING:
    from repro.analysis.synth import SynthResult

__all__ = ["explain_plan"]


def _section(title: str, lines: List[str]) -> List[str]:
    return [title, "-" * len(title)] + lines + [""]


def explain_plan(
    info: LoopInfo,
    plan: Plan,
    synth: Optional["SynthResult"] = None,
    tuning: Optional[List[str]] = None,
) -> str:
    """Render the static parallelization of one loop as a report.

    ``synth`` (when kernel synthesis ran) appends a section with the
    generated kernel source or the fallback explanation; ``tuning``
    (the adaptive tuner's ``describe()`` lines, for tuned loops)
    appends the Tuning section.
    """
    out: List[str] = []

    lines = [
        f"iteration space: {info.iteration_space.name} "
        f"(shape {info.iteration_space.shape}, "
        f"{info.iteration_space.num_entries} entries)",
        f"loop index vector: {info.index_param} "
        f"({info.num_iter_dims} dimensions)",
        "iteration ordering: "
        + ("ordered (lexicographic)" if info.ordered else "unordered"),
    ]
    reads = [
        ref.describe()
        for refs in info.refs.values()
        for ref in refs
        if ref.is_read
    ]
    writes = [
        ref.describe()
        for refs in info.refs.values()
        for ref in refs
        if ref.is_write
    ]
    lines.append("DistArray reads: " + (", ".join(reads) or "(none)"))
    lines.append("DistArray writes: " + (", ".join(writes) or "(none)"))
    if info.buffer_refs:
        buffered = [
            ref.describe()
            for refs in info.buffer_refs.values()
            for ref in refs
        ]
        lines.append(
            "buffered writes (exempt from analysis): " + ", ".join(buffered)
        )
    if info.accumulators:
        lines.append("accumulators: " + ", ".join(sorted(info.accumulators)))
    lines.append(
        "inherited variables: "
        + (", ".join(sorted(info.inherited)) or "(none)")
    )
    out += _section("Loop information", lines)

    lines = []
    for name in sorted(plan.dvecs_by_array):
        vectors = sorted(v.describe() for v in plan.dvecs_by_array[name])
        lines.append(f"{name}: " + (", ".join(vectors) or "(independent)"))
    if not lines:
        lines = ["(no loop-carried dependences)"]
    out += _section("Dependence vectors (Alg. 2)", lines)

    lines = [f"chosen: {plan.describe()}"]
    if plan.candidates_1d:
        lines.append(f"1D candidate dimensions: {list(plan.candidates_1d)}")
    if plan.candidates_2d:
        lines.append(
            "2D candidate orientations (space, time): "
            f"{list(plan.candidates_2d)}"
        )
    if plan.strategy is Strategy.TWO_D_UNIMODULAR:
        lines.append(f"unimodular transformation: {plan.transform}")
        lines.append(f"inverse transformation:    {plan.transform_inverse}")
    out += _section("Partitioning & schedule (Sec. 4.3)", lines)

    lines = []
    for name in sorted(plan.placements):
        placement = plan.placements[name]
        detail = placement.kind.value
        if placement.array_dim is not None:
            detail += f" (partitioned on array dim {placement.array_dim})"
        lines.append(f"{name}: {detail}")
    if not lines:
        lines = ["(no referenced DistArrays)"]
    out += _section("DistArray placements (Sec. 4.4)", lines)

    if synth is not None:
        lines = synth.describe().splitlines()
        out += _section("Kernel synthesis", lines)

    if tuning is not None:
        out += _section("Tuning", list(tuning))

    if info.diagnostics:
        lines = [diag.describe() for diag in info.diagnostics]
        out += _section("Diagnostics (lint)", lines)

    return "\n".join(out).rstrip() + "\n"
