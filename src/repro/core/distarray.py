"""DistArrays: the distributed shared memory abstraction (paper Sec. 3.1).

A DistArray is an N-dimensional array, dense or sparse, addressed by integer
tuples (point queries) and ranges (set queries).  In the paper it is
partitioned across the memory of distributed machines; here the storage is
process-local while the runtime (:mod:`repro.runtime`) models partitioning,
placement and communication.  The semantics visible to application code are
the paper's:

* creation from text files or random initialization is *lazy* — recorded and
  fused, evaluated only at :func:`DistArray.materialize` (like RDDs),
* ``map`` is lazy and fuses with the source; ``group_by`` is eager,
* point and set queries (``A[1, 3]``, ``A[:, 3]``, ``A[1:3, 2]``) with
  in-place updates,
* ``randomize`` permutes coordinates along chosen dimensions to smooth a
  skewed data distribution (paper Sec. 4.3),
* ``checkpoint`` eagerly writes the array to disk (fault tolerance).
"""

from __future__ import annotations

import itertools
import pickle
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core import access
from repro.errors import CheckpointError, MaterializationError, SubscriptError

__all__ = ["DistArray", "Recipe", "parse_dense_line", "key_value_entries", "MISSING"]

_name_counter = itertools.count()

#: Sentinel distinguishing "no default" from ``default=None`` in the fast
#: sparse read path (:meth:`DistArray.bulk_get`).
MISSING = object()


def _fresh_name(prefix: str) -> str:
    return f"{prefix}_{next(_name_counter)}"


@dataclass
class Recipe:
    """One recorded (not yet evaluated) step of a DistArray's derivation.

    Attributes:
        kind: the operation — one of ``text_file``, ``entries``, ``randn``,
            ``rand``, ``zeros``, ``full``, ``map``.
        args: operation-specific payload (path+parser, the entries list, the
            fill value, or the mapping function).
    """

    kind: str
    args: Dict[str, Any] = field(default_factory=dict)


def parse_dense_line(line: str) -> Tuple[Tuple[int, ...], float]:
    """Default text parser: whitespace-separated ``i j ... value`` records."""
    parts = line.split()
    if len(parts) < 2:
        raise MaterializationError(f"cannot parse line: {line!r}")
    coords = tuple(int(p) for p in parts[:-1])
    return coords, float(parts[-1])


def key_value_entries(
    mapping: Dict[Tuple[int, ...], Any]
) -> List[Tuple[Tuple[int, ...], Any]]:
    """Helper turning a coordinate→value dict into a sorted entry list."""
    return sorted(mapping.items())


def _infer_shape(entries: Iterable[Tuple[Tuple[int, ...], Any]]) -> Tuple[int, ...]:
    """Smallest bounding-box shape containing every entry coordinate."""
    maxima: Optional[List[int]] = None
    for key, _value in entries:
        if maxima is None:
            maxima = [int(c) for c in key]
        else:
            if len(key) != len(maxima):
                raise MaterializationError(
                    "entries have inconsistent coordinate arity"
                )
            for dim, coordinate in enumerate(key):
                if coordinate > maxima[dim]:
                    maxima[dim] = int(coordinate)
    if maxima is None:
        raise MaterializationError("cannot infer the shape of an empty array")
    return tuple(m + 1 for m in maxima)


class DistArray:
    """An N-dimensional dense or sparse distributed array.

    Construct via the classmethod factories (or through
    :class:`repro.api.OrionContext`, which also registers the array with its
    runtime), then call :meth:`materialize` before element access.
    """

    def __init__(
        self,
        name: Optional[str] = None,
        shape: Optional[Tuple[int, ...]] = None,
        sparse: bool = False,
        recipes: Optional[List[Recipe]] = None,
        seed: Optional[int] = None,
    ) -> None:
        self.name = name or _fresh_name("distarray")
        self._shape = tuple(int(s) for s in shape) if shape is not None else None
        self.sparse = bool(sparse)
        self._recipes: List[Recipe] = list(recipes or [])
        self._seed = seed
        self._dense: Optional[np.ndarray] = None
        self._entries: Optional[Dict[Tuple[int, ...], Any]] = None
        #: Optional coordinate permutations from :meth:`randomize`, by dim.
        self.permutations: Dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------ #
    # Creation (lazy)                                                     #
    # ------------------------------------------------------------------ #

    @classmethod
    def text_file(
        cls,
        path: str,
        parser: Callable[[str], Tuple[Tuple[int, ...], Any]] = parse_dense_line,
        name: Optional[str] = None,
        shape: Optional[Tuple[int, ...]] = None,
    ) -> "DistArray":
        """Lazily create a sparse DistArray by parsing a text file, one entry
        per line via ``parser(line) -> (key_tuple, value)``."""
        recipe = Recipe("text_file", {"path": path, "parser": parser})
        return cls(name=name, shape=shape, sparse=True, recipes=[recipe])

    @classmethod
    def from_entries(
        cls,
        entries: Iterable[Tuple[Tuple[int, ...], Any]],
        name: Optional[str] = None,
        shape: Optional[Tuple[int, ...]] = None,
    ) -> "DistArray":
        """Lazily create a sparse DistArray from ``(key, value)`` pairs."""
        recipe = Recipe("entries", {"entries": list(entries)})
        return cls(name=name, shape=shape, sparse=True, recipes=[recipe])

    @classmethod
    def randn(
        cls,
        *shape: int,
        name: Optional[str] = None,
        seed: Optional[int] = None,
        scale: float = 1.0,
    ) -> "DistArray":
        """Lazily create a dense DistArray of i.i.d. normal values."""
        recipe = Recipe("randn", {"scale": float(scale)})
        return cls(name=name, shape=tuple(shape), sparse=False,
                   recipes=[recipe], seed=seed)

    @classmethod
    def rand(
        cls, *shape: int, name: Optional[str] = None, seed: Optional[int] = None
    ) -> "DistArray":
        """Lazily create a dense DistArray of uniform ``[0, 1)`` values."""
        recipe = Recipe("rand", {})
        return cls(name=name, shape=tuple(shape), sparse=False,
                   recipes=[recipe], seed=seed)

    @classmethod
    def zeros(cls, *shape: int, name: Optional[str] = None) -> "DistArray":
        """Lazily create a dense all-zero DistArray."""
        recipe = Recipe("zeros", {})
        return cls(name=name, shape=tuple(shape), sparse=False, recipes=[recipe])

    @classmethod
    def full(
        cls, shape: Tuple[int, ...], value: float, name: Optional[str] = None
    ) -> "DistArray":
        """Lazily create a dense DistArray filled with ``value``."""
        recipe = Recipe("full", {"value": value})
        return cls(name=name, shape=tuple(shape), sparse=False, recipes=[recipe])

    # ------------------------------------------------------------------ #
    # Lazy transforms                                                     #
    # ------------------------------------------------------------------ #

    def map(self, fn: Callable[..., Any], map_values: bool = False) -> "DistArray":
        """Record (lazily) an elementwise transformation.

        With ``map_values=True``, ``fn(value) -> value``; otherwise
        ``fn(key, value) -> (key, value)`` for sparse arrays.  Dense arrays
        support only ``map_values=True``.  The transform fuses with the
        source at materialization: no intermediate array is allocated.
        """
        if not self.sparse and not map_values:
            raise MaterializationError(
                "dense DistArrays support only map(..., map_values=True)"
            )
        recipe = Recipe("map", {"fn": fn, "map_values": bool(map_values)})
        child = DistArray(
            name=_fresh_name(self.name + "_map"),
            shape=self._shape,
            sparse=self.sparse,
            recipes=self._recipes + [recipe],
            seed=self._seed,
        )
        return child

    # ------------------------------------------------------------------ #
    # Materialization                                                     #
    # ------------------------------------------------------------------ #

    @property
    def is_materialized(self) -> bool:
        """Whether storage has been evaluated and element access is legal."""
        return self._dense is not None or self._entries is not None

    def materialize(self) -> "DistArray":
        """Evaluate the recorded recipe chain, fusing ``map`` steps.

        Idempotent: a second call returns immediately.
        """
        if self.is_materialized:
            return self
        if not self._recipes:
            raise MaterializationError(
                f"DistArray {self.name!r} has no recipe and no storage"
            )
        source, *rest = self._recipes
        maps = [r for r in rest if r.kind == "map"]
        if len(maps) != len(rest):
            raise MaterializationError("recipe chain may only append map steps")
        if self.sparse:
            self._materialize_sparse(source, maps)
        else:
            self._materialize_dense(source, maps)
        return self

    def _materialize_sparse(self, source: Recipe, maps: List[Recipe]) -> None:
        if source.kind == "text_file":
            parser = source.args["parser"]
            raw: List[Tuple[Tuple[int, ...], Any]] = []
            with open(source.args["path"]) as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    raw.append(parser(line))
        elif source.kind == "entries":
            raw = list(source.args["entries"])
        else:
            raise MaterializationError(
                f"unsupported sparse source recipe {source.kind!r}"
            )
        data: Dict[Tuple[int, ...], Any] = {}
        for key, value in raw:
            key = tuple(int(c) for c in key)
            # Fused user-defined maps: applied per entry, no intermediates.
            dropped = False
            for step in maps:
                fn = step.args["fn"]
                if step.args["map_values"]:
                    value = fn(value)
                else:
                    mapped = fn(key, value)
                    if mapped is None:
                        dropped = True
                        break
                    key, value = mapped
                    key = tuple(int(c) for c in key)
            if not dropped:
                data[key] = value
        self._entries = data
        if self._shape is None:
            self._shape = _infer_shape(data.items())

    def _materialize_dense(self, source: Recipe, maps: List[Recipe]) -> None:
        if self._shape is None:
            raise MaterializationError("dense DistArrays require a shape")
        rng = np.random.default_rng(self._seed)
        if source.kind == "randn":
            dense = rng.standard_normal(self._shape) * source.args["scale"]
        elif source.kind == "rand":
            dense = rng.random(self._shape)
        elif source.kind == "zeros":
            dense = np.zeros(self._shape)
        elif source.kind == "full":
            dense = np.full(self._shape, float(source.args["value"]))
        else:
            raise MaterializationError(
                f"unsupported dense source recipe {source.kind!r}"
            )
        for step in maps:
            dense = np.vectorize(step.args["fn"])(dense).astype(float)
        self._dense = np.ascontiguousarray(dense, dtype=float)

    def _require_materialized(self) -> None:
        if not self.is_materialized:
            raise MaterializationError(
                f"DistArray {self.name!r} must be materialized before access"
            )

    # ------------------------------------------------------------------ #
    # Shape / size                                                        #
    # ------------------------------------------------------------------ #

    @property
    def shape(self) -> Tuple[int, ...]:
        """The array's dimension sizes (requires a known/inferred shape)."""
        if self._shape is None:
            raise MaterializationError(
                f"shape of {self.name!r} unknown before materialization"
            )
        return self._shape

    @property
    def ndim(self) -> int:
        """Number of array dimensions."""
        return len(self.shape)

    @property
    def num_entries(self) -> int:
        """Number of stored entries (nnz for sparse, product of shape dense)."""
        if self.sparse:
            self._require_materialized()
            return len(self._entries)
        return int(np.prod(self.shape))

    @property
    def nbytes(self) -> int:
        """Approximate in-memory payload size, used by the network model."""
        self._require_materialized()
        if self.sparse:
            return 8 * (self.ndim + 1) * len(self._entries)
        return int(self._dense.nbytes)

    # ------------------------------------------------------------------ #
    # Element access                                                      #
    # ------------------------------------------------------------------ #

    def __getitem__(self, index: Any) -> Any:
        broker = access.current_broker()
        if broker is not None:
            return broker.read(self, index)
        return self.direct_get(index)

    def __setitem__(self, index: Any, value: Any) -> None:
        broker = access.current_broker()
        if broker is not None:
            broker.write(self, index, value)
            return
        self.direct_set(index, value)

    def direct_get(self, index: Any) -> Any:
        """Serve a point/set read from local storage, bypassing brokers."""
        self._require_materialized()
        if self.sparse:
            key = self._point_key(index)
            try:
                return self._entries[key]
            except KeyError:
                raise SubscriptError(
                    f"{self.name}[{key}] is not a stored entry"
                ) from None
        return self._dense[index]

    def direct_set(self, index: Any, value: Any) -> None:
        """Apply a point/set write to local storage, bypassing brokers."""
        self._require_materialized()
        if self.sparse:
            key = self._point_key(index)
            self._entries[key] = value
            return
        self._dense[index] = value

    def get(self, index: Any, default: Any = None) -> Any:
        """Sparse point read returning ``default`` for absent entries."""
        self._require_materialized()
        if not self.sparse:
            return self.direct_get(index)
        return self._entries.get(self._point_key(index), default)

    def contains(self, index: Any) -> bool:
        """Whether a sparse entry exists at ``index``."""
        self._require_materialized()
        if not self.sparse:
            raise SubscriptError("contains() applies to sparse DistArrays")
        return self._point_key(index) in self._entries

    # ------------------------------------------------------------------ #
    # Bulk element access (the executor's batched-kernel fast path)       #
    # ------------------------------------------------------------------ #

    def bulk_get(self, keys: Sequence[Any], default: Any = MISSING) -> List[Any]:
        """Read many point subscripts in one call.

        Sparse arrays use a single dict lookup per key with no per-element
        exception handling (``try/except KeyError`` in :meth:`direct_get`
        dominates hot loops); a missing key returns ``default`` when one is
        given and raises :class:`SubscriptError` otherwise.  Dense arrays
        serve each key from the backing ndarray.  Accounting is the
        caller's job — brokers wrap this via ``AccessBroker.bulk_read``.
        """
        self._require_materialized()
        if not self.sparse:
            dense = self._dense
            return [dense[key] for key in keys]
        entries = self._entries
        getter = entries.get
        out: List[Any] = []
        for key in keys:
            if not isinstance(key, tuple):
                key = (key,)
            value = getter(key, MISSING)
            if value is MISSING:
                value = getter(self._point_key(key), MISSING)
            if value is MISSING:
                if default is MISSING:
                    raise SubscriptError(
                        f"{self.name}[{key}] is not a stored entry"
                    )
                value = default
            out.append(value)
        return out

    def bulk_set(self, keys: Sequence[Any], values: Sequence[Any]) -> None:
        """Write many point subscripts in one call (see :meth:`bulk_get`)."""
        self._require_materialized()
        if len(keys) != len(values):
            raise SubscriptError(
                f"bulk_set on {self.name}: {len(keys)} keys vs "
                f"{len(values)} values"
            )
        if not self.sparse:
            dense = self._dense
            for key, value in zip(keys, values):
                dense[key] = value
            return
        entries = self._entries
        for key, value in zip(keys, values):
            if not isinstance(key, tuple):
                key = (key,)
            entries[self._point_key(key)] = value

    def dense_columns(self, cols: Sequence[int]) -> np.ndarray:
        """Gather ``self[:, cols]`` as one fancy-indexed matrix (dense 2-D).

        One vectorized NumPy gather replaces ``len(cols)`` point slice
        reads; the result is a copy (mutating it does not write back — use
        :meth:`set_dense_columns`).
        """
        self._require_materialized()
        if self.sparse or self._dense.ndim != 2:
            raise SubscriptError(
                f"dense_columns applies to dense 2-D arrays, not {self.name}"
            )
        return self._dense[:, cols]

    def set_dense_columns(self, cols: Sequence[int], values: np.ndarray) -> None:
        """Scatter ``values`` into ``self[:, cols]`` in one vectorized write."""
        self._require_materialized()
        if self.sparse or self._dense.ndim != 2:
            raise SubscriptError(
                f"set_dense_columns applies to dense 2-D arrays, not {self.name}"
            )
        self._dense[:, cols] = values

    def dense_rows(self, rows: Sequence[int]) -> np.ndarray:
        """Gather ``self[rows, :]`` as one fancy-indexed matrix (dense 2-D)."""
        self._require_materialized()
        if self.sparse or self._dense.ndim != 2:
            raise SubscriptError(
                f"dense_rows applies to dense 2-D arrays, not {self.name}"
            )
        return self._dense[rows, :]

    def set_dense_rows(self, rows: Sequence[int], values: np.ndarray) -> None:
        """Scatter ``values`` into ``self[rows, :]`` in one vectorized write."""
        self._require_materialized()
        if self.sparse or self._dense.ndim != 2:
            raise SubscriptError(
                f"set_dense_rows applies to dense 2-D arrays, not {self.name}"
            )
        self._dense[rows, :] = values

    def _point_key(self, index: Any) -> Tuple[int, ...]:
        if not isinstance(index, tuple):
            index = (index,)
        if self._shape is not None and len(index) != len(self._shape):
            raise SubscriptError(
                f"{self.name} expects {len(self._shape)} subscripts, "
                f"got {len(index)}"
            )
        try:
            return tuple(int(c) for c in index)
        except (TypeError, ValueError):
            raise SubscriptError(
                f"sparse DistArray {self.name} supports only integer point "
                f"queries, got {index!r}"
            ) from None

    # ------------------------------------------------------------------ #
    # Iteration                                                           #
    # ------------------------------------------------------------------ #

    def entries(self) -> Iterator[Tuple[Tuple[int, ...], Any]]:
        """Iterate ``(key, value)`` over stored entries.

        For sparse arrays this is the nonzero set (the natural iteration
        space of a parallel for-loop); for dense arrays, every cell.
        """
        self._require_materialized()
        if self.sparse:
            yield from self._entries.items()
        else:
            for key in np.ndindex(*self._dense.shape):
                yield key, self._dense[key]

    @property
    def values(self) -> np.ndarray:
        """The dense backing ndarray (dense arrays only)."""
        self._require_materialized()
        if self.sparse:
            raise SubscriptError(
                f"{self.name} is sparse; use entries() instead of .values"
            )
        return self._dense

    def set_dense(self, values: np.ndarray) -> None:
        """Replace the dense backing store (used by engines syncing replicas)."""
        if self.sparse:
            raise SubscriptError(f"{self.name} is sparse")
        self._dense = np.ascontiguousarray(values, dtype=float)
        self._shape = self._dense.shape

    # ------------------------------------------------------------------ #
    # Eager set operations                                                #
    # ------------------------------------------------------------------ #

    def group_by(self, dim: int) -> "DistArray":
        """Eagerly group sparse entries by one coordinate dimension.

        Returns a 1-D sparse DistArray keyed by that coordinate whose values
        are lists of the original ``(key, value)`` pairs.  Eager because it
        shuffles data (paper Sec. 3.1).
        """
        self._require_materialized()
        if not self.sparse:
            raise SubscriptError("group_by applies to sparse DistArrays")
        if not 0 <= dim < self.ndim:
            raise SubscriptError(f"group_by dimension {dim} out of range")
        groups: Dict[Tuple[int, ...], List[Tuple[Tuple[int, ...], Any]]] = {}
        for key, value in self._entries.items():
            groups.setdefault((key[dim],), []).append((key, value))
        out = DistArray(
            name=_fresh_name(self.name + "_by"),
            shape=(self.shape[dim],),
            sparse=True,
        )
        out._entries = dict(groups)
        return out

    def randomize(
        self, dims: Optional[Sequence[int]] = None, seed: Optional[int] = None
    ) -> "DistArray":
        """Eagerly permute coordinates along ``dims`` (default: all).

        Smooths skewed data distributions so equal-width iteration-space
        partitions are balanced (paper Sec. 4.3).  The applied permutations
        are kept on the result's :attr:`permutations` so parameter arrays
        indexed by the permuted dimensions can be re-indexed consistently.
        """
        self._require_materialized()
        if not self.sparse:
            raise SubscriptError("randomize applies to sparse DistArrays")
        rng = np.random.default_rng(seed)
        target_dims = list(range(self.ndim)) if dims is None else list(dims)
        perms: Dict[int, np.ndarray] = {}
        for dim in target_dims:
            if not 0 <= dim < self.ndim:
                raise SubscriptError(f"randomize dimension {dim} out of range")
            perms[dim] = rng.permutation(self.shape[dim])
        remapped: Dict[Tuple[int, ...], Any] = {}
        for key, value in self._entries.items():
            new_key = tuple(
                int(perms[d][c]) if d in perms else c for d, c in enumerate(key)
            )
            remapped[new_key] = value
        out = DistArray(
            name=_fresh_name(self.name + "_rand"),
            shape=self.shape,
            sparse=True,
        )
        out._entries = remapped
        out.permutations = perms
        return out

    def histogram(self, dim: int, num_bins: Optional[int] = None) -> np.ndarray:
        """Entry counts along one dimension, used for balanced partitioning.

        With ``num_bins=None`` returns one bin per coordinate value.
        """
        self._require_materialized()
        if not self.sparse:
            raise SubscriptError("histogram applies to sparse DistArrays")
        if not 0 <= dim < self.ndim:
            raise SubscriptError(f"histogram dimension {dim} out of range")
        extent = self.shape[dim]
        bins = extent if num_bins is None else int(num_bins)
        counts = np.zeros(bins, dtype=np.int64)
        for key in self._entries:
            bucket = key[dim] * bins // extent
            counts[bucket] += 1
        return counts

    # ------------------------------------------------------------------ #
    # Checkpointing                                                       #
    # ------------------------------------------------------------------ #

    def checkpoint(self, path: str) -> None:
        """Eagerly write the array to disk (paper Sec. 4.3, fault tolerance)."""
        self._require_materialized()
        payload = {
            "name": self.name,
            "shape": self._shape,
            "sparse": self.sparse,
            "dense": self._dense,
            "entries": self._entries,
        }
        try:
            with open(path, "wb") as handle:
                pickle.dump(payload, handle)
        except OSError as exc:
            raise CheckpointError(f"cannot write checkpoint {path!r}: {exc}")

    @classmethod
    def load_checkpoint(cls, path: str) -> "DistArray":
        """Restore a DistArray previously written by :meth:`checkpoint`."""
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
        except (OSError, pickle.UnpicklingError) as exc:
            raise CheckpointError(f"cannot read checkpoint {path!r}: {exc}")
        array = cls(
            name=payload["name"], shape=payload["shape"], sparse=payload["sparse"]
        )
        array._dense = payload["dense"]
        array._entries = payload["entries"]
        return array

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "sparse" if self.sparse else "dense"
        state = "materialized" if self.is_materialized else "lazy"
        shape = self._shape if self._shape is not None else "?"
        return f"<DistArray {self.name} {kind} shape={shape} {state}>"
