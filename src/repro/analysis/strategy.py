"""Parallelization strategy selection (paper Sec. 4.3, Fig. 6 stage 3).

Given the dependence vectors of a loop, decide how to partition and
schedule the iteration space:

* **1D**: some dimension ``i`` has distance 0 in every dependence vector —
  partitioning on ``i`` makes partitions independent (paper Fig. 7a/7d).
* **2D**: some pair ``(i, j)`` has, in every dependence vector, distance 0
  at ``i`` *or* at ``j`` — iterations differing in both are independent
  (paper Fig. 7b/7c).  One dimension becomes the *space* dimension (pinned
  to workers), the other the *time* dimension (stepped globally).
* **2D via unimodular transformation**: neither applies but a unimodular
  ``T`` carries all dependences on the transformed outermost level.
* With every write buffered the loop is dependence-free by construction and
  runs as 1D **data parallelism** (the paper's Sec. 3.3 relaxation).

Among candidates, the default heuristic minimizes the volume of DistArray
data that must move between workers during the loop (rotated plus
server-served bytes); the application can override the choice.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

import numpy as np

from repro.analysis import unimodular
from repro.analysis.depvec import DepVector, compute_dependence_vectors
from repro.analysis.lint import Diagnostic, location_of
from repro.analysis.loop_info import LoopInfo
from repro.errors import ParallelizationError

__all__ = ["Strategy", "Placement", "PlacementKind", "Plan", "choose_plan"]


class Strategy(enum.Enum):
    """The paper's parallelization strategies."""

    ONE_D = "1d"
    TWO_D = "2d"
    TWO_D_UNIMODULAR = "2d_unimodular"
    DATA_PARALLEL = "1d_data_parallel"


class PlacementKind(enum.Enum):
    """Where each DistArray lives during loop execution (paper Sec. 4.4)."""

    LOCAL = "local"          # range partitioned on the space dim; no comm
    ROTATED = "rotated"      # partitioned on the time dim; ring-rotated
    REPLICATED = "replicated"  # read-only; broadcast once
    SERVER = "server"        # served by parameter servers; prefetch + flush


@dataclass(frozen=True)
class Placement:
    """Placement decision for one DistArray."""

    kind: PlacementKind
    #: For LOCAL/ROTATED: the array dimension that is range partitioned.
    array_dim: Optional[int] = None


@dataclass
class Plan:
    """The complete static parallelization decision for one loop."""

    strategy: Strategy
    ordered: bool
    #: Iteration-space dimension pinned to workers (1D and 2D).
    space_dim: Optional[int] = None
    #: Iteration-space dimension stepped over time (2D only).
    time_dim: Optional[int] = None
    #: Unimodular transformation (and inverse) when strategy needs one.
    transform: Optional[unimodular.Matrix] = None
    transform_inverse: Optional[unimodular.Matrix] = None
    #: Union of dependence vectors over all referenced arrays.
    dvecs: FrozenSet[DepVector] = frozenset()
    #: Dependence vectors per array (diagnostics, tests).
    dvecs_by_array: Dict[str, FrozenSet[DepVector]] = field(default_factory=dict)
    #: All dimensions eligible for 1D partitioning.
    candidates_1d: Tuple[int, ...] = ()
    #: All (space, time) orientations eligible for 2D partitioning.
    candidates_2d: Tuple[Tuple[int, int], ...] = ()
    #: Placement per referenced DistArray name.
    placements: Dict[str, Placement] = field(default_factory=dict)
    #: Whether the loop relies on DistArray Buffers (dependence violation).
    uses_buffers: bool = False

    def describe(self) -> str:
        """One-line summary like the paper's Table 2 entries."""
        order = "ordered" if self.ordered else "unordered"
        if self.strategy is Strategy.ONE_D:
            return f"1D (dim {self.space_dim}, {order})"
        if self.strategy is Strategy.DATA_PARALLEL:
            return "1D (data parallelism)"
        if self.strategy is Strategy.TWO_D:
            return (
                f"2D {order} (space dim {self.space_dim}, "
                f"time dim {self.time_dim})"
            )
        return f"2D {order} via unimodular transformation {self.transform}"


def _array_bytes(info: LoopInfo, name: str) -> int:
    array = info.arrays[name]
    if array.is_materialized:
        return array.nbytes
    try:
        return 8 * int(np.prod(array.shape))
    except Exception:
        return 0


def _classify_arrays(
    info: LoopInfo,
    space_dim: Optional[int],
    time_dim: Optional[int],
) -> Dict[str, Placement]:
    """Assign a placement to every referenced array for the given dims.

    Preference order per array: LOCAL (accessed through the space
    dimension), ROTATED (through the time dimension), REPLICATED
    (read-only), SERVER (everything else, e.g. unknown subscripts).
    """
    placements: Dict[str, Placement] = {}
    written = info.written_arrays()
    buffer_targets = {id(buffer.target) for buffer in info.buffers.values()}
    for name in info.arrays:
        local_dim = (
            info.pinned_array_dim(name, space_dim) if space_dim is not None else None
        )
        rotated_dim = (
            info.pinned_array_dim(name, time_dim) if time_dim is not None else None
        )
        if local_dim is not None:
            placements[name] = Placement(PlacementKind.LOCAL, array_dim=local_dim)
        elif rotated_dim is not None:
            placements[name] = Placement(
                PlacementKind.ROTATED, array_dim=rotated_dim
            )
        elif id(info.arrays[name]) in buffer_targets:
            # Updated through a buffer: the array changes every flush, so it
            # must be served centrally, not replicated.
            placements[name] = Placement(PlacementKind.SERVER)
        elif name not in written:
            placements[name] = Placement(PlacementKind.REPLICATED)
        else:
            placements[name] = Placement(PlacementKind.SERVER)
    # Buffer targets not otherwise referenced are server-resident.
    for buffer_name, buffer in info.buffers.items():
        target = buffer.target.name
        referenced = any(
            info.arrays[n] is buffer.target for n in info.arrays
        )
        if not referenced:
            placements[f"<target:{buffer_name}>"] = Placement(PlacementKind.SERVER)
    return placements


def _communication_cost(info: LoopInfo, placements: Dict[str, Placement]) -> int:
    """Heuristic bytes moved per data pass under a placement assignment.

    Rotated arrays move fully once per pass; server arrays move on the
    order of their size per pass (prefetch + flush); replicated arrays move
    once (amortized, counted lightly); local arrays are free.
    """
    cost = 0
    for name, placement in placements.items():
        if name.startswith("<target:"):
            continue
        size = _array_bytes(info, name)
        if placement.kind is PlacementKind.ROTATED:
            cost += size
        elif placement.kind is PlacementKind.SERVER:
            cost += 2 * size
        elif placement.kind is PlacementKind.REPLICATED:
            cost += size // 8
    return cost


def _candidates_1d(dvecs: FrozenSet[DepVector], ndims: int) -> List[int]:
    return [
        dim
        for dim in range(ndims)
        if all(vector.is_zero_at(dim) for vector in dvecs)
    ]


def _candidates_2d(
    dvecs: FrozenSet[DepVector], ndims: int, exclude: List[int]
) -> List[Tuple[int, int]]:
    pairs = []
    for space in range(ndims):
        for time in range(ndims):
            if space == time:
                continue
            if space in exclude or time in exclude:
                continue
            if all(
                vector.is_zero_at(space) or vector.is_zero_at(time)
                for vector in dvecs
            ):
                pairs.append((space, time))
    return pairs


def choose_plan(
    info: LoopInfo,
    force_dims: Optional[Tuple[int, ...]] = None,
) -> Plan:
    """Pick a dependence-preserving parallelization for a loop.

    Args:
        info: output of :func:`repro.analysis.loop_info.analyze_loop_body`.
        force_dims: application override of the partitioning-dimension
            heuristic — ``(space,)`` to force a 1D dimension or
            ``(space, time)`` to force a 2D orientation.

    Raises:
        ParallelizationError: when no dependence-preserving strategy exists
            and the loop's writes are not all buffered.
    """
    by_array: Dict[str, FrozenSet[DepVector]] = {}
    for name, refs in info.refs.items():
        by_array[name] = compute_dependence_vectors(
            refs, info.num_iter_dims, unordered_loop=not info.ordered
        )
    all_dvecs: FrozenSet[DepVector] = frozenset().union(*by_array.values()) \
        if by_array else frozenset()
    ndims = info.num_iter_dims
    uses_buffers = bool(info.buffers)

    ones = _candidates_1d(all_dvecs, ndims)
    twos = _candidates_2d(all_dvecs, ndims, exclude=ones)

    def finish(
        strategy: Strategy,
        space: Optional[int],
        time: Optional[int],
        transform: Optional[unimodular.Matrix] = None,
    ) -> Plan:
        if transform is None:
            placements = _classify_arrays(info, space, time)
        else:
            # Transformed dimensions are linear combinations of the original
            # ones, so no original-dimension range partition stays aligned
            # with workers: read-only arrays replicate, written arrays go to
            # parameter servers.
            placements = _classify_arrays(info, None, None)
        plan = Plan(
            strategy=strategy,
            ordered=info.ordered,
            space_dim=space,
            time_dim=time,
            transform=transform,
            transform_inverse=(
                unimodular.invert_unimodular(transform) if transform else None
            ),
            dvecs=all_dvecs,
            dvecs_by_array=by_array,
            candidates_1d=tuple(ones),
            candidates_2d=tuple(twos),
            placements=placements,
            uses_buffers=uses_buffers,
        )
        return plan

    if force_dims is not None:
        if len(force_dims) == 1:
            space = force_dims[0]
            if space not in ones and all_dvecs:
                raise ParallelizationError(
                    f"dimension {space} is not a valid 1D partitioning "
                    f"dimension (candidates: {ones})"
                )
            kind = Strategy.DATA_PARALLEL if (uses_buffers and not all_dvecs) \
                else Strategy.ONE_D
            return finish(kind, space, None)
        space, time = force_dims
        if (space, time) not in twos:
            raise ParallelizationError(
                f"({space}, {time}) is not a valid 2D orientation "
                f"(candidates: {twos})"
            )
        return finish(Strategy.TWO_D, space, time)

    if ones:
        best = min(
            ones,
            key=lambda dim: (
                _communication_cost(info, _classify_arrays(info, dim, None)),
                -_dim_extent(info, dim),
            ),
        )
        kind = Strategy.DATA_PARALLEL if (uses_buffers and not all_dvecs) \
            else Strategy.ONE_D
        return finish(kind, best, None)

    if twos:
        best_pair = min(
            twos,
            key=lambda pair: _communication_cost(
                info, _classify_arrays(info, pair[0], pair[1])
            ),
        )
        return finish(Strategy.TWO_D, best_pair[0], best_pair[1])

    transform = unimodular.find_transformation(sorted(
        all_dvecs, key=lambda v: v.describe()
    ), ndims)
    if transform is not None:
        # Transformed level 0 carries all dependences (time); inner levels
        # are independent — use level 1 as the space dimension.
        return finish(Strategy.TWO_D_UNIMODULAR, 1, 0, transform)

    message = (
        "no dependence-preserving parallelization exists for this loop; "
        "dependence vectors: "
        + ", ".join(sorted(v.describe() for v in all_dvecs))
    )
    hint = (
        "route writes through a DistArrayBuffer (data parallelism) or "
        "restructure the iteration space"
    )
    raise ParallelizationError(
        message + ". Consider routing writes through a DistArrayBuffer "
        "(data parallelism) or restructuring the iteration space.",
        diagnostic=Diagnostic(
            code="E110",
            message=message,
            location=location_of(info.tree, info.source_file),
            hint=hint,
        ),
    )


def _dim_extent(info: LoopInfo, dim: int) -> int:
    try:
        return info.iteration_space.shape[dim]
    except Exception:
        return 0
