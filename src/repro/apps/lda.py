"""Latent Dirichlet Allocation by collapsed Gibbs sampling (Table 2 row 5).

The iteration space is the corpus' (doc, word) occurrence matrix.  Each
iteration resamples the topic of every token of one (doc, word) pair:

* ``doc_topic[key[0], :]`` — read/written, pinned by the doc dimension;
* ``word_topic[key[1], :]`` — read/written, pinned by the word dimension;
* ``assignments[key]`` — the pair's token topics (self-dependence only);
* ``topic_sum`` — the global per-topic counts, *updated through a
  DistArray Buffer*: a genuine cross-iteration dependence the program
  deliberately violates.  This is the paper's "non-critical dependence"
  relaxation in LDA — the counts are large aggregates, so slightly stale
  values perturb the sampling distribution negligibly.

Static analysis yields dependence vectors ``(0, +inf)`` and ``(+inf, 0)``
and parallelizes the loop 2D unordered, exactly the paper's Table 2 entry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.api import OrionContext
from repro.apps.base import (
    Entry,
    OrionProgram,
    SerialApp,
    resolve_kernel_option,
    resolve_loop_options,
)
from repro.data.synthetic import CorpusDataset
from repro.runtime.cluster import ClusterSpec
from repro.runtime.simtime import CostModel

__all__ = ["LDAHyper", "LDAApp", "build_orion_program", "lda_cost_model", "lda_log_likelihood"]


@dataclass(frozen=True)
class LDAHyper:
    """Collapsed Gibbs hyperparameters (symmetric Dirichlet priors)."""

    num_topics: int = 10
    alpha: float = 0.5
    beta: float = 0.1


def lda_cost_model(
    hyper: LDAHyper,
    tokens_per_entry: float = 1.5,
    base_entry_cost: float = 1e-6,
) -> CostModel:
    """Per-entry cost: one categorical sample per token, linear in topics.

    LDA moves complex per-row count data between workers, so marshalling
    is charged per rotated byte (the overhead the paper blames for Orion's
    LDA gap versus STRADS' pointer-swapping C++ runtime).
    """
    factor = (hyper.num_topics / 10.0) * tokens_per_entry
    return CostModel(entry_cost_s=base_entry_cost * factor)


def _initial_assignments(
    dataset: CorpusDataset, num_topics: int, seed: int
) -> Tuple[Dict[Tuple[int, int], np.ndarray], np.ndarray, np.ndarray, np.ndarray]:
    """Random topic init plus the consistent count matrices."""
    rng = np.random.default_rng(seed)
    doc_topic = np.zeros((dataset.num_docs, num_topics))
    word_topic = np.zeros((dataset.vocab_size, num_topics))
    topic_sum = np.zeros(num_topics)
    assignments: Dict[Tuple[int, int], np.ndarray] = {}
    for (doc, word), count in dataset.entries:
        topics = rng.integers(0, num_topics, size=int(count))
        assignments[(doc, word)] = topics
        for topic in topics:
            doc_topic[doc, topic] += 1
            word_topic[word, topic] += 1
            topic_sum[topic] += 1
    return assignments, doc_topic, word_topic, topic_sum


def lda_log_likelihood(
    doc_topic: np.ndarray,
    word_topic: np.ndarray,
    entries: List[Entry],
    alpha: float,
    beta: float,
) -> float:
    """Per-token predictive log likelihood from point-estimate posteriors.

    Higher is better; benchmarks report its negation so "lower is better"
    holds across all applications.
    """
    theta = doc_topic + alpha
    theta /= theta.sum(axis=1, keepdims=True)
    phi = word_topic + beta
    phi /= phi.sum(axis=0, keepdims=True)
    total = 0.0
    tokens = 0
    for (doc, word), count in entries:
        p = float(theta[doc] @ phi[word])
        total += count * np.log(max(p, 1e-300))
        tokens += count
    return total / max(tokens, 1)


def build_orion_program(
    dataset: CorpusDataset,
    cluster: Optional[ClusterSpec] = None,
    hyper: LDAHyper = LDAHyper(),
    ordered: bool = False,
    parallelism: str = "2d",
    seed: int = 0,
    label: Optional[str] = None,
    use_kernel: Any = True,
    **loop_opts,
) -> OrionProgram:
    """Build the LDA Orion program.

    ``parallelism="2d"`` (default) is the dependence-preserving collapsed
    Gibbs sampler described in the module docstring.  ``parallelism="1d"``
    is the paper's Table 2 alternative: partition over documents only, with
    *word-topic* updates routed through a buffer as well — trading the
    word-dimension dependences for a single-phase schedule (useful when
    the word dimension is too small or skewed to partition well).

    ``use_kernel`` registers a batched block kernel.  Gibbs sampling is
    token-sequential (each draw conditions on the previous one, through a
    shared RNG), so the kernel keeps the exact token loop and instead
    removes the per-entry broker dispatch: direct dense row access, one
    bulk buffer merge per block, and memoized traffic declarations.  The
    RNG consumption order is unchanged, so samples — and therefore all
    counts — are identical to the scalar path.  Note ``equivalence_check``
    cannot be used with LDA: replaying a block advances the shared RNG.
    """
    if parallelism not in ("2d", "1d"):
        raise ValueError(f"unknown LDA parallelism {parallelism!r}")
    cluster = cluster or ClusterSpec(num_machines=1, workers_per_machine=4)
    ctx = OrionContext(cluster=cluster, seed=seed)
    T = hyper.num_topics
    init_assign, dt0, wt0, ts0 = _initial_assignments(dataset, T, seed)

    corpus = ctx.from_entries(dataset.entries, name="corpus", shape=dataset.shape)
    ctx.materialize(corpus)
    assignments = ctx.from_entries(
        sorted(init_assign.items()), name="assignments", shape=dataset.shape
    )
    ctx.materialize(assignments)
    doc_topic = ctx.zeros(dataset.num_docs, T, name="doc_topic")
    word_topic = ctx.zeros(dataset.vocab_size, T, name="word_topic")
    topic_sum = ctx.zeros(T, name="topic_sum")
    ctx.materialize(doc_topic, word_topic, topic_sum)
    doc_topic.set_dense(dt0)
    word_topic.set_dense(wt0)
    topic_sum.set_dense(ts0)

    topic_buf = ctx.dist_array_buffer(topic_sum, name="topic_buf")
    alpha, beta = hyper.alpha, hyper.beta
    vbeta = beta * dataset.vocab_size
    rng = np.random.default_rng(seed + 1)

    if parallelism == "2d":

        def body(key, count):
            tokens = assignments[key[0], key[1]]
            dt_row = doc_topic[key[0], :].copy()
            wt_row = word_topic[key[1], :].copy()
            totals = topic_sum[:].copy()
            # probs[k] is elementwise in k and each draw perturbs only two
            # topics, so after the first full evaluation the vector is
            # maintained sparsely: recompute just the touched entries with
            # the identical scalar expression (bitwise-equal to a full
            # recompute).
            probs = None
            for position in range(len(tokens)):
                old = int(tokens[position])
                dt_row[old] -= 1.0
                wt_row[old] -= 1.0
                totals[old] -= 1.0
                if probs is None:
                    probs = np.maximum(
                        (dt_row + alpha) * (wt_row + beta) / (totals + vbeta),
                        0.0,
                    )
                else:
                    p = (
                        (dt_row[old] + alpha)
                        * (wt_row[old] + beta)
                        / (totals[old] + vbeta)
                    )
                    probs[old] = p if p > 0.0 else 0.0
                scale = probs.sum()
                if scale <= 0.0:
                    new = old
                else:
                    new = int(
                        np.searchsorted(np.cumsum(probs), rng.random() * scale)
                    )
                    new = min(new, len(probs) - 1)
                dt_row[new] += 1.0
                wt_row[new] += 1.0
                totals[new] += 1.0
                p = (
                    (dt_row[new] + alpha)
                    * (wt_row[new] + beta)
                    / (totals[new] + vbeta)
                )
                probs[new] = p if p > 0.0 else 0.0
                if new != old:
                    topic_buf[old] = -1.0
                    topic_buf[new] = 1.0
                tokens[position] = new
            doc_topic[key[0], :] = dt_row
            word_topic[key[1], :] = wt_row
            assignments[key[0], key[1]] = tokens

        def kernel(block, kctx):
            keys = kctx.cache.get("keys")
            if keys is None:
                kctx.cache["keys"] = keys = [key for key, _count in block]
            dtd, wtd = doc_topic.values, word_topic.values
            tsd = topic_sum.values
            buf_keys: list = []
            buf_vals: list = []
            for doc, word in keys:
                tokens = assignments.get((doc, word))
                # Both rows are written back whole in the scalar path, so
                # the kernel mutates the dense rows in place (no copy, no
                # write-back) — blocks own their doc and word ranges.
                dt_row = dtd[doc]
                wt_row = wtd[word]
                totals = tsd.copy()
                probs = None
                for position in range(len(tokens)):
                    old = int(tokens[position])
                    dt_row[old] -= 1.0
                    wt_row[old] -= 1.0
                    totals[old] -= 1.0
                    if probs is None:
                        probs = np.maximum(
                            (dt_row + alpha)
                            * (wt_row + beta)
                            / (totals + vbeta),
                            0.0,
                        )
                    else:
                        p = (
                            (dt_row[old] + alpha)
                            * (wt_row[old] + beta)
                            / (totals[old] + vbeta)
                        )
                        probs[old] = p if p > 0.0 else 0.0
                    scale = probs.sum()
                    if scale <= 0.0:
                        new = old
                    else:
                        new = int(
                            np.searchsorted(
                                np.cumsum(probs), rng.random() * scale
                            )
                        )
                        new = min(new, len(probs) - 1)
                    dt_row[new] += 1.0
                    wt_row[new] += 1.0
                    totals[new] += 1.0
                    p = (
                        (dt_row[new] + alpha)
                        * (wt_row[new] + beta)
                        / (totals[new] + vbeta)
                    )
                    probs[new] = p if p > 0.0 else 0.0
                    if new != old:
                        buf_keys.append(old)
                        buf_vals.append(-1.0)
                        buf_keys.append(new)
                        buf_vals.append(1.0)
                    tokens[position] = new
            kctx.buffer_add(topic_buf, buf_keys, buf_vals)
            docs = [key[0] for key in keys]
            words = [key[1] for key in keys]
            kctx.account_point_reads(assignments, keys)
            kctx.account_row_reads(doc_topic, docs)
            kctx.account_row_reads(word_topic, words)
            kctx.account_full_reads(topic_sum, len(keys))
            kctx.account_row_writes(doc_topic, docs)
            kctx.account_row_writes(word_topic, words)
            kctx.account_point_writes(assignments, keys)
    else:
        # 1D over documents: doc-topic counts stay dependence-preserved
        # (pinned by key[0]); word-topic updates are buffered — an extra,
        # deliberately violated dependence (word rows are large aggregates,
        # like the topic totals).
        word_buf = ctx.dist_array_buffer(word_topic, name="word_buf")

        def body(key, count):
            tokens = assignments[key[0], key[1]]
            dt_row = doc_topic[key[0], :].copy()
            wt_row = word_topic[key[1], :].copy()
            totals = topic_sum[:].copy()
            # Sparse probability maintenance — see the 2D body.
            probs = None
            for position in range(len(tokens)):
                old = int(tokens[position])
                dt_row[old] -= 1.0
                wt_row[old] -= 1.0
                totals[old] -= 1.0
                if probs is None:
                    probs = np.maximum(
                        (dt_row + alpha) * (wt_row + beta) / (totals + vbeta),
                        0.0,
                    )
                else:
                    p = (
                        (dt_row[old] + alpha)
                        * (wt_row[old] + beta)
                        / (totals[old] + vbeta)
                    )
                    probs[old] = p if p > 0.0 else 0.0
                scale = probs.sum()
                if scale <= 0.0:
                    new = old
                else:
                    new = int(
                        np.searchsorted(np.cumsum(probs), rng.random() * scale)
                    )
                    new = min(new, len(probs) - 1)
                dt_row[new] += 1.0
                wt_row[new] += 1.0
                totals[new] += 1.0
                p = (
                    (dt_row[new] + alpha)
                    * (wt_row[new] + beta)
                    / (totals[new] + vbeta)
                )
                probs[new] = p if p > 0.0 else 0.0
                if new != old:
                    topic_buf[old] = -1.0
                    topic_buf[new] = 1.0
                    word_buf[key[1], old] = -1.0
                    word_buf[key[1], new] = 1.0
                tokens[position] = new
            doc_topic[key[0], :] = dt_row
            assignments[key[0], key[1]] = tokens

        def kernel(block, kctx):
            keys = kctx.cache.get("keys")
            if keys is None:
                kctx.cache["keys"] = keys = [key for key, _count in block]
            dtd, wtd = doc_topic.values, word_topic.values
            tsd = topic_sum.values
            topic_keys: list = []
            topic_vals: list = []
            word_keys: list = []
            word_vals: list = []
            for doc, word in keys:
                tokens = assignments.get((doc, word))
                # Doc rows are block-owned (1D over docs): mutate in place.
                # Word rows update through word_buf, so the local copy stays.
                dt_row = dtd[doc]
                wt_row = wtd[word, :].copy()
                totals = tsd.copy()
                probs = None
                for position in range(len(tokens)):
                    old = int(tokens[position])
                    dt_row[old] -= 1.0
                    wt_row[old] -= 1.0
                    totals[old] -= 1.0
                    if probs is None:
                        probs = np.maximum(
                            (dt_row + alpha)
                            * (wt_row + beta)
                            / (totals + vbeta),
                            0.0,
                        )
                    else:
                        p = (
                            (dt_row[old] + alpha)
                            * (wt_row[old] + beta)
                            / (totals[old] + vbeta)
                        )
                        probs[old] = p if p > 0.0 else 0.0
                    scale = probs.sum()
                    if scale <= 0.0:
                        new = old
                    else:
                        new = int(
                            np.searchsorted(
                                np.cumsum(probs), rng.random() * scale
                            )
                        )
                        new = min(new, len(probs) - 1)
                    dt_row[new] += 1.0
                    wt_row[new] += 1.0
                    totals[new] += 1.0
                    p = (
                        (dt_row[new] + alpha)
                        * (wt_row[new] + beta)
                        / (totals[new] + vbeta)
                    )
                    probs[new] = p if p > 0.0 else 0.0
                    if new != old:
                        topic_keys.append(old)
                        topic_vals.append(-1.0)
                        topic_keys.append(new)
                        topic_vals.append(1.0)
                        word_keys.append((word, old))
                        word_vals.append(-1.0)
                        word_keys.append((word, new))
                        word_vals.append(1.0)
                    tokens[position] = new
            kctx.buffer_add(topic_buf, topic_keys, topic_vals)
            kctx.buffer_add(word_buf, word_keys, word_vals)
            docs = [key[0] for key in keys]
            words = [key[1] for key in keys]
            kctx.account_point_reads(assignments, keys)
            kctx.account_row_reads(doc_topic, docs)
            kctx.account_row_reads(word_topic, words)
            kctx.account_full_reads(topic_sum, len(keys))
            kctx.account_row_writes(doc_topic, docs)
            kctx.account_point_writes(assignments, keys)

    kernel_opt = loop_opts.pop(
        "kernel", resolve_kernel_option(use_kernel, kernel)
    )
    opts = resolve_loop_options(loop_opts)
    loop = ctx.parallel_for(
        corpus,
        options=opts.merged_with(ordered=ordered, kernel=kernel_opt),
    )(body)

    def loss_fn() -> float:
        return -lda_log_likelihood(
            doc_topic.values, word_topic.values, dataset.entries, alpha, beta
        )

    name = label or "Orion LDA"
    return OrionProgram(
        label=name,
        ctx=ctx,
        epoch_fn=lambda: loop.run(),
        loss_fn=loss_fn,
        train_loop=loop,
        arrays={
            "corpus": corpus,
            "doc_topic": doc_topic,
            "word_topic": word_topic,
            "topic_sum": topic_sum,
            "assignments": assignments,
        },
        meta={"hyper": hyper},
    )


class LDAApp(SerialApp):
    """Numpy form of collapsed Gibbs LDA for the baseline engines.

    Topic assignments are entry-private (each entry is processed by exactly
    one worker per pass), so they live on the app; the count matrices are
    the shared state engines replicate and merge — additive count deltas,
    i.e. the classic approximate distributed LDA.
    """

    def __init__(
        self,
        dataset: CorpusDataset,
        hyper: LDAHyper = LDAHyper(),
        seed: int = 0,
    ) -> None:
        self.dataset = dataset
        self.hyper = hyper
        self.name = "lda"
        self.entry_cost_factor = 1.5 * hyper.num_topics / 10.0
        self._assignments, self._dt0, self._wt0, self._ts0 = _initial_assignments(
            dataset, hyper.num_topics, seed
        )
        self._rng = np.random.default_rng(seed + 1)

    def init_state(self, seed: int = 0) -> Dict[str, np.ndarray]:
        # Assignments are reset too so repeated runs start identically.
        self._assignments, self._dt0, self._wt0, self._ts0 = _initial_assignments(
            self.dataset, self.hyper.num_topics, seed
        )
        self._rng = np.random.default_rng(seed + 1)
        return {
            "doc_topic": self._dt0.copy(),
            "word_topic": self._wt0.copy(),
            "topic_sum": self._ts0.copy(),
        }

    def apply_entry(self, state: Dict[str, np.ndarray], key, value) -> None:
        doc, word = key
        tokens = self._assignments[(doc, word)]
        dt = state["doc_topic"]
        wt = state["word_topic"]
        ts = state["topic_sum"]
        alpha, beta = self.hyper.alpha, self.hyper.beta
        vbeta = beta * self.dataset.vocab_size
        for position in range(len(tokens)):
            old = int(tokens[position])
            dt[doc, old] -= 1.0
            wt[word, old] -= 1.0
            ts[old] -= 1.0
            probs = (dt[doc] + alpha) * (wt[word] + beta) / np.maximum(ts + vbeta, 1e-9)
            probs = np.maximum(probs, 0.0)
            scale = probs.sum()
            if scale <= 0.0:
                new = old
            else:
                new = int(
                    np.searchsorted(np.cumsum(probs), self._rng.random() * scale)
                )
                new = min(new, len(probs) - 1)
            dt[doc, new] += 1.0
            wt[word, new] += 1.0
            ts[new] += 1.0
            tokens[position] = new

    def loss(self, state: Dict[str, np.ndarray]) -> float:
        return -lda_log_likelihood(
            state["doc_topic"],
            state["word_topic"],
            self.dataset.entries,
            self.hyper.alpha,
            self.hyper.beta,
        )

    def entries(self) -> List[Entry]:
        return self.dataset.entries
