"""Neural-network training via buffered data parallelism (paper Sec. 3.2).

"DNNs commonly read and update all weights in each iteration, therefore
serializable parallelization over mini-batches is not applicable.  DNN
training is most commonly parallelized with data parallelism, which can be
achieved in Orion by permitting dependence violation" — i.e. by routing the
dense weight updates through DistArray Buffers.

This module trains a one-hidden-layer MLP classifier.  Every weight matrix
is read with full-slice subscripts (dense access) and updated through a
buffer, so static analysis finds no preserved dependence and the loop runs
as 1D data parallelism — exactly the paper's prescription for neural
networks.  The weight DistArrays are 2-D; buffer writes address whole rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.api import OrionContext
from repro.apps.base import (
    Entry,
    OrionProgram,
    SerialApp,
    resolve_kernel_option,
    resolve_loop_options,
)
from repro.runtime.cluster import ClusterSpec
from repro.runtime.simtime import CostModel

__all__ = ["MLPHyper", "MLPApp", "build_orion_program", "mlp_cost_model", "make_blobs"]


@dataclass(frozen=True)
class MLPHyper:
    """One-hidden-layer MLP hyperparameters.

    ``max_delay`` bounds how many samples a worker may process before its
    buffered gradients are applied — the paper's Sec. 3.3 staleness bound.
    Unbounded buffering of dense gradients diverges at practical step
    sizes, which is exactly why the bound exists.
    """

    hidden_units: int = 16
    step_size: float = 0.05
    init_scale: float = 0.5
    max_delay: int = 8


def make_blobs(
    num_samples: int = 600,
    num_features: int = 6,
    num_classes: int = 3,
    spread: float = 0.6,
    seed: int = 0,
) -> List[Entry]:
    """A Gaussian-blobs classification set, one entry per sample:
    ``(sample,) -> (features, class_id)``."""
    rng = np.random.default_rng(seed)
    centers = rng.standard_normal((num_classes, num_features)) * 2.0
    entries: List[Entry] = []
    for i in range(num_samples):
        label = int(rng.integers(0, num_classes))
        x = centers[label] + spread * rng.standard_normal(num_features)
        entries.append(((i,), (x, label)))
    return entries


def mlp_cost_model(
    hyper: MLPHyper, num_features: int, base_entry_cost: float = 1e-6
) -> CostModel:
    """Per-sample cost: two dense matmuls, forward and backward."""
    flops = hyper.hidden_units * (num_features + 4)
    return CostModel(entry_cost_s=base_entry_cost * flops / 64.0)


def _softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max()
    exp = np.exp(shifted)
    return exp / exp.sum()


def _forward_backward(
    x: np.ndarray,
    label: int,
    W1: np.ndarray,
    b1: np.ndarray,
    W2: np.ndarray,
    b2: np.ndarray,
) -> Tuple[float, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """One sample's loss and gradients for the 1-hidden-layer MLP."""
    hidden_pre = W1 @ x + b1
    hidden = np.tanh(hidden_pre)
    logits = W2 @ hidden + b2
    probs = _softmax(logits)
    loss = -float(np.log(max(probs[label], 1e-12)))
    dlogits = probs.copy()
    dlogits[label] -= 1.0
    grad_W2 = np.outer(dlogits, hidden)
    grad_b2 = dlogits
    dhidden = (W2.T @ dlogits) * (1.0 - hidden * hidden)
    grad_W1 = np.outer(dhidden, x)
    grad_b1 = dhidden
    return loss, grad_W1, grad_b1, grad_W2, grad_b2


def build_orion_program(
    entries: List[Entry],
    num_features: int,
    num_classes: int,
    cluster: Optional[ClusterSpec] = None,
    hyper: MLPHyper = MLPHyper(),
    seed: int = 0,
    label: Optional[str] = None,
    use_kernel: Any = True,
    **loop_opts,
) -> OrionProgram:
    """Build the MLP Orion program (dense access; buffered data parallelism).

    The loop body reads each weight matrix with full slices — dense access
    that forbids serializable parallelization — and sends gradient updates
    through per-matrix buffers, so the analyzer selects 1D data
    parallelism, as the paper prescribes for neural networks.

    MLP has no hand kernel; ``use_kernel=True`` attempts synthesis
    (``kernel="auto"``).  The body folds its loss into an accumulator, so
    synthesis currently falls back to the scalar interpreter with a W501
    diagnostic — the flag documents the intent and keeps the builder
    uniform with the other apps.
    """
    cluster = cluster or ClusterSpec(num_machines=1, workers_per_machine=4)
    ctx = OrionContext(cluster=cluster, seed=seed)
    samples = ctx.from_entries(entries, name="samples", shape=(len(entries),))
    ctx.materialize(samples)
    H = hyper.hidden_units
    W1 = ctx.randn(H, num_features, name="W1", scale=hyper.init_scale)
    B1 = ctx.zeros(H, name="B1")
    W2 = ctx.randn(num_classes, H, name="W2", scale=hyper.init_scale)
    B2 = ctx.zeros(num_classes, name="B2")
    ctx.materialize(W1, B1, W2, B2)

    delay = hyper.max_delay
    w1_buf = ctx.dist_array_buffer(W1, name="w1_buf", max_delay=delay)
    b1_buf = ctx.dist_array_buffer(B1, name="b1_buf", max_delay=delay)
    w2_buf = ctx.dist_array_buffer(W2, name="w2_buf", max_delay=delay)
    b2_buf = ctx.dist_array_buffer(B2, name="b2_buf", max_delay=delay)
    step = hyper.step_size
    train_loss = ctx.accumulator("train_loss", 0.0)

    def body(key, sample):
        x, target = sample
        w1 = W1[:, :]
        b1 = B1[:]
        w2 = W2[:, :]
        b2 = B2[:]
        loss, g_w1, g_b1, g_w2, g_b2 = _forward_backward(
            x, target, w1, b1, w2, b2
        )
        train_loss.add(loss)
        # Dense updates: whole weight tensors go through buffers, the
        # paper's recipe for data-parallel DNN training.
        w1_buf[:, :] = -step * g_w1
        b1_buf[:] = -step * g_b1
        w2_buf[:, :] = -step * g_w2
        b2_buf[:] = -step * g_b2

    kernel_opt = loop_opts.pop("kernel", resolve_kernel_option(use_kernel))
    opts = resolve_loop_options(loop_opts).merged_with(kernel=kernel_opt)
    loop = ctx.parallel_for(samples, options=opts)(body)

    def loss_fn() -> float:
        total = 0.0
        for _key, (x, target) in entries:
            loss, *_ = _forward_backward(
                x, target, W1.values, B1.values, W2.values, B2.values
            )
            total += loss
        return total / max(1, len(entries))

    return OrionProgram(
        label=label or "Orion MLP (data parallel)",
        ctx=ctx,
        epoch_fn=lambda: loop.run(),
        loss_fn=loss_fn,
        train_loop=loop,
        arrays={"W1": W1, "B1": B1, "W2": W2, "B2": B2},
        meta={"hyper": hyper},
    )


class MLPApp(SerialApp):
    """Numpy form of the MLP for the baseline engines."""

    def __init__(
        self,
        entries: List[Entry],
        num_features: int,
        num_classes: int,
        hyper: MLPHyper = MLPHyper(),
    ) -> None:
        self._entries = entries
        self.num_features = num_features
        self.num_classes = num_classes
        self.hyper = hyper
        self.name = "mlp"
        self.entry_cost_factor = hyper.hidden_units / 16.0

    def init_state(self, seed: int = 0) -> Dict[str, np.ndarray]:
        rng = np.random.default_rng(seed)
        H = self.hyper.hidden_units
        scale = self.hyper.init_scale
        return {
            "W1": rng.standard_normal((H, self.num_features)) * scale,
            "B1": np.zeros(H),
            "W2": rng.standard_normal((self.num_classes, H)) * scale,
            "B2": np.zeros(self.num_classes),
        }

    def apply_entry(self, state: Dict[str, np.ndarray], key, value) -> None:
        x, target = value
        _loss, g_w1, g_b1, g_w2, g_b2 = _forward_backward(
            x, target, state["W1"], state["B1"], state["W2"], state["B2"]
        )
        step = self.hyper.step_size
        state["W1"] -= step * g_w1
        state["B1"] -= step * g_b1
        state["W2"] -= step * g_w2
        state["B2"] -= step * g_b2

    def loss(self, state: Dict[str, np.ndarray]) -> float:
        total = 0.0
        for _key, (x, target) in self._entries:
            sample_loss, *_ = _forward_backward(
                x, target, state["W1"], state["B1"], state["W2"], state["B2"]
            )
            total += sample_loss
        return total / max(1, len(self._entries))

    def accuracy(self, state: Dict[str, np.ndarray]) -> float:
        """Fraction of training samples classified correctly."""
        correct = 0
        for _key, (x, target) in self._entries:
            hidden = np.tanh(state["W1"] @ x + state["B1"])
            logits = state["W2"] @ hidden + state["B2"]
            correct += int(np.argmax(logits) == target)
        return correct / max(1, len(self._entries))

    def entries(self) -> List[Entry]:
        return self._entries
