"""Tests for executor traffic accounting and placement-driven costs."""

import numpy as np
import pytest

from repro.analysis.loop_info import analyze_loop_body
from repro.analysis.strategy import PlacementKind, Strategy, choose_plan
from repro.core.distarray import DistArray
from repro.runtime.cluster import ClusterSpec
from repro.runtime.executor import OrionExecutor
from repro.runtime.network import NetworkModel
from repro.runtime.simtime import CostModel


def _cluster(**kwargs):
    defaults = dict(
        num_machines=2,
        workers_per_machine=2,
        network=NetworkModel(bandwidth_bytes_per_s=1e8, latency_s=1e-4),
        cost=CostModel(entry_cost_s=1e-6),
    )
    defaults.update(kwargs)
    return ClusterSpec(**defaults)


def _mf_executor(cluster):
    entries = [
        ((i, j), 1.0) for i in range(12) for j in range(10) if (i + j) % 2
    ]
    ratings = DistArray.from_entries(
        entries, name="tr_ratings", shape=(12, 10)
    ).materialize()
    W = DistArray.randn(3, 12, name="tr_W", seed=1).materialize()
    H = DistArray.randn(3, 10, name="tr_H", seed=2).materialize()

    def body(key, value):
        w = W[:, key[0]]
        h = H[:, key[1]]
        W[:, key[0]] = w * 0.99
        H[:, key[1]] = h * 0.99

    info = analyze_loop_body(body, ratings)
    plan = choose_plan(info)
    return OrionExecutor(body, info, plan, cluster)


class TestTrafficEvents:
    def test_events_within_epoch_horizon(self):
        executor = _mf_executor(_cluster())
        result = executor.run_epoch()
        for t_start, t_end, nbytes, _kind in result.events:
            assert t_start >= 0.0
            assert t_end >= t_start
            assert nbytes > 0
            # Events may extend slightly past the makespan (the final
            # rotation completes after the last block) but not wildly.
            assert t_end <= result.epoch_time_s * 2 + 1e-6

    def test_bytes_sum_matches_events(self):
        executor = _mf_executor(_cluster())
        result = executor.run_epoch()
        assert result.bytes_sent == pytest.approx(
            sum(event[2] for event in result.events)
        )

    def test_rotation_bytes_match_array_size(self):
        executor = _mf_executor(_cluster())
        result = executor.run_epoch()
        rotation = sum(b for _s, _e, b, k in result.events if k == "rotation")
        rotated_total = executor._rotated_bytes
        # Every block rotates once per step per worker: total rotation
        # traffic is (blocks) x (block bytes) = workers x num_time x bytes/T.
        expected = (
            executor.num_workers
            * executor.num_time
            * executor.rotated_block_bytes
        )
        assert rotation == pytest.approx(expected)
        assert rotated_total > 0

    def test_epoch_time_stable_across_epochs(self):
        executor = _mf_executor(_cluster())
        first = executor.run_epoch().epoch_time_s
        second = executor.run_epoch().epoch_time_s
        assert second == pytest.approx(first, rel=1e-6)


class TestReplicatedBroadcast:
    def test_read_only_array_broadcast_once_per_epoch(self):
        space = DistArray.from_entries(
            [((i,), float(i)) for i in range(16)], name="tr_sp", shape=(16,)
        ).materialize()
        out = DistArray.zeros(16, name="tr_out").materialize()
        table = DistArray.randn(20, 20, name="tr_table", seed=3).materialize()

        def body(key, value):
            out[key[0]] = table[0, 1] + value

        info = analyze_loop_body(body, space)
        plan = choose_plan(info)
        assert plan.placements["table"].kind is PlacementKind.REPLICATED
        executor = OrionExecutor(body, info, plan, _cluster())
        result = executor.run_epoch()
        broadcast = [e for e in result.events if e[3] == "broadcast"]
        assert len(broadcast) == 1
        assert broadcast[0][2] == pytest.approx(
            table.nbytes * _cluster().num_machines
        )


class TestHeuristicAmongCandidates:
    def test_one_d_candidate_minimizing_comm_wins(self):
        # Both dims are 1D candidates (separate arrays pinned per dim); the
        # heuristic must pick the dim that localizes the *larger* array.
        space = DistArray.from_entries(
            [((i, j), 1.0) for i in range(8) for j in range(8)],
            name="tr_sp2", shape=(8, 8),
        ).materialize()
        big = DistArray.randn(16, 8, name="tr_big", seed=4).materialize()
        small = DistArray.randn(2, 8, name="tr_small", seed=5).materialize()

        def body(key, value):
            value2 = big[0, key[0]] + small[0, key[1]]
            return value2

        info = analyze_loop_body(body, space)
        plan = choose_plan(info)
        # Read-only arrays replicate regardless; force writes to create the
        # placement pressure instead:

        def body_writes(key, value):
            big[0, key[0]] = big[0, key[0]] * 0.9
            small[0, key[1]] = small[0, key[1]] * 0.9

        info = analyze_loop_body(body_writes, space)
        plan = choose_plan(info)
        assert plan.strategy is Strategy.TWO_D
        # The larger array (big, pinned by dim 0) should be LOCAL.
        assert plan.placements["big"].kind is PlacementKind.LOCAL
        assert plan.placements["small"].kind is PlacementKind.ROTATED

    def test_extent_tiebreak_for_identical_costs(self):
        # Two 1D candidates with symmetric costs: prefer the dimension
        # with larger extent (more parallelism).
        space = DistArray.from_entries(
            [((i, j), 1.0) for i in range(4) for j in range(16)],
            name="tr_sp3", shape=(4, 16),
        ).materialize()

        def body(key, value):
            return value * 2

        info = analyze_loop_body(body, space)
        plan = choose_plan(info)
        assert plan.space_dim == 1  # extent 16 beats extent 4


class TestNumTimeClamping:
    def test_time_extent_smaller_than_workers(self):
        # 3-column iteration space, 4 workers: unordered rotation clamps
        # worker count so every step still has distinct time indices.
        entries = [((i, j), 1.0) for i in range(12) for j in range(3)]
        space = DistArray.from_entries(
            entries, name="tr_sp4", shape=(12, 3)
        ).materialize()
        A = DistArray.randn(2, 12, name="tr_A", seed=6).materialize()
        B = DistArray.randn(2, 3, name="tr_B", seed=7).materialize()

        def body(key, value):
            A[:, key[0]] = A[:, key[0]] * 0.9
            B[:, key[1]] = B[:, key[1]] * 0.9

        info = analyze_loop_body(body, space)
        plan = choose_plan(info)
        executor = OrionExecutor(
            body, info, plan, _cluster(), validate=True
        )
        assert executor.num_workers <= 3
        executor.run_epoch()


class TestUtilization:
    def test_utilization_in_unit_interval(self):
        executor = _mf_executor(_cluster())
        result = executor.run_epoch()
        assert 0.0 < result.utilization <= 1.0

    def test_more_workers_lower_utilization_at_fixed_size(self):
        few = _mf_executor(
            ClusterSpec(
                num_machines=1,
                workers_per_machine=2,
                network=NetworkModel(bandwidth_bytes_per_s=1e8, latency_s=1e-4),
                cost=CostModel(entry_cost_s=1e-6),
            )
        ).run_epoch()
        many = _mf_executor(
            ClusterSpec(
                num_machines=5,
                workers_per_machine=2,
                network=NetworkModel(bandwidth_bytes_per_s=1e8, latency_s=1e-4),
                cost=CostModel(entry_cost_s=1e-6),
            )
        ).run_epoch()
        # Strong scaling on a fixed tiny workload: per-worker efficiency
        # drops as overheads stop amortizing.
        assert many.utilization < few.utilization
