"""SGD matrix factorization (paper Alg. 1, Fig. 5; Table 2 rows 1-2).

Factorizes a sparse rating matrix ``V ≈ Wᵀ H`` by stochastic gradient
descent on the nonzero squared loss, optionally with Adaptive Revision
(AdaGrad-style adaptive step sizes).  The Orion form is the paper's
Fig. 5 program: iterating the ratings DistArray with factor-column reads
and writes ``W[:, key[0]]`` / ``H[:, key[1]]``, which static analysis
parallelizes as *2D unordered* with one factor matrix pinned and the other
rotated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.api import OrionContext
from repro.apps.base import (
    Entry,
    OrionProgram,
    SerialApp,
    resolve_kernel_option,
    resolve_loop_options,
)
from repro.data.synthetic import MFDataset
from repro.runtime.cluster import ClusterSpec
from repro.runtime.kernels import conflict_free_groups
from repro.runtime.simtime import CostModel

__all__ = ["MFHyper", "SGDMFApp", "build_orion_program", "mf_cost_model", "nzsl"]

try:
    _vecdot = np.vecdot
except AttributeError:  # numpy < 2: row-wise dots, same strided operands

    def _vecdot(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return np.array([x @ y for x, y in zip(a, b)])


@dataclass(frozen=True)
class MFHyper:
    """Hyperparameters for SGD MF.

    ``adarev`` switches the update to adaptive revision (AdaGrad-style
    per-coordinate step sizes; identical to AdaGrad under serializable
    execution — see :mod:`repro.apps.optimizers`).
    """

    rank: int = 8
    step_size: float = 0.05
    adarev: bool = False
    adarev_step: float = 0.3
    epsilon: float = 1e-8
    init_scale: float = 0.1


def nzsl(
    W: np.ndarray,
    H: np.ndarray,
    rows: np.ndarray,
    cols: np.ndarray,
    values: np.ndarray,
) -> float:
    """Nonzero squared loss over the observed entries (paper's L_NZSL)."""
    predictions = np.einsum("ki,ki->i", W[:, rows], H[:, cols])
    residual = values - predictions
    return float(residual @ residual)


def _index_arrays(entries: List[Entry]) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    rows = np.array([key[0] for key, _v in entries], dtype=np.int64)
    cols = np.array([key[1] for key, _v in entries], dtype=np.int64)
    values = np.array([v for _k, v in entries], dtype=np.float64)
    return rows, cols, values


def mf_cost_model(hyper: MFHyper, base_entry_cost: float = 1e-6) -> CostModel:
    """Per-entry compute cost: linear in rank, ~2.8× with AdaRev.

    The AdaRev factor matches the paper's Table 3 throughput ratio between
    SGD MF and SGD MF AdaRev.
    """
    factor = hyper.rank / 8.0
    if hyper.adarev:
        factor *= 2.8
    return CostModel(entry_cost_s=base_entry_cost * factor)


def _block_prep(block, kctx):
    """Index arrays + conflict-free groups for one block, cached per block."""
    prep = kctx.cache.get("prep")
    if prep is None:
        rows, cols, values = _index_arrays(block)
        groups = conflict_free_groups(rows.tolist(), cols.tolist())
        kctx.cache["prep"] = prep = (rows, cols, values, groups)
    return prep


def build_orion_program(
    dataset: MFDataset,
    cluster: Optional[ClusterSpec] = None,
    hyper: MFHyper = MFHyper(),
    ordered: bool = False,
    eval_with_loop: bool = False,
    seed: int = 0,
    label: Optional[str] = None,
    use_kernel: Any = True,
    **loop_opts,
) -> OrionProgram:
    """Build the paper's Fig. 5 program against the real Orion API.

    The loop body below is what static analysis sees; the chosen plan is
    2D (space = rows, time = cols) unordered unless ``ordered=True``.

    With ``eval_with_loop=True`` the training loss is measured the way
    Fig. 5 does — a *second* parallel for-loop over the ratings folding
    squared errors into an accumulator (lines 21-26 of the paper's
    listing) — instead of a driver-side vectorized computation.  The
    evaluation loop is read-only, so the analyzer parallelizes it 1D.

    ``use_kernel`` registers a batched block kernel that produces
    bit-identical factors and accounting to the per-entry body (vectorized
    elementwise updates over conflict-free entry groups; dot products stay
    in the body's exact strided-view form).  Pass ``False`` to force the
    scalar path everywhere.
    """
    cluster = cluster or ClusterSpec(num_machines=1, workers_per_machine=4)
    ctx = OrionContext(cluster=cluster, seed=seed)
    ratings = ctx.from_entries(dataset.entries, name="ratings", shape=dataset.shape)
    ctx.materialize(ratings)
    K = hyper.rank
    W = ctx.randn(K, dataset.num_rows, name="W", scale=hyper.init_scale)
    H = ctx.randn(K, dataset.num_cols, name="H", scale=hyper.init_scale)
    ctx.materialize(W, H)
    step_size = hyper.step_size

    if hyper.adarev:
        # AdaRevision state per parameter: z (sum of applied gradients, used
        # for the delay correction g_bck = z_now - z_read; identically zero
        # under serializable execution) and z² (the adapted accumulator).
        # Maintaining z is what makes the same program delay-tolerant when a
        # data-parallel engine runs it — and it is extra rotated state, the
        # reason AdaRev's communication exceeds plain SGD MF's (Table 3).
        Wn2 = ctx.full((K, dataset.num_rows), hyper.epsilon, name="Wn2")
        Hn2 = ctx.full((K, dataset.num_cols), hyper.epsilon, name="Hn2")
        Wz = ctx.zeros(K, dataset.num_rows, name="Wz")
        Hz = ctx.zeros(K, dataset.num_cols, name="Hz")
        ctx.materialize(Wn2, Hn2, Wz, Hz)
        ada_step = hyper.adarev_step

        def body(key, rating):
            w_col = W[:, key[0]]
            h_col = H[:, key[1]]
            pred = w_col @ h_col
            diff = rating - pred
            w_grad = -2.0 * diff * h_col
            h_grad = -2.0 * diff * w_col
            wn2 = Wn2[:, key[0]] + w_grad * w_grad
            hn2 = Hn2[:, key[1]] + h_grad * h_grad
            Wn2[:, key[0]] = wn2
            Hn2[:, key[1]] = hn2
            Wz[:, key[0]] = Wz[:, key[0]] + w_grad
            Hz[:, key[1]] = Hz[:, key[1]] + h_grad
            W[:, key[0]] = w_col - ada_step * w_grad / np.sqrt(wn2)
            H[:, key[1]] = h_col - ada_step * h_grad / np.sqrt(hn2)

        def kernel(block, kctx):
            rows, cols, values, groups = _block_prep(block, kctx)
            Wd, Hd = W.values, H.values
            Wn2d, Hn2d = Wn2.values, Hn2.values
            Wzd, Hzd = Wz.values, Hz.values
            for lo, hi in groups:
                if hi - lo == 1:
                    # Single-entry group: replay the body exactly (the
                    # batched dot below needs ≥ 2 columns to keep the
                    # strided reduction path).
                    i, j = rows[lo], cols[lo]
                    w_col, h_col = Wd[:, i], Hd[:, j]
                    diff = values[lo] - w_col @ h_col
                    w_grad = -2.0 * diff * h_col
                    h_grad = -2.0 * diff * w_col
                    wn2 = Wn2d[:, i] + w_grad * w_grad
                    hn2 = Hn2d[:, j] + h_grad * h_grad
                    Wn2d[:, i] = wn2
                    Hn2d[:, j] = hn2
                    Wzd[:, i] = Wzd[:, i] + w_grad
                    Hzd[:, j] = Hzd[:, j] + h_grad
                    Wd[:, i] = w_col - ada_step * w_grad / np.sqrt(wn2)
                    Hd[:, j] = h_col - ada_step * h_grad / np.sqrt(hn2)
                    continue
                r, c = rows[lo:hi], cols[lo:hi]
                W_g = Wd.take(r, axis=1)
                H_g = Hd.take(c, axis=1)
                # One batched dot per group.  The transposed rows of a
                # C-ordered gather are strided vectors, which keeps vecdot
                # on the same sequential reduction the body's strided
                # ``w_col @ h_col`` uses — bit-identical predictions.
                preds = _vecdot(W_g.T, H_g.T)
                coeff = -2.0 * (values[lo:hi] - preds)
                w_grads = coeff * H_g
                h_grads = coeff * W_g
                wn2 = Wn2d.take(r, axis=1) + w_grads * w_grads
                hn2 = Hn2d.take(c, axis=1) + h_grads * h_grads
                Wn2d[:, r] = wn2
                Hn2d[:, c] = hn2
                Wzd[:, r] = Wzd.take(r, axis=1) + w_grads
                Hzd[:, c] = Hzd.take(c, axis=1) + h_grads
                Wd[:, r] = W_g - ada_step * w_grads / np.sqrt(wn2)
                Hd[:, c] = H_g - ada_step * h_grads / np.sqrt(hn2)
            for array in (W, Wn2, Wz):
                kctx.account_col_reads(array, rows)
                kctx.account_col_writes(array, rows)
            for array in (H, Hn2, Hz):
                kctx.account_col_reads(array, cols)
                kctx.account_col_writes(array, cols)
    else:

        def body(key, rating):
            w_col = W[:, key[0]]
            h_col = H[:, key[1]]
            pred = w_col @ h_col
            diff = rating - pred
            W[:, key[0]] = w_col + step_size * 2.0 * diff * h_col
            H[:, key[1]] = h_col + step_size * 2.0 * diff * w_col

        scale = step_size * 2.0

        def kernel(block, kctx):
            rows, cols, values, groups = _block_prep(block, kctx)
            Wd, Hd = W.values, H.values
            for lo, hi in groups:
                if hi - lo == 1:
                    # Single-entry group: replay the body exactly (the
                    # batched dot below needs ≥ 2 columns to keep the
                    # strided reduction path).
                    i, j = rows[lo], cols[lo]
                    w_col, h_col = Wd[:, i], Hd[:, j]
                    coeff = scale * (values[lo] - w_col @ h_col)
                    w_new = w_col + coeff * h_col
                    Wd[:, i] = w_new
                    # The body writes W first, so its H update reads the
                    # already-updated W column.
                    Hd[:, j] = h_col + coeff * w_new
                    continue
                r, c = rows[lo:hi], cols[lo:hi]
                W_g = Wd.take(r, axis=1)
                H_g = Hd.take(c, axis=1)
                # One batched dot per group.  The transposed rows of a
                # C-ordered gather are strided vectors, which keeps vecdot
                # on the same sequential reduction the body's strided
                # ``w_col @ h_col`` uses — bit-identical predictions.
                preds = _vecdot(W_g.T, H_g.T)
                coeff = scale * (values[lo:hi] - preds)
                W_new = W_g + coeff * H_g
                # The body writes W first, so its H update reads the
                # already-updated W column.
                Hd[:, c] = H_g + coeff * W_new
                Wd[:, r] = W_new
            kctx.account_col_reads(W, rows)
            kctx.account_col_writes(W, rows)
            kctx.account_col_reads(H, cols)
            kctx.account_col_writes(H, cols)

    kernel_opt = loop_opts.pop(
        "kernel", resolve_kernel_option(use_kernel, kernel)
    )
    base_opts = resolve_loop_options(loop_opts)
    loop = ctx.parallel_for(
        ratings,
        options=base_opts.merged_with(ordered=ordered, kernel=kernel_opt),
    )(body)
    rows, cols, values = _index_arrays(dataset.entries)

    if eval_with_loop:
        err = ctx.accumulator("err", 0.0)

        def eval_body(key, rating):
            prediction = W[:, key[0]] @ H[:, key[1]]
            err.add((rating - prediction) ** 2)

        eval_loop = ctx.parallel_for(ratings, options=base_opts)(eval_body)

        def loss_fn() -> float:
            ctx.reset_accumulator("err")
            eval_loop.run()
            return float(ctx.get_aggregated_value("err"))
    else:
        eval_loop = None

        def loss_fn() -> float:
            return nzsl(W.values, H.values, rows, cols, values)

    name = label or ("Orion SGD MF AdaRev" if hyper.adarev else "Orion SGD MF")
    arrays = {"ratings": ratings, "W": W, "H": H}
    return OrionProgram(
        label=name,
        ctx=ctx,
        epoch_fn=lambda: loop.run(),
        loss_fn=loss_fn,
        train_loop=loop,
        arrays=arrays,
        meta={"hyper": hyper, "eval_loop": eval_loop},
    )


class SGDMFApp(SerialApp):
    """Numpy form of SGD MF for the baseline engines."""

    def __init__(self, dataset: MFDataset, hyper: MFHyper = MFHyper()) -> None:
        self.dataset = dataset
        self.hyper = hyper
        self.name = "sgd_mf_adarev" if hyper.adarev else "sgd_mf"
        self.entry_cost_factor = (hyper.rank / 8.0) * (2.8 if hyper.adarev else 1.0)
        self._rows, self._cols, self._values = _index_arrays(dataset.entries)

    def init_state(self, seed: int = 0) -> Dict[str, np.ndarray]:
        rng = np.random.default_rng(seed)
        K = self.hyper.rank
        state = {
            "W": rng.standard_normal((K, self.dataset.num_rows))
            * self.hyper.init_scale,
            "H": rng.standard_normal((K, self.dataset.num_cols))
            * self.hyper.init_scale,
        }
        if self.hyper.adarev:
            state["Wn2"] = np.full((K, self.dataset.num_rows), self.hyper.epsilon)
            state["Hn2"] = np.full((K, self.dataset.num_cols), self.hyper.epsilon)
        return state

    def apply_entry(self, state: Dict[str, np.ndarray], key, value) -> None:
        i, j = key
        W, H = state["W"], state["H"]
        w_col = W[:, i].copy()
        h_col = H[:, j].copy()
        diff = value - w_col @ h_col
        if self.hyper.adarev:
            w_grad = -2.0 * diff * h_col
            h_grad = -2.0 * diff * w_col
            state["Wn2"][:, i] += w_grad * w_grad
            state["Hn2"][:, j] += h_grad * h_grad
            W[:, i] = w_col - self.hyper.adarev_step * w_grad / np.sqrt(
                state["Wn2"][:, i]
            )
            H[:, j] = h_col - self.hyper.adarev_step * h_grad / np.sqrt(
                state["Hn2"][:, j]
            )
        else:
            W[:, i] = w_col + self.hyper.step_size * 2.0 * diff * h_col
            H[:, j] = h_col + self.hyper.step_size * 2.0 * diff * w_col

    def batch_gradient(
        self, state: Dict[str, np.ndarray], batch: List[Entry]
    ) -> Tuple[Dict[str, np.ndarray], Dict[str, np.ndarray]]:
        """Gradient of the batch loss at fixed ``state``, plus per-column
        touch counts (TensorFlow-style mini-batch engines apply the
        touch-normalized gradient once per batch)."""
        W, H = state["W"], state["H"]
        grad_W = np.zeros_like(W)
        grad_H = np.zeros_like(H)
        count_W = np.zeros(W.shape[1])
        count_H = np.zeros(H.shape[1])
        for (i, j), value in batch:
            diff = value - W[:, i] @ H[:, j]
            grad_W[:, i] += -2.0 * diff * H[:, j]
            grad_H[:, j] += -2.0 * diff * W[:, i]
            count_W[i] += 1
            count_H[j] += 1
        counts = {
            "W": np.maximum(count_W, 1.0)[None, :],
            "H": np.maximum(count_H, 1.0)[None, :],
        }
        return {"W": grad_W, "H": grad_H}, counts

    def loss(self, state: Dict[str, np.ndarray]) -> float:
        return nzsl(state["W"], state["H"], self._rows, self._cols, self._values)

    def entries(self) -> List[Entry]:
        return self.dataset.entries
