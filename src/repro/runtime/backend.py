"""Pluggable execution backends for compiled parallel loops.

One compiled plan — analysis, placements, partitions, schedule — can run
on any of three backends, selected with ``parallel_for(...,
backend=...)`` or ``--backend`` on the CLI (the executor/provider split
Parsl popularized, applied to Orion's plans):

``simulated``
    The deterministic virtual-clock linearization
    (:class:`~repro.runtime.executor.OrionExecutor`).  The oracle: every
    other backend's dependence-preserving runs are compared bitwise
    against it.
``threaded``
    The same executor with each schedule step's blocks on a thread pool
    (``concurrency="threads"``) — real in-process concurrency, still on
    the virtual clock.
``multiprocess``
    Forked OS processes over shared-memory partitions
    (:class:`~repro.runtime.distributed.MultiprocessRunner`): real
    wall-clock epoch times (``EpochResult.clock == "real"``), worker-side
    kernels, direct token-based rotation.

Each backend exposes the same two methods, so
:class:`~repro.api.ParallelLoop` drives them interchangeably.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Tuple

from repro.errors import ExecutionError
from repro.runtime.executor import EpochResult

if TYPE_CHECKING:
    from repro.api import ParallelLoop

__all__ = [
    "BACKENDS",
    "Backend",
    "SimulatedBackend",
    "ThreadedBackend",
    "MultiprocessBackend",
    "create_backend",
]

#: Valid ``LoopOptions.backend`` values, in oracle-to-real order.
BACKENDS: Tuple[str, ...] = ("simulated", "threaded", "multiprocess")


class Backend:
    """What a loop needs from its execution engine: epochs and shutdown."""

    name = "backend"

    def run_epoch(
        self, t0: float = 0.0, epoch: Optional[int] = None
    ) -> EpochResult:
        """Execute one full data pass."""
        raise NotImplementedError

    def close(self) -> None:
        """Release any resources (processes, pools, shared memory)."""

    def on_retune(self) -> None:
        """The executor's partitions/schedule changed between epochs
        (adaptive tuning).  Backends holding state derived from them must
        invalidate it here; the virtual-clock backends read the executor
        directly every epoch, so the default is a no-op."""


class SimulatedBackend(Backend):
    """The virtual-clock executor — a thin adapter, zero overhead."""

    name = "simulated"

    def __init__(self, loop: "ParallelLoop") -> None:
        self._executor = loop.executor

    def run_epoch(
        self, t0: float = 0.0, epoch: Optional[int] = None
    ) -> EpochResult:
        return self._executor.run_epoch(t0=t0, epoch=epoch)

    def close(self) -> None:
        self._executor.close()


class ThreadedBackend(SimulatedBackend):
    """The executor with ``concurrency="threads"``.

    The promotion happens at ``parallel_for`` time (the executor is built
    threaded), so mechanically this is the simulated adapter — the class
    exists so ``loop.backend.name`` reports what was asked for.
    """

    name = "threaded"


class MultiprocessBackend(Backend):
    """Real forked processes; the runner is created on first epoch."""

    name = "multiprocess"

    def __init__(self, loop: "ParallelLoop") -> None:
        self._loop = loop
        self._runner = None

    @property
    def runner(self):
        """The underlying (lazily created) MultiprocessRunner."""
        if self._runner is None:
            from repro.runtime.distributed import MultiprocessRunner

            self._runner = MultiprocessRunner(self._loop)
        return self._runner

    def run_epoch(
        self, t0: float = 0.0, epoch: Optional[int] = None
    ) -> EpochResult:
        # t0 is a virtual-clock anchor; real results carry their own clock.
        return self.runner.run_epoch_result(epoch=epoch)

    def close(self) -> None:
        if self._runner is not None:
            self._runner.close()
            self._runner = None
        self._loop.executor.close()

    def on_retune(self) -> None:
        """Forked workers snapshot the executor's partitions at
        construction, so a retune makes the runner stale: tear it down
        and let the next epoch fork a fresh one from the new tiling."""
        if self._runner is not None:
            self._runner.close()
            self._runner = None


def create_backend(loop: "ParallelLoop") -> Backend:
    """Instantiate the backend the loop's options selected."""
    backend = loop.options.backend
    if backend == "simulated":
        return SimulatedBackend(loop)
    if backend == "threaded":
        return ThreadedBackend(loop)
    if backend == "multiprocess":
        return MultiprocessBackend(loop)
    raise ExecutionError(f"unknown backend {backend!r}")
