"""A real multiprocess distributed runtime for compiled parallel loops.

The simulated executor (:mod:`repro.runtime.executor`) charges virtual time
while executing a linearization in-process.  This module runs the *same
compiled plan* on real OS processes as a performance backend:

* **Shared-memory partitions.**  Every dense DistArray the loop touches is
  rebacked onto a ``multiprocessing.shared_memory`` segment *before* the
  workers fork (:class:`SharedArrayPool`), so a partition write made by one
  process is immediately visible to every other — workers read and write
  parameters in place instead of holding forked full-object copies and
  shipping slices through the master.
* **Worker-side kernels.**  When the plan admits the PR-1 batched kernel,
  each worker runs ``kernel(block, kctx)`` against the shared arrays
  through a data-movement-only broker
  (:class:`~repro.runtime.kernels.PlainBroker`); otherwise the scalar
  interpreter body runs per entry.  Either way the per-block computation
  is exactly the simulated executor's, so dependence-preserving plans
  produce *bitwise identical* final parameters.
* **Direct worker→worker rotation.**  Because a rotated time-slice already
  lives in shared memory, handing it to the next worker needs no payload
  at all — only a happens-before edge.  Per-edge token queues carry bare
  generation counters (seqlock-style): a worker publishes "I finished
  step ``s``" and its neighbour consumes that token before touching the
  slice.  With pipeline depth > 1 a worker always holds another locally
  ready block, so the handoff overlaps its neighbour's compute — the
  paper's rotation-latency hiding, physically.
* **Free-running vs. stepped epochs.**  Plans with no write-back buffers
  and no server-placed arrays (e.g. 2D SGD MF) *free-run*: the master
  sends one message per epoch and the workers pipeline the entire pass
  among themselves, synchronized only by rotation tokens.  Plans with
  buffers or server arrays run *stepped*: the master barriers each
  schedule step, workers compute against the shared step-start parameter
  state, and buffered writes come back as flush messages applied through
  their UDFs between steps (real data-parallel staleness: same-step
  blocks genuinely do not see each other's updates).  Unimodular-
  transformed plans run stepped — their written arrays are server-placed
  and same-step blocks are dependence-free, so the sequential-outer
  barriers reproduce the simulated linearization bitwise.

Epoch timings are real ``time.perf_counter()`` seconds (one monotonic
clock domain shared by parent and forked children), reported as
:class:`~repro.runtime.executor.EpochResult` objects with
``clock="real"`` and traced — when the loop's tracer is enabled — as
spans under the ``<trace_process>@wall`` process, so ``--report`` covers
real runs next to the virtual-clock model.

Remaining semantic bounds (shared with the previous fidelity-proof
implementation): buffered writes synchronize once per block (the paper's
once-per-partition bound — ``max_delay`` sub-block flushes would need
mid-block server round trips), accumulators fold per epoch, and bodies
drawing from a shared RNG (LDA's Gibbs sampler) diverge from the serial
draw sequence because each forked worker advances its own copy.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from multiprocessing import shared_memory
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.strategy import PlacementKind, Strategy
from repro.core import access
from repro.errors import ExecutionError
from repro.runtime.executor import EpochResult
from repro.runtime.kernels import KernelContext, PlainBroker

if TYPE_CHECKING:  # import cycle: repro.api imports the backend registry
    from repro.api import ParallelLoop

__all__ = ["MultiprocessRunner", "SharedArrayPool"]


# --------------------------------------------------------------------- #
# Shared-memory array pool                                              #
# --------------------------------------------------------------------- #

class _Adopted:
    """One dense array rebacked onto a shared segment."""

    __slots__ = ("shm", "array", "original", "view")

    def __init__(self, shm, array, original, view) -> None:
        self.shm = shm
        self.array = array
        self.original = original
        self.view = view


class SharedArrayPool:
    """Rebacks dense DistArrays onto ``multiprocessing.shared_memory``.

    :meth:`adopt` swaps an array's dense storage for a NumPy view over a
    freshly created shared segment (copying the current contents in).
    Done *before* forking, the children inherit the mapping, so every
    process reads and writes the same physical pages — in-place partition
    access with zero serialization.  :meth:`release` copies the final
    contents back into ordinary memory, restores the original backing and
    unlinks the segments, so the arrays outlive the runner unchanged.
    """

    #: Arrays currently rebacked by a live pool, keyed by ``id(array)``.
    #: Workers inherit the segment mapping at fork time, so two live pools
    #: over one array would split the processes across two segments (stale
    #: reads) and leave the second pool's ``original`` pointing into the
    #: first pool's unlinked segment (a crash at release).
    _live: Dict[int, "SharedArrayPool"] = {}

    def __init__(self) -> None:
        self._adopted: List[_Adopted] = []
        self._ids: set = set()

    def adopt(self, array: Any) -> None:
        """Reback one dense materialized array (idempotent per array)."""
        if id(array) in self._ids:
            return
        dense = getattr(array, "_dense", None)
        if dense is None:
            return
        if id(array) in SharedArrayPool._live:
            raise ExecutionError(
                f"array {array.name!r} is already shared with a live "
                "multiprocess runner; close that loop before starting "
                "another one over the same arrays (programs that "
                "interleave several loops over shared state, e.g. GBT, "
                "cannot run them concurrently on backend='multiprocess')"
            )
        shm = shared_memory.SharedMemory(create=True, size=max(1, dense.nbytes))
        view: np.ndarray = np.ndarray(dense.shape, dtype=dense.dtype,
                                      buffer=shm.buf)
        view[...] = dense
        array._dense = view
        self._adopted.append(_Adopted(shm, array, dense, view))
        self._ids.add(id(array))
        SharedArrayPool._live[id(array)] = self

    @property
    def nbytes(self) -> int:
        """Total bytes placed in shared segments."""
        return sum(record.original.nbytes for record in self._adopted)

    def release(self) -> None:
        """Restore ordinary backing and unlink every segment (idempotent)."""
        for record in self._adopted:
            if record.array._dense is record.view:
                # Nobody rebound the storage meanwhile: preserve the final
                # shared contents past the segment's lifetime.
                record.original[...] = record.view
                record.array._dense = record.original
            record.view = None
            try:
                record.shm.close()
            except BufferError:  # a caller still holds the old view
                pass
            try:
                record.shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
            if SharedArrayPool._live.get(id(record.array)) is self:
                del SharedArrayPool._live[id(record.array)]
        self._adopted = []
        self._ids = set()


# --------------------------------------------------------------------- #
# Worker process                                                        #
# --------------------------------------------------------------------- #

class _WorkerProcess:
    """Code that runs inside one forked worker (no self-use in the parent).

    Message protocol (master → worker):

    * ``("epoch",)`` — free-running mode: execute every one of this
      worker's scheduled blocks for one pass, synchronizing with
      neighbours purely through rotation tokens; reply ``("epoch_done",
      payload)``.
    * ``("step", s)`` — stepped mode: execute this worker's blocks of
      schedule step ``s``; reply ``("step_done", flushes, flush_bytes)``
      where ``flushes`` maps buffer name → pending updates.
    * ``("finish_epoch",)`` — stepped mode epilogue; reply
      ``("epoch_done", payload)``.
    * ``("stop",)`` — reply ``("bye",)`` and exit.

    Any exception is reported as ``("error", traceback_text)`` and the
    worker exits.
    """

    def __init__(
        self,
        worker_id: int,
        loop: "ParallelLoop",
        conn: Any,
        token_in: Any,
        token_out: Any,
        token_kind: Optional[str],
        depth: int,
    ) -> None:
        self.worker_id = worker_id
        self.loop = loop
        self.executor = loop.executor
        self.conn = conn
        self.token_in = token_in
        self.token_out = token_out
        self.token_kind = token_kind
        self.depth = depth
        executor = self.executor
        self.use_kernel = (
            executor.kernel is not None and executor._kernel_supported
        )
        self.broker = PlainBroker()
        #: Sanitize mode: the (pre-fork) executor forced kernels off, so
        #: every block takes the scalar path under a recording broker;
        #: records ship to the master in the epoch payload.
        self.sanitize = executor.sanitize
        self._sanitize_records: List[Tuple[Any, str, Tuple[Any, ...], str]] = []
        #: This worker's tasks over a whole epoch, in step order.
        self.tasks = [
            task
            for step_tasks in executor.steps
            for task in step_tasks
            if task.worker == worker_id
        ]
        #: Per-block wall timings: (step, space, time, t_start, t_end, wait).
        self.timings: List[Tuple[Any, ...]] = []
        self.tokens_consumed = 0
        self._epochs_run = 0

    # ---------------- serve loop --------------------------------------- #

    def serve(self) -> None:
        try:
            while True:
                message = self.conn.recv()
                kind = message[0]
                if kind == "stop":
                    self.conn.send(("bye",))
                    return
                if kind == "epoch":
                    self._run_epoch_free()
                elif kind == "step":
                    self._run_step(message[1])
                elif kind == "finish_epoch":
                    self.conn.send(("epoch_done", self._epoch_payload()))
                else:  # pragma: no cover - protocol error
                    self.conn.send(("error", f"unknown message {kind!r}"))
                    return
        except (EOFError, KeyboardInterrupt):  # pragma: no cover - shutdown
            return
        except BaseException:
            try:
                self.conn.send(("error", traceback.format_exc()))
            except Exception:  # pragma: no cover - master already gone
                pass
            return

    # ---------------- block execution ---------------------------------- #

    def _run_task(self, task: Any) -> None:
        """Execute one block against the shared arrays — exactly the
        simulated executor's per-block computation (kernel or scalar)."""
        executor = self.executor
        block_key = (task.space_idx, task.time_idx or 0)
        block = executor.partitions.block(*block_key)
        if self.use_kernel:
            with access.worker_scope(self.worker_id), \
                    access.install_broker(self.broker):
                kctx = KernelContext(
                    self.broker,
                    self.worker_id,
                    executor._kernel_caches.setdefault(block_key, {}),
                )
                executor.kernel(block, kctx)
        elif self.sanitize:
            from repro.sanitizer import RecordingBroker

            body = self.loop.body
            recorder = RecordingBroker()
            with access.worker_scope(self.worker_id), \
                    access.install_broker(recorder):
                for key, value in block:
                    recorder.iteration = key
                    body(key, value)
            self._sanitize_records.extend(recorder.records)
        else:
            body = self.loop.body
            with access.worker_scope(self.worker_id):
                for key, value in block:
                    body(key, value)

    def _timed_task(self, task: Any, wait: float) -> None:
        t_start = time.perf_counter()
        self._run_task(task)
        t_end = time.perf_counter()
        self.timings.append(
            (task.step, task.space_idx, task.time_idx, t_start, t_end, wait)
        )

    # ---------------- free-running epochs ------------------------------ #

    def _run_epoch_free(self) -> None:
        """One whole pass, paced only by rotation tokens.

        Unordered 2D: at step ``s`` worker ``j`` executes time index
        ``(j·d + s) mod T``, which worker ``j+1`` finished at step
        ``s − d`` — so ``j`` consumes one token (value ``s − d``) from its
        successor before each step ``s ≥ d`` and publishes its own step
        number to its predecessor afterwards.  Steps ``0..d−1`` touch
        slices nobody else holds, giving the induction base; depth > 1
        keeps a locally ready block in hand while the neighbour works.

        Ordered 2D (wavefront): worker ``j`` runs time ``t`` one step
        after worker ``j−1`` did, so it consumes token ``t`` from its
        predecessor; worker 0 never waits.

        The ``epoch_done`` barrier orders epochs, so cross-epoch reuse of
        a slice is always safe; the ``d`` tokens left unconsumed at an
        epoch boundary are popped on entry to the next epoch (each queue
        has a single producer and pipes are FIFO, so the stale tokens are
        always at the front — a blind drain would race the new epoch's
        producers).
        """
        kind = self.token_kind
        depth = self.depth
        if kind == "unordered" and self._epochs_run > 0:
            num_time = self.executor.num_time
            for offset in range(depth):
                token = self.token_in.get()
                self.tokens_consumed += 1
                stale = num_time - depth + offset
                if token != stale:
                    raise ExecutionError(
                        f"worker {self.worker_id}: stale rotation token "
                        f"{token} != expected {stale}"
                    )
        for task in self.tasks:
            wait = 0.0
            expected: Optional[int] = None
            if kind == "unordered" and task.step >= depth:
                expected = task.step - depth
            elif kind == "ordered" and self.token_in is not None:
                expected = task.time_idx
            if expected is not None:
                t0 = time.perf_counter()
                token = self.token_in.get()
                wait = time.perf_counter() - t0
                self.tokens_consumed += 1
                if token != expected:
                    raise ExecutionError(
                        f"worker {self.worker_id}: rotation token "
                        f"{token} != expected {expected} (step {task.step})"
                    )
            self._timed_task(task, wait)
            if kind == "unordered":
                self.token_out.put(task.step)
            elif kind == "ordered" and self.token_out is not None:
                self.token_out.put(task.time_idx)
        self._epochs_run += 1
        self.conn.send(("epoch_done", self._epoch_payload()))

    # ---------------- stepped epochs ----------------------------------- #

    def _run_step(self, step_index: int) -> None:
        for task in self.executor.steps[step_index]:
            if task.worker != self.worker_id:
                continue
            self._timed_task(task, 0.0)
        # Extract buffered writes (do NOT apply locally: the master's
        # parameter server owns the apply UDFs and their ordering).
        flushes: Dict[str, Dict[Tuple[Any, ...], Any]] = {}
        flush_bytes = 0.0
        for name, buffer in self.loop.info.buffers.items():
            flush_bytes += buffer.pending_bytes(self.worker_id)
            pending = buffer._pending.pop(self.worker_id, None)
            if pending:
                flushes[name] = pending
        self.conn.send(("step_done", flushes, flush_bytes))

    # ---------------- epoch epilogue ----------------------------------- #

    def _epoch_payload(self) -> Dict[str, Any]:
        accumulators: Dict[str, Any] = {}
        for name, acc in self.loop.info.accumulator_refs.items():
            if self.worker_id in acc._slots:
                accumulators[name] = acc._slots.pop(self.worker_id)
        payload = {
            "timings": self.timings,
            "accumulators": accumulators,
            "sparse": self._sparse_payload(),
            "tokens": self.tokens_consumed,
            "sanitize": self._sanitize_records,
        }
        self.timings = []
        self.tokens_consumed = 0
        self._sanitize_records = []
        return payload

    def _sparse_payload(self) -> Dict[str, Dict[Tuple[Any, ...], Any]]:
        """Written sparse LOCAL partitions (dense arrays are shared, but a
        sparse array's entries live in this process's forked dict)."""
        out: Dict[str, Dict[Tuple[Any, ...], Any]] = {}
        bounds = self.executor.partitions.space_bounds
        if bounds is None or self.worker_id >= len(bounds):
            return out
        lo, hi = bounds[self.worker_id]
        written = self.loop.info.written_arrays()
        for name, placement in self.loop.plan.placements.items():
            if placement.kind is not PlacementKind.LOCAL:
                continue
            if name.startswith("<target:") or name not in written:
                continue
            array = self.loop.info.arrays.get(name)
            if array is None or not array.sparse:
                continue
            dim = placement.array_dim
            out[name] = {
                key: value
                for key, value in array.entries()
                if lo <= key[dim] < hi
            }
        return out


def _worker_entry(
    worker_id: int,
    loop: "ParallelLoop",
    conn: Any,
    token_in: Any,
    token_out: Any,
    token_kind: Optional[str],
    depth: int,
) -> None:
    _WorkerProcess(
        worker_id, loop, conn, token_in, token_out, token_kind, depth
    ).serve()


# --------------------------------------------------------------------- #
# Master / runner                                                       #
# --------------------------------------------------------------------- #

class MultiprocessRunner:
    """Run a compiled :class:`~repro.api.ParallelLoop` on real processes.

    Usage::

        loop = ctx.parallel_for(ratings)(body)
        with MultiprocessRunner(loop) as runner:
            runner.run_epoch()

    Or select it declaratively — ``parallel_for(..., backend=
    "multiprocess")`` makes ``loop.run()`` construct and drive one of
    these under the hood.

    While the runner is open, the loop's dense arrays live in shared
    memory; the master sees worker updates immediately (driver-side loss
    evaluation works between epochs exactly as with the simulated
    executor) and :meth:`close` copies the final state back into ordinary
    memory.  ``close`` escalates ``join(timeout)`` → ``terminate()`` →
    ``kill()``, so a wedged or crashed worker cannot leak past it.
    """

    def __init__(
        self, loop: "ParallelLoop", shutdown_timeout: float = 5.0
    ) -> None:
        if "fork" not in multiprocessing.get_all_start_methods():
            raise ExecutionError(
                "the multiprocess backend requires the fork start method "
                "(POSIX); use backend='threaded' here"
            )
        self.loop = loop
        self.executor = loop.executor
        self.partitions = self.executor.partitions
        self.shutdown_timeout = shutdown_timeout
        self._context = multiprocessing.get_context("fork")
        self.pool = SharedArrayPool()
        self._connections: List[Any] = []
        self._processes: List[Any] = []
        self._token_queues: List[Any] = []
        self._started = False
        self._wall0 = 0.0
        self._epoch_counter = 0
        for name, placement in loop.plan.placements.items():
            if name.startswith("<target:"):
                continue
            array = loop.info.arrays.get(name)
            if array is None or not array.sparse:
                continue
            if placement.kind in (PlacementKind.ROTATED, PlacementKind.SERVER):
                raise ExecutionError(
                    f"the multiprocess backend cannot place sparse array "
                    f"{name!r} as {placement.kind.name}: rotation and "
                    "parameter service operate on shared dense storage"
                )
        #: Free-running epochs need no master mediation at all; any buffer
        #: or server-placed array makes the master a parameter server and
        #: the epoch stepped.
        self.free_running = (
            not loop.info.buffers and not self.executor._server_arrays
        )
        #: Unimodular legality says every dependence is carried by the
        #: *transformed* outer level, but the executor may lump several
        #: transformed time values into one time partition — a dependence
        #: of distance < partition width then connects two same-step
        #: blocks.  The simulator is safe because it linearizes; here the
        #: master falls back to dispatching those steps one task at a
        #: time, in the simulator's task order (width-1 partitions keep
        #: full intra-step parallelism).
        self._sequential_steps = False
        if loop.plan.transform is not None:
            time_bounds = self.partitions.time_bounds
            self._sequential_steps = time_bounds is None or any(
                hi - lo > 1 for lo, hi in time_bounds
            )
        self._token_kind: Optional[str] = None
        if (
            self.free_running
            and loop.plan.strategy is Strategy.TWO_D
            and self.executor.num_workers > 1
        ):
            self._token_kind = (
                "ordered" if self.executor.options.ordered else "unordered"
            )
        depth = 1
        if self._token_kind == "unordered":
            depth = self.executor.num_time // self.executor.num_workers
        self._depth = depth

    # ---------------- lifecycle ---------------------------------------- #

    def _start(self) -> None:
        if self._started:
            return
        for array in self.loop.info.arrays.values():
            self.pool.adopt(array)
        for buffer in self.loop.info.buffers.values():
            self.pool.adopt(buffer.target)
        num_workers = self.executor.num_workers
        if self._token_kind is not None:
            self._token_queues = [
                self._context.SimpleQueue() for _ in range(num_workers)
            ]
        for worker in range(num_workers):
            token_in = token_out = None
            if self._token_kind == "unordered":
                token_in = self._token_queues[worker]
                token_out = self._token_queues[(worker - 1) % num_workers]
            elif self._token_kind == "ordered":
                if worker > 0:
                    token_in = self._token_queues[worker]
                if worker + 1 < num_workers:
                    token_out = self._token_queues[worker + 1]
            parent_conn, child_conn = self._context.Pipe()
            process = self._context.Process(
                target=_worker_entry,
                args=(worker, self.loop, child_conn, token_in, token_out,
                      self._token_kind, self._depth),
                daemon=True,
            )
            process.start()
            child_conn.close()
            self._connections.append(parent_conn)
            self._processes.append(process)
        self._wall0 = time.perf_counter()
        self._started = True

    def close(self) -> None:
        """Stop every worker process; escalate if one is wedged."""
        for conn in self._connections:
            try:
                conn.send(("stop",))
            except (OSError, BrokenPipeError, ValueError):
                pass
        for conn in self._connections:
            try:
                if conn.poll(0.5):
                    conn.recv()
            except (OSError, EOFError):
                pass
        deadline = time.monotonic() + self.shutdown_timeout
        for process in self._processes:
            process.join(timeout=max(0.0, deadline - time.monotonic()))
            if process.is_alive():
                process.terminate()
                process.join(timeout=1.0)
            if process.is_alive():  # pragma: no cover - SIGTERM ignored
                process.kill()
                process.join(timeout=1.0)
        for conn in self._connections:
            try:
                conn.close()
            except OSError:  # pragma: no cover - racy shutdown
                pass
        self._connections = []
        self._processes = []
        self._token_queues = []
        self.pool.release()
        self._started = False

    def __enter__(self) -> "MultiprocessRunner":
        self._start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            if self._started:
                self.close()
        except Exception:
            pass

    # ---------------- messaging ----------------------------------------- #

    def _send(self, worker: int, message: Any) -> None:
        try:
            self._connections[worker].send(message)
        except (OSError, BrokenPipeError) as exc:
            raise ExecutionError(
                f"worker {worker} died (send failed: {exc}); restore from a "
                "checkpoint and restart the runner"
            ) from exc

    def _recv(self, worker: int, expected: str) -> Any:
        try:
            reply = self._connections[worker].recv()
        except (EOFError, OSError) as exc:
            raise ExecutionError(
                f"worker {worker} died (connection closed); restore from a "
                "checkpoint and restart the runner"
            ) from exc
        if reply[0] == "error":
            raise ExecutionError(
                f"worker {worker} failed:\n{reply[1]}"
            )
        if reply[0] != expected:  # pragma: no cover - protocol error
            raise ExecutionError(f"worker protocol error: {reply[0]!r}")
        return reply

    # ---------------- parameter service --------------------------------- #

    def _apply_flushes(
        self, worker: int, flushes: Dict[str, Dict[Tuple[Any, ...], Any]]
    ) -> None:
        """Parameter-server write path: apply buffered writes via UDFs.

        Targets are shared, so the write-through is immediately visible to
        every worker — but only between steps, which is exactly the
        step-start staleness the stepped protocol promises."""
        for name, pending in flushes.items():
            buffer = self.loop.info.buffers[name]
            slot = buffer._pending.setdefault(worker, {})
            for key, update in pending.items():
                if key in slot:
                    slot[key] = buffer.combiner(slot[key], update)
                else:
                    slot[key] = update
            buffer.flush_worker(worker)

    def _fold_accumulators(self, worker: int, values: Dict[str, Any]) -> None:
        for name, value in values.items():
            acc = self.loop.info.accumulator_refs[name]
            with access.worker_scope(worker):
                acc.add(value)

    def _apply_sparse(
        self, payload: Dict[str, Dict[Tuple[Any, ...], Any]]
    ) -> None:
        for name, entries in payload.items():
            array = self.loop.info.arrays[name]
            for key, value in entries.items():
                array.direct_set(key, value)

    # ---------------- execution ----------------------------------------- #

    def run_epoch(self) -> int:
        """Execute one full pass; returns the number of blocks executed."""
        return self.run_epoch_result().num_tasks

    def run_epoch_result(self, epoch: Optional[int] = None) -> EpochResult:
        """Execute one full pass and report real wall-clock timing.

        Free-running plans get one command per worker per epoch; stepped
        plans are barriered per schedule step with flushes applied in task
        order between steps.  The returned
        :class:`~repro.runtime.executor.EpochResult` carries measured
        ``perf_counter`` seconds (``clock="real"``), worker utilization
        over the real epoch, and the flush byte volume.
        """
        self._start()
        self._epoch_counter += 1
        if epoch is None:
            epoch = self._epoch_counter
        num_workers = self.executor.num_workers
        flush_bytes = 0.0
        t0 = time.perf_counter()
        if self.free_running:
            for worker in range(num_workers):
                self._send(worker, ("epoch",))
        else:
            for step_index, step_tasks in enumerate(self.executor.steps):
                if self._sequential_steps:
                    # Intra-step dependences possible (see __init__):
                    # linearize the step exactly as the simulator does.
                    for task in step_tasks:
                        self._send(task.worker, ("step", step_index))
                        _kind, flushes, nbytes = self._recv(
                            task.worker, "step_done"
                        )
                        self._apply_flushes(task.worker, flushes)
                        flush_bytes += nbytes
                    continue
                for worker in range(num_workers):
                    self._send(worker, ("step", step_index))
                replies = [
                    self._recv(worker, "step_done")
                    for worker in range(num_workers)
                ]
                # Apply flushes in task order — the same order the
                # simulated linearization applies them.
                for task in step_tasks:
                    _kind, flushes, nbytes = replies[task.worker]
                    self._apply_flushes(task.worker, flushes)
                    flush_bytes += nbytes
            for worker in range(num_workers):
                self._send(worker, ("finish_epoch",))
        payloads = [
            self._recv(worker, "epoch_done")[1]
            for worker in range(num_workers)
        ]
        t_end = time.perf_counter()
        for worker, payload in enumerate(payloads):
            self._fold_accumulators(worker, payload["accumulators"])
            self._apply_sparse(payload["sparse"])
        if self.executor.sanitize:
            # Workers shipped their shadow-access records; the master runs
            # the same epoch-boundary cross-check the simulated backend
            # does (raises SanitizerError on any violation).
            for payload in payloads:
                self.executor._sanitize_records.extend(
                    tuple(record) for record in payload.get("sanitize", ())
                )
            self.executor._sanitize_check()
        epoch_s = t_end - t0
        busy = sum(
            span[4] - span[3]
            for payload in payloads
            for span in payload["timings"]
        )
        num_tasks = sum(len(payload["timings"]) for payload in payloads)
        self._record_obs(epoch, t0, t_end, payloads, flush_bytes)
        return EpochResult(
            epoch_time_s=epoch_s,
            bytes_sent=flush_bytes,
            num_tasks=num_tasks,
            utilization=min(busy / (num_workers * epoch_s), 1.0)
            if epoch_s > 0 else 0.0,
            kernel_path=self.executor.kernel_path,
            clock="real",
        )

    # ---------------- observability -------------------------------------- #

    def runner_meta(self) -> Dict[str, Any]:
        """Topology facts for one run-store record (JSON-safe).

        The multiprocess half of the ``LoopOptions.run_store`` emission
        hook — pure introspection, safe before :meth:`_start`."""
        return {
            "free_running": self.free_running,
            "token_kind": self._token_kind,
            "token_depth": self._depth,
            "sequential_steps": self._sequential_steps,
            "num_workers": self.executor.num_workers,
            "shared_nbytes": self.pool.nbytes,
        }

    def _record_obs(
        self,
        epoch: int,
        t0: float,
        t_end: float,
        payloads: List[Dict[str, Any]],
        flush_bytes: float,
    ) -> None:
        """Real-time spans on the ``@wall`` clock domain + counters."""
        metrics = self.executor.metrics
        if metrics.enabled:
            metrics.counter("real_epochs_total").inc()
            if flush_bytes:
                metrics.counter("real_flush_bytes_total").inc(flush_bytes)
            tokens = sum(payload["tokens"] for payload in payloads)
            if tokens:
                metrics.counter("rotation_tokens_total").inc(tokens)
            waits = sum(
                span[5]
                for payload in payloads
                for span in payload["timings"]
            )
            if waits > 0:
                metrics.counter("token_wait_seconds_total").inc(waits)
        tracer = self.executor.tracer
        if not tracer.enabled:
            return
        from repro.obs.tracer import wall_process

        process = wall_process(self.executor.trace_process)
        base = self._wall0
        tracer.add_span(
            name=f"epoch {epoch}",
            cat="epoch",
            t_start=t0 - base,
            t_end=t_end - base,
            track="epochs",
            process=process,
            args={"epoch": epoch},
        )
        for worker, payload in enumerate(payloads):
            for step, space_idx, time_idx, ts, te, wait in payload["timings"]:
                tracer.add_span(
                    name=f"block[{space_idx},{time_idx or 0}]",
                    cat="block",
                    t_start=ts - base,
                    t_end=te - base,
                    track=f"worker{worker}",
                    process=process,
                    args={"step": step, "token_wait_s": wait},
                )
