"""Ablation A1 — pipelined rotation depth (paper Fig. 8 / Sec. 4.4).

Unordered 2D execution assigns each worker multiple time-partition indices
so it can proceed on a locally available partition while the next one is in
flight.  This ablation sweeps the pipeline depth on SGD MF (a pure
rotation workload, no parameter-server traffic): depth 1 — every step
waits for its rotation transfer — is slowest, and depth 2 (the paper's
Fig. 8 configuration) hides most of the latency.
"""

import pytest

import _workloads as wl
from repro.apps import build_sgd_mf

EPOCHS = 3
DEPTHS = [1, 2, 4]


def _sweep():
    dataset = wl.netflix_bench()
    cluster = wl.mf_cluster()
    times = {}
    for depth in DEPTHS:
        program = build_sgd_mf(
            dataset,
            cluster=cluster,
            hyper=wl.MF_HYPER,
            pipeline_depth=depth,
        )
        times[depth] = program.run(EPOCHS).time_per_iteration()
    return times


@pytest.mark.benchmark(group="ablation")
def test_ablation_pipelining(benchmark, report):
    times = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    base = times[DEPTHS[0]]
    rows = [
        (depth, f"{seconds:.4f}", f"{base / seconds:.2f}x")
        for depth, seconds in times.items()
    ]
    report(
        "Ablation A1: unordered-2D pipeline depth (SGD MF)",
        wl.fmt_table(["depth", "s/iter", "speedup vs depth 1"], rows)
        + "\nexpected shape: pipelining (depth >= 2) hides rotation "
        "latency (paper Fig. 8 uses 2 indices per worker)",
    )
    assert times[2] < times[1]
    assert times[4] <= times[2] * 1.1  # deeper never meaningfully worse
