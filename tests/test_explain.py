"""Tests for the Fig. 6-style compilation report (repro.analysis.explain)."""

import pytest

from repro.apps import MFHyper, build_sgd_mf, build_slr
from repro.apps.slr import SLRHyper
from repro.data import netflix_like, sparse_classification
from repro.runtime.cluster import ClusterSpec


@pytest.fixture(scope="module")
def mf_report():
    dataset = netflix_like(num_rows=40, num_cols=30, num_ratings=600, seed=51)
    program = build_sgd_mf(
        dataset,
        cluster=ClusterSpec(num_machines=2, workers_per_machine=2),
        hyper=MFHyper(rank=4),
    )
    return program.train_loop.explain()


@pytest.fixture(scope="module")
def slr_report():
    dataset = sparse_classification(
        num_samples=80, num_features=50, nnz_per_sample=4, seed=53
    )
    program = build_slr(
        dataset,
        cluster=ClusterSpec(num_machines=1, workers_per_machine=2),
        hyper=SLRHyper(),
    )
    return program.train_loop.explain()


class TestMFReport:
    def test_sections_present(self, mf_report):
        for heading in (
            "Loop information",
            "Dependence vectors (Alg. 2)",
            "Partitioning & schedule (Sec. 4.3)",
            "DistArray placements (Sec. 4.4)",
        ):
            assert heading in mf_report

    def test_loop_information(self, mf_report):
        assert "iteration space: ratings" in mf_report
        assert "unordered" in mf_report
        assert "W[:, key[0]]" in mf_report
        assert "H[:, key[1]]" in mf_report
        assert "step_size" in mf_report

    def test_dependence_vectors_like_fig6(self, mf_report):
        assert "W: (0, +inf)" in mf_report
        assert "H: (+inf, 0)" in mf_report

    def test_strategy_and_candidates(self, mf_report):
        assert "2D unordered" in mf_report
        assert "2D candidate orientations" in mf_report

    def test_placements(self, mf_report):
        assert "W: local" in mf_report
        assert "H: rotated" in mf_report


class TestSLRReport:
    def test_buffered_writes_listed(self, slr_report):
        assert "buffered writes (exempt from analysis)" in slr_report

    def test_data_parallel_strategy(self, slr_report):
        assert "data parallelism" in slr_report

    def test_server_placement(self, slr_report):
        assert "weights: server" in slr_report

    def test_weight_reads_independent(self, slr_report):
        assert "weights: (independent)" in slr_report
        assert "weights[?] (read)" in slr_report
