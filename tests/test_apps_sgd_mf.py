"""Tests for the SGD MF application (repro.apps.sgd_mf)."""

import numpy as np
import pytest

from repro.analysis.strategy import PlacementKind, Strategy
from repro.apps.sgd_mf import (
    MFHyper,
    SGDMFApp,
    build_orion_program,
    mf_cost_model,
    nzsl,
)
from repro.runtime.cluster import ClusterSpec


class TestLossFunction:
    def test_perfect_factorization_zero_loss(self):
        rng = np.random.default_rng(0)
        W = rng.standard_normal((3, 5))
        H = rng.standard_normal((3, 4))
        rows = np.array([0, 2, 4])
        cols = np.array([1, 3, 0])
        values = np.einsum("ki,ki->i", W[:, rows], H[:, cols])
        assert nzsl(W, H, rows, cols, values) == pytest.approx(0.0)

    def test_loss_counts_only_observed(self):
        W = np.zeros((2, 3))
        H = np.zeros((2, 3))
        rows = np.array([0])
        cols = np.array([0])
        values = np.array([2.0])
        assert nzsl(W, H, rows, cols, values) == pytest.approx(4.0)


class TestOrionProgram:
    def test_plan_matches_table2(self, mf_small, cluster_tiny):
        program = build_orion_program(mf_small, cluster=cluster_tiny)
        assert program.plan.strategy is Strategy.TWO_D
        assert not program.plan.ordered

    def test_factor_placements(self, mf_small, cluster_tiny):
        program = build_orion_program(mf_small, cluster=cluster_tiny)
        kinds = {
            name: placement.kind
            for name, placement in program.plan.placements.items()
        }
        # The iteration space itself is partitioned, not placed.
        assert "ratings" not in kinds
        assert {kinds["W"], kinds["H"]} == {
            PlacementKind.LOCAL,
            PlacementKind.ROTATED,
        }

    def test_loss_decreases(self, mf_small, cluster_tiny):
        program = build_orion_program(
            mf_small, cluster=cluster_tiny, hyper=MFHyper(rank=4, step_size=0.05)
        )
        history = program.run(6)
        assert history.final_loss < history.meta["initial_loss"]

    def test_validation_clean(self, mf_small, cluster_tiny):
        program = build_orion_program(
            mf_small, cluster=cluster_tiny, validate=True
        )
        program.run(2)  # would raise on a serializability violation

    def test_adarev_variant_runs_and_wins_early(self, mf_small, cluster_tiny):
        plain = build_orion_program(
            mf_small, cluster=cluster_tiny, hyper=MFHyper(rank=4, step_size=0.05)
        ).run(4)
        adarev = build_orion_program(
            mf_small, cluster=cluster_tiny, hyper=MFHyper(rank=4, adarev=True)
        ).run(4)
        assert adarev.final_loss < plain.final_loss

    def test_ordered_variant(self, mf_small, cluster_tiny):
        program = build_orion_program(mf_small, cluster=cluster_tiny, ordered=True)
        assert program.plan.ordered
        history = program.run(2)
        assert len(history.records) == 2

    def test_custom_label(self, mf_small, cluster_tiny):
        program = build_orion_program(mf_small, cluster=cluster_tiny, label="X")
        assert program.label == "X"


class TestSerialApp:
    def test_apply_entry_reduces_entry_error(self, mf_small):
        app = SGDMFApp(mf_small, MFHyper(rank=4, step_size=0.1))
        state = app.init_state(0)
        key, value = app.entries()[0]
        before = (value - state["W"][:, key[0]] @ state["H"][:, key[1]]) ** 2
        app.apply_entry(state, key, value)
        after = (value - state["W"][:, key[0]] @ state["H"][:, key[1]]) ** 2
        assert after < before

    def test_adarev_state_arrays(self, mf_small):
        app = SGDMFApp(mf_small, MFHyper(rank=4, adarev=True))
        state = app.init_state(0)
        assert set(state) == {"W", "H", "Wn2", "Hn2"}

    def test_entry_cost_factor_scales(self, mf_small):
        plain = SGDMFApp(mf_small, MFHyper(rank=8))
        heavy = SGDMFApp(mf_small, MFHyper(rank=8, adarev=True))
        assert heavy.entry_cost_factor > plain.entry_cost_factor

    def test_batch_gradient_descends(self, mf_small):
        app = SGDMFApp(mf_small, MFHyper(rank=4, step_size=0.05))
        state = app.init_state(0)
        before = app.loss(state)
        for _ in range(5):
            grads, counts = app.batch_gradient(state, app.entries())
            for name in grads:
                state[name] = state[name] - 0.05 * grads[name] / counts[name]
        assert app.loss(state) < before

    def test_clone_state_is_deep(self, mf_small):
        app = SGDMFApp(mf_small)
        state = app.init_state(0)
        clone = app.clone_state(state)
        clone["W"][:] = 0.0
        assert np.abs(state["W"]).sum() > 0

    def test_model_nbytes(self, mf_small):
        app = SGDMFApp(mf_small, MFHyper(rank=4))
        state = app.init_state(0)
        expected = 8 * 4 * (mf_small.num_rows + mf_small.num_cols)
        assert app.model_nbytes(state) == expected


class TestCostModel:
    def test_rank_scales_cost(self):
        small = mf_cost_model(MFHyper(rank=8))
        big = mf_cost_model(MFHyper(rank=32))
        assert big.entry_cost_s == pytest.approx(4 * small.entry_cost_s)

    def test_adarev_multiplier(self):
        plain = mf_cost_model(MFHyper(rank=8))
        ada = mf_cost_model(MFHyper(rank=8, adarev=True))
        assert ada.entry_cost_s / plain.entry_cost_s == pytest.approx(2.8)


class TestFig5EvaluationLoop:
    """Fig. 5's second parallel for-loop: accumulator-measured loss."""

    def test_accumulator_loss_matches_vectorized(self, mf_small, cluster_tiny):
        direct = build_orion_program(
            mf_small, cluster=cluster_tiny, hyper=MFHyper(rank=4)
        )
        looped = build_orion_program(
            mf_small, cluster=cluster_tiny, hyper=MFHyper(rank=4),
            eval_with_loop=True,
        )
        assert looped.loss_fn() == pytest.approx(direct.loss_fn(), rel=1e-9)

    def test_eval_loop_is_read_only_one_d(self, mf_small, cluster_tiny):
        program = build_orion_program(
            mf_small, cluster=cluster_tiny, eval_with_loop=True
        )
        eval_loop = program.meta["eval_loop"]
        assert eval_loop.plan.strategy is Strategy.ONE_D
        assert not eval_loop.plan.dvecs

    def test_loss_repeatable_after_reset(self, mf_small, cluster_tiny):
        program = build_orion_program(
            mf_small, cluster=cluster_tiny, eval_with_loop=True
        )
        first = program.loss_fn()
        second = program.loss_fn()
        assert first == pytest.approx(second)

    def test_training_history_with_loop_eval(self, mf_small, cluster_tiny):
        program = build_orion_program(
            mf_small, cluster=cluster_tiny, hyper=MFHyper(rank=4),
            eval_with_loop=True,
        )
        history = program.run(3)
        assert history.final_loss < history.meta["initial_loss"]
