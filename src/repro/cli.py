"""Command-line experiment runner.

Run any application under any engine and print the per-pass history::

    python -m repro.cli mf     --engine orion --epochs 5
    python -m repro.cli lda    --engine bosen --epochs 3 --machines 4
    python -m repro.cli slr    --engine serial --epochs 4
    python -m repro.cli mf     --engine all --epochs 5      # comparison table

Engines: ``serial``, ``orion``, ``orion-ordered``, ``bosen``, ``cm``
(managed communication), ``strads``, ``tf`` (mini-batch), ``tux2``
(MF only), or ``all``.

Observability (see ``docs/observability.md``)::

    python -m repro.cli mf --engine all --trace trace.json --report
    python -m repro.cli mf --history-out history.json

``--trace`` writes a Chrome-trace/Perfetto JSON of the run's virtual
timeline (open in `ui.perfetto.dev`; with ``--engine all`` every engine
appears as its own process, side by side).  ``--report`` prints a
straggler/utilization summary followed by the insight layer's
critical-path attribution, bottleneck what-ifs and — for multiprocess
runs — the virtual-vs-real prediction error.  ``--history-out`` writes
the run histories as machine-readable JSON.

Performance tracking (see ``docs/observability.md``)::

    python -m repro.cli mf --engine orion --run-store .repro_runs
    python -m repro.cli perf show
    python -m repro.cli perf compare        # last two runs; exit 1 on regression
    python -m repro.cli perf check          # latest vs baselines, per group

``--run-store`` appends one structured JSONL record per orion-engine run
(loop signature, plan, kernel tier, per-epoch timings, metrics snapshot);
``repro perf`` performs noise-aware regression detection against the
recorded baselines.  ``--slow-factor X`` injects a deterministic
virtual-clock slowdown for exercising the detector.

Fault injection (see ``docs/fault_tolerance.md``)::

    python -m repro.cli mf --faults seed=7,crashes=1,drops=0.02 \
        --ckpt-every 2 --epochs 6

``--faults`` attaches a deterministic fault plan (worker crashes, message
drops, stragglers) to engines that support it (orion, orion-ordered,
bosen, strads); ``--ckpt-every N`` checkpoints the model every N passes so
crashes replay from the latest checkpoint instead of from scratch.

Adaptive tuning (see ``docs/tuning.md``)::

    python -m repro.cli mf --engine orion --tune auto --run-store .repro_runs
    python -m repro.cli tune mf --depth 1 --epochs 4

``--tune auto`` lets the orion engines re-choose pipeline depth and
prefetch policy between epochs from the epoch trace (numerics stay
bit-identical; only legal re-tilings are applied) and persists the
winner in the run store's tuning cache; ``--tune cached`` seeds from the
cache without adapting.  ``repro tune <app>`` sweeps fixed pipeline
depths, then shows the tuner recovering from a deliberately mistuned
depth, with its full decision trail — exit 0 iff it converges to within
5% of the best fixed configuration by epoch 3.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
from typing import Dict, List, Optional

from repro.apps import (
    LDAApp,
    LDAHyper,
    MFHyper,
    SGDMFApp,
    SLRApp,
    SLRHyper,
    build_gbt,
    build_glove,
    build_lda,
    build_sgd_mf,
    build_slr,
    cooccurrence_corpus,
)
from repro.apps.lda import lda_cost_model
from repro.apps.sgd_mf import mf_cost_model
from repro.apps.slr import slr_cost_model
from repro.baselines import (
    run_bosen,
    run_managed_comm,
    run_serial,
    run_strads,
    run_tensorflow_minibatch,
    run_tux2_minibatch,
)
from repro.data import (
    lda_corpus,
    netflix_like,
    regression_table,
    sparse_classification,
)
from repro.faults.plan import FaultPlan, Straggler
from repro.obs import (
    MetricsRegistry,
    RunStore,
    Tracer,
    add_traffic_spans,
    check_store,
    compare_records,
    insight_report,
    straggler_report,
    write_chrome_trace,
)
from repro.runtime.backend import BACKENDS
from repro.runtime.checkpoint import CheckpointConfig
from repro.runtime.cluster import ClusterSpec
from repro.runtime.history import RunHistory
from repro.runtime.options import LoopOptions

__all__ = ["main", "build_parser"]

ENGINES = ["serial", "orion", "orion-ordered", "bosen", "cm", "strads", "tf", "tux2"]

#: Engines with native tracer support; the rest get network tracks lifted
#: from their TrafficLog after the run.
_NATIVELY_TRACED = {"serial", "orion", "orion-ordered", "bosen", "strads"}


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument schema (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Run an Orion-reproduction training experiment.",
    )
    parser.add_argument(
        "app", choices=["mf", "mf-adarev", "lda", "lda-1d", "slr", "gbt"],
        help="application to train",
    )
    parser.add_argument(
        "--engine", default="orion", choices=ENGINES + ["all"],
        help="training engine (or 'all' for a comparison table)",
    )
    parser.add_argument("--epochs", type=int, default=5)
    parser.add_argument("--machines", type=int, default=4)
    parser.add_argument("--workers-per-machine", type=int, default=4)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--scale", type=float, default=1.0,
        help="dataset size multiplier (1.0 = the small demo default)",
    )
    parser.add_argument(
        "--plot", action="store_true",
        help="render ASCII loss curves alongside the tables",
    )
    parser.add_argument(
        "--trace", metavar="PATH", default=None,
        help="write a Chrome-trace/Perfetto JSON of the virtual timeline",
    )
    parser.add_argument(
        "--report", action="store_true",
        help="print a straggler/utilization report after the run",
    )
    parser.add_argument(
        "--history-out", metavar="PATH", default=None,
        help="write run histories (records+traffic+meta) as JSON",
    )
    parser.add_argument(
        "--backend", default="simulated", choices=list(BACKENDS),
        help="execution backend for the orion engines: 'simulated' "
             "(virtual-clock oracle), 'threaded' (in-process thread pool), "
             "'multiprocess' (forked workers over shared memory, real "
             "wall-clock epochs)",
    )
    parser.add_argument(
        "--sanitize", action="store_true",
        help="run the shadow-access race detector during the orion "
             "engines' loops: record every actual DistArray element "
             "access and fail the epoch if the analyzer's dependence "
             "claims are contradicted (see docs/analysis.md)",
    )
    parser.add_argument(
        "--faults", metavar="SPEC", default=None,
        help="inject faults, e.g. 'seed=7,crashes=1,drops=0.02,"
             "stragglers=1,slowdown=3.0' (engines: orion, orion-ordered, "
             "bosen, strads; see docs/fault_tolerance.md)",
    )
    parser.add_argument(
        "--ckpt-every", type=int, metavar="N", default=None,
        help="checkpoint the model every N passes so crashes replay from "
             "the latest checkpoint instead of the initial state",
    )
    parser.add_argument(
        "--ckpt-dir", metavar="PATH", default=None,
        help="checkpoint directory (default: a fresh temp directory; "
             "each engine writes its own subdirectory)",
    )
    parser.add_argument(
        "--run-store", metavar="PATH", default=None,
        help="record each orion-engine run as a JSONL record in this "
             "run store for `repro perf` (see docs/observability.md)",
    )
    parser.add_argument(
        "--slow-factor", type=float, metavar="X", default=None,
        help="artificially slow every worker's block time by X (an "
             "explicit straggler plan on the virtual clock, simulated "
             "backend only) — for exercising `repro perf check` "
             "regression detection",
    )
    parser.add_argument(
        "--tune", choices=["off", "auto", "cached"], default="off",
        help="adaptive tuning for the orion engines: 'auto' re-chooses "
             "pipeline depth and prefetch policy between epochs from the "
             "trace and persists the winner in the run store's tuning "
             "cache; 'cached' only seeds from the cache (see "
             "docs/tuning.md)",
    )
    return parser


def _fault_plan(args, cluster: ClusterSpec) -> Optional[FaultPlan]:
    """A fresh plan per engine — plans track which crashes already fired.

    ``--slow-factor X`` builds an explicit plan that straggles *every*
    worker in *every* epoch by exactly X — a deterministic artificial
    slowdown (virtual time only, never data) for exercising ``repro perf``
    regression detection.
    """
    if args.faults:
        return FaultPlan.from_spec(
            args.faults, epochs=args.epochs, num_workers=cluster.num_workers
        )
    if getattr(args, "slow_factor", None):
        return FaultPlan(
            stragglers=[
                Straggler(worker=worker, epoch=epoch,
                          slowdown=args.slow_factor)
                for epoch in range(1, args.epochs + 1)
                for worker in range(cluster.num_workers)
            ],
        )
    return None


def _fault_options(
    engine: str, args, cluster: ClusterSpec, backend: Optional[str] = None,
    tune: str = "off",
) -> Optional[LoopOptions]:
    """LoopOptions carrying this engine's fault plan / checkpoint config.

    GBT runs several parallel loops per boosting round, which would race on
    one checkpoint directory — it gets fault injection but no on-disk
    checkpointing (crashes replay from the initial in-memory snapshot).

    ``backend`` (orion engines only) selects the execution backend; the
    baseline engines model their systems on the virtual clock and ignore
    ``--backend``.  ``tune`` (orion engines only) enables the adaptive
    tuner — mutually exclusive with fault injection, which ``main``
    rejects up front.
    """
    if not (
        args.faults or args.ckpt_every or backend is not None
        or args.sanitize or getattr(args, "slow_factor", None)
        or getattr(args, "run_store", None) or tune != "off"
    ):
        return None
    checkpoint = None
    if args.ckpt_every and args.app != "gbt":
        checkpoint = CheckpointConfig(
            directory=os.path.join(args.ckpt_dir, engine),
            every_n_epochs=args.ckpt_every,
        )
    return LoopOptions(
        faults=_fault_plan(args, cluster),
        checkpoint=checkpoint,
        backend=backend or "simulated",
        sanitize=args.sanitize,
        run_store=getattr(args, "run_store", None),
        run_label=f"{args.app}:{engine}",
        tune=tune,
    )


def _dataset_and_builders(args):
    """Per-app dataset, cost model, Orion builder and numpy app."""
    s = args.scale
    if args.app in ("mf", "mf-adarev"):
        dataset = netflix_like(
            num_rows=int(150 * s),
            num_cols=int(120 * s),
            num_ratings=int(8000 * s),
            seed=args.seed,
        )
        hyper = MFHyper(
            rank=8, step_size=0.04, adarev=(args.app == "mf-adarev"),
            adarev_step=0.15,
        )
        cost = mf_cost_model(hyper)
        return (
            dataset,
            cost,
            lambda cluster, **kw: build_sgd_mf(
                dataset, cluster=cluster, hyper=hyper, **kw
            ),
            SGDMFApp(dataset, hyper),
        )
    if args.app in ("lda", "lda-1d"):
        dataset = lda_corpus(
            num_docs=int(200 * s),
            vocab_size=int(300 * s),
            num_topics=8,
            doc_length=30,
            seed=args.seed,
        )
        hyper = LDAHyper(num_topics=8)
        cost = lda_cost_model(hyper)
        parallelism = "1d" if args.app == "lda-1d" else "2d"
        return (
            dataset,
            cost,
            lambda cluster, **kw: build_lda(
                dataset, cluster=cluster, hyper=hyper,
                parallelism=parallelism, **kw
            ),
            LDAApp(dataset, hyper, seed=args.seed),
        )
    if args.app == "slr":
        dataset = sparse_classification(
            num_samples=int(1500 * s),
            num_features=int(800 * s),
            nnz_per_sample=10,
            seed=args.seed,
        )
        hyper = SLRHyper(step_size=0.2)
        cost = slr_cost_model(hyper)
        return (
            dataset,
            cost,
            lambda cluster, **kw: build_slr(
                dataset, cluster=cluster, hyper=hyper, **kw
            ),
            SLRApp(dataset, hyper),
        )
    # gbt
    dataset = regression_table(num_samples=int(1000 * s), num_features=6,
                               seed=args.seed)
    return (
        dataset,
        None,
        lambda cluster, **kw: build_gbt(dataset, cluster=cluster, **kw),
        None,
    )


def _run_engine(
    engine: str, args, cluster: ClusterSpec, builder, app,
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> Optional[RunHistory]:
    obs_opts = {}
    if tracer is not None:
        obs_opts = {"tracer": tracer, "metrics": metrics}
    if engine == "serial":
        if app is None:
            return None
        return run_serial(
            app, args.epochs, seed=args.seed, cost=cluster.cost,
            tracer=tracer,
        )
    backend = args.backend if args.backend != "simulated" else None
    tune = getattr(args, "tune", "off")
    if engine == "orion":
        fault_opts = _fault_options(
            engine, args, cluster, backend=backend, tune=tune
        )
        extra = {"options": fault_opts} if fault_opts is not None else {}
        return builder(cluster, **obs_opts, **extra).run(args.epochs)
    if engine == "orion-ordered":
        fault_opts = _fault_options(
            engine, args, cluster, backend=backend, tune=tune
        )
        extra = {"options": fault_opts} if fault_opts is not None else {}
        try:
            return builder(
                cluster, ordered=True,
                **dict(obs_opts, trace_process="orion-ordered")
                if obs_opts else {},
                **extra,
            ).run(args.epochs)
        except TypeError:
            return None  # app builder has no ordered mode (GBT)
    if app is None:
        return None  # remaining engines need the numpy app form
    if engine == "bosen":
        return run_bosen(
            app, cluster, args.epochs, seed=args.seed,
            faults=_fault_plan(args, cluster), ckpt_every=args.ckpt_every,
            **obs_opts,
        )
    if engine == "cm":
        return run_managed_comm(
            app, cluster, args.epochs, bandwidth_budget_mbps=1600,
            seed=args.seed,
        )
    if engine == "strads":
        return run_strads(
            builder, cluster, args.epochs,
            builder_opts=dict(obs_opts, trace_process="strads")
            if obs_opts else None,
            options=_fault_options(engine, args, cluster),
        )
    if engine == "tf":
        if not isinstance(app, SGDMFApp):
            return None
        return run_tensorflow_minibatch(
            app, cluster, args.epochs,
            batch_size=max(1, len(app.entries()) // 4),
            step_scale=4.0, seed=args.seed,
        )
    if engine == "tux2":
        if not isinstance(app, SGDMFApp):
            return None
        return run_tux2_minibatch(app, cluster, args.epochs, seed=args.seed)
    raise ValueError(f"unknown engine {engine!r}")


def _print_history(history: RunHistory, out) -> None:
    out.write(f"== {history.label} ==\n")
    initial = history.meta.get("initial_loss")
    if initial is not None:
        out.write(f"initial loss: {initial:.6g}\n")
    kernel_path = history.meta.get("kernel_path")
    if kernel_path is not None:
        path = "batched kernel" if kernel_path else "scalar body"
        out.write(f"execution path: {path}\n")
    recoveries = history.meta.get("recoveries")
    if recoveries:
        out.write(f"crash recoveries: {recoveries}\n")
    out.write(
        f"{'pass':>5s} {'loss':>14s} {'time (s)':>10s} {'MB sent':>9s} "
        f"{'util%':>6s}\n"
    )
    for record in history.records:
        out.write(
            f"{record.epoch:5d} {record.loss:14.6g} {record.time_s:10.4f} "
            f"{record.bytes_sent / 1e6:9.3f} "
            f"{record.utilization * 100:6.1f}\n"
        )


def _lint_main(argv: List[str], out) -> int:
    """``repro lint``: analyze a loop body without running it.

    Builds the requested app's training loop, re-runs the static
    analysis through :func:`repro.analysis.lint.run_lint`, and prints a
    structured diagnostic report with source locations — no epochs are
    executed.  ``repro lint demo`` lints a catalog of deliberately
    offending loop bodies (:mod:`repro.analysis.lint_demo`) instead, one
    per diagnostic code.  Exit code 1 when any error-severity diagnostic
    fires, else 0 (warnings are informational).
    """
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="Statically analyze a parallel loop without running "
                    "it; see docs/analysis.md for the diagnostic catalog.",
    )
    parser.add_argument(
        "app",
        choices=["mf", "mf-adarev", "lda", "lda-1d", "slr", "gbt", "demo"],
        help="application whose training loop to lint, or 'demo' for "
             "the diagnostic-code showcase",
    )
    parser.add_argument("--machines", type=int, default=4)
    parser.add_argument("--workers-per-machine", type=int, default=4)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--scale", type=float, default=1.0,
        help="dataset size multiplier (analysis is size-independent; "
             "smaller is faster to build)",
    )
    parser.add_argument(
        "--ordered", action="store_true",
        help="lint the ordered (serializability-preserving) loop variant",
    )
    args = parser.parse_args(argv)

    from repro.analysis.lint import run_lint

    if args.app == "demo":
        from repro.analysis.lint_demo import demo_reports

        codes = set()
        for title, report in demo_reports():
            out.write(f"== {title} ==\n{report.describe()}\n\n")
            codes.update(report.codes())
        out.write(f"demonstrated codes: {', '.join(sorted(codes))}\n")
        return 0

    dataset, cost, builder, app = _dataset_and_builders(args)
    cluster_kwargs = {"cost": cost} if cost is not None else {}
    cluster = ClusterSpec(
        num_machines=args.machines,
        workers_per_machine=args.workers_per_machine,
        **cluster_kwargs,
    )
    try:
        extra = {"ordered": True} if args.ordered else {}
        program = builder(cluster, **extra)
    except TypeError:
        out.write(f"app {args.app!r} has no ordered loop variant\n")
        return 2
    loop = program.train_loop
    report = run_lint(
        loop.body, loop.info.iteration_space, ordered=loop.info.ordered
    )
    out.write(f"== lint: {args.app} ==\n{report.describe()}\n")
    return 1 if report.errors else 0


def _synth_main(argv: List[str], out) -> int:
    """``repro synth``: show what kernel synthesis makes of an app's loop.

    Builds the requested app's training loop with ``kernel="auto"`` and
    prints the synthesis report — the generated NumPy block-kernel source
    when a tier succeeded, or the W50x fallback diagnostics explaining why
    the scalar interpreter runs instead (see docs/analysis.md, "Kernel
    synthesis").  ``--check`` additionally runs one equivalence-checked
    epoch (bitwise state + accounting against the scalar interpreter).
    Exit code 0 when a kernel was emitted, 1 on fallback.
    """
    parser = argparse.ArgumentParser(
        prog="repro synth",
        description="Synthesize a vectorized block kernel from an app's "
                    "loop body and print the generated source.",
    )
    parser.add_argument(
        "app",
        choices=["mf", "mf-adarev", "glove", "lda", "lda-1d", "slr", "gbt"],
        help="application whose training-loop body to compile",
    )
    parser.add_argument("--machines", type=int, default=4)
    parser.add_argument("--workers-per-machine", type=int, default=4)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--scale", type=float, default=1.0,
        help="dataset size multiplier (synthesis is size-independent; "
             "smaller is faster to build)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="run one equivalence-checked epoch over the synthesized "
             "kernel (fails loudly on any state or accounting difference)",
    )
    args = parser.parse_args(argv)

    if args.app == "glove":
        dataset = cooccurrence_corpus(
            vocab_size=int(120 * args.scale),
            num_tokens=int(6000 * args.scale),
            seed=args.seed,
        )
        cluster = ClusterSpec(
            num_machines=args.machines,
            workers_per_machine=args.workers_per_machine,
        )
        builder = lambda cluster, **kw: build_glove(  # noqa: E731
            dataset, cluster=cluster, **kw
        )
    else:
        dataset, cost, builder, _app = _dataset_and_builders(args)
        cluster_kwargs = {"cost": cost} if cost is not None else {}
        cluster = ClusterSpec(
            num_machines=args.machines,
            workers_per_machine=args.workers_per_machine,
            **cluster_kwargs,
        )
    extra = {"equivalence_check": True} if args.check else {}
    program = builder(cluster, use_kernel="auto", **extra)
    loop = program.train_loop
    synth = loop.synthesis()
    out.write(f"== synth: {args.app} ==\n{synth.describe()}\n")
    w503 = [d for d in loop.diagnostics() if d.code == "W503"]
    for diag in w503:
        out.write(f"{diag.describe()}\n")
    if args.check:
        if synth.engaged and not w503:
            program.epoch_fn()
            out.write(
                "equivalence check: one epoch ran with every kernel-"
                "eligible block verified against the scalar interpreter\n"
            )
        else:
            out.write(
                "equivalence check skipped: no synthesized kernel ran\n"
            )
    return 0 if synth.engaged else 1


def _perf_main(argv: List[str], out) -> int:
    """``repro perf``: inspect recorded runs, detect regressions.

    Consumes the JSONL run store that ``--run-store`` (or the
    ``LoopOptions.run_store`` API option) populates:

    * ``show`` — one table row per recorded run;
    * ``compare`` — two runs head to head (default: the last two);
      exit 1 when the candidate regressed past the noise margin;
    * ``check`` — the latest run of every (signature, clock, epoch)
      group against the median of its predecessors; exit 1 when any
      group regressed.  Deterministic virtual-clock groups have zero
      spread, so identical seeded runs compare bit-exactly while an
      artificially slowed run (``--slow-factor``) is flagged.
    """
    parser = argparse.ArgumentParser(
        prog="repro perf",
        description="Inspect a run store and detect performance "
                    "regressions (see docs/observability.md).",
    )
    parser.add_argument(
        "action", choices=["show", "compare", "check"],
        help="show the recorded runs, compare two of them, or "
             "regression-check the latest run of every group",
    )
    parser.add_argument(
        "--store", metavar="PATH", default=RunStore().root,
        help="run-store directory (default: .repro_runs)",
    )
    parser.add_argument(
        "--threshold", type=float, default=0.2,
        help="minimum relative slowdown to flag (default 0.2 = 20%%)",
    )
    parser.add_argument(
        "--noise-factor", type=float, default=2.0,
        help="noise margin multiplier on the baselines' observed "
             "spread (default 2.0)",
    )
    parser.add_argument(
        "--baseline", type=int, metavar="I", default=-2,
        help="compare: baseline record index (default -2, the "
             "second-to-last run)",
    )
    parser.add_argument(
        "--candidate", type=int, metavar="I", default=-1,
        help="compare: candidate record index (default -1, the last run)",
    )
    args = parser.parse_args(argv)

    store = RunStore(args.store)
    records = store.load()

    if args.action == "show":
        if not records:
            out.write(f"(run store {store.path} is empty)\n")
            return 0
        out.write(
            f"{'#':>3s} {'label':24s} {'sig':8s} {'backend':12s} "
            f"{'clock':7s} {'tier':16s} {'ep':>3s} {'total s':>10s} "
            f"{'util%':>6s} {'flags':s}\n"
        )
        for index, record in enumerate(records):
            flags = []
            if record.faulted:
                flags.append("faulted")
            if record.first_epoch != 1:
                flags.append(f"from-epoch-{record.first_epoch}")
            out.write(
                f"{index:3d} {record.label:24s} {record.signature[:8]:8s} "
                f"{record.backend:12s} {record.clock:7s} "
                f"{record.kernel_tier:16s} {len(record.epochs):3d} "
                f"{record.total_time_s:10.4f} "
                f"{record.mean_utilization * 100:6.1f} "
                f"{','.join(flags)}\n"
            )
        return 0

    if args.action == "compare":
        if len(records) < 2:
            out.write(
                f"need at least two recorded runs to compare "
                f"({len(records)} in {store.path})\n"
            )
            return 2
        try:
            baseline = records[args.baseline]
            candidate = records[args.candidate]
        except IndexError:
            out.write(
                f"record index out of range (store has {len(records)} "
                f"records)\n"
            )
            return 2
        verdict = compare_records(
            baseline, candidate,
            threshold=args.threshold, noise_factor=args.noise_factor,
        )
        out.write(verdict.describe() + "\n")
        base_times, cand_times = baseline.epoch_times, candidate.epoch_times
        if base_times and cand_times:
            out.write("  per-epoch (baseline -> candidate):\n")
            for index in range(max(len(base_times), len(cand_times))):
                b = base_times[index] if index < len(base_times) else None
                c = cand_times[index] if index < len(cand_times) else None
                b_s = f"{b * 1e3:10.3f} ms" if b is not None else "         —"
                c_s = f"{c * 1e3:10.3f} ms" if c is not None else "         —"
                delta = ""
                if b and c:
                    delta = f"  ({c / b:.3f}x)"
                out.write(f"    epoch {index + 1}: {b_s} -> {c_s}{delta}\n")
        return 1 if verdict.regressed else 0

    # check
    verdicts = check_store(
        records, threshold=args.threshold, noise_factor=args.noise_factor
    )
    if not verdicts:
        out.write(
            f"(no comparable run groups in {store.path} — every "
            f"(signature, clock, epoch) group has at most one record)\n"
        )
        return 0
    for verdict in verdicts:
        out.write(verdict.describe() + "\n")
    return 1 if any(verdict.regressed for verdict in verdicts) else 0


def _tune_main(argv: List[str], out) -> int:
    """``repro tune``: demonstrate the adaptive tuner against fixed configs.

    Runs the requested app once per fixed pipeline depth in ``--sweep``,
    then once more starting from the (deliberately mistunable) ``--depth``
    with ``tune=auto`` — printing the tuner's per-epoch decision trail and
    where its epoch times land relative to the best fixed configuration.
    Exit code 0 when the tuned run converges to within ``--within`` of the
    best fixed depth's steady epoch time by epoch ``--by-epoch``, else 1 —
    which makes this subcommand double as the ``make tune-smoke`` driver.

    The winning configuration is persisted in ``--store``'s tuning cache
    (``tuning.json``); a follow-up ``--mode cached`` run against the same
    store starts at the cached configuration from epoch 1.
    """
    parser = argparse.ArgumentParser(
        prog="repro tune",
        description="Sweep fixed pipeline depths, then let the adaptive "
                    "tuner recover from a mistuned start (see "
                    "docs/tuning.md).",
    )
    parser.add_argument(
        "app", choices=["mf", "mf-adarev", "lda", "lda-1d", "slr"],
        help="application to tune",
    )
    parser.add_argument("--epochs", type=int, default=4)
    parser.add_argument(
        "--machines", type=int, default=4,
        help="machines in the modeled cluster (default 4)",
    )
    parser.add_argument(
        "--workers-per-machine", type=int, default=1,
        help="workers per machine (default 1: inter-machine rotation "
             "dominates, which is the regime pipeline depth tunes)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--scale", type=float, default=1.0,
        help="dataset size multiplier",
    )
    parser.add_argument(
        "--depth", type=int, default=1,
        help="starting pipeline depth for the tuned run (default 1: "
             "deliberately mistuned, no pipelining)",
    )
    parser.add_argument(
        "--sweep", default="1,2,4,8", metavar="D,D,...",
        help="fixed pipeline depths to sweep as the reference "
             "(default 1,2,4,8; out-of-range depths clamp)",
    )
    parser.add_argument(
        "--mode", choices=["auto", "cached"], default="auto",
        help="'auto' adapts mid-run and persists the winner; 'cached' "
             "only seeds from a previous run's cache entry",
    )
    parser.add_argument(
        "--store", metavar="PATH", default=None,
        help="run-store directory holding the tuning cache "
             "(default: a fresh temp directory)",
    )
    parser.add_argument(
        "--within", type=float, default=0.05,
        help="relative tolerance against the best fixed config "
             "(default 0.05 = 5%%)",
    )
    parser.add_argument(
        "--by-epoch", type=int, default=3,
        help="epoch by which the tuned run must have converged "
             "(default 3)",
    )
    args = parser.parse_args(argv)

    dataset, cost, builder, _app = _dataset_and_builders(args)
    cluster_kwargs = {"cost": cost} if cost is not None else {}
    cluster = ClusterSpec(
        num_machines=args.machines,
        workers_per_machine=args.workers_per_machine,
        **cluster_kwargs,
    )
    store = args.store or tempfile.mkdtemp(prefix="orion-tune-")

    sweep = sorted({int(d) for d in args.sweep.split(",") if d.strip()})
    out.write(f"== tune: {args.app} ==\n")
    out.write("fixed-depth sweep (steady epoch time):\n")
    fixed: Dict[int, float] = {}
    for depth in sweep:
        program = builder(
            cluster, options=LoopOptions(pipeline_depth=depth)
        )
        history = program.run(args.epochs)
        resolved = program.train_loop.run_summary()["resolved"]
        steady = history.records[-1].epoch_time_s
        fixed[depth] = steady
        out.write(
            f"  depth {depth:3d} (resolved "
            f"{resolved['pipeline_depth']:3d}): "
            f"{steady * 1e3:10.3f} ms/epoch\n"
        )
    best_depth = min(fixed, key=fixed.get)
    best = fixed[best_depth]
    out.write(
        f"best fixed: depth {best_depth} at {best * 1e3:.3f} ms/epoch\n\n"
    )

    out.write(
        f"tuned run (tune={args.mode!r}, starting depth {args.depth}):\n"
    )
    program = builder(
        cluster,
        options=LoopOptions(
            pipeline_depth=args.depth, tune=args.mode, run_store=store,
            run_label=f"{args.app}:tune",
        ),
    )
    history = program.run(args.epochs)
    tuner = program.train_loop.tuning()
    for record in history.records:
        out.write(
            f"  epoch {record.epoch}: {record.epoch_time_s * 1e3:10.3f} ms "
            f"({record.epoch_time_s / best:.3f}x best fixed)\n"
        )
    if tuner.seeded:
        out.write(f"seeded from cache: {tuner.seeded}\n")
    out.write("decisions:\n")
    for decision in tuner.decisions:
        status = "applied" if decision.applied else "declined"
        out.write(
            f"  epoch {decision.epoch}: {decision.knob} "
            f"{decision.old!r} -> {decision.new!r} [{status}] "
            f"{decision.reason}\n"
        )
    if not tuner.decisions:
        out.write("  (none)\n")
    out.write(f"tuning cache: {os.path.join(store, 'tuning.json')}\n")

    check_epoch = min(args.by_epoch, len(history.records))
    converged_time = history.records[check_epoch - 1].epoch_time_s
    target = best * (1.0 + args.within)
    converged = converged_time <= target
    out.write(
        f"epoch {check_epoch}: {converged_time * 1e3:.3f} ms vs target "
        f"{target * 1e3:.3f} ms ({(1 + args.within) * 100:.0f}% of best "
        f"fixed) -> {'converged' if converged else 'NOT converged'}\n"
    )
    return 0 if converged else 1


def main(argv: Optional[List[str]] = None, out=None) -> int:
    """CLI entry point; returns a process exit code."""
    out = out or sys.stdout
    if argv is None:
        argv = sys.argv[1:]
    if argv[:1] == ["lint"]:
        return _lint_main(list(argv[1:]), out)
    if argv[:1] == ["synth"]:
        return _synth_main(list(argv[1:]), out)
    if argv[:1] == ["perf"]:
        return _perf_main(list(argv[1:]), out)
    if argv[:1] == ["tune"]:
        return _tune_main(list(argv[1:]), out)
    args = build_parser().parse_args(argv)
    if args.slow_factor is not None and args.backend != "simulated":
        out.write(
            "--slow-factor injects virtual-clock stragglers and requires "
            "--backend simulated\n"
        )
        return 2
    if args.tune != "off" and (args.faults or args.ckpt_every):
        out.write(
            "--tune is mutually exclusive with --faults/--ckpt-every: "
            "fault injection re-shapes the epoch timeline the tuner "
            "reads\n"
        )
        return 2
    dataset, cost, builder, app = _dataset_and_builders(args)
    cluster_kwargs = {}
    if cost is not None:
        cluster_kwargs["cost"] = cost
    cluster = ClusterSpec(
        num_machines=args.machines,
        workers_per_machine=args.workers_per_machine,
        **cluster_kwargs,
    )

    tracing = bool(args.trace or args.report)
    tracer = Tracer() if tracing else None
    metrics = MetricsRegistry() if tracing else None

    if args.ckpt_every and not args.ckpt_dir:
        args.ckpt_dir = tempfile.mkdtemp(prefix="orion-ckpt-")

    engines = ENGINES if args.engine == "all" else [args.engine]
    results: Dict[str, RunHistory] = {}
    for engine in engines:
        history = _run_engine(
            engine, args, cluster, builder, app, tracer=tracer,
            metrics=metrics,
        )
        if history is None:
            if args.engine != "all":
                out.write(
                    f"engine {engine!r} does not support app {args.app!r}\n"
                )
                return 2
            continue
        if tracer is not None and engine not in _NATIVELY_TRACED:
            # Engines without native tracing still contribute network
            # tracks, lifted from their recorded traffic.
            add_traffic_spans(tracer, history.traffic, process=engine)
        results[engine] = history

    if args.engine == "all":
        out.write(
            f"{'engine':15s} {'final loss':>14s} {'s/iter':>10s} "
            f"{'total s':>10s} {'util%':>6s}\n"
        )
        for engine, history in results.items():
            mean_util = (
                sum(record.utilization for record in history.records)
                / len(history.records) if history.records else 0.0
            )
            out.write(
                f"{engine:15s} {history.final_loss:14.6g} "
                f"{history.time_per_iteration():10.4f} "
                f"{history.total_time_s:10.4f} {mean_util * 100:6.1f}\n"
            )
    else:
        _print_history(next(iter(results.values())), out)
    if args.plot and results:
        from repro.tools import ascii_curves

        out.write("\n" + ascii_curves(list(results.values())) + "\n")
    if args.history_out and results:
        payload = {
            "app": args.app,
            "histories": {
                engine: history.to_json()
                for engine, history in results.items()
            },
        }
        with open(args.history_out, "w") as handle:
            json.dump(payload, handle, indent=2)
        out.write(f"histories written to {args.history_out}\n")
    if args.report and tracer is not None:
        if args.backend == "multiprocess":
            # Real-clock runs traced only `@wall` spans.  Replay the orion
            # engines on the simulated backend into the same tracer so the
            # insight layer can pair each engine's predicted virtual-clock
            # epochs with the measured `@wall` ones (prediction error).
            sim_args = argparse.Namespace(**vars(args))
            sim_args.backend = "simulated"
            sim_args.run_store = None
            sim_args.slow_factor = None
            sim_args.tune = "off"
            for engine in ("orion", "orion-ordered"):
                if engine in results:
                    _run_engine(
                        engine, sim_args, cluster, builder, app,
                        tracer=tracer, metrics=MetricsRegistry(),
                    )
        kernel_diags = [
            f"({engine}) {diag}"
            for engine, history in results.items()
            for diag in history.meta.get("kernel_diagnostics", [])
        ]
        out.write(
            "\n"
            + straggler_report(tracer, metrics, diagnostics=kernel_diags)
            + "\n"
        )
        out.write("\n" + insight_report(tracer) + "\n")
    if args.trace and tracer is not None:
        trace = write_chrome_trace(tracer, args.trace)
        out.write(
            f"trace written to {args.trace} "
            f"({len(trace['traceEvents'])} events; open in ui.perfetto.dev)\n"
        )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
