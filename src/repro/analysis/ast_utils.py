"""AST helpers shared by the loop analyzer and the prefetch synthesizer.

The paper analyzes the for-loop body as a Julia AST inside the
``@parallel_for`` macro; the Python rendering analyzes the loop-body
*function* via :mod:`ast`.  These helpers recover the function's source,
resolve its free variables against closure and globals, and parse the
restricted subscript grammar the paper supports: at most one loop index
variable plus/minus a constant per subscript position.
"""

from __future__ import annotations

import ast
import builtins
import inspect
import textwrap
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from repro.analysis import subscript as sub
from repro.analysis.lint import Diagnostic, SourceLocation
from repro.errors import AnalysisError

__all__ = [
    "get_function_def",
    "get_function_source",
    "resolve_free_variables",
    "IndexBinding",
    "parse_axis",
    "constant_int",
]


def _snippet(source: str, max_len: int = 60) -> str:
    """The first source line, trimmed, for inclusion in diagnostics."""
    line = source.strip().splitlines()[0] if source.strip() else ""
    if len(line) > max_len:
        line = line[: max_len - 3] + "..."
    return line


def get_function_source(
    fn: Callable[..., Any],
) -> Tuple[ast.FunctionDef, Optional[str]]:
    """Return ``(FunctionDef, source_file)`` of a plain Python function.

    Line numbers on the returned tree are absolute positions in the user's
    file (not offsets into the dedented fragment), so diagnostics built
    from any node print clickable ``file:line`` references.

    Raises :class:`~repro.errors.AnalysisError` carrying an ``E101``/``E103``
    :class:`~repro.analysis.lint.Diagnostic` when the source is not
    recoverable (C functions, lambdas, sources from exec'd strings, ...).
    """
    try:
        source_file = inspect.getsourcefile(fn)
    except TypeError:
        source_file = None
    try:
        lines, first_line = inspect.getsourcelines(fn)
    except (OSError, TypeError) as exc:
        raise AnalysisError(
            f"cannot read source of loop body {fn!r}: {exc}",
            diagnostic=Diagnostic(
                code="E101",
                message=f"cannot read source of loop body {fn!r}: {exc}",
                hint="pass a plain def function defined in a real file",
            ),
        ) from exc
    source = textwrap.dedent("".join(lines))
    location = (
        SourceLocation(file=source_file, line=first_line)
        if source_file is not None
        else None
    )
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:  # decorated fragments, etc.
        raise AnalysisError(
            f"cannot parse loop body source: {exc}; "
            f"offending source starts with {_snippet(source)!r}",
            diagnostic=Diagnostic(
                code="E101",
                message=f"cannot parse loop body source: {exc}",
                location=location,
                hint="the body must be a standalone def statement",
            ),
        ) from exc
    # Shift the fragment's line numbers so they index the user's file.
    ast.increment_lineno(tree, first_line - 1)
    for node in tree.body:
        if isinstance(node, ast.FunctionDef):
            return node, source_file
    # Lambdas (and other non-def callables with recoverable source) get a
    # specific code and the offending snippet instead of a generic error.
    is_lambda = getattr(fn, "__name__", "") == "<lambda>"
    kind = "a lambda" if is_lambda else "not a plain def function"
    message = (
        f"loop body must be a plain def function, got {kind}: "
        f"{_snippet(source)!r}"
    )
    raise AnalysisError(
        message,
        diagnostic=Diagnostic(
            code="E101",
            message=message,
            location=location,
            hint="rewrite the loop body as `def body(key, value): ...`",
        ),
    )


def get_function_def(fn: Callable[..., Any]) -> ast.FunctionDef:
    """Return the ``ast.FunctionDef`` of a plain Python function.

    Raises :class:`~repro.errors.AnalysisError` when the source is not
    recoverable (C functions, lambdas defined on exec'd strings, ...).
    """
    tree, _ = get_function_source(fn)
    return tree


def resolve_free_variables(fn: Callable[..., Any]) -> Dict[str, Any]:
    """Map each name the function can see (closure first, then globals) to
    its current object.  Builtins are excluded; unresolvable names simply do
    not appear, and the analyzer decides how to treat them."""
    env: Dict[str, Any] = {}
    env.update(getattr(fn, "__globals__", {}) or {})
    code = fn.__code__
    closure = fn.__closure__ or ()
    for name, cell in zip(code.co_freevars, closure):
        try:
            env[name] = cell.cell_contents
        except ValueError:  # empty cell
            continue
    return env


def is_builtin_name(name: str) -> bool:
    """Whether ``name`` resolves in Python's builtins."""
    return hasattr(builtins, name)


@dataclass(frozen=True)
class IndexBinding:
    """How a local variable name relates to the loop index vector.

    ``dim_idx is None`` means the name is bound to the *whole* index tuple;
    otherwise the name equals ``key[dim_idx] + const``.
    """

    dim_idx: Optional[int]
    const: int = 0
    #: Where the binding was introduced in the user's source, when known.
    #: Excluded from equality/hashing: two bindings to the same index are
    #: interchangeable for analysis regardless of where they were written.
    location: Optional[SourceLocation] = field(default=None, compare=False)

    @property
    def is_whole_key(self) -> bool:
        """True when this binding aliases the entire index tuple."""
        return self.dim_idx is None


def constant_int(node: ast.expr) -> Optional[int]:
    """Extract a literal integer (allowing unary minus), else ``None``."""
    if isinstance(node, ast.Constant) and isinstance(node.value, int) \
            and not isinstance(node.value, bool):
        return node.value
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        inner = constant_int(node.operand)
        if inner is not None:
            return -inner
    return None


def _index_expr(
    node: ast.expr, bindings: Dict[str, IndexBinding]
) -> Optional[Tuple[int, int]]:
    """Parse ``key[d]``, an alias of it, or alias ± const.

    Returns ``(dim_idx, const)`` or ``None`` when the expression is not a
    single-loop-index form.
    """
    if isinstance(node, ast.Name):
        binding = bindings.get(node.id)
        if binding is not None and not binding.is_whole_key:
            return (binding.dim_idx, binding.const)
        return None
    if isinstance(node, ast.Subscript):
        base = node.value
        if isinstance(base, ast.Name):
            binding = bindings.get(base.id)
            if binding is not None and binding.is_whole_key:
                position = constant_int(node.slice)
                if position is not None:
                    return (position, 0)
        return None
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Sub)):
        sign = 1 if isinstance(node.op, ast.Add) else -1
        left_idx = _index_expr(node.left, bindings)
        right_const = constant_int(node.right)
        if left_idx is not None and right_const is not None:
            return (left_idx[0], left_idx[1] + sign * right_const)
        # const + key[d] (addition only; const - key[d] is not supported)
        if sign == 1:
            left_const = constant_int(node.left)
            right_idx = _index_expr(node.right, bindings)
            if left_const is not None and right_idx is not None:
                return (right_idx[0], right_idx[1] + left_const)
        return None
    return None


def parse_axis(node: ast.expr, bindings: Dict[str, IndexBinding]) -> sub.Axis:
    """Classify one subscript position into the supported grammar.

    Anything that is not a constant, a full/constant slice, or one loop
    index variable ± a constant is conservatively
    :data:`~repro.analysis.subscript.SubscriptKind.UNKNOWN` — the paper's
    rule that complex subscripts may take any value within bounds.
    """
    if isinstance(node, ast.Slice):
        if node.step is not None:
            return sub.unknown()
        if node.lower is None and node.upper is None:
            return sub.slice_all()
        lo = constant_int(node.lower) if node.lower is not None else None
        hi = constant_int(node.upper) if node.upper is not None else None
        if lo is not None and hi is not None:
            return sub.const_range(lo, hi)
        return sub.unknown()
    literal = constant_int(node)
    if literal is not None:
        return sub.constant(literal)
    indexed = _index_expr(node, bindings)
    if indexed is not None:
        return sub.index(*indexed)
    return sub.unknown()
