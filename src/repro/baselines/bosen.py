"""Bösen-style data parallelism (paper Sec. 5/6; ref. [45]).

Bösen is a parameter server: the training set is randomly sharded across
workers, every worker processes its shard against a locally cached copy of
the model, and workers synchronize with the servers after processing the
entire local partition (once per data pass, in the paper's configuration).
Concurrent workers therefore compute against parameter values that are one
synchronization period stale — the conflicting accesses whose convergence
penalty motivates dependence-aware parallelization.

The engine executes that semantics literally: per sync period each worker
updates its own replica in place (its *own* updates are visible to it, as
in Bösen's client cache), and replica deltas are summed into the master at
the barrier.

Fault injection mirrors the Orion executor's model
(:mod:`repro.faults`): a :class:`~repro.faults.plan.FaultPlan` can slow
workers down, drop sync messages (paying retry/backoff), and crash a
worker mid-pass — detected at the next sync barrier, recovered by
restoring an in-memory model checkpoint (``ckpt_every`` passes) and
replaying the lost passes.  Without a plan, runs are bit-identical to the
fault-free engine.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.apps.base import Entry, SerialApp
from repro.faults.plan import FaultPlan, RecoveryCosts
from repro.obs.metrics import MetricsRegistry
from repro.obs.observability import Observability
from repro.obs.tracer import Tracer
from repro.runtime.cluster import ClusterSpec
from repro.runtime.history import RunHistory

__all__ = ["run_bosen", "shard_entries"]


def shard_entries(
    entries: List[Entry], num_workers: int, seed: int
) -> List[List[Entry]]:
    """Random (data-parallel) sharding of the training set across workers."""
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(entries))
    shards: List[List[Entry]] = [[] for _ in range(num_workers)]
    for position, entry_index in enumerate(order):
        shards[position % num_workers].append(entries[int(entry_index)])
    return shards


def _merge_deltas(
    master: Dict[str, np.ndarray],
    base: Dict[str, np.ndarray],
    replicas: List[Dict[str, np.ndarray]],
) -> None:
    """Additive aggregation: master = base + Σ_k (replica_k - base)."""
    for name in master:
        delta = np.zeros_like(master[name])
        for replica in replicas:
            delta += replica[name] - base[name]
        master[name] = base[name] + delta


class _SyncMark:
    """Precomputed virtual-time layout of one sync period."""

    __slots__ = (
        "sync_start", "works", "slowest", "transfer", "sync_bytes",
        "barrier_end",
    )

    def __init__(self, sync_start, works, slowest, transfer, sync_bytes,
                 barrier_end):
        self.sync_start = sync_start
        self.works = works
        self.slowest = slowest
        self.transfer = transfer
        self.sync_bytes = sync_bytes
        self.barrier_end = barrier_end


def run_bosen(
    app: SerialApp,
    cluster: ClusterSpec,
    epochs: int,
    seed: int = 0,
    syncs_per_epoch: int = 1,
    label: Optional[str] = None,
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
    trace_process: str = "bosen",
    faults: Optional[FaultPlan] = None,
    ckpt_every: Optional[int] = None,
    obs: Optional[Observability] = None,
) -> RunHistory:
    """Train ``app`` with Bösen data parallelism on ``cluster``.

    Args:
        syncs_per_epoch: synchronization barriers per data pass (Bösen's
            default configuration in the paper synchronizes after the whole
            local partition, i.e. 1).
        tracer: observability tracer; per-worker shard spans and sync
            transfers are placed on the virtual timeline under the
            ``trace_process`` process, comparable side by side with Orion
            traces in one Perfetto file.
        metrics: observability metrics registry.
        trace_process: Perfetto process label for this run's spans.
        faults: optional fault plan (crashes/drops/stragglers), resolved
            against the same virtual clock as the Orion executor's.
        ckpt_every: checkpoint the model in memory every N completed
            passes; crashes replay from the latest checkpoint (without it,
            from the initial state).  The checkpoint write and restore are
            charged at the plan's restore bandwidth.
        obs: bundled observability (explicit ``tracer=``/``metrics=``
            override it component-wise).
    """
    resolved = Observability.resolve(obs=obs, tracer=tracer, metrics=metrics)
    tracer, metrics = resolved.tracer, resolved.metrics
    workers = cluster.num_workers
    state = app.init_state(seed)
    shards = shard_entries(list(app.entries()), workers, seed)
    # The cost model is app-calibrated (e.g. mf_cost_model); engines use it
    # as-is so all engines charge identical per-entry compute.
    entry_cost = cluster.cost.entry_cost_s * cluster.cost.overhead_factor
    model_nbytes = app.model_nbytes(state)
    history = RunHistory(label=label or f"Bosen {app.name}")
    history.meta["initial_loss"] = app.loss(state)
    clock = 0.0

    link = None
    if faults is not None and faults.drops is not None:
        from repro.faults.link import FaultyLink

        link = FaultyLink(faults, cluster.network, metrics=metrics)
    costs = faults.costs if faults is not None else RecoveryCosts()
    protecting = faults is not None or bool(ckpt_every)
    ckpt_state = app.clone_state(state) if protecting else None
    ckpt_epoch = 0
    recoveries = 0
    #: Physical pass counter (replays included) — the drop-randomness
    #: epoch serial, so replayed passes see fresh drop patterns.
    serial = 0
    #: Virtual seconds spent on crashes/recovery/checkpoints since the
    #: last completed pass — folded into the next history record so the
    #: per-pass times sum to the clock.
    pending_extra = 0.0

    per_machine_bytes = 2.0 * model_nbytes
    sync_bytes_base = per_machine_bytes * cluster.num_machines

    def shard_bounds(worker: int, sync: int) -> Tuple[int, int]:
        shard = shards[worker]
        lo = len(shard) * sync // syncs_per_epoch
        hi = len(shard) * (sync + 1) // syncs_per_epoch
        return lo, hi

    def pass_marks(t0: float, factors: Dict[int, float]) -> List[_SyncMark]:
        """Absolute-time layout of one pass, matching the historical
        clock arithmetic expression for expression (bit-identity)."""
        c = t0
        marks: List[_SyncMark] = []
        for sync in range(syncs_per_epoch):
            sync_start = c
            works = []
            slowest = 0.0
            for worker in range(workers):
                lo, hi = shard_bounds(worker, sync)
                work = (hi - lo) * entry_cost
                factor = factors.get(worker)
                if factor is not None:
                    work = work * factor
                works.append(work)
                slowest = max(slowest, work)
            sync_bytes = sync_bytes_base
            if link is not None:
                outcome = link.transfer(
                    per_machine_bytes, key=("sync", sync)
                )
                transfer = outcome.seconds
                sync_bytes = outcome.nbytes_sent * cluster.num_machines
            else:
                transfer = cluster.network.transfer_time(per_machine_bytes)
            c += slowest
            barrier_end = c + (transfer + cluster.cost.sync_overhead_s)
            marks.append(_SyncMark(
                sync_start, works, slowest, transfer, sync_bytes, barrier_end
            ))
            c = barrier_end
        return marks

    def run_pass(epoch: int):
        """One physical data pass; returns ``None`` on completion, or the
        fired crash after charging detection time (state untouched — the
        aborted pass's numerics would be discarded by the restore)."""
        nonlocal clock, serial, pending_extra
        serial += 1
        if link is not None:
            link.begin_epoch(serial)
        t0 = clock
        factors: Dict[int, float] = {}
        if faults is not None and faults.stragglers:
            baseline = pass_marks(t0, {})[-1].barrier_end - t0
            factors = {
                worker: factor
                for worker, factor in faults.straggle_factors(
                    epoch, t0, t0 + baseline
                ).items()
                if 0 <= worker < workers
            }
        marks = pass_marks(t0, factors)
        makespan = marks[-1].barrier_end - t0
        crash = (
            faults.claim_crash(epoch, t0, t0 + makespan)
            if faults is not None
            else None
        )
        if tracer.enabled:
            for worker, factor in sorted(factors.items()):
                tracer.add_span(
                    f"straggler worker{worker} x{factor:.2f}",
                    "straggler",
                    t0,
                    t0 + makespan,
                    track="faults",
                    process=trace_process,
                    args={"worker": worker, "factor": factor},
                )

        if crash is not None:
            crash_rel = crash.at_s - t0
            detect_rel = makespan
            completed_syncs = 0
            for mark in marks:
                if mark.barrier_end - t0 >= crash_rel:
                    detect_rel = max(mark.barrier_end - t0, crash_rel)
                    break
                completed_syncs += 1
            epoch_time = detect_rel + costs.detection_timeout_s
            for mark in marks[:completed_syncs]:
                sync_end = mark.sync_start + mark.slowest
                history.traffic.record(
                    sync_end, sync_end + mark.transfer, mark.sync_bytes,
                    "sync",
                )
                metrics.counter("traffic_bytes_sync").inc(mark.sync_bytes)
            if tracer.enabled:
                tracer.add_span(
                    crash.describe(),
                    "fault",
                    t0 + crash_rel,
                    t0 + epoch_time,
                    track="faults",
                    process=trace_process,
                    args={
                        "worker": crash.crash.worker,
                        "epoch": epoch,
                        "detected_s": t0 + detect_rel,
                    },
                )
            metrics.counter("worker_crashes_total").inc()
            metrics.counter("fault_lost_seconds_total").inc(epoch_time)
            clock = t0 + epoch_time
            pending_extra += epoch_time
            return crash

        epoch_bytes = 0.0
        epoch_busy = 0.0
        for sync, mark in enumerate(marks):
            base = app.clone_state(state)
            replicas = []
            sync_entries = 0
            for worker in range(workers):
                lo, hi = shard_bounds(worker, sync)
                replica = app.clone_state(base)
                for key, value in shards[worker][lo:hi]:
                    app.apply_entry(replica, key, value)
                replicas.append(replica)
                epoch_busy += mark.works[worker]
                sync_entries += hi - lo
                tracer.add_span(
                    f"shard[{worker}] sync {sync}",
                    "block",
                    mark.sync_start,
                    mark.sync_start + mark.works[worker],
                    track=f"worker{worker}",
                    process=trace_process,
                    args={"entries": hi - lo},
                )
            metrics.counter("entries_total").inc(sync_entries)
            _merge_deltas(state, base, replicas)
            # Per machine: push aggregated deltas, pull fresh values.
            sync_end = mark.sync_start + mark.slowest
            history.traffic.record(
                sync_end, sync_end + mark.transfer, mark.sync_bytes, "sync"
            )
            tracer.add_span(
                "sync",
                "sync",
                sync_end,
                sync_end + mark.transfer,
                track="net:sync",
                process=trace_process,
                args={"nbytes": mark.sync_bytes},
            )
            metrics.counter("traffic_bytes_sync").inc(mark.sync_bytes)
            tracer.add_span(
                "barrier",
                "barrier",
                mark.barrier_end - cluster.cost.sync_overhead_s,
                mark.barrier_end,
                track="epochs",
                process=trace_process,
                depth=1,
            )
            epoch_bytes += mark.sync_bytes
        clock = marks[-1].barrier_end
        epoch_time = clock - t0
        if pending_extra:
            epoch_time = epoch_time + pending_extra
            pending_extra = 0.0
        capacity = workers * epoch_time
        utilization = epoch_busy / capacity if capacity > 0 else 0.0
        tracer.add_span(
            f"epoch {epoch}",
            "epoch",
            t0,
            clock,
            track="epochs",
            process=trace_process,
            args={"utilization": utilization, "bytes_sent": epoch_bytes},
        )
        metrics.counter("epochs_total").inc()
        history.append(
            app.loss(state), epoch_time, epoch_bytes, utilization=utilization
        )
        return None

    def maybe_checkpoint(epoch: int) -> None:
        nonlocal ckpt_state, ckpt_epoch, clock, pending_extra
        if not ckpt_every or epoch % ckpt_every != 0 or epoch <= ckpt_epoch:
            return
        ckpt_state = app.clone_state(state)
        ckpt_epoch = epoch
        seconds = model_nbytes / costs.restore_bandwidth_bytes_per_s
        if tracer.enabled:
            tracer.add_span(
                f"checkpoint epoch{epoch}",
                "checkpoint",
                clock,
                clock + seconds,
                track="faults",
                process=trace_process,
                args={"epoch": epoch, "nbytes": model_nbytes},
            )
        metrics.counter("checkpoints_total").inc()
        metrics.counter("checkpoint_seconds_total").inc(seconds)
        clock += seconds
        pending_extra += seconds

    def run_protected(epoch: int) -> None:
        """Run one logical pass; on a crash, restore and replay.  Depth is
        bounded by the plan's crash count (each crash fires once)."""
        nonlocal state, clock, recoveries, pending_extra
        crash = run_pass(epoch)
        if crash is None:
            maybe_checkpoint(epoch)
            return
        recoveries += 1
        state = app.clone_state(ckpt_state)
        restored_nbytes = float(model_nbytes) if ckpt_epoch > 0 else 0.0
        seconds = costs.restart_s + (
            restored_nbytes / costs.restore_bandwidth_bytes_per_s
        )
        if restored_nbytes:
            history.traffic.record(
                clock, clock + seconds, restored_nbytes, "restore"
            )
        if tracer.enabled:
            tracer.add_span(
                f"recovery (replay from epoch {ckpt_epoch})",
                "recovery",
                clock,
                clock + seconds,
                track="faults",
                process=trace_process,
                args={
                    "replay_from": ckpt_epoch,
                    "restored_nbytes": restored_nbytes,
                },
            )
        metrics.counter("recoveries_total").inc()
        metrics.counter("recovery_seconds_total").inc(seconds)
        clock += seconds
        pending_extra += seconds
        for replay in range(ckpt_epoch + 1, epoch + 1):
            run_protected(replay)

    if protecting:
        for epoch in range(1, epochs + 1):
            run_protected(epoch)
        if recoveries:
            history.meta["recoveries"] = recoveries
    else:
        for epoch in range(1, epochs + 1):
            run_pass(epoch)
    history.meta["state"] = state
    return history
