"""Bulk-prefetch function synthesis (paper Sec. 4.4).

When a DistArray is served by parameter servers, per-element random access
pays a network round trip.  Orion synthesizes, from the loop body, a
*prefetch function* that executes only the statements the DistArray read
subscripts depend on (data and control dependences, kept with proper
control flow) and, instead of reading elements and computing, records the
subscript values to fetch in bulk.  Subscripts that depend on values read
from DistArrays are not recorded (fetching them would itself need remote
access).  The construction is in spirit dead-code elimination run backward
from the subscript expressions.

The synthesis here is a static backward slice over the body function's AST:

1. *Taint pass* — local names (transitively) derived from server-array
   reads are tainted; tainted subscripts are not recorded.
2. *Site pass* — untainted read subscripts of server arrays become record
   sites.
3. *Slice pass* — names appearing in recorded subscripts, pulled backward
   through assignments and loop/branch headers, form the needed set.
4. *Emit pass* — a new function is generated containing only needed
   assignments, the control-flow shells around them, and
   ``__record__(array, index)`` calls; it returns the recorded index list.
"""

from __future__ import annotations

import ast
import copy
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis import ast_utils
from repro.analysis.loop_info import LoopInfo
from repro.errors import AnalysisError

__all__ = ["PrefetchFunction", "synthesize_prefetch"]

_RECORD = "__record__"
_OUT = "__prefetch_out__"


@dataclass
class PrefetchFunction:
    """A synthesized prefetch function plus metadata.

    Calling ``fn(key, value)`` returns a list of ``(array_name, index)``
    pairs naming the server-array elements the loop body will read for this
    iteration.  ``source`` keeps the generated code for inspection/tests.
    """

    fn: Callable[..., List[Tuple[str, Tuple[Any, ...]]]]
    arrays: Tuple[str, ...]
    source: str

    def __call__(self, key: Any, value: Any = None) -> List[Tuple[str, Tuple[Any, ...]]]:
        return self.fn(key, value)


def _load_names(node: ast.AST) -> Set[str]:
    return {
        child.id
        for child in ast.walk(node)
        if isinstance(child, ast.Name) and isinstance(child.ctx, ast.Load)
    }


def _target_names(target: ast.expr) -> Set[str]:
    names: Set[str] = set()
    for child in ast.walk(target):
        if isinstance(child, ast.Name) and isinstance(child.ctx, ast.Store):
            names.add(child.id)
    return names


def _server_reads(node: ast.AST, server_arrays: Set[str]) -> List[ast.Subscript]:
    """All Load-context subscripts of server arrays inside ``node``."""
    out = []
    for child in ast.walk(node):
        if (
            isinstance(child, ast.Subscript)
            and isinstance(child.ctx, ast.Load)
            and isinstance(child.value, ast.Name)
            and child.value.id in server_arrays
        ):
            out.append(child)
    return out


def _contains_server_read(node: ast.AST, server_arrays: Set[str]) -> bool:
    return bool(_server_reads(node, server_arrays))


class _TaintPass:
    """Flow-insensitive fixpoint marking names derived from server reads.

    Both data taint (assigned from a server read or a tainted name) and
    control taint (assigned under a branch/loop whose header is tainted)
    propagate — a control-tainted variable's value cannot be computed by
    the prefetch function, so subscripts using it must not be recorded.
    """

    def __init__(self, server_arrays: Set[str]) -> None:
        self.server_arrays = server_arrays
        self.tainted: Set[str] = set()

    def run(self, body: Sequence[ast.stmt]) -> Set[str]:
        changed = True
        while changed:
            changed = False
            for stmt in body:
                changed |= self._visit(stmt, control_tainted=False)
        return self.tainted

    def _taint_targets(
        self, targets: Set[str], value: ast.AST, control_tainted: bool
    ) -> bool:
        dirty = (
            control_tainted
            or _contains_server_read(value, self.server_arrays)
            or bool(_load_names(value) & self.tainted)
        )
        if dirty and not targets <= self.tainted:
            self.tainted |= targets
            return True
        return False

    def _visit(self, stmt: ast.stmt, control_tainted: bool) -> bool:
        changed = False
        if isinstance(stmt, ast.Assign):
            targets: Set[str] = set()
            for target in stmt.targets:
                targets |= _target_names(target)
            changed |= self._taint_targets(targets, stmt.value, control_tainted)
        elif isinstance(stmt, ast.AugAssign):
            if isinstance(stmt.target, ast.Name):
                changed |= self._taint_targets(
                    {stmt.target.id}, stmt.value, control_tainted
                )
        elif isinstance(stmt, (ast.For, ast.While, ast.If)):
            header = stmt.iter if isinstance(stmt, ast.For) else stmt.test
            header_tainted = control_tainted or _expr_is_tainted(
                header, self.tainted, self.server_arrays
            )
            if isinstance(stmt, ast.For):
                targets = _target_names(stmt.target)
                changed |= self._taint_targets(targets, header, header_tainted)
            for child in list(stmt.body) + list(getattr(stmt, "orelse", [])):
                changed |= self._visit(child, header_tainted)
        return changed


def _expr_is_tainted(node: ast.AST, tainted: Set[str], server_arrays: Set[str]) -> bool:
    if _load_names(node) & tainted:
        return True
    return _contains_server_read(node, server_arrays)


def _subscript_elements(node: ast.Subscript) -> List[ast.expr]:
    if isinstance(node.slice, ast.Tuple):
        return list(node.slice.elts)
    return [node.slice]


def _record_call(array_name: str, node: ast.Subscript) -> ast.stmt:
    """Build ``__prefetch_out__.append((name, (e1, e2, ...)))``."""
    elements: List[ast.expr] = []
    for element in _subscript_elements(node):
        if isinstance(element, ast.Slice):
            lower = element.lower or ast.Constant(value=None)
            upper = element.upper or ast.Constant(value=None)
            elements.append(
                ast.Call(
                    func=ast.Name(id="slice", ctx=ast.Load()),
                    args=[copy.deepcopy(lower), copy.deepcopy(upper)],
                    keywords=[],
                )
            )
        else:
            elements.append(copy.deepcopy(element))
    index_tuple = ast.Tuple(elts=elements, ctx=ast.Load())
    payload = ast.Tuple(
        elts=[ast.Constant(value=array_name), index_tuple], ctx=ast.Load()
    )
    call = ast.Call(
        func=ast.Attribute(
            value=ast.Name(id=_OUT, ctx=ast.Load()), attr="append", ctx=ast.Load()
        ),
        args=[payload],
        keywords=[],
    )
    return ast.Expr(value=call)


class _Slicer:
    """Backward slice + emit: produce the pruned statement list."""

    def __init__(
        self,
        server_arrays: Set[str],
        tainted: Set[str],
        index_param: str,
        value_param: Optional[str],
    ) -> None:
        self.server_arrays = server_arrays
        self.tainted = tainted
        self.available = {index_param}
        if value_param:
            self.available.add(value_param)
        self.needed: Set[str] = set()
        self.recorded_arrays: Set[str] = set()

    # ---- pass 3: compute the needed-name set ------------------------- #

    def compute_needed(self, body: Sequence[ast.stmt]) -> None:
        changed = True
        while changed:
            changed = False
            changed |= self._need_walk(body, control_tainted=False)

    def _record_sites(self, stmt: ast.AST) -> List[ast.Subscript]:
        sites = []
        for node in _server_reads(stmt, self.server_arrays):
            if any(
                _expr_is_tainted(element, self.tainted, self.server_arrays)
                for element in _subscript_elements(node)
            ):
                continue
            sites.append(node)
        return sites

    def _need_walk(self, body: Sequence[ast.stmt], control_tainted: bool) -> bool:
        changed = False
        for stmt in body:
            if isinstance(stmt, (ast.Assign, ast.AugAssign)):
                if not control_tainted:
                    for site in self._record_sites(stmt):
                        for element in _subscript_elements(site):
                            before = len(self.needed)
                            self.needed |= _load_names(element)
                            changed |= len(self.needed) != before
                targets: Set[str] = set()
                if isinstance(stmt, ast.Assign):
                    for target in stmt.targets:
                        targets |= _target_names(target)
                elif isinstance(stmt.target, ast.Name):
                    targets = {stmt.target.id}
                if targets & self.needed:
                    source = stmt.value
                    if not _contains_server_read(source, self.server_arrays):
                        before = len(self.needed)
                        self.needed |= _load_names(source)
                        changed |= len(self.needed) != before
            elif isinstance(stmt, (ast.For, ast.While, ast.If)):
                header = stmt.iter if isinstance(stmt, ast.For) else stmt.test
                header_tainted = control_tainted or _expr_is_tainted(
                    header, self.tainted, self.server_arrays
                )
                # The header's own server reads are recordable (their
                # subscripts are statically evaluable even when the header
                # *value* taints everything underneath it).
                if not control_tainted:
                    for site in self._record_sites(header):
                        for element in _subscript_elements(site):
                            before = len(self.needed)
                            self.needed |= _load_names(element)
                            changed |= len(self.needed) != before
                changed |= self._need_walk(stmt.body, header_tainted)
                changed |= self._need_walk(
                    getattr(stmt, "orelse", []), header_tainted
                )
                # If anything inside is needed or recordable, the header's
                # names become needed (control dependence).
                if not header_tainted and self._subtree_is_live(stmt):
                    before = len(self.needed)
                    self.needed |= _load_names(header)
                    if isinstance(stmt, ast.For):
                        self.needed |= _target_names(stmt.target)
                    changed |= len(self.needed) != before
            elif isinstance(stmt, ast.Expr) and not control_tainted:
                for site in self._record_sites(stmt):
                    for element in _subscript_elements(site):
                        before = len(self.needed)
                        self.needed |= _load_names(element)
                        changed |= len(self.needed) != before
        return changed

    def _subtree_is_live(self, stmt: ast.stmt) -> bool:
        for child in ast.walk(stmt):
            if isinstance(child, (ast.Assign, ast.AugAssign, ast.Expr)):
                if self._record_sites(child):
                    return True
                if isinstance(child, ast.Assign):
                    targets: Set[str] = set()
                    for target in child.targets:
                        targets |= _target_names(target)
                    if targets & self.needed:
                        return True
                elif isinstance(child, ast.AugAssign) and isinstance(
                    child.target, ast.Name
                ):
                    if child.target.id in self.needed:
                        return True
        return False

    # ---- pass 4: emit the pruned body --------------------------------- #

    def emit(self, body: Sequence[ast.stmt], control_tainted: bool) -> List[ast.stmt]:
        out: List[ast.stmt] = []
        for stmt in body:
            if isinstance(stmt, (ast.Assign, ast.AugAssign)):
                if not control_tainted:
                    for site in self._record_sites(stmt):
                        name = site.value.id  # type: ignore[union-attr]
                        self.recorded_arrays.add(name)
                        out.append(_record_call(name, site))
                targets: Set[str] = set()
                if isinstance(stmt, ast.Assign):
                    for target in stmt.targets:
                        targets |= _target_names(target)
                elif isinstance(stmt.target, ast.Name):
                    targets = {stmt.target.id}
                if targets & self.needed and not _contains_server_read(
                    stmt.value, self.server_arrays
                ):
                    out.append(copy.deepcopy(stmt))
            elif isinstance(stmt, (ast.For, ast.While, ast.If)):
                header = stmt.iter if isinstance(stmt, ast.For) else stmt.test
                header_tainted = control_tainted or _expr_is_tainted(
                    header, self.tainted, self.server_arrays
                )
                if not control_tainted:
                    for site in self._record_sites(header):
                        name = site.value.id  # type: ignore[union-attr]
                        self.recorded_arrays.add(name)
                        out.append(_record_call(name, site))
                inner = self.emit(stmt.body, header_tainted)
                inner_else = self.emit(getattr(stmt, "orelse", []), header_tainted)
                if not inner and not inner_else:
                    continue
                if header_tainted:
                    # The branch/loop condition needs remote values the
                    # prefetch function must not fetch: drop the subtree.
                    continue
                shell = copy.deepcopy(stmt)
                shell.body = inner or [ast.Pass()]
                if hasattr(shell, "orelse"):
                    shell.orelse = inner_else
                out.append(shell)
            elif isinstance(stmt, ast.Expr) and not control_tainted:
                for site in self._record_sites(stmt):
                    name = site.value.id  # type: ignore[union-attr]
                    self.recorded_arrays.add(name)
                    out.append(_record_call(name, site))
        return out


def synthesize_prefetch(
    body_fn: Callable[..., Any],
    info: LoopInfo,
    server_arrays: Sequence[str],
) -> Optional[PrefetchFunction]:
    """Generate the bulk-prefetch function for a loop body.

    Args:
        body_fn: the original loop-body function (for its environment).
        info: the loop's static analysis (provides the parsed tree).
        server_arrays: names of arrays served by parameter servers whose
            reads should be prefetched.

    Returns:
        A :class:`PrefetchFunction`, or ``None`` when nothing is recordable
        (every read subscript is value-dependent on other DistArray reads).
    """
    if info.tree is None:
        raise AnalysisError("loop info carries no AST; re-run analysis")
    servers = set(server_arrays)
    if not servers:
        return None
    body = info.tree.body
    tainted = _TaintPass(servers).run(body)
    slicer = _Slicer(servers, tainted, info.index_param, info.value_param)
    slicer.compute_needed(body)
    pruned = slicer.emit(body, control_tainted=False)
    if not slicer.recorded_arrays:
        return None

    args = [ast.arg(arg=info.index_param)]
    args.append(ast.arg(arg=info.value_param or "__unused_value__"))
    new_fn = ast.FunctionDef(
        name="__prefetch__",
        args=ast.arguments(
            posonlyargs=[], args=args, kwonlyargs=[], kw_defaults=[],
            defaults=[], vararg=None, kwarg=None,
        ),
        body=(
            [
                ast.Assign(
                    targets=[ast.Name(id=_OUT, ctx=ast.Store())],
                    value=ast.List(elts=[], ctx=ast.Load()),
                )
            ]
            + pruned
            + [ast.Return(value=ast.Name(id=_OUT, ctx=ast.Load()))]
        ),
        decorator_list=[],
    )
    module = ast.Module(body=[new_fn], type_ignores=[])
    ast.fix_missing_locations(module)
    source = ast.unparse(module)
    env = dict(ast_utils.resolve_free_variables(body_fn))
    exec_globals: Dict[str, Any] = dict(env)
    code = compile(module, filename="<orion-prefetch>", mode="exec")
    exec(code, exec_globals)
    return PrefetchFunction(
        fn=exec_globals["__prefetch__"],
        arrays=tuple(sorted(slicer.recorded_arrays)),
        source=source,
    )
