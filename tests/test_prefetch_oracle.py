"""Dynamic oracle for prefetch completeness.

The synthesized prefetch function must record *every* server-array read the
loop body actually performs (missing one means a mid-block remote stall on
a real cluster).  These tests run the body under a recording broker — the
ground truth — and compare against the synthesized function's output, per
iteration, for the SLR-style and slice-read bodies.
"""

from typing import Any, List, Tuple

import numpy as np

from repro.analysis.loop_info import analyze_loop_body
from repro.analysis.prefetch import synthesize_prefetch
from repro.core import access
from repro.core.buffers import DistArrayBuffer
from repro.core.distarray import DistArray


class _RecordingBroker(access.AccessBroker):
    """Ground truth: every read of a watched array, as it happens."""

    def __init__(self, watched_names) -> None:
        self.watched = set(watched_names)
        self.reads: List[Tuple[str, Any]] = []

    def read(self, array, index):
        if array.name in self.watched:
            self.reads.append((array.name, _canon(index)))
        return array.direct_get(index)


def _canon(index):
    if not isinstance(index, tuple):
        index = (index,)
    out = []
    for item in index:
        if isinstance(item, slice):
            out.append(("slice", item.start, item.stop))
        else:
            out.append(int(item))
    return tuple(out)


def _oracle_check(body, space, server_names, rename=None):
    """Assert prefetch output ⊇ actual reads, for every iteration."""
    info = analyze_loop_body(body, space)
    prefetch = synthesize_prefetch(body, info, server_names)
    assert prefetch is not None
    for key, value in space.entries():
        broker = _RecordingBroker(set(rename or server_names))
        with access.install_broker(broker):
            body(key, value)
        actual = {(rename.get(n, n) if rename else n, idx)
                  for n, idx in broker.reads}
        predicted = {(n, _canon(idx)) for n, idx in prefetch(key, value)}
        missing = actual - predicted
        assert not missing, f"unprefetched reads at {key}: {missing}"


weights_o = DistArray.zeros(40, name="weights_o").materialize()
matrix_o = DistArray.randn(3, 40, name="matrix_o", seed=8).materialize()


def test_slr_body_complete():
    rng = np.random.default_rng(9)
    entries = [
        (
            (i,),
            ([(int(f), 1.0) for f in rng.integers(0, 40, size=4)], i % 2),
        )
        for i in range(25)
    ]
    space = DistArray.from_entries(entries, name="osp1", shape=(25,))
    space.materialize()
    buf = DistArrayBuffer(weights_o, name="obuf")
    step = 0.1

    def body(key, sample):
        features, label = sample
        margin = 0.0
        for fid, fval in features:
            margin = margin + weights_o[fid] * fval
        prob = 1.0 / (1.0 + np.exp(-margin))
        for fid, fval in features:
            buf[fid] = -step * (prob - label) * fval

    _oracle_check(
        body, space, ["weights_o"], rename={"weights_o": "weights_o"}
    )


def test_slice_read_body_complete():
    entries = [((i,), float(i)) for i in range(12)]
    space = DistArray.from_entries(entries, name="osp2", shape=(12,))
    space.materialize()

    def body(key, value):
        column = matrix_o[:, key[0]]
        shifted = matrix_o[:, key[0] + 1] if key[0] < 11 else column
        return column.sum() + shifted.sum()

    # Conditional reads: the guarded branch depends only on the loop index,
    # so the synthesized function keeps the branch and stays complete.
    _oracle_check(body, space, ["matrix_o"])


def test_derived_index_body_complete():
    entries = [((i,), float(i % 7)) for i in range(20)]
    space = DistArray.from_entries(entries, name="osp3", shape=(20,))
    space.materialize()

    def body(key, value):
        bucket = int(value) * 2
        first = weights_o[bucket]
        second = weights_o[bucket + 1]
        return first + second

    _oracle_check(body, space, ["weights_o"])
