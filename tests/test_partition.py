"""Unit tests for iteration-space partitioning (repro.runtime.partition)."""

import numpy as np
import pytest

from repro.analysis.unimodular import skew
from repro.errors import PartitionError
from repro.runtime import partition as parts


class TestEqualBounds:
    def test_even_split(self):
        assert parts.equal_bounds(8, 4) == [(0, 2), (2, 4), (4, 6), (6, 8)]

    def test_uneven_split_covers_everything(self):
        bounds = parts.equal_bounds(10, 3)
        assert bounds[0][0] == 0
        assert bounds[-1][1] == 10
        for (lo_a, hi_a), (lo_b, _hi_b) in zip(bounds, bounds[1:]):
            assert hi_a == lo_b

    def test_zero_parts_raises(self):
        with pytest.raises(PartitionError):
            parts.equal_bounds(10, 0)

    def test_zero_extent_raises(self):
        with pytest.raises(PartitionError):
            parts.equal_bounds(0, 2)


class TestBalancedBounds:
    def test_uniform_counts_behave_like_equal(self):
        counts = np.ones(8, dtype=np.int64)
        assert parts.balanced_bounds(counts, 4) == [(0, 2), (2, 4), (4, 6), (6, 8)]

    def test_skewed_counts_get_balanced(self):
        # 90% of entries on the first coordinate: it gets its own partition.
        counts = np.array([90, 2, 2, 2, 2, 2])
        bounds = parts.balanced_bounds(counts, 2)
        assert bounds[0] == (0, 1)
        assert bounds[1] == (1, 6)

    def test_balance_quality_on_power_law(self):
        rng = np.random.default_rng(0)
        weights = 1.0 / np.arange(1, 101) ** 1.2
        counts = rng.multinomial(10_000, weights / weights.sum())
        bounds = parts.balanced_bounds(counts, 8)
        loads = [counts[lo:hi].sum() for lo, hi in bounds]
        # Balanced partitioning keeps the max/mean ratio modest even under
        # a power-law distribution (equal-width would be ~8x here).
        assert max(loads) / (sum(loads) / len(loads)) < 3.0

    def test_covers_full_extent_contiguously(self):
        counts = np.array([5, 0, 0, 1, 9, 3, 3, 7])
        bounds = parts.balanced_bounds(counts, 3)
        assert bounds[0][0] == 0
        assert bounds[-1][1] == len(counts)
        for (lo_a, hi_a), (lo_b, _b) in zip(bounds, bounds[1:]):
            assert hi_a == lo_b

    def test_more_parts_than_coords_pads_empty(self):
        counts = np.array([3, 4])
        bounds = parts.balanced_bounds(counts, 4)
        assert bounds[:2] == [(0, 1), (1, 2)]
        assert bounds[2:] == [(2, 2), (2, 2)]

    def test_all_zero_counts_fall_back_to_equal(self):
        counts = np.zeros(8, dtype=np.int64)
        assert parts.balanced_bounds(counts, 2) == [(0, 4), (4, 8)]

    def test_bucket_of(self):
        bounds = [(0, 3), (3, 7), (7, 10)]
        assert parts.bucket_of(bounds, 0) == 0
        assert parts.bucket_of(bounds, 3) == 1
        assert parts.bucket_of(bounds, 9) == 2
        with pytest.raises(PartitionError):
            parts.bucket_of(bounds, 10)


def _grid_entries(rows, cols):
    return [((i, j), float(i * cols + j)) for i in range(rows) for j in range(cols)]


class TestPartition1D:
    def test_every_entry_assigned_once(self):
        entries = _grid_entries(6, 4)
        partitions = parts.partition_1d(entries, 0, 6, 3)
        assert partitions.total_entries == len(entries)
        assert partitions.num_space == 3
        assert partitions.num_time == 1

    def test_entries_respect_bounds(self):
        entries = _grid_entries(6, 4)
        partitions = parts.partition_1d(entries, 0, 6, 3)
        for (space_idx, _t), block in partitions.blocks.items():
            lo, hi = partitions.space_bounds[space_idx]
            assert all(lo <= key[0] < hi for key, _v in block)

    def test_partition_on_second_dim(self):
        entries = _grid_entries(4, 6)
        partitions = parts.partition_1d(entries, 1, 6, 2)
        for (space_idx, _t), block in partitions.blocks.items():
            lo, hi = partitions.space_bounds[space_idx]
            assert all(lo <= key[1] < hi for key, _v in block)


class TestPartition2D:
    def test_grid_blocks(self):
        entries = _grid_entries(8, 8)
        partitions = parts.partition_2d(entries, 0, 1, 8, 8, 2, 4)
        assert partitions.total_entries == 64
        sizes = partitions.size_matrix()
        assert sizes.shape == (2, 4)
        assert sizes.sum() == 64

    def test_blocks_respect_both_bounds(self):
        entries = _grid_entries(8, 8)
        partitions = parts.partition_2d(entries, 0, 1, 8, 8, 2, 4)
        for (space_idx, time_idx), block in partitions.blocks.items():
            slo, shi = partitions.space_bounds[space_idx]
            tlo, thi = partitions.time_bounds[time_idx]
            for key, _value in block:
                assert slo <= key[0] < shi
                assert tlo <= key[1] < thi

    def test_balanced_flag_changes_bounds_under_skew(self):
        rng = np.random.default_rng(1)
        rows = rng.choice(
            20, size=500, p=(lambda w: w / w.sum())(1.0 / np.arange(1, 21))
        )
        entries = [((int(r), int(i % 10)), 1.0) for i, r in enumerate(rows)]
        balanced = parts.partition_2d(entries, 0, 1, 20, 10, 4, 4, balance=True)
        equal = parts.partition_2d(entries, 0, 1, 20, 10, 4, 4, balance=False)
        balanced_loads = balanced.size_matrix().sum(axis=1)
        equal_loads = equal.size_matrix().sum(axis=1)
        assert balanced_loads.max() < equal_loads.max()

    def test_block_lookup_empty_for_missing(self):
        entries = [((0, 0), 1.0)]
        partitions = parts.partition_2d(entries, 0, 1, 4, 4, 2, 2)
        assert partitions.block(1, 1) == []
        assert partitions.block_size(1, 1) == 0


class TestTransformedPartition:
    def test_skewed_coordinates_bucketed(self):
        entries = _grid_entries(6, 6)
        matrix = skew(2, 0, 1, 1)  # q = (i + j, j)
        partitions = parts.partition_transformed(entries, matrix, 3, 4)
        assert partitions.total_entries == 36
        # Time bounds cover the skewed range [0, 11).
        assert partitions.time_bounds[0][0] == 0
        assert partitions.time_bounds[-1][1] == 11

    def test_blocks_consistent_with_transform(self):
        entries = _grid_entries(5, 5)
        matrix = skew(2, 0, 1, 1)
        partitions = parts.partition_transformed(entries, matrix, 2, 3)
        for (space_idx, time_idx), block in partitions.blocks.items():
            tlo, thi = partitions.time_bounds[time_idx]
            slo, shi = partitions.space_bounds[space_idx]
            for key, _value in block:
                q0 = key[0] + key[1]
                q1 = key[1]
                assert tlo <= q0 < thi
                assert slo <= q1 < shi

    def test_empty_entries_raise(self):
        with pytest.raises(PartitionError):
            parts.partition_transformed([], skew(2, 0, 1, 1), 2, 2)
