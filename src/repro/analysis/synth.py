"""Automatic kernel synthesis: compile a scalar loop body into a block kernel.

The batched fast path (:mod:`repro.runtime.kernels`) historically required
each app to ship a hand-written ``kernel(block_entries, kctx)``.  This module
closes that gap: starting from the loop body's AST, the ``ArrayRef`` /
``IndexBinding`` records, and the subscript classification that
:mod:`repro.analysis.loop_info` already extracted, it *generates* the kernel
source, compiles it against the body's own environment, and hands the
callable to the executor — hand kernels become an override, not a
requirement.

Two synthesis tiers are tried in order:

* **vector** — for straight-line affine bodies whose every DistArray
  subscript is a whole-column, whole-row, or point access addressed by loop
  indices (SGD MF, GloVe, ...).  Entries are split into conflict-free runs
  (:func:`~repro.runtime.kernels.conflict_free_groups_nd`) and each run
  executes as one gather → NumPy-expression → scatter, with the scalar
  body replayed verbatim for single-entry runs.  Reductions keep the scalar
  form (strided ``vecdot``), ``**`` routes through
  :func:`~repro.runtime.kernels.scalar_pow`, so results stay bit-identical
  to the interpreter.
* **block-loop** — for bodies with inner loops, branches, or buffered
  writes (SLR, ...).  The original statements are kept, but DistArray
  subscripts become direct dense-array accesses with per-site accounting
  lists, and buffered writes collect into one ordered
  :meth:`~repro.runtime.kernels.KernelContext.buffer_add` per buffer —
  removing the per-element broker dispatch that dominates scalar runs.

Bodies neither tier can prove safe fall back to the scalar interpreter and
the reason surfaces as a lint diagnostic: **W501** (unsupported construct)
or **W502** (state-dependent access pattern — batching would break the
accounting contract).  **W503** marks a successful synthesis the *plan*
refuses to batch (e.g. parameter-server loops without buffered writes).
Correctness of whatever is emitted is enforced downstream by
``equivalence_check`` (bitwise state + accounting against the scalar
interpreter) and sanitized runs.
"""

from __future__ import annotations

import ast
import copy
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.analysis import ast_utils
from repro.analysis.lint import Diagnostic, location_of
from repro.analysis.loop_info import LoopInfo, _axes_for_ref
from repro.analysis.subscript import SubscriptKind
from repro.errors import AnalysisError
from repro.runtime import kernels as _kernels

__all__ = ["SynthResult", "synthesize_kernel", "synth_report"]


#: Names the generated source reserves for itself (injected helpers and the
#: kernel's own parameters).  A body using any of them cannot be compiled.
_RESERVED_NAMES = {
    "_snp", "_vecdot", "_scalar_pow", "_cfg_nd", "_FULL", "block", "kctx",
    "_synth_kernel", "_lo", "_hi", "_vals", "_prep", "_groups", "_n", "_e",
}
#: Prefixes of generated temporaries; body names must not collide.
_RESERVED_PREFIXES = (
    "_s_", "_nd_", "_ix", "_rd", "_wr", "_bi_", "_bv_",
    "_k0", "_k1", "_k2", "_k3", "_g0", "_g1", "_g2", "_g3",
    "_t0", "_t1", "_t2", "_t3", "_t4", "_t5", "_t6", "_t7", "_t8", "_t9",
    "_v_", "_vv", "_pt",
)

#: NumPy functions whose vectorized form is bit-identical to applying the
#: scalar form per element (same libm call per lane).
_NP_UNARY = {"sqrt", "exp", "log", "log1p", "abs", "tanh", "square", "negative"}
_NP_BINARY = {"minimum", "maximum"}

#: Builtins considered pure for the block-loop tier's taint analysis.
_PURE_BUILTINS = {
    "int", "float", "bool", "len", "abs", "min", "max", "round", "range",
    "zip", "enumerate", "tuple", "list", "sum", "divmod", "pow",
}

try:  # numpy < 2 lacks vecdot; keep the strided row-wise reduction exact
    _vecdot = np.vecdot
except AttributeError:  # pragma: no cover - depends on installed numpy

    def _vecdot(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return np.array([x @ y for x, y in zip(a, b)])


class _Fallback(Exception):
    """Internal: a tier cannot compile this body.

    ``code`` is the lint code the failure maps to when no later tier
    succeeds (W501 unsupported construct / W502 state-dependent access).
    """

    def __init__(self, code: str, message: str, node: Optional[ast.AST] = None):
        super().__init__(message)
        self.code = code
        self.message = message
        self.node = node


@dataclass
class SynthResult:
    """Outcome of one synthesis attempt.

    ``kernel`` is ``None`` when both tiers fell back; then ``diagnostics``
    holds the W50x explaining why.  ``notes`` records non-fatal detail (for
    example why the vector tier was skipped when the block-loop tier still
    succeeded).
    """

    kernel: Optional[Callable[..., Any]] = None
    source: Optional[str] = None
    tier: Optional[str] = None  # "vector" | "block-loop" | None
    diagnostics: List[Diagnostic] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    @property
    def engaged(self) -> bool:
        """Whether synthesis produced a runnable kernel."""
        return self.kernel is not None

    def describe(self) -> str:
        """Human-readable report: tier, notes, diagnostics, source."""
        lines: List[str] = []
        if self.engaged:
            lines.append(f"synthesized kernel (tier: {self.tier})")
        else:
            lines.append("synthesis fell back to the scalar interpreter")
        for note in self.notes:
            lines.append(f"  note: {note}")
        for diag in self.diagnostics:
            lines.append(f"  {diag.describe()}")
        if self.source:
            lines.append("generated source:")
            for src_line in self.source.rstrip().splitlines():
                lines.append("    " + src_line)
        return "\n".join(lines)


# --------------------------------------------------------------------------- #
# shared helpers
# --------------------------------------------------------------------------- #


def _pattern_of(axes: Sequence[Any]) -> Tuple[Tuple[Any, ...], ...]:
    """Canonical, hashable form of a subscript classification."""
    return tuple((a.kind, a.dim_idx, a.const) for a in axes)


def _binding_names(target: ast.expr) -> Set[str]:
    """Names *bound* by an assignment/loop target (``x``, ``a, b``) —
    subscript and attribute stores mutate, they do not rebind."""
    if isinstance(target, ast.Name):
        return {target.id}
    if isinstance(target, (ast.Tuple, ast.List)):
        out: Set[str] = set()
        for element in target.elts:
            out |= _binding_names(element)
        return out
    if isinstance(target, ast.Starred):
        return _binding_names(target.value)
    return set()


def _assigned_names(tree: ast.AST) -> Set[str]:
    """Every name the body binds (assignments, loop targets, defs)."""
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                names |= _binding_names(target)
        elif isinstance(node, ast.For):
            names |= _binding_names(node.target)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, ast.NamedExpr):
            if isinstance(node.target, ast.Name):
                names.add(node.target.id)
    return names


def _used_names(tree: ast.AST) -> Set[str]:
    return {n.id for n in ast.walk(tree) if isinstance(n, ast.Name)}


def _check_common(info: LoopInfo) -> None:
    """Preconditions both tiers share; raises :class:`_Fallback` (W501)."""
    if info.tree is None:
        raise _Fallback("W501", "loop body source is not recoverable")
    for name, array in info.arrays.items():
        if getattr(array, "sparse", False):
            raise _Fallback(
                "W501", f"array {name!r} is sparse (no dense backing to batch over)"
            )
        if not getattr(array, "is_materialized", False):
            raise _Fallback("W501", f"array {name!r} is not materialized")
    used = _used_names(info.tree)
    bad = sorted(
        n for n in used
        if n in _RESERVED_NAMES or n.startswith(_RESERVED_PREFIXES)
    )
    if bad:
        raise _Fallback(
            "W501", f"body uses names reserved by the generator: {', '.join(bad)}"
        )
    assigned = _assigned_names(info.tree)
    shadowed = sorted(
        assigned & (set(info.arrays) | set(info.buffers) | set(info.accumulators))
    )
    if shadowed:
        raise _Fallback(
            "W501",
            f"body reassigns DistArray/buffer names: {', '.join(shadowed)}",
        )


def _subscript_elements(node: ast.Subscript) -> Tuple[ast.expr, ...]:
    if isinstance(node.slice, ast.Tuple):
        return tuple(node.slice.elts)
    return (node.slice,)


# --------------------------------------------------------------------------- #
# tier 1: vectorized gather/compute/scatter over conflict-free groups
# --------------------------------------------------------------------------- #

# Orientation of a vectorized value over a group of n entries:
#   "pure" - scalar, same for every entry        (env constants, literals)
#   "lane" - shape (n,), one value per entry     (point reads, reductions)
#   "col"  - shape (K, n), lanes along axis 1    (whole-column gathers)
#   "row"  - shape (n, K), lanes along axis 0    (whole-row gathers)


@dataclass
class _Val:
    code: str
    orient: str
    view_of: Optional[Tuple[str, Tuple]] = None  # (array, pattern) for views


class _Vectorizer:
    """Compile a straight-line affine body to gather/compute/scatter form."""

    def __init__(self, info: LoopInfo, env: Dict[str, Any]):
        self.info = info
        self.env = env
        self.bindings: Dict[str, ast_utils.IndexBinding] = {
            info.index_param: ast_utils.IndexBinding(dim_idx=None)
        }
        self.locals: Dict[str, _Val] = {}
        self.patterns: Dict[str, Tuple] = {}
        self.written: Dict[str, Tuple] = {}
        self.vec_lines: List[str] = []
        self.replay_stmts: List[ast.stmt] = []
        self._temp = 0

    # -------- small utilities -------------------------------------------- #

    def _fail(self, message: str, node: Optional[ast.AST] = None) -> None:
        raise _Fallback("W501", message, node)

    def _temp_name(self) -> str:
        self._temp += 1
        return f"_t{self._temp}"

    @staticmethod
    def _gidx(dim: int, const: int) -> str:
        """Group-relative index-array expression for ``key[dim] + const``."""
        return f"_g{dim}" if const == 0 else f"(_g{dim} + {const})"

    @staticmethod
    def _kidx(dim: int, const: int) -> str:
        """Whole-block index-array expression (accounting)."""
        return f"_k{dim}" if const == 0 else f"(_k{dim} + {const})"

    def _classify(self, node: ast.Subscript) -> Tuple[str, str, Tuple]:
        """Classify an array subscript; returns (array name, kind, pattern).

        ``kind`` is ``"col"`` / ``"row"`` / ``"pt"``; anything else falls
        back.  Enforces one subscript pattern per array.
        """
        base = node.value
        if not isinstance(base, ast.Name) or base.id not in self.info.arrays:
            self._fail("subscript on a non-DistArray value", node)
        name = base.id
        array = self.info.arrays[name]
        elements = _subscript_elements(node)
        try:
            axes = _axes_for_ref(
                array, name, elements, self.bindings,
                self.info.num_iter_dims, None,
            )
        except AnalysisError as exc:
            raise _Fallback("W501", str(exc), node)
        kinds = tuple(a.kind for a in axes)
        if len(axes) == 2 and kinds == (SubscriptKind.SLICE_ALL, SubscriptKind.INDEX):
            kind = "col"
        elif len(axes) == 2 and kinds == (SubscriptKind.INDEX, SubscriptKind.SLICE_ALL):
            kind = "row"
        elif all(k is SubscriptKind.INDEX for k in kinds):
            kind = "pt"
        else:
            self._fail(f"unsupported subscript shape on {name!r}", node)
        pattern = _pattern_of(axes)
        known = self.patterns.get(name)
        if known is None:
            self.patterns[name] = pattern
        elif known != pattern:
            self._fail(f"array {name!r} accessed through multiple patterns", node)
        return name, kind, pattern

    # -------- expression translation -------------------------------------- #

    def _combine(self, left: _Val, right: _Val, template: str,
                 node: ast.AST) -> _Val:
        """Elementwise combination with orientation broadcasting."""
        lo, ro = left.orient, right.orient
        lc, rc = left.code, right.code
        if {lo, ro} == {"col", "row"}:
            self._fail("mixing column- and row-oriented values", node)
        if lo == "row" and ro == "lane":
            rc = f"({rc})[:, None]"
        elif ro == "row" and lo == "lane":
            lc = f"({lc})[:, None]"
        rank = {"pure": 0, "lane": 1, "col": 2, "row": 2}
        orient = left.orient if rank[lo] >= rank[ro] else right.orient
        return _Val(template.format(l=lc, r=rc), orient)

    def _expr(self, node: ast.expr) -> _Val:
        # A loop-index expression (key[d] ± c or an alias) is a lane of ints.
        indexed = ast_utils._index_expr(node, self.bindings)
        if indexed is not None:
            return _Val(self._gidx(*indexed), "lane")
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool) or not isinstance(
                node.value, (int, float)
            ):
                self._fail("non-numeric constant", node)
            return _Val(repr(node.value), "pure")
        if isinstance(node, ast.Name):
            if node.id in self.locals:
                return self.locals[node.id]
            if node.id in self.bindings:
                self._fail("whole loop-index tuple used as a value", node)
            if node.id == self.info.value_param:
                return _Val("_vv", "lane")
            if node.id in self.info.arrays or node.id in self.info.buffers:
                self._fail(f"bare DistArray reference {node.id!r}", node)
            value = self.env.get(node.id)
            if isinstance(value, (int, float, np.integer, np.floating)) and \
                    not isinstance(value, bool):
                return _Val(node.id, "pure")
            self._fail(f"unsupported name {node.id!r}", node)
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
            v = self._expr(node.operand)
            return _Val(f"(-{v.code})", v.orient)
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.UAdd):
            return self._expr(node.operand)
        if isinstance(node, ast.BinOp):
            return self._binop(node)
        if isinstance(node, ast.Call):
            return self._call(node)
        if isinstance(node, ast.Subscript) and isinstance(node.ctx, ast.Load):
            return self._gather(node)
        self._fail(f"unsupported expression ({type(node).__name__})", node)

    def _binop(self, node: ast.BinOp) -> _Val:
        op = node.op
        if isinstance(op, ast.MatMult):
            left, right = self._expr(node.left), self._expr(node.right)
            # Keep the reduction in the scalar body's exact sequential form:
            # row-wise vecdot over strided operands (see kernels contract).
            if left.orient == "col" and right.orient == "col":
                return _Val(f"_vecdot(({left.code}).T, ({right.code}).T)", "lane")
            if left.orient == "row" and right.orient == "row":
                return _Val(f"_vecdot({left.code}, {right.code})", "lane")
            self._fail("matmul on non-gather operands", node)
        if isinstance(op, ast.Pow):
            left, right = self._expr(node.left), self._expr(node.right)
            if left.orient == "pure" and right.orient == "pure":
                return _Val(f"({left.code} ** {right.code})", "pure")
            # Vectorized ** is not bit-identical to scalar pow; use the
            # python-level elementwise helper.
            return self._combine(left, right, "_scalar_pow({l}, {r})", node)
        ops = {ast.Add: "+", ast.Sub: "-", ast.Mult: "*", ast.Div: "/"}
        sym = ops.get(type(op))
        if sym is None:
            self._fail(f"unsupported operator {type(op).__name__}", node)
        left, right = self._expr(node.left), self._expr(node.right)
        return self._combine(left, right, f"({{l}} {sym} {{r}})", node)

    def _call(self, node: ast.Call) -> _Val:
        if node.keywords:
            self._fail("call with keyword arguments", node)
        func = node.func
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            if self.env.get(func.value.id) is np:
                args = [self._expr(a) for a in node.args]
                if func.attr in _NP_UNARY and len(args) == 1:
                    (a,) = args
                    return _Val(f"_snp.{func.attr}({a.code})", a.orient)
                if func.attr in _NP_BINARY and len(args) == 2:
                    return self._combine(
                        args[0], args[1], f"_snp.{func.attr}({{l}}, {{r}})", node
                    )
                if func.attr == "power" and len(args) == 2:
                    return self._combine(
                        args[0], args[1], "_scalar_pow({l}, {r})", node
                    )
                self._fail(f"unsupported numpy call np.{func.attr}", node)
        if isinstance(func, ast.Name) and func.id in ("min", "max") \
                and len(node.args) == 2 and func.id not in self.env:
            left, right = (self._expr(a) for a in node.args)
            if left.orient == "pure" and right.orient == "pure":
                return _Val(f"{func.id}({left.code}, {right.code})", "pure")
            np_name = "minimum" if func.id == "min" else "maximum"
            return self._combine(left, right, f"_snp.{np_name}({{l}}, {{r}})", node)
        if isinstance(func, ast.Name) and func.id == "abs" \
                and len(node.args) == 1 and func.id not in self.env:
            a = self._expr(node.args[0])
            if a.orient == "pure":
                return _Val(f"abs({a.code})", "pure")
            return _Val(f"_snp.abs({a.code})", a.orient)
        self._fail("unsupported call", node)

    def _gather(self, node: ast.Subscript) -> _Val:
        name, kind, pattern = self._classify(node)
        axes = pattern
        if kind == "col":
            dim, const = axes[1][1], axes[1][2]
            code = f"_nd_{name}.take({self._gidx(dim, const)}, axis=1)"
            return _Val(code, "col", view_of=(name, pattern))
        if kind == "row":
            dim, const = axes[0][1], axes[0][2]
            code = f"_nd_{name}.take({self._gidx(dim, const)}, axis=0)"
            return _Val(code, "row", view_of=(name, pattern))
        parts = ", ".join(self._gidx(a[1], a[2]) for a in axes)
        return _Val(f"_nd_{name}[{parts}]", "lane")

    # -------- statement translation --------------------------------------- #

    def _stmt(self, node: ast.stmt) -> None:
        if isinstance(node, ast.Expr) and isinstance(node.value, ast.Constant):
            return  # docstring / bare constant
        if not isinstance(node, ast.Assign):
            self._fail(
                f"unsupported statement ({type(node).__name__})", node
            )
        if len(node.targets) != 1:
            self._fail("chained assignment", node)
        target = node.targets[0]
        if isinstance(target, ast.Tuple):
            self._unpack(node, target)
            return
        if isinstance(target, ast.Name):
            self._assign_name(node, target)
            return
        if isinstance(target, ast.Subscript):
            self._assign_subscript(node, target)
            return
        self._fail("unsupported assignment target", node)

    def _unpack(self, node: ast.Assign, target: ast.Tuple) -> None:
        """``i, j = key`` — per-dimension index aliases."""
        value = node.value
        if (
            isinstance(value, ast.Name)
            and value.id in self.bindings
            and self.bindings[value.id].is_whole_key
            and len(target.elts) == self.info.num_iter_dims
            and all(isinstance(e, ast.Name) for e in target.elts)
        ):
            for dim, elt in enumerate(target.elts):
                self._bind(elt.id, ast_utils.IndexBinding(dim_idx=dim), node)
            self.replay_stmts.append(node)
            return
        self._fail("tuple assignment (only `i, j = key` is supported)", node)

    def _bind(self, name: str, binding: ast_utils.IndexBinding,
              node: ast.AST) -> None:
        if name in self.bindings or name in self.locals:
            self._fail(f"reassignment of {name!r}", node)
        self.bindings[name] = binding

    def _assign_name(self, node: ast.Assign, target: ast.Name) -> None:
        name = target.id
        # Pure index aliases produce no vector code.
        indexed = ast_utils._index_expr(node.value, self.bindings)
        if indexed is not None:
            self._bind(name, ast_utils.IndexBinding(*indexed), node)
            self.replay_stmts.append(node)
            return
        if isinstance(node.value, ast.Name) and \
                node.value.id in self.bindings and \
                self.bindings[node.value.id].is_whole_key:
            self._bind(name, ast_utils.IndexBinding(dim_idx=None), node)
            self.replay_stmts.append(node)
            return
        if name in self.locals or name in self.bindings:
            self._fail(f"reassignment of {name!r}", node)
        value = self._expr(node.value)
        view = value.view_of if isinstance(node.value, ast.Subscript) else None
        temp = f"_v_{name}"
        self.vec_lines.append(f"{temp} = {value.code}")
        self.locals[name] = _Val(temp, value.orient, view_of=view)
        self.replay_stmts.append(node)

    def _assign_subscript(self, node: ast.Assign, target: ast.Subscript) -> None:
        name, kind, pattern = self._classify(target)
        value = self._expr(node.value)
        axes = pattern
        temp = self._temp_name()
        code = value.code
        if kind == "col":
            if value.orient == "row":
                self._fail("row-oriented value stored into a column", node)
            dest = f"_nd_{name}[:, {self._gidx(axes[1][1], axes[1][2])}]"
        elif kind == "row":
            if value.orient == "col":
                self._fail("column-oriented value stored into a row", node)
            if value.orient == "lane":
                code = f"({code})[:, None]"
            dest = f"_nd_{name}[{self._gidx(axes[0][1], axes[0][2])}, :]"
        else:  # pt
            if value.orient in ("col", "row"):
                self._fail("matrix-oriented value stored into a point", node)
            parts = ", ".join(self._gidx(a[1], a[2]) for a in axes)
            dest = f"_nd_{name}[{parts}]"
        self.vec_lines.append(f"{temp} = {code}")
        self.vec_lines.append(f"{dest} = {temp}")
        self.written[name] = pattern
        # The scalar body sees writes through earlier captured *views*;
        # rebind any view-local of this array to the freshly stored values
        # (within a conflict-free group the scatter is exactly the update).
        for local in self.locals.values():
            if local.view_of == (name, pattern):
                local.code = temp
        self.replay_stmts.append(node)

    # -------- assembly ----------------------------------------------------- #

    def build(self) -> str:
        info = self.info
        _check_common(info)
        if info.buffers:
            raise _Fallback("W501", "buffered writes (vector tier)")
        if info.accumulators:
            raise _Fallback(
                "W501",
                "accumulator update inside the body (not batchable: the "
                "equivalence checker cannot rewind accumulators)",
            )
        try:
            first = next(iter(info.iteration_space.entries()), None)
        except Exception:
            first = None
        if first is not None and not isinstance(
            first[1], (int, float, np.integer, np.floating)
        ):
            raise _Fallback("W501", "non-scalar entry values (vector tier)")
        assert info.tree is not None
        for stmt in info.tree.body:
            self._stmt(stmt)
        if not self.written:
            raise _Fallback("W501", "no vectorizable DistArray writes")
        conflict_dims = sorted({
            axis[1] for pattern in self.written.values()
            for axis in pattern if axis[0] is SubscriptKind.INDEX
        })
        if not conflict_dims:
            raise _Fallback("W501", "writes are not addressed by loop indices")
        return self._emit(conflict_dims)

    def _emit(self, conflict_dims: List[int]) -> str:
        info = self.info
        dims = list(range(info.num_iter_dims))
        need_pt: Dict[Tuple, str] = {}
        acct_lines = self._accounting(need_pt)

        lines: List[str] = []
        out = lines.append
        out("def _synth_kernel(block, kctx):")
        out("    _prep = kctx.cache.get('_synth')")
        out("    if _prep is None:")
        out("        _n = len(block)")
        for d in dims:
            out(f"        _k{d} = _snp.fromiter("
                f"(_e[0][{d}] for _e in block), _snp.intp, _n)")
        out("        _vals = _snp.fromiter((_e[1] for _e in block), "
            "_snp.float64, _n)")
        group_args = ", ".join(f"_k{d}.tolist()" for d in conflict_dims)
        out(f"        _groups = _cfg_nd([{group_args}])")
        for key, pt_name in need_pt.items():
            zip_args = ", ".join(
                f"(_k{d} + {c}).tolist()" if c else f"_k{d}.tolist()"
                for d, c in key
            )
            out(f"        {pt_name} = list(zip({zip_args}))")
        prep_names = [f"_k{d}" for d in dims] + ["_vals", "_groups"] + \
            list(need_pt.values())
        out(f"        kctx.cache['_synth'] = _prep = ({', '.join(prep_names)})")
        out(f"    ({', '.join(prep_names)}) = _prep")
        for name in self.patterns:
            out(f"    _nd_{name} = {name}.values")
        out("    for _lo, _hi in _groups:")
        out("        if _hi - _lo == 1:")
        for line in self._replay_lines():
            out("            " + line)
        out("            continue")
        used_dims = sorted({
            axis[1] for pattern in self.patterns.values()
            for axis in pattern if axis[0] is SubscriptKind.INDEX
        })
        for d in used_dims:
            out(f"        _g{d} = _k{d}[_lo:_hi]")
        out("        _vv = _vals[_lo:_hi]")
        for line in self.vec_lines:
            out("        " + line)
        lines.extend(acct_lines)
        return "\n".join(lines) + "\n"

    def _accounting(self, need_pt: Dict[Tuple, str]) -> List[str]:
        """One ``account_*`` declaration per static reference site."""
        out: List[str] = []
        for name, refs in self.info.refs.items():
            for ref in refs:
                pattern = _pattern_of(ref.axes)
                if self.patterns.get(name) != pattern:
                    raise _Fallback(
                        "W501",
                        f"accounting mismatch for {name!r} (untranslated site)",
                    )
                kinds = tuple(a[0] for a in pattern)
                verb = "writes" if ref.is_write else "reads"
                if kinds == (SubscriptKind.SLICE_ALL, SubscriptKind.INDEX):
                    idx = self._kidx(pattern[1][1], pattern[1][2])
                    out.append(f"    kctx.account_col_{verb}({name}, {idx})")
                elif kinds == (SubscriptKind.INDEX, SubscriptKind.SLICE_ALL):
                    idx = self._kidx(pattern[0][1], pattern[0][2])
                    out.append(f"    kctx.account_row_{verb}({name}, {idx})")
                elif len(pattern) == 1:
                    idx = self._kidx(pattern[0][1], pattern[0][2])
                    out.append(f"    kctx.account_point_{verb}({name}, {idx})")
                else:
                    key = tuple((a[1], a[2]) for a in pattern)
                    pt_name = need_pt.setdefault(key, f"_pt{len(need_pt)}")
                    method = "account_writes" if ref.is_write else "account_reads"
                    out.append(f"    kctx.{method}({name}, {pt_name})")
        return out

    def _replay_lines(self) -> List[str]:
        """The original scalar statements, renamed for single-entry groups.

        Scalar NumPy indexing gives the replay branch the body's exact view
        semantics, so heavy-conflict blocks stay bit-identical without any
        orientation machinery.
        """
        info = self.info
        assigned = set(self.locals) | {
            n for n in self.bindings if n != info.index_param
        }
        arrays = set(self.patterns)
        index_param, value_param = info.index_param, info.value_param

        class _Rename(ast.NodeTransformer):
            def visit_Name(self, node: ast.Name) -> ast.Name:
                if node.id == index_param:
                    return ast.copy_location(
                        ast.Name(id="_s_key", ctx=node.ctx), node
                    )
                if value_param is not None and node.id == value_param:
                    return ast.copy_location(
                        ast.Name(id=f"_s_{value_param}", ctx=node.ctx), node
                    )
                if node.id in assigned:
                    return ast.copy_location(
                        ast.Name(id=f"_s_{node.id}", ctx=node.ctx), node
                    )
                if node.id in arrays:
                    return ast.copy_location(
                        ast.Name(id=f"_nd_{node.id}", ctx=node.ctx), node
                    )
                return node

        key_parts = ", ".join(
            f"_k{d}[_lo]" for d in range(info.num_iter_dims)
        )
        lines = [f"_s_key = ({key_parts},)"]
        if value_param is not None:
            lines.append(f"_s_{value_param} = _vals[_lo]")
        renamer = _Rename()
        for stmt in self.replay_stmts:
            new = renamer.visit(copy.deepcopy(stmt))
            ast.fix_missing_locations(new)
            lines.extend(ast.unparse(new).splitlines())
        return lines


# --------------------------------------------------------------------------- #
# tier 2: block-loop compilation with direct dense access + bulk accounting
# --------------------------------------------------------------------------- #


class _BlockLoop:
    """Keep the body's statements; replace broker dispatch with direct
    dense-array access, per-site accounting lists, and one ordered
    ``buffer_add`` per buffer."""

    def __init__(self, info: LoopInfo, env: Dict[str, Any]):
        self.info = info
        self.env = env
        self.tainted: Set[str] = set()
        self.sites: List[Tuple[str, str, bool]] = []  # (list name, array, write)
        self._counter = 0

    # -------- taint analysis ---------------------------------------------- #

    def _expr_tainted(self, node: ast.expr) -> bool:
        """Whether an expression may depend on mutable array state (or other
        per-epoch-varying state such as RNG draws)."""
        for sub_node in ast.walk(node):
            if isinstance(sub_node, ast.Name) and sub_node.id in self.tainted:
                return True
            if isinstance(sub_node, ast.Subscript):
                base = sub_node.value
                if isinstance(base, ast.Name) and (
                    base.id in self.info.arrays or base.id in self.info.buffers
                ):
                    return True
            if isinstance(sub_node, ast.Call):
                func = sub_node.func
                if not (
                    isinstance(func, ast.Name)
                    and func.id in _PURE_BUILTINS
                    and func.id not in self.env
                ) and not (
                    isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and self.env.get(func.value.id) is np
                ):
                    return True
            if isinstance(sub_node, (ast.Lambda, ast.NamedExpr)):
                return True
        return False

    def _compute_taints(self, tree: ast.FunctionDef) -> None:
        """Fixpoint over the whole body (handles backward flow in loops)."""
        changed = True
        while changed:
            changed = False
            for node in ast.walk(tree):
                names: List[str] = []
                tainted = False
                if isinstance(node, ast.Assign):
                    tainted = self._expr_tainted(node.value)
                    for target in node.targets:
                        names.extend(_binding_names(target))
                elif isinstance(node, ast.AugAssign) and \
                        isinstance(node.target, ast.Name):
                    tainted = self._expr_tainted(node.value)
                    names.append(node.target.id)
                elif isinstance(node, ast.For):
                    tainted = self._expr_tainted(node.iter)
                    names.extend(_binding_names(node.target))
                elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    tainted = True
                    names.append(node.name)
                if tainted:
                    for name in names:
                        if name not in self.tainted:
                            self.tainted.add(name)
                            changed = True

    # -------- expression rewriting ---------------------------------------- #

    def _new_id(self) -> int:
        self._counter += 1
        return self._counter

    def _index_source(self, node: ast.Subscript) -> str:
        """Runtime index value of a subscript, as source (slices become
        ``slice()`` objects so the value can be recorded for accounting)."""
        def convert(element: ast.expr) -> str:
            if isinstance(element, ast.Slice):
                if element.step is not None:
                    raise _Fallback("W501", "stepped slice subscript", element)
                if element.lower is None and element.upper is None:
                    return "_FULL"
                lo = "None" if element.lower is None else ast.unparse(element.lower)
                hi = "None" if element.upper is None else ast.unparse(element.upper)
                return f"slice({lo}, {hi})"
            return ast.unparse(element)

        if isinstance(node.slice, ast.Tuple):
            return "(" + ", ".join(convert(e) for e in node.slice.elts) + ")"
        return convert(node.slice)

    def _array_of(self, node: ast.expr) -> Optional[str]:
        if isinstance(node, ast.Subscript) and isinstance(node.value, ast.Name):
            if node.value.id in self.info.arrays:
                return node.value.id
        return None

    def _buffer_of(self, node: ast.expr) -> Optional[str]:
        if isinstance(node, ast.Subscript) and isinstance(node.value, ast.Name):
            if node.value.id in self.info.buffers:
                return node.value.id
        return None

    @staticmethod
    def _contains_array_read(node: ast.AST, names: Set[str]) -> bool:
        for sub_node in ast.walk(node):
            if isinstance(sub_node, ast.Subscript) and \
                    isinstance(sub_node.value, ast.Name) and \
                    sub_node.value.id in names:
                return True
        return False

    def _rewrite_reads(self, node: ast.expr) -> Tuple[ast.expr, List[str]]:
        """Hoist every DistArray read in an expression into pre-lines.

        Returns the rewritten expression and the hoisted source lines, in
        left-to-right evaluation order.
        """
        pre: List[str] = []
        outer = self
        array_names = set(self.info.arrays) | set(self.info.buffers)

        class _Reads(ast.NodeTransformer):
            def _guard(self, node_: ast.AST, what: str) -> None:
                if outer._contains_array_read(node_, array_names):
                    raise _Fallback(
                        "W501", f"DistArray access inside {what}", node_
                    )

            def visit_BoolOp(self, node_: ast.BoolOp) -> ast.AST:
                self._guard(node_, "a short-circuit boolean")
                return node_

            def visit_IfExp(self, node_: ast.IfExp) -> ast.AST:
                self._guard(node_, "a conditional expression")
                return node_

            def visit_Compare(self, node_: ast.Compare) -> ast.AST:
                if len(node_.ops) > 1:
                    self._guard(node_, "a chained comparison")
                    return node_
                return self.generic_visit(node_)

            def visit_Lambda(self, node_: ast.Lambda) -> ast.AST:
                self._guard(node_, "a lambda")
                return node_

            def visit_ListComp(self, node_: ast.AST) -> ast.AST:
                self._guard(node_, "a comprehension")
                return node_

            visit_SetComp = visit_ListComp
            visit_DictComp = visit_ListComp
            visit_GeneratorExp = visit_ListComp

            def visit_NamedExpr(self, node_: ast.NamedExpr) -> ast.AST:
                raise _Fallback("W501", "assignment expression (:=)", node_)

            def visit_Name(self, node_: ast.Name) -> ast.AST:
                # Any array subscript was already replaced, so a surviving
                # bare DistArray name escapes the batching contract (for
                # example handed whole to a helper function).
                if node_.id in outer.info.arrays or \
                        node_.id in outer.info.buffers:
                    raise _Fallback(
                        "W501",
                        f"bare DistArray reference {node_.id!r}",
                        node_,
                    )
                return node_

            def visit_Attribute(self, node_: ast.Attribute) -> ast.AST:
                if isinstance(node_.value, ast.Name) and (
                    node_.value.id in outer.info.arrays
                    or node_.value.id in outer.info.buffers
                ):
                    raise _Fallback(
                        "W501",
                        f"method/attribute access on DistArray "
                        f"{node_.value.id!r}",
                        node_,
                    )
                return self.generic_visit(node_)

            def visit_Subscript(self, node_: ast.Subscript) -> ast.AST:
                buffer_name = outer._buffer_of(node_)
                if buffer_name is not None:
                    raise _Fallback(
                        "W501", f"read of buffer {buffer_name!r}", node_
                    )
                array_name = outer._array_of(node_)
                if array_name is None:
                    return self.generic_visit(node_)
                for element in ast.walk(node_.slice):
                    if isinstance(element, ast.Name) and \
                            element.id in outer.tainted:
                        raise _Fallback(
                            "W502",
                            f"read of {array_name!r} through a "
                            f"state-dependent subscript",
                            node_,
                        )
                if outer._contains_array_read(node_.slice, array_names):
                    raise _Fallback(
                        "W502",
                        f"read of {array_name!r} subscripted by another "
                        f"DistArray read",
                        node_,
                    )
                site = outer._new_id()
                list_name = f"_rd{site}"
                outer.sites.append((list_name, array_name, False))
                pre.append(f"_ix{site} = {outer._index_source(node_)}")
                pre.append(f"{list_name}.append(_ix{site})")
                return ast.copy_location(
                    ast.parse(f"_nd_{array_name}[_ix{site}]", mode="eval").body,
                    node_,
                )

        new = _Reads().visit(copy.deepcopy(node))
        ast.fix_missing_locations(new)
        return new, pre

    # -------- statement rewriting ----------------------------------------- #

    def _stmt(self, node: ast.stmt, indent: str, out: List[str]) -> None:
        if isinstance(node, ast.Expr):
            if isinstance(node.value, (ast.Constant, ast.Name)):
                return  # docstring or no-op
            new, pre = self._rewrite_reads(node.value)
            out.extend(indent + line for line in pre)
            out.append(indent + ast.unparse(new))
            return
        if isinstance(node, ast.Assign):
            self._assign(node, indent, out)
            return
        if isinstance(node, ast.AugAssign):
            self._augassign(node, indent, out)
            return
        if isinstance(node, ast.If):
            if self._expr_tainted(node.test):
                raise _Fallback(
                    "W502", "branch on a state-dependent condition", node
                )
            test, pre = self._rewrite_reads(node.test)
            out.extend(indent + line for line in pre)
            out.append(indent + f"if {ast.unparse(test)}:")
            self._block(node.body, indent + "    ", out)
            if node.orelse:
                out.append(indent + "else:")
                self._block(node.orelse, indent + "    ", out)
            return
        if isinstance(node, ast.For):
            if node.orelse:
                raise _Fallback("W501", "for/else", node)
            if self._expr_tainted(node.iter):
                raise _Fallback(
                    "W502", "loop over a state-dependent iterable", node
                )
            iter_new, pre = self._rewrite_reads(node.iter)
            out.extend(indent + line for line in pre)
            out.append(
                indent
                + f"for {ast.unparse(node.target)} in {ast.unparse(iter_new)}:"
            )
            self._block(node.body, indent + "    ", out)
            return
        if isinstance(node, ast.Return):
            if node.value is None or (
                isinstance(node.value, ast.Constant) and node.value.value is None
            ):
                out.append(indent + "continue")
                return
            raise _Fallback("W501", "return with a value", node)
        if isinstance(node, (ast.Pass, ast.Break, ast.Continue)):
            out.append(indent + ast.unparse(node))
            return
        if isinstance(node, ast.FunctionDef):
            if self._contains_array_read(
                node, set(self.info.arrays) | set(self.info.buffers)
            ):
                raise _Fallback(
                    "W501", "nested function touching a DistArray", node
                )
            out.extend(indent + line for line in ast.unparse(node).splitlines())
            return
        raise _Fallback(
            "W501", f"unsupported statement ({type(node).__name__})", node
        )

    def _block(self, stmts: Sequence[ast.stmt], indent: str,
               out: List[str]) -> None:
        before = len(out)
        for stmt in stmts:
            self._stmt(stmt, indent, out)
        if len(out) == before:
            out.append(indent + "pass")

    def _assign(self, node: ast.Assign, indent: str, out: List[str]) -> None:
        if len(node.targets) != 1:
            raise _Fallback("W501", "chained assignment", node)
        target = node.targets[0]
        array_name = self._array_of(target)
        buffer_name = self._buffer_of(target)
        value, pre = self._rewrite_reads(node.value)
        value_src = ast.unparse(value)
        if array_name is None and buffer_name is None:
            if isinstance(target, ast.Tuple) and not all(
                isinstance(e, ast.Name) for e in target.elts
            ):
                raise _Fallback("W501", "complex unpacking target", node)
            if isinstance(target, ast.Subscript):
                # Local-container store; its index may still read an array.
                target, target_pre = self._rewrite_reads(target)
                pre = pre + target_pre
            out.extend(indent + line for line in pre)
            out.append(indent + f"{ast.unparse(target)} = {value_src}")
            return
        assert isinstance(target, ast.Subscript)
        if array_name is not None and self._write_index_tainted(target):
            raise _Fallback(
                "W502",
                f"write to {array_name!r} through a state-dependent subscript",
                target,
            )
        n = self._new_id()
        out.extend(indent + line for line in pre)
        out.append(indent + f"_v{n} = {value_src}")
        out.append(indent + f"_ix{n} = {self._index_source(target)}")
        if array_name is not None:
            list_name = f"_wr{n}"
            self.sites.append((list_name, array_name, True))
            out.append(indent + f"{list_name}.append(_ix{n})")
            out.append(indent + f"_nd_{array_name}[_ix{n}] = _v{n}")
        else:
            out.append(indent + f"_bi_{buffer_name}.append(_ix{n})")
            out.append(indent + f"_bv_{buffer_name}.append(_v{n})")

    def _write_index_tainted(self, target: ast.Subscript) -> bool:
        if self._expr_tainted(target.slice):
            return True
        return False

    def _augassign(self, node: ast.AugAssign, indent: str,
                   out: List[str]) -> None:
        target = node.target
        array_name = self._array_of(target)
        if self._buffer_of(target) is not None:
            raise _Fallback("W501", "augmented assignment to a buffer", node)
        value, pre = self._rewrite_reads(node.value)
        value_src = ast.unparse(value)
        op_map = {
            ast.Add: "+", ast.Sub: "-", ast.Mult: "*", ast.Div: "/",
        }
        if array_name is None:
            sym = op_map.get(type(node.op))
            if not isinstance(target, (ast.Name, ast.Subscript)) or sym is None:
                raise _Fallback("W501", "unsupported augmented assignment", node)
            if isinstance(target, ast.Subscript):
                target, target_pre = self._rewrite_reads(target)
                pre = pre + target_pre
            out.extend(indent + line for line in pre)
            out.append(indent + f"{ast.unparse(target)} {sym}= {value_src}")
            return
        assert isinstance(target, ast.Subscript)
        sym = op_map.get(type(node.op))
        if sym is None:
            raise _Fallback("W501", "unsupported augmented operator", node)
        if self._write_index_tainted(target):
            raise _Fallback(
                "W502",
                f"update of {array_name!r} through a state-dependent "
                f"subscript",
                target,
            )
        n = self._new_id()
        read_list, write_list = f"_rd{n}", f"_wr{n}"
        self.sites.append((read_list, array_name, False))
        self.sites.append((write_list, array_name, True))
        out.append(indent + f"_ix{n} = {self._index_source(target)}")
        out.append(indent + f"{read_list}.append(_ix{n})")
        out.append(indent + f"{write_list}.append(_ix{n})")
        out.extend(indent + line for line in pre)
        out.append(indent + f"_nd_{array_name}[_ix{n}] {sym}= {value_src}")

    # -------- assembly ----------------------------------------------------- #

    def build(self) -> str:
        info = self.info
        _check_common(info)
        if info.accumulators:
            raise _Fallback(
                "W501",
                "accumulator update inside the body (not batchable: the "
                "equivalence checker cannot rewind accumulators)",
            )
        assert info.tree is not None
        self._compute_taints(info.tree)
        body_lines: List[str] = []
        for stmt in info.tree.body:
            self._stmt(stmt, "        ", body_lines)
        if not body_lines:
            body_lines.append("        pass")

        lines: List[str] = ["def _synth_kernel(block, kctx):"]
        touched = sorted({array for _lst, array, _w in self.sites})
        for name in touched:
            lines.append(f"    _nd_{name} = {name}.values")
        for list_name, _array, _write in self.sites:
            lines.append(f"    {list_name} = []")
        for buffer_name in info.buffers:
            lines.append(f"    _bi_{buffer_name} = []")
            lines.append(f"    _bv_{buffer_name} = []")
        value_param = info.value_param if info.value_param else "_unused_value"
        lines.append(f"    for {info.index_param}, {value_param} in block:")
        lines.extend(body_lines)
        for list_name, array, write in self.sites:
            method = "account_writes" if write else "account_reads"
            lines.append(f"    kctx.{method}({array}, {list_name})")
        for buffer_name in info.buffers:
            lines.append(
                f"    kctx.buffer_add({buffer_name}, "
                f"_bi_{buffer_name}, _bv_{buffer_name})"
            )
        return "\n".join(lines) + "\n"


# --------------------------------------------------------------------------- #
# entry points
# --------------------------------------------------------------------------- #


def _compile_kernel(source: str, env: Dict[str, Any],
                    info: LoopInfo) -> Callable[..., Any]:
    glb = dict(env)
    glb.update(
        _snp=np,
        _vecdot=_vecdot,
        _scalar_pow=_kernels.scalar_pow,
        _cfg_nd=_kernels.conflict_free_groups_nd,
        _FULL=slice(None),
    )
    code = compile(source, f"<synth:{info.source_file or 'loop body'}>", "exec")
    exec(code, glb)
    return glb["_synth_kernel"]


def synthesize_kernel(body: Callable[..., Any], info: LoopInfo) -> SynthResult:
    """Synthesize a block kernel for an analyzed loop body.

    Tries the vector tier, then the block-loop tier.  On success the
    result's ``kernel`` satisfies the contract in
    :mod:`repro.runtime.kernels` (bit-identical state, identical
    accounting, deterministic declarations).  On failure the result carries
    a W501/W502 diagnostic naming the first construct the block-loop tier
    could not handle (the vector tier's reason is kept as a note).
    """
    env = ast_utils.resolve_free_variables(body)
    result = SynthResult()
    vector_reason: Optional[_Fallback] = None
    try:
        source = _Vectorizer(info, env).build()
        result.tier = "vector"
    except _Fallback as fallback:
        vector_reason = fallback
        try:
            source = _BlockLoop(info, env).build()
            result.tier = "block-loop"
            result.notes.append(
                f"vector tier unavailable: {vector_reason.message}"
            )
        except _Fallback as block_fallback:
            location = location_of(
                block_fallback.node, info.source_file
            ) if block_fallback.node is not None else location_of(
                info.tree, info.source_file
            )
            result.diagnostics.append(
                Diagnostic(
                    code=block_fallback.code,
                    message=f"synthesis fell back: {block_fallback.message}",
                    location=location,
                    hint="the scalar interpreter runs this loop; pass a "
                         "hand kernel or simplify the body to batch it",
                )
            )
            if vector_reason.message != block_fallback.message:
                result.notes.append(
                    f"vector tier unavailable: {vector_reason.message}"
                )
            return result
    try:
        result.kernel = _compile_kernel(source, env, info)
        result.source = source
    except Exception as exc:  # defensive: emitted code must always compile
        result.tier = None
        result.diagnostics.append(
            Diagnostic(
                code="W501",
                message=f"synthesis fell back: generated kernel failed to "
                        f"compile ({exc})",
                location=location_of(info.tree, info.source_file),
            )
        )
    return result


def synth_report(
    body: Callable[..., Any],
    iteration_space: Any,
    ordered: bool = False,
) -> Tuple[SynthResult, List[Diagnostic]]:
    """Analyze + synthesize without executing (CLI/demo helper).

    Returns the synthesis result plus the loop's full diagnostic list
    (analysis warnings, the W50x fallback codes, and W503 when the chosen
    plan refuses batched execution of a successfully synthesized kernel).
    """
    from repro.analysis.loop_info import analyze_loop_body
    from repro.analysis.strategy import choose_plan
    from repro.runtime.executor import kernel_batching_legal

    info = analyze_loop_body(body, iteration_space, ordered=ordered)
    plan = choose_plan(info)
    result = synthesize_kernel(body, info)
    diagnostics = list(info.diagnostics) + list(result.diagnostics)
    if result.engaged:
        legal, reason = kernel_batching_legal(info, plan)
        if not legal:
            diagnostics.append(
                Diagnostic(
                    code="W503",
                    message=f"synthesized kernel is unused: {reason}",
                    location=location_of(info.tree, info.source_file),
                )
            )
    return result, diagnostics
