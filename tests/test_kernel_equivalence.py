"""Batched block kernels must be bit-identical to the scalar body.

The executor's kernel fast path (repro.runtime.kernels) promises the same
floating-point results *and* the same accounting — every EpochResult field
— as the per-entry interpreted body.  These tests run each app both ways
and compare exactly (``np.array_equal``, ``==`` on virtual times), plus
exercise the built-in ``equivalence_check`` mode and the bulk DistArray
accessors the kernels are built on.
"""

import numpy as np
import pytest

from repro.api import OrionContext
from repro.apps.lda import LDAHyper
from repro.apps.lda import build_orion_program as build_lda
from repro.apps.sgd_mf import MFHyper
from repro.apps.sgd_mf import build_orion_program as build_mf
from repro.apps.slr import SLRHyper
from repro.apps.slr import build_orion_program as build_slr
from repro.core.distarray import DistArray, SubscriptError
from repro.data.synthetic import lda_corpus, netflix_like, sparse_classification
from repro.runtime.cluster import ClusterSpec
from repro.runtime.executor import ExecutionError
from repro.runtime.kernels import conflict_free_groups


def _epoch_signature(results):
    return [
        (r.epoch_time_s, r.bytes_sent, r.num_tasks, r.utilization, r.events)
        for batch in results
        for r in batch
    ]


def _run_pair(build, epochs=3):
    """Run kernel and scalar variants of one program for ``epochs``."""
    kernel_prog = build(use_kernel=True)
    scalar_prog = build(use_kernel=False)
    kernel_results = [kernel_prog.epoch_fn() for _ in range(epochs)]
    scalar_results = [scalar_prog.epoch_fn() for _ in range(epochs)]
    return kernel_prog, scalar_prog, kernel_results, scalar_results


@pytest.fixture(scope="module")
def mf_data():
    return netflix_like(num_rows=50, num_cols=40, num_ratings=700, seed=13)


@pytest.fixture(scope="module")
def slr_data():
    return sparse_classification(
        num_samples=120, num_features=70, nnz_per_sample=5, seed=17
    )


@pytest.fixture(scope="module")
def lda_data():
    return lda_corpus(num_docs=40, vocab_size=50, num_topics=4, doc_length=12, seed=23)


class TestSGDMFKernel:
    @pytest.mark.parametrize("ordered", [False, True])
    @pytest.mark.parametrize("adarev", [False, True])
    def test_bit_identical_and_same_traffic(self, mf_data, ordered, adarev):
        def build(use_kernel):
            return build_mf(
                mf_data,
                cluster=ClusterSpec(num_machines=2, workers_per_machine=2),
                hyper=MFHyper(adarev=adarev),
                ordered=ordered,
                seed=7,
                use_kernel=use_kernel,
                validate=True,
            )

        kp, sp, kr, sr = _run_pair(build)
        for name in ("W", "H"):
            assert np.array_equal(kp.arrays[name].values, sp.arrays[name].values)
        assert _epoch_signature(kr) == _epoch_signature(sr)
        assert kp.loss_fn() == sp.loss_fn()


class TestSLRKernel:
    @pytest.mark.parametrize("prefetch", ["auto", "none"])
    def test_plain_bit_identical(self, slr_data, prefetch):
        def build(use_kernel):
            return build_slr(
                slr_data,
                hyper=SLRHyper(step_size=0.2),
                seed=3,
                use_kernel=use_kernel,
                prefetch=prefetch,
                validate=True,
            )

        kp, sp, kr, sr = _run_pair(build)
        assert np.array_equal(
            kp.arrays["weights"].values, sp.arrays["weights"].values
        )
        assert _epoch_signature(kr) == _epoch_signature(sr)

    def test_adarev_bit_identical(self, slr_data):
        def build(use_kernel):
            return build_slr(
                slr_data,
                hyper=SLRHyper(adarev=True),
                seed=3,
                use_kernel=use_kernel,
                validate=True,
            )

        kp, sp, kr, sr = _run_pair(build)
        assert np.array_equal(
            kp.arrays["weights"].values, sp.arrays["weights"].values
        )
        assert _epoch_signature(kr) == _epoch_signature(sr)


class TestLDAKernel:
    @pytest.mark.parametrize("parallelism", ["2d", "1d"])
    def test_bit_identical_counts_and_assignments(self, lda_data, parallelism):
        def build(use_kernel):
            return build_lda(
                lda_data,
                hyper=LDAHyper(num_topics=4),
                parallelism=parallelism,
                seed=5,
                use_kernel=use_kernel,
                validate=True,
            )

        kp, sp, kr, sr = _run_pair(build, epochs=2)
        for name in ("doc_topic", "word_topic", "topic_sum"):
            assert np.array_equal(kp.arrays[name].values, sp.arrays[name].values)
        ka, sa = kp.arrays["assignments"], sp.arrays["assignments"]
        assert ka._entries.keys() == sa._entries.keys()
        assert all(
            np.array_equal(ka._entries[k], sa._entries[k]) for k in ka._entries
        )
        assert _epoch_signature(kr) == _epoch_signature(sr)


class TestEquivalenceCheckMode:
    def test_mf_passes(self, mf_data):
        prog = build_mf(
            mf_data, seed=7, use_kernel=True, validate=True, equivalence_check=True
        )
        prog.epoch_fn()  # would raise ExecutionError on any divergence

    def test_slr_passes(self, slr_data):
        prog = build_slr(
            slr_data, seed=3, use_kernel=True, validate=True, equivalence_check=True
        )
        prog.epoch_fn()

    def test_catches_wrong_kernel(self, slr_data):
        """A kernel that diverges from the body must fail the check."""
        ctx = OrionContext(seed=1)
        samples = ctx.from_entries(
            slr_data.entries, name="samples", shape=slr_data.shape
        )
        ctx.materialize(samples)
        weights = ctx.zeros(slr_data.num_features, name="weights")
        ctx.materialize(weights)
        buf = ctx.dist_array_buffer(weights, name="buf")

        def body(key, sample):
            features, _target = sample
            for fid, fval in features:
                buf[fid] = -0.1 * fval

        def bad_kernel(block, kctx):
            for _key, (features, _target) in block:
                for fid, fval in features:
                    kctx.buffer_add(buf, [fid], [-0.2 * fval])  # wrong scale
                kctx.account_point_reads(weights, [])

        loop = ctx.parallel_for(samples, kernel=bad_kernel, equivalence_check=True)(
            body
        )
        with pytest.raises(ExecutionError, match="kernel/scalar"):
            loop.run()


class TestBulkAccessors:
    def test_dense_bulk_get_set(self):
        array = DistArray.zeros(6, name="d")
        array.materialize()
        array.bulk_set([1, 4], [2.5, -1.0])
        assert array.bulk_get([1, 4, 0]) == [2.5, -1.0, 0.0]

    def test_sparse_bulk_get_default_and_missing(self):
        array = DistArray.from_entries([((0,), 1.0), ((3,), 4.0)], name="s")
        array.materialize()
        assert array.bulk_get([0, 3]) == [1.0, 4.0]
        assert array.bulk_get([0, 2], default=None) == [1.0, None]
        with pytest.raises(SubscriptError):
            array.bulk_get([2])

    def test_sparse_bulk_set_canonicalizes_keys(self):
        array = DistArray.from_entries([((0,), 1.0)], name="s2")
        array.materialize()
        array.bulk_set([(np.int64(1),), 2], [5.0, 6.0])
        assert array.get((1,)) == 5.0
        assert array.get((2,)) == 6.0

    def test_bulk_set_length_mismatch(self):
        array = DistArray.zeros(3, name="d2")
        array.materialize()
        with pytest.raises(SubscriptError):
            array.bulk_set([0, 1], [1.0])

    def test_dense_columns_roundtrip(self):
        array = DistArray.randn(3, 5, name="m", seed=0)
        array.materialize()
        gathered = array.dense_columns([4, 1])
        assert np.array_equal(gathered, array.values[:, [4, 1]])


class TestConflictFreeGroups:
    def test_groups_partition_and_are_conflict_free(self):
        rows = [0, 1, 0, 2, 3, 1]
        cols = [0, 1, 2, 3, 4, 5]
        groups = conflict_free_groups(rows, cols)
        assert groups[0][0] == 0 and groups[-1][1] == len(rows)
        for (_, hi), (lo2, _) in zip(groups, groups[1:]):
            assert hi == lo2
        for lo, hi in groups:
            assert len(set(rows[lo:hi])) == hi - lo
            assert len(set(cols[lo:hi])) == hi - lo

    def test_empty(self):
        assert conflict_free_groups([], []) == []
