PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: check compile test trace-smoke fault-smoke distributed-smoke \
	lint-smoke sanitize-smoke synth-smoke perf-smoke tune-smoke \
	bench-smoke bench-distributed clean

## Default verification: imports compile, tier-1 tests pass, the tracing
## pipeline produces a loadable Perfetto trace end to end, the
## fault-injection/recovery story holds its invariants, the forked
## multiprocess backend stays bitwise-faithful to the simulated oracle,
## every bundled app lints clean, sanitize mode passes a mini-run of
## each parallelization strategy on both backends, kernel synthesis
## emits equivalence-checked kernels for the batchable apps, and
## `repro perf` regression detection passes clean seeded runs while
## flagging an artificial slowdown, and the adaptive tuner recovers a
## deliberately mistuned pipeline depth.
check: compile test trace-smoke fault-smoke distributed-smoke lint-smoke \
	sanitize-smoke synth-smoke perf-smoke tune-smoke

compile:
	$(PYTHON) -m compileall -q src

test:
	$(PYTHON) -m pytest -x -q

## Run the quickstart with tracing enabled and validate the exported
## trace.json against the Chrome trace-event schema.
trace-smoke:
	REPRO_TRACE=trace.json $(PYTHON) examples/quickstart.py > /dev/null
	$(PYTHON) -c "import json; from repro.obs import validate_chrome_trace; \
	trace = json.load(open('trace.json')); problems = validate_chrome_trace(trace); \
	assert not problems, problems; \
	print('trace.json ok:', len(trace['traceEvents']), 'events')"

## Crash/drop/straggler injection end to end: the example asserts the
## faulted run recovers to bit-equal parameters and only costs virtual
## time, and that the no-plan path stays bit-identical.
fault-smoke:
	$(PYTHON) examples/fault_tolerance.py > /dev/null
	@echo "fault-smoke ok"

## Tiny-dataset pass of the multiprocess backend on all four apps;
## asserts the SGD MF run is bitwise identical to the simulated oracle.
distributed-smoke:
	$(PYTHON) benchmarks/bench_distributed.py --smoke
	@echo "distributed-smoke ok"

## Style lint (ruff, skipped when not installed) plus `repro lint` on
## every bundled app: no error-severity diagnostics allowed, and the
## demo catalog must keep demonstrating its codes.
lint-smoke:
	@if command -v ruff > /dev/null 2>&1; then \
		ruff check src tests examples benchmarks; \
	else \
		echo "ruff not installed; skipping style lint"; \
	fi
	@for app in mf mf-adarev lda lda-1d slr gbt; do \
		$(PYTHON) -m repro.cli lint $$app --scale 0.25 > /dev/null \
			|| exit 1; \
		echo "lint $$app ok"; \
	done
	$(PYTHON) -m repro.cli lint demo > /dev/null
	@echo "lint-smoke ok"

## Shadow-access race detection over one mini-epoch of each strategy:
## 2D unordered (mf), 2D ordered (mf --engine orion-ordered), 1D (lda-1d),
## data parallelism (slr), multi-loop (gbt) — simulated backend — plus a
## multiprocess spot check. Any S6xx violation fails the run.
sanitize-smoke:
	@for app in mf lda-1d slr gbt; do \
		$(PYTHON) -m repro.cli $$app --sanitize --epochs 1 \
			--scale 0.3 > /dev/null || exit 1; \
		echo "sanitize $$app (simulated) ok"; \
	done
	$(PYTHON) -m repro.cli mf --sanitize --engine orion-ordered \
		--epochs 1 --scale 0.3 > /dev/null
	@echo "sanitize mf (ordered) ok"
	$(PYTHON) -m repro.cli mf --sanitize --backend multiprocess \
		--epochs 1 --scale 0.3 > /dev/null
	@echo "sanitize mf (multiprocess) ok"
	@echo "sanitize-smoke ok"

## Kernel synthesis over every bundled app: the batchable bodies
## (mf, mf-adarev, glove, slr, gbt's histogram loop) must emit a kernel and survive an
## equivalence-checked epoch (bitwise state + accounting vs the scalar
## interpreter); the rest must fall back cleanly (exit 1, W50x
## diagnostic) rather than fail.
synth-smoke:
	@for app in mf mf-adarev glove slr gbt; do \
		$(PYTHON) -m repro.cli synth $$app --scale 0.25 --check \
			> /dev/null || exit 1; \
		echo "synth $$app ok (equivalence-checked)"; \
	done
	@for app in lda lda-1d; do \
		$(PYTHON) -m repro.cli synth $$app --scale 0.25 > /dev/null; \
		code=$$?; \
		if [ $$code -ne 1 ]; then \
			echo "synth $$app: expected fallback exit 1, got $$code"; \
			exit 1; \
		fi; \
		echo "synth $$app ok (clean fallback)"; \
	done
	@echo "synth-smoke ok"

## Run-store regression detection end to end: two identical seeded runs
## must record, compare and check clean (virtual-clock determinism =>
## zero noise margin), then a run artificially slowed 2.5x via an
## explicit straggler plan must be flagged by `repro perf check`.
perf-smoke:
	rm -rf .repro_runs_smoke
	$(PYTHON) -m repro.cli slr --engine orion --epochs 2 --scale 0.3 \
		--run-store .repro_runs_smoke > /dev/null
	$(PYTHON) -m repro.cli slr --engine orion --epochs 2 --scale 0.3 \
		--run-store .repro_runs_smoke > /dev/null
	$(PYTHON) -m repro.cli perf compare --store .repro_runs_smoke
	$(PYTHON) -m repro.cli perf check --store .repro_runs_smoke
	$(PYTHON) -m repro.cli slr --engine orion --epochs 2 --scale 0.3 \
		--run-store .repro_runs_smoke --slow-factor 2.5 > /dev/null
	@if $(PYTHON) -m repro.cli perf check --store .repro_runs_smoke; then \
		echo "perf-smoke: 2.5x slowdown was NOT flagged"; exit 1; \
	else \
		echo "perf-smoke ok (slowdown flagged)"; \
	fi
	rm -rf .repro_runs_smoke

## Adaptive-tuner recovery end to end (see docs/tuning.md): SGD MF
## deliberately mistuned to pipeline_depth=1 must converge to within 5%
## of the best fixed depth by epoch 3 (exit 0 from `repro tune`), and a
## follow-up `--mode cached` run against the same store must start at
## the persisted winner from epoch 1.
tune-smoke:
	rm -rf .repro_tune_smoke
	$(PYTHON) -m repro.cli tune mf --depth 1 --epochs 4 \
		--store .repro_tune_smoke
	$(PYTHON) -m repro.cli tune mf --depth 1 --epochs 3 \
		--mode cached --store .repro_tune_smoke
	rm -rf .repro_tune_smoke
	@echo "tune-smoke ok"

## Wall-clock kernel-vs-scalar throughput; writes BENCH_wallclock.json.
bench-smoke:
	$(PYTHON) benchmarks/bench_wallclock.py

## Real forked-worker scaling (1/2/4 workers, all four apps) vs the
## single-process scalar baseline; writes BENCH_distributed.json.
bench-distributed:
	$(PYTHON) benchmarks/bench_distributed.py

clean:
	find . -name __pycache__ -type d -prune -exec rm -rf {} +
	rm -rf .pytest_cache trace.json .repro_runs .repro_runs_smoke \
		.repro_tune_smoke
