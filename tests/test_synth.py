"""Automatic kernel synthesis (repro.analysis.synth).

Synthesized kernels carry the same contract as hand kernels — bit-identical
DistArray/buffer state and identical accounting to the scalar interpreter —
so these tests run every bundled app under ``kernel="auto"`` against the
scalar path on both backends and compare exactly, exercise the built-in
``equivalence_check`` and sanitizer over synthesized kernels, and pin the
fallback story: bodies synthesis cannot batch run scalar with a W50x
diagnostic, never an error.
"""

import io

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import cli
from repro.api import OrionContext
from repro.apps import (
    build_gbt,
    build_glove,
    build_lda,
    build_mlp,
    build_sgd_mf,
    build_slr,
    cooccurrence_corpus,
)
from repro.apps.base import resolve_kernel_option
from repro.apps.mlp import make_blobs
from repro.apps.sgd_mf import MFHyper
from repro.analysis.synth import synth_report, synthesize_kernel
from repro.data.synthetic import (
    lda_corpus,
    netflix_like,
    regression_table,
    sparse_classification,
)
from repro.core.distarray import DistArray
from repro.runtime.cluster import ClusterSpec
from repro.runtime.executor import ExecutionError, kernel_batching_legal
from repro.runtime.kernels import conflict_free_groups_nd, scalar_pow


# --------------------------------------------------------------------------- #
# app registry: builder(cluster, use_kernel, **loop_opts) -> program
# --------------------------------------------------------------------------- #


def _mf(cluster, use_kernel, **opts):
    data = netflix_like(num_rows=36, num_cols=28, num_ratings=320, seed=5)
    return build_sgd_mf(data, cluster=cluster, use_kernel=use_kernel, **opts)


def _mf_adarev(cluster, use_kernel, **opts):
    data = netflix_like(num_rows=36, num_cols=28, num_ratings=320, seed=5)
    return build_sgd_mf(
        data, cluster=cluster, hyper=MFHyper(adarev=True),
        use_kernel=use_kernel, **opts,
    )


def _glove(cluster, use_kernel, **opts):
    data = cooccurrence_corpus(vocab_size=36, num_tokens=1400, seed=6)
    return build_glove(data, cluster=cluster, use_kernel=use_kernel, **opts)


def _slr(cluster, use_kernel, **opts):
    data = sparse_classification(
        num_samples=110, num_features=70, nnz_per_sample=6, seed=7
    )
    return build_slr(data, cluster=cluster, use_kernel=use_kernel, **opts)


def _gbt(cluster, use_kernel, **opts):
    data = regression_table(num_samples=110, num_features=4, seed=8)
    return build_gbt(data, cluster=cluster, use_kernel=use_kernel, **opts)


def _lda(cluster, use_kernel, **opts):
    data = lda_corpus(
        num_docs=18, vocab_size=30, num_topics=4, doc_length=10, seed=9
    )
    return build_lda(data, cluster=cluster, use_kernel=use_kernel, **opts)


def _mlp(cluster, use_kernel, **opts):
    data = make_blobs(num_samples=90, num_features=5, num_classes=3, seed=10)
    return build_mlp(data, 5, 3, cluster=cluster, use_kernel=use_kernel, **opts)


APPS = {
    "mf": _mf,
    "mf-adarev": _mf_adarev,
    "glove": _glove,
    "slr": _slr,
    "gbt": _gbt,
    "lda": _lda,
    "mlp": _mlp,
}

#: Apps whose body synthesis must batch, with the expected tier.
ENGAGES = {
    "mf": "vector",
    "mf-adarev": "vector",
    "glove": "vector",
    "slr": "block-loop",
    "gbt": "block-loop",
}
#: Apps whose body must fall back with a W50x diagnostic.
FALLS_BACK = ("lda", "mlp")


def _cluster():
    return ClusterSpec(num_machines=2, workers_per_machine=2)


def _dense_state(program):
    return {
        name: array.values.copy()
        for name, array in program.arrays.items()
        if not array.sparse
    }


def _assert_same_state(ref, got):
    assert set(ref) == set(got)
    for name in ref:
        assert np.array_equal(ref[name], got[name]), name


# --------------------------------------------------------------------------- #
# engagement / fallback
# --------------------------------------------------------------------------- #


class TestEngagement:
    @pytest.mark.parametrize("app", sorted(ENGAGES))
    def test_batchable_apps_synthesize(self, app):
        program = APPS[app](_cluster(), "auto")
        synth = program.train_loop.synthesis()
        assert synth.engaged
        assert synth.tier == ENGAGES[app]
        assert "_synth_kernel" in synth.source
        assert not synth.diagnostics

    @pytest.mark.parametrize("app", FALLS_BACK)
    def test_unbatchable_apps_fall_back_with_diagnostic(self, app):
        program = APPS[app](_cluster(), "auto")
        synth = program.train_loop.synthesis()
        assert not synth.engaged
        assert synth.kernel is None
        codes = {d.code for d in synth.diagnostics}
        assert codes and codes <= {"W501", "W502"}
        # The fallback surfaces through the loop's lint diagnostics too.
        assert codes <= {d.code for d in program.train_loop.diagnostics()}

    def test_apps_without_hand_kernel_default_to_synthesis(self):
        program = _glove(_cluster(), True)
        assert program.train_loop.synthesis().engaged
        assert callable(program.train_loop.executor.kernel)

    def test_use_kernel_off_disables_synthesis(self):
        program = _glove(_cluster(), "off")
        assert program.train_loop.synthesis() is None
        assert program.train_loop.executor.kernel is None


# --------------------------------------------------------------------------- #
# bit-identity: kernel="auto" vs the scalar interpreter, both backends
# --------------------------------------------------------------------------- #


class TestAutoMatchesScalar:
    @pytest.mark.parametrize("app", sorted(APPS))
    def test_simulated(self, app):
        scalar = APPS[app](_cluster(), False)
        auto = APPS[app](_cluster(), "auto")
        for _ in range(2):
            scalar.epoch_fn()
            auto.epoch_fn()
        _assert_same_state(_dense_state(scalar), _dense_state(auto))

    # gbt is absent: its boosting round interleaves three loops over the
    # same arrays, which backend="multiprocess" refuses (see below).
    @pytest.mark.parametrize(
        "app", ["glove", "lda", "mf", "mf-adarev", "mlp", "slr"]
    )
    def test_multiprocess(self, app):
        scalar = APPS[app](_cluster(), False, backend="multiprocess")
        auto = APPS[app](_cluster(), "auto", backend="multiprocess")
        with scalar, auto:  # releases forked workers + shared memory
            scalar.epoch_fn()
            auto.epoch_fn()
        _assert_same_state(_dense_state(scalar), _dense_state(auto))

    def test_multiprocess_refuses_interleaved_multi_loop(self):
        """GBT's round interleaves three loops over shared arrays; the
        shared-memory pool raises rather than splitting forked workers
        across stale segments."""
        program = _gbt(_cluster(), "auto", backend="multiprocess")
        with program, pytest.raises(ExecutionError, match="already shared"):
            program.epoch_fn()

    @pytest.mark.parametrize("app", ["mf", "glove", "slr", "gbt"])
    def test_equivalence_checked_epoch(self, app):
        """The executor's own bitwise check passes over synthesized kernels."""
        program = APPS[app](_cluster(), "auto", equivalence_check=True)
        program.epoch_fn()

    @pytest.mark.parametrize("app", ["mf", "slr"])
    @pytest.mark.parametrize("backend", ["simulated", "multiprocess"])
    def test_sanitized_run_clean(self, app, backend):
        """Sanitized runs (S601-S604) stay clean with kernel='auto'."""
        program = APPS[app](_cluster(), "auto", sanitize=True, backend=backend)
        with program:
            program.epoch_fn()


# --------------------------------------------------------------------------- #
# hypothesis: synthesis never changes results when it engages
# --------------------------------------------------------------------------- #


@st.composite
def _mf_instances(draw):
    rows = draw(st.integers(min_value=3, max_value=12))
    cols = draw(st.integers(min_value=3, max_value=12))
    num = draw(st.integers(min_value=1, max_value=40))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    step = draw(st.floats(min_value=1e-4, max_value=0.5))
    return rows, cols, num, seed, step


@given(_mf_instances())
@settings(max_examples=12, deadline=None)
def test_property_synthesis_never_changes_results(instance):
    """For random MF-like programs, an engaged synthesized kernel is
    bit-identical to the scalar interpreter — state and traffic stats."""
    rows, cols, num, seed, step = instance
    rng = np.random.default_rng(seed)
    keys = {
        (int(rng.integers(0, rows)), int(rng.integers(0, cols)))
        for _ in range(num)
    }
    entries = [(key, float(rng.standard_normal())) for key in sorted(keys)]
    init_w = rng.standard_normal((4, rows)) * 0.1
    init_h = rng.standard_normal((4, cols)) * 0.1

    def build(kernel):
        ctx = OrionContext(cluster=ClusterSpec(2, 2), seed=0)
        space = ctx.from_entries(entries, name="space", shape=(rows, cols))
        ctx.materialize(space)
        W = ctx.zeros(4, rows, name="W")
        H = ctx.zeros(4, cols, name="H")
        ctx.materialize(W, H)
        W.values[:] = init_w
        H.values[:] = init_h

        def body(key, value):
            w = W[:, key[0]]
            h = H[:, key[1]]
            diff = value - w @ h
            W[:, key[0]] = w + step * diff * h
            H[:, key[1]] = h + step * diff * w

        loop = ctx.parallel_for(space, kernel=kernel)(body)
        return loop, W, H

    scalar_loop, sw, sh = build(None)
    auto_loop, aw, ah = build("auto")
    assert auto_loop.synthesis().engaged
    scalar_results = scalar_loop.run()
    auto_results = auto_loop.run()
    assert np.array_equal(sw.values, aw.values)
    assert np.array_equal(sh.values, ah.values)
    assert [r.bytes_sent for r in scalar_results] == [
        r.bytes_sent for r in auto_results
    ]


# --------------------------------------------------------------------------- #
# diagnostics, explain, options plumbing
# --------------------------------------------------------------------------- #


class TestReporting:
    def test_explain_shows_generated_source(self):
        program = _mf(_cluster(), "auto")
        report = program.train_loop.explain()
        assert "Kernel synthesis" in report
        assert "synthesized kernel (tier: vector)" in report
        assert "_synth_kernel" in report

    def test_explain_shows_fallback(self):
        program = _mlp(_cluster(), "auto")
        report = program.train_loop.explain()
        assert "fell back to the scalar interpreter" in report
        assert "W501" in report

    def test_explain_without_synthesis_has_no_section(self):
        program = _mf(_cluster(), False)
        assert "Kernel synthesis" not in program.train_loop.explain()

    def test_w503_when_plan_refuses_batching(self):
        """A vectorizable 1-D body with direct shared writes synthesizes,
        but the 1D plan cannot batch it — surfaced as W503."""
        ctx = OrionContext(cluster=ClusterSpec(1, 2), seed=0)
        space = ctx.from_entries(
            [((i,), float(i)) for i in range(8)], name="space", shape=(8,)
        )
        ctx.materialize(space)
        out = ctx.zeros(8, name="out")
        ctx.materialize(out)

        def body(key, value):
            out[key[0]] = value * 2.0

        loop = ctx.parallel_for(space, kernel="auto")(body)
        assert loop.synthesis().engaged
        assert "W503" in {d.code for d in loop.diagnostics()}
        # The plan gate is the reason, not the synthesis itself.
        legal, reason = kernel_batching_legal(
            loop.info, loop.plan
        )
        assert not legal and "buffer" in reason

    def test_synth_report_helper(self):
        space = DistArray.from_entries(
            [((i,), 1.0) for i in range(4)], name="s", shape=(4,)
        )
        space.materialize()
        out = DistArray.zeros(4, name="out_sr")
        out.materialize()

        def body(key, value):
            out[key[0]] = value

        result, diagnostics = synth_report(body, space)
        assert result.engaged
        assert "W503" in {d.code for d in diagnostics}


class TestOptionPlumbing:
    def test_resolve_kernel_option(self):
        hand = lambda block, kctx: None  # noqa: E731
        assert resolve_kernel_option(True, hand) is hand
        assert resolve_kernel_option(True) == "auto"
        assert resolve_kernel_option("hand", hand) is hand
        assert resolve_kernel_option("auto", hand) == "auto"
        assert resolve_kernel_option(False, hand) is None
        assert resolve_kernel_option(None, hand) is None
        assert resolve_kernel_option("off", hand) is None
        with pytest.raises(ValueError):
            resolve_kernel_option("hand")
        with pytest.raises(ValueError):
            resolve_kernel_option("bogus", hand)

    def test_executor_rejects_hand_and_unknown_strings(self):
        ctx = OrionContext(cluster=ClusterSpec(1, 2), seed=0)
        space = ctx.from_entries(
            [((i,), 1.0) for i in range(4)], name="space", shape=(4,)
        )
        ctx.materialize(space)

        def body(key, value):
            pass

        with pytest.raises(ExecutionError):
            ctx.parallel_for(space, kernel="hand")(body)
        with pytest.raises(ExecutionError):
            ctx.parallel_for(space, kernel="bogus")(body)

    def test_kernel_off_string(self):
        ctx = OrionContext(cluster=ClusterSpec(1, 2), seed=0)
        space = ctx.from_entries(
            [((i,), 1.0) for i in range(4)], name="space", shape=(4,)
        )
        ctx.materialize(space)

        def body(key, value):
            pass

        loop = ctx.parallel_for(space, kernel="off")(body)
        assert loop.executor.kernel is None


# --------------------------------------------------------------------------- #
# synthesis primitives
# --------------------------------------------------------------------------- #


class TestPrimitives:
    def test_conflict_free_groups_nd_no_repeats_within_group(self):
        rows = [0, 1, 0, 2, 1, 0]
        cols = [5, 6, 7, 5, 6, 7]
        groups = conflict_free_groups_nd([rows, cols])
        assert [hi for _lo, hi in groups][-1] == len(rows)
        for lo, hi in groups:
            assert len(set(rows[lo:hi])) == hi - lo
            assert len(set(cols[lo:hi])) == hi - lo

    def test_conflict_free_groups_nd_empty(self):
        assert conflict_free_groups_nd([]) == []
        assert conflict_free_groups_nd([[]]) == []

    def test_scalar_pow_matches_python_pow_bitwise(self):
        rng = np.random.default_rng(0)
        base = rng.uniform(0.01, 4.0, size=200)
        out = scalar_pow(base, 0.75)
        expected = np.array([b ** 0.75 for b in base])
        assert np.array_equal(out, expected)

    def test_scalar_pow_broadcasts(self):
        out = scalar_pow(np.array([[1.0, 2.0], [3.0, 4.0]]), 2.0)
        assert out.shape == (2, 2)
        assert np.array_equal(out, np.array([[1.0, 4.0], [9.0, 16.0]]))

    def test_synthesize_kernel_requires_recoverable_source(self):
        from repro.analysis.loop_info import analyze_loop_body

        space = DistArray.from_entries(
            [((i,), 1.0) for i in range(4)], name="s2", shape=(4,)
        )
        space.materialize()
        out = DistArray.zeros(4, name="out_ns")
        out.materialize()

        def body(key, value):
            out[key[0]] = value

        info = analyze_loop_body(body, space)
        info.tree = None
        result = synthesize_kernel(body, info)
        assert not result.engaged
        assert result.diagnostics[0].code == "W501"


# --------------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------------- #


class TestSynthCLI:
    def test_synth_mf_prints_kernel(self):
        out = io.StringIO()
        code = cli.main(["synth", "mf", "--scale", "0.2"], out=out)
        text = out.getvalue()
        assert code == 0
        assert "synthesized kernel (tier: vector)" in text
        assert "_synth_kernel" in text

    def test_synth_check_runs_equivalence_epoch(self):
        out = io.StringIO()
        code = cli.main(["synth", "slr", "--scale", "0.2", "--check"], out=out)
        assert code == 0
        assert "equivalence check" in out.getvalue()

    def test_synth_fallback_exits_nonzero(self):
        out = io.StringIO()
        code = cli.main(["synth", "lda", "--scale", "0.2"], out=out)
        assert code == 1
        assert "fell back" in out.getvalue()

    def test_lint_demo_covers_synthesis_codes(self):
        out = io.StringIO()
        cli.main(["lint", "demo"], out=out)
        text = out.getvalue()
        for code in ("W501", "W502", "W503"):
            assert code in text
