"""Unit tests for the subscript grammar (repro.analysis.subscript)."""

import pytest

from repro.analysis import subscript as sub


class TestConstructors:
    def test_constant(self):
        axis = sub.constant(5)
        assert axis.kind is sub.SubscriptKind.CONSTANT
        assert axis.const == 5

    def test_index_default_offset(self):
        axis = sub.index(1)
        assert axis.kind is sub.SubscriptKind.INDEX
        assert axis.dim_idx == 1
        assert axis.const == 0

    def test_index_with_offset(self):
        axis = sub.index(0, -3)
        assert axis.const == -3

    def test_slice_all(self):
        assert sub.slice_all().kind is sub.SubscriptKind.SLICE_ALL

    def test_const_range(self):
        axis = sub.const_range(2, 7)
        assert (axis.lo, axis.hi) == (2, 7)

    def test_unknown(self):
        assert sub.unknown().kind is sub.SubscriptKind.UNKNOWN

    def test_axes_are_hashable_and_frozen(self):
        axis = sub.index(0, 1)
        assert hash(axis) == hash(sub.index(0, 1))
        with pytest.raises(Exception):
            axis.const = 9  # frozen dataclass

    def test_is_single_index(self):
        assert sub.index(0).is_single_index()
        assert not sub.constant(0).is_single_index()
        assert not sub.slice_all().is_single_index()


class TestDescribe:
    def test_constant_describe(self):
        assert sub.constant(4).describe() == "4"

    def test_index_describe_plain(self):
        assert sub.index(2).describe() == "key[2]"

    def test_index_describe_positive_offset(self):
        assert sub.index(0, 2).describe() == "key[0] + 2"

    def test_index_describe_negative_offset(self):
        assert sub.index(1, -1).describe() == "key[1] - 1"

    def test_slice_describe(self):
        assert sub.slice_all().describe() == ":"

    def test_range_describe(self):
        assert sub.const_range(1, 4).describe() == "1:4"

    def test_unknown_describe(self):
        assert sub.unknown().describe() == "?"


class TestOverlap:
    def test_equal_constants_overlap(self):
        assert sub.axes_may_overlap(sub.constant(3), sub.constant(3))

    def test_distinct_constants_disjoint(self):
        assert not sub.axes_may_overlap(sub.constant(3), sub.constant(4))

    def test_constant_inside_range(self):
        assert sub.axes_may_overlap(sub.constant(3), sub.const_range(2, 5))

    def test_constant_outside_range(self):
        assert not sub.axes_may_overlap(sub.constant(5), sub.const_range(2, 5))

    def test_constant_at_range_start(self):
        assert sub.axes_may_overlap(sub.constant(2), sub.const_range(2, 5))

    def test_range_vs_constant_symmetric(self):
        assert sub.axes_may_overlap(sub.const_range(2, 5), sub.constant(4))
        assert not sub.axes_may_overlap(sub.const_range(2, 5), sub.constant(7))

    def test_overlapping_ranges(self):
        assert sub.axes_may_overlap(sub.const_range(0, 4), sub.const_range(3, 8))

    def test_touching_ranges_disjoint(self):
        assert not sub.axes_may_overlap(sub.const_range(0, 4), sub.const_range(4, 8))

    def test_index_overlaps_anything(self):
        assert sub.axes_may_overlap(sub.index(0), sub.constant(3))
        assert sub.axes_may_overlap(sub.index(0), sub.index(1))
        assert sub.axes_may_overlap(sub.index(0), sub.const_range(0, 2))

    def test_slice_overlaps_anything(self):
        assert sub.axes_may_overlap(sub.slice_all(), sub.constant(0))
        assert sub.axes_may_overlap(sub.slice_all(), sub.slice_all())

    def test_unknown_overlaps_anything(self):
        assert sub.axes_may_overlap(sub.unknown(), sub.constant(0))
        assert sub.axes_may_overlap(sub.unknown(), sub.unknown())


class TestIndexDistance:
    def test_same_dim_distance(self):
        assert sub.index_distance(sub.index(0, 2), sub.index(0, -1)) == (0, 3)

    def test_same_dim_zero_distance(self):
        assert sub.index_distance(sub.index(1), sub.index(1)) == (1, 0)

    def test_different_dims_unconstrained(self):
        assert sub.index_distance(sub.index(0), sub.index(1)) is None

    def test_non_index_forms_unconstrained(self):
        assert sub.index_distance(sub.index(0), sub.constant(2)) is None
        assert sub.index_distance(sub.slice_all(), sub.index(0)) is None
        assert sub.index_distance(sub.unknown(), sub.unknown()) is None
