"""Fig. 11 — Orion vs. STRADS manual model parallelism.

Paper results (12 machines): Orion-parallelized SGD MF AdaRev and LDA
achieve a *matching per-iteration convergence rate* to hand-written
model-parallel STRADS programs.  Throughput: similar for SGD MF AdaRev
(float-array messages serialize trivially), but STRADS is ~1.8x (ClueWeb)
to ~4x (NYTimes) faster per iteration on LDA thanks to its C++ runtime and
intra-machine pointer swapping.
"""

import pytest

import _workloads as wl
from repro.apps import build_lda, build_sgd_mf
from repro.baselines import run_strads

EPOCHS_MF = 6
EPOCHS_LDA = 4


def _run_mf():
    dataset = wl.netflix_bench()
    cluster = wl.mf_cluster(adarev=True)
    orion = build_sgd_mf(
        dataset, cluster=cluster, hyper=wl.MF_ADAREV_HYPER
    ).run(EPOCHS_MF)
    strads = run_strads(
        lambda c: build_sgd_mf(dataset, cluster=c, hyper=wl.MF_ADAREV_HYPER),
        cluster,
        EPOCHS_MF,
        speed_factor=1.0,  # trivial serialization: no C++ advantage
        label="STRADS SGD MF AdaRev",
    )
    return orion, strads


def _run_lda():
    dataset = wl.nytimes_bench()
    cluster = wl.lda_cluster()
    orion = build_lda(
        dataset,
        cluster=cluster,
        hyper=wl.LDA_HYPER,
        pipeline_depth=wl.BENCH_PIPELINE_DEPTH,
    ).run(EPOCHS_LDA)
    strads = run_strads(
        lambda c: build_lda(
            dataset,
            cluster=c,
            hyper=wl.LDA_HYPER,
            pipeline_depth=wl.BENCH_PIPELINE_DEPTH,
        ),
        cluster,
        EPOCHS_LDA,
        # Julia marshalling of per-row count data vs. C++ pointer swaps.
        speed_factor=0.4,
        label="STRADS LDA",
    )
    return orion, strads


@pytest.mark.benchmark(group="fig11")
def test_fig11_mf_adarev(benchmark, report):
    orion, strads = benchmark.pedantic(_run_mf, rounds=1, iterations=1)
    rows = [
        (label, f"{h.final_loss:.1f}", f"{h.time_per_iteration():.4f}")
        for label, h in [("Orion", orion), ("STRADS", strads)]
    ]
    report(
        "Fig 11a: Orion vs STRADS, SGD MF AdaRev",
        wl.fmt_table(["engine", "final loss", "s/iter"], rows)
        + "\npaper shape: identical per-iteration convergence; similar "
        "throughput",
    )
    assert strads.losses == pytest.approx(orion.losses)
    ratio = orion.time_per_iteration() / strads.time_per_iteration()
    assert 0.8 < ratio < 1.6  # similar throughput for MF AdaRev


@pytest.mark.benchmark(group="fig11")
def test_fig11_lda(benchmark, report):
    orion, strads = benchmark.pedantic(_run_lda, rounds=1, iterations=1)
    ratio = orion.time_per_iteration() / strads.time_per_iteration()
    rows = [
        (label, f"{h.final_loss:.4f}", f"{h.time_per_iteration():.4f}")
        for label, h in [("Orion", orion), ("STRADS", strads)]
    ]
    report(
        "Fig 11b/c: Orion vs STRADS, LDA",
        wl.fmt_table(["engine", "final loss", "s/iter"], rows)
        + f"\nmeasured Orion/STRADS time ratio: {ratio:.2f}x "
        "(paper: 1.8x ClueWeb, 4.0x NYTimes)",
    )
    # Per-iteration convergence matches exactly: same serializable
    # execution, only cost constants differ.
    assert strads.losses == pytest.approx(orion.losses)
    assert ratio > 1.5  # STRADS meaningfully faster per iteration on LDA
