"""Shared workloads and cluster configurations for the benchmark suite.

The paper's evaluation runs on a 42-node cluster against Netflix (~100M
ratings, rank 1000), NYTimes (~300K docs) and ClueWeb25M (~25M docs).
These benchmarks reproduce every figure and table at laptop scale: the
synthetic datasets keep the access patterns and the cluster/cost models
keep compute-to-communication ratios in the regime the paper operates in,
so the *shapes* (who wins, by what factor, where crossovers fall) carry
over while absolute seconds do not.
"""

from __future__ import annotations

import functools

from repro.apps import LDAHyper, MFHyper, SLRHyper
from repro.data import (
    lda_corpus,
    netflix_like,
    regression_table,
    sparse_classification,
)
from repro.runtime.cluster import ClusterSpec
from repro.runtime.network import NetworkModel
from repro.runtime.simtime import CostModel

#: Scaled-down stand-in for the paper's 12-machine main configuration.
BENCH_MACHINES = 12
BENCH_WORKERS_PER_MACHINE = 2

#: Scaled-down network: the compute-to-communication ratio of the paper's
#: 40 Gbps cluster running rank-1000 MF maps to this at benchmark scale.
BENCH_NETWORK = NetworkModel(
    bandwidth_bytes_per_s=5e6, latency_s=1e-4, intra_machine_factor=0.25
)

#: Unordered 2D benchmarks use this pipeline depth (time partitions per
#: worker, paper Fig. 8 — multiple indices hide rotation latency).
BENCH_PIPELINE_DEPTH = 4

#: Hyperparameters shared by every MF benchmark.
MF_HYPER = MFHyper(rank=8, step_size=0.04)
MF_ADAREV_HYPER = MFHyper(rank=8, adarev=True, adarev_step=0.15)
LDA_HYPER = LDAHyper(num_topics=8, alpha=0.5, beta=0.1)
SLR_HYPER = SLRHyper(step_size=0.2)

#: Per-entry virtual compute costs, calibrated so block work is comparable
#: to per-step communication — the regime where the paper's ordered-vs-
#: unordered and Orion-vs-baseline gaps appear.
MF_ENTRY_COST = 6e-5
# AdaRev's per-entry flops are ~1.6x plain SGD MF here; it additionally
# rotates 3x the state (H, the z² accumulators, and the z revision sums),
# which is why its ordered-mode penalty exceeds plain SGD MF's (Table 3).
MF_ADAREV_ENTRY_COST = 6e-5 * 1.6
LDA_ENTRY_COST = 8e-6
SLR_ENTRY_COST = 4e-6


def mf_cluster(adarev: bool = False, overhead: float = 1.15) -> ClusterSpec:
    """The benchmark cluster configured for (AdaRev) SGD MF."""
    cost = CostModel(
        entry_cost_s=MF_ADAREV_ENTRY_COST if adarev else MF_ENTRY_COST,
        overhead_factor=overhead,
        sync_overhead_s=2e-4,
    )
    return ClusterSpec(
        num_machines=BENCH_MACHINES,
        workers_per_machine=BENCH_WORKERS_PER_MACHINE,
        network=BENCH_NETWORK,
        cost=cost,
    )


def lda_cluster(overhead: float = 1.15) -> ClusterSpec:
    """The benchmark cluster configured for LDA (communication heavy).

    LDA rotates structured per-row count data, which a Julia runtime must
    marshal between worker processes — the per-byte CPU cost the paper
    identifies as Orion's main LDA overhead versus STRADS (Sec. 6.4).
    """
    cost = CostModel(
        entry_cost_s=LDA_ENTRY_COST,
        overhead_factor=overhead,
        sync_overhead_s=2e-4,
        marshalling_s_per_byte=4e-7,
    )
    return ClusterSpec(
        num_machines=BENCH_MACHINES,
        workers_per_machine=BENCH_WORKERS_PER_MACHINE,
        network=BENCH_NETWORK,
        cost=cost,
    )


def slr_cluster() -> ClusterSpec:
    """A single-machine cluster for the SLR prefetch experiment
    (paper Sec. 6.3 runs KDD2010 on one machine)."""
    cost = CostModel(entry_cost_s=SLR_ENTRY_COST, sync_overhead_s=2e-4)
    return ClusterSpec(
        num_machines=1,
        workers_per_machine=8,
        network=BENCH_NETWORK,
        cost=cost,
    )


@functools.lru_cache(maxsize=None)
def netflix_bench():
    """The Netflix stand-in used by MF benchmarks."""
    return netflix_like(
        num_rows=300, num_cols=240, rank=8, num_ratings=18_000, seed=101
    )


@functools.lru_cache(maxsize=None)
def netflix_skewed():
    """A power-law-skewed variant for the partitioning ablation."""
    return netflix_like(
        num_rows=300, num_cols=240, rank=8, num_ratings=18_000, skew=1.2,
        seed=103,
    )


@functools.lru_cache(maxsize=None)
def nytimes_bench():
    """The NYTimes stand-in used by LDA benchmarks.

    Many short documents: the doc-topic matrix (the rotated array) is large
    relative to per-pass compute, reproducing LDA's communication-heavy
    profile on the scaled-down cluster.
    """
    return lda_corpus(
        num_docs=1200, vocab_size=500, num_topics=8, doc_length=15, seed=107
    )


@functools.lru_cache(maxsize=None)
def clueweb_bench():
    """The (larger) ClueWeb stand-in used by the over-time LDA figures."""
    return lda_corpus(
        num_docs=2000, vocab_size=700, num_topics=8, doc_length=18, seed=109
    )


@functools.lru_cache(maxsize=None)
def kdd_bench():
    """The KDD2010 stand-in used by the SLR prefetch benchmark."""
    return sparse_classification(
        num_samples=3_000, num_features=2_000, nnz_per_sample=12, seed=113
    )


@functools.lru_cache(maxsize=None)
def gbt_bench():
    """The regression table used by the GBT (Table 2) benchmark."""
    return regression_table(num_samples=1_500, num_features=6, seed=127)


def fmt_table(headers, rows) -> str:
    """Fixed-width table formatting shared by the benchmarks."""
    widths = [
        max(len(str(headers[i])), *(len(str(row[i])) for row in rows))
        for i in range(len(headers))
    ]

    def _line(cells):
        return "  ".join(str(c).rjust(w) for c, w in zip(cells, widths))

    out = [_line(headers), _line(["-" * w for w in widths])]
    out.extend(_line(row) for row in rows)
    return "\n".join(out)


def fmt_series(title, pairs, fmt="{:.4g}") -> str:
    """Format an (x, y) series as two aligned rows."""
    xs = [str(x) for x, _y in pairs]
    ys = [fmt.format(y) for _x, y in pairs]
    width = max(len(a) for a in xs + ys)
    line_x = "  ".join(x.rjust(width) for x in xs)
    line_y = "  ".join(y.rjust(width) for y in ys)
    return f"{title}\n  x: {line_x}\n  y: {line_y}"
