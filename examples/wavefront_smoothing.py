"""Wavefront computation via unimodular transformation (paper Sec. 4.3).

Not every parallelizable loop is an ML training loop.  This example runs a
Gauss-Seidel-style grid smoothing whose loop body reads the *left* and
*upper-left diagonal* neighbours it just wrote:

    grid[i, j] = 0.25 * (grid[i, j-1] + grid[i-1, j-1]) + 0.5 * grid[i, j]

The dependence vectors are {(0,1), (1,1)} — no iteration-space dimension
is all-zero (no 1D) and the diagonal vector defeats every 2D orientation.
Orion searches the unimodular transformations (interchange / reversal /
skew) for a matrix carrying every dependence on the transformed outer
level and schedules the inner level in parallel — the classic wavefront.

Run:  python examples/wavefront_smoothing.py
"""

import numpy as np

from repro import ClusterSpec, LoopOptions, OrionContext

N = 24
ctx = OrionContext(
    cluster=ClusterSpec(num_machines=2, workers_per_machine=4), seed=11
)

# Iterate over interior cells only, so the -1 offsets stay in bounds.
cells = ctx.from_entries(
    [((i, j), 1.0) for i in range(1, N) for j in range(1, N)],
    name="cells",
    shape=(N, N),
)
ctx.materialize(cells)
grid = ctx.rand(N, N, name="grid")
ctx.materialize(grid)
initial = grid.values.copy()


def smooth(key, _value):
    left = grid[key[0], key[1] - 1]
    diagonal = grid[key[0] - 1, key[1] - 1]
    grid[key[0], key[1]] = 0.25 * (left + diagonal) + 0.5 * grid[key[0], key[1]]


# The dependences require lexicographic order: this loop is `ordered`.
loop = ctx.parallel_for(
    cells, options=LoopOptions(ordered=True, validate=True)
)(smooth)
print(loop.explain())

loop.run(epochs=3)

# Cross-check against the plain serial loop on the saved initial state.
reference = initial.copy()
for _ in range(3):
    for i in range(1, N):
        for j in range(1, N):
            reference[i, j] = 0.25 * (
                reference[i, j - 1] + reference[i - 1, j - 1]
            ) + 0.5 * reference[i, j]

match = np.allclose(grid.values, reference)
print(f"matches the serial reference exactly: {match}")
print(f"grid roughness before: {np.abs(np.diff(initial, axis=1)).mean():.4f}")
print(f"grid roughness after:  {np.abs(np.diff(grid.values, axis=1)).mean():.4f}")
