"""Tests for the observability subsystem (repro.obs).

Covers the tracer (span recording, begin/end nesting, disabled no-op),
the metrics registry, the Chrome-trace/Perfetto exporter and its schema
validator, the straggler report, and the end-to-end acceptance criteria:
per-worker block spans account exactly for reported utilization, and a
tracing-disabled run is bit-identical to an instrumented one.
"""

import json

import numpy as np
import pytest

from repro.obs import (
    NULL_METRICS,
    NULL_TRACER,
    MetricsRegistry,
    Tracer,
    add_traffic_spans,
    chrome_trace_events,
    straggler_report,
    to_chrome_trace,
    utilization_lines,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.runtime.history import EpochRecord, RunHistory
from repro.runtime.network import TrafficLog


class TestTracer:
    def test_add_span_records(self):
        tracer = Tracer()
        tracer.add_span("b", "block", 1.0, 3.0, track="worker0",
                        process="orion", args={"step": 0})
        (span,) = tracer.spans
        assert span.name == "b"
        assert span.duration == 2.0
        assert span.args == {"step": 0}

    def test_inverted_span_clamped(self):
        tracer = Tracer()
        tracer.add_span("x", "block", 5.0, 4.0)
        assert tracer.spans[0].t_end == 5.0
        assert tracer.spans[0].duration == 0.0

    def test_begin_end_nesting_depth(self):
        tracer = Tracer()
        tracer.begin("outer", "epoch", 0.0, track="t")
        tracer.begin("inner", "block", 1.0, track="t")
        inner = tracer.end(2.0, track="t")
        outer = tracer.end(3.0, track="t")
        assert inner.name == "inner" and inner.depth == 1
        assert outer.name == "outer" and outer.depth == 0
        assert inner.t_start == 1.0 and inner.t_end == 2.0

    def test_end_without_begin_raises(self):
        with pytest.raises(ValueError):
            Tracer().end(1.0)

    def test_stacks_are_per_process_track(self):
        tracer = Tracer()
        tracer.begin("a", "c", 0.0, track="t", process="p1")
        tracer.begin("b", "c", 0.0, track="t", process="p2")
        assert tracer.end(1.0, track="t", process="p1").name == "a"
        assert tracer.end(1.0, track="t", process="p2").name == "b"

    def test_disabled_tracer_is_noop(self):
        tracer = Tracer(enabled=False)
        tracer.add_span("x", "block", 0.0, 1.0)
        tracer.instant("i", 0.5)
        tracer.begin("y", "block", 0.0)
        tracer.end(1.0)  # must not raise despite no open span
        assert tracer.spans == []
        assert tracer.instants == []
        assert not tracer
        assert not NULL_TRACER.enabled

    def test_filter_and_queries(self):
        tracer = Tracer()
        tracer.add_span("b0", "block", 0.0, 1.0, track="worker0", process="a")
        tracer.add_span("b1", "block", 1.0, 3.0, track="worker0", process="a")
        tracer.add_span("b2", "block", 0.0, 4.0, track="worker1", process="a")
        tracer.add_span("r", "rotation", 0.0, 1.0, track="net", process="b")
        assert len(tracer.filter(cat="block")) == 3
        assert len(tracer.filter(process="b")) == 1
        assert tracer.processes() == ["a", "b"]
        assert tracer.tracks("a") == ["worker0", "worker1"]
        busy = tracer.busy_by_track(cat="block", process="a")
        assert busy == {"worker0": 3.0, "worker1": 4.0}
        assert tracer.time_bounds("a") == (0.0, 4.0)
        assert tracer.time_bounds("missing") is None

    def test_clear(self):
        tracer = Tracer()
        tracer.add_span("x", "block", 0.0, 1.0)
        tracer.begin("open", "block", 0.0)
        tracer.clear()
        assert tracer.spans == []
        with pytest.raises(ValueError):
            tracer.end(1.0)


class TestMetrics:
    def test_counter(self):
        registry = MetricsRegistry()
        registry.counter("n").inc()
        registry.counter("n").inc(2.5)
        assert registry.counter("n").value == 3.5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("n").inc(-1)

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(1.0)
        registry.gauge("g").set(-2.0)
        assert registry.gauge("g").value == -2.0

    def test_histogram_summary(self):
        histogram = MetricsRegistry().histogram("h")
        for value in (1.0, 3.0, 2.0):
            histogram.observe(value)
        assert histogram.summary() == {
            "count": 3.0, "sum": 6.0, "min": 1.0, "max": 3.0, "mean": 2.0,
        }

    def test_accessors_memoize(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")

    def test_disabled_registry_records_nothing(self):
        registry = MetricsRegistry(enabled=False)
        registry.counter("n").inc(10)
        registry.gauge("g").set(1.0)
        registry.histogram("h").observe(2.0)
        assert registry.snapshot() == {}
        assert not registry
        # Disabled handles are shared singletons, not fresh allocations.
        assert registry.counter("a") is registry.counter("b")
        assert not NULL_METRICS.enabled

    def test_snapshot_sorted_and_json_safe(self):
        registry = MetricsRegistry()
        registry.counter("z").inc()
        registry.counter("a").inc(2)
        registry.histogram("h").observe(1.0)
        snapshot = registry.snapshot()
        assert list(snapshot)[:2] == ["a", "z"]
        json.dumps(snapshot)  # must not raise


def _sample_tracer() -> Tracer:
    tracer = Tracer()
    tracer.add_span("epoch 1", "epoch", 0.0, 4.0, track="epochs",
                    process="orion")
    tracer.add_span("block[0,0]", "block", 0.0, 2.0, track="worker0",
                    process="orion", args={"step": 0})
    tracer.add_span("block[1,0]", "block", 0.0, 3.0, track="worker1",
                    process="orion")
    tracer.add_span("rotation", "rotation", 2.0, 2.5, track="net:rotation",
                    process="orion", args={"nbytes": 1000, "hop": "0->1"})
    tracer.instant("marker", 1.0, track="epochs", process="orion")
    return tracer


class TestExport:
    def test_trace_validates_and_has_metadata(self):
        trace = to_chrome_trace(_sample_tracer())
        assert validate_chrome_trace(trace) == []
        events = trace["traceEvents"]
        names = {e["args"]["name"] for e in events if e["ph"] == "M"
                 and e["name"] == "thread_name"}
        assert {"epochs", "worker0", "worker1", "net:rotation"} <= names
        process_meta = [e for e in events if e["name"] == "process_name"]
        assert [e["args"]["name"] for e in process_meta] == ["orion"]

    def test_timestamps_in_microseconds(self):
        events = chrome_trace_events(_sample_tracer())
        block = next(e for e in events if e.get("name") == "block[0,0]")
        assert block["ph"] == "X"
        assert block["ts"] == 0.0 and block["dur"] == 2.0e6
        instant = next(e for e in events if e["ph"] == "i")
        assert instant["ts"] == 1.0e6 and instant["s"] == "t"

    def test_distinct_pids_per_process(self):
        tracer = _sample_tracer()
        tracer.add_span("shard", "block", 0.0, 1.0, track="worker0",
                        process="bosen")
        events = chrome_trace_events(tracer)
        pids = {e["pid"] for e in events}
        assert len(pids) == 2

    def test_write_chrome_trace_roundtrips(self, tmp_path):
        path = tmp_path / "trace.json"
        written = write_chrome_trace(_sample_tracer(), str(path))
        loaded = json.loads(path.read_text())
        assert loaded == written
        assert validate_chrome_trace(loaded) == []

    def test_validator_flags_problems(self):
        assert validate_chrome_trace([]) == ["trace must be a JSON object, "
                                             "got list"]
        assert validate_chrome_trace({}) == ["trace.traceEvents must be a list"]
        bad = {"traceEvents": [
            {"name": "x", "ph": "X", "ts": 0, "dur": -1, "pid": 1, "tid": 0},
            {"name": "x", "ph": "X", "pid": 1, "tid": 0},
            {"name": 3, "ph": "i", "ts": 0, "s": "q", "pid": 1, "tid": 0},
            {"ph": "X", "ts": 0, "dur": 1},
            "not an object",
        ]}
        problems = validate_chrome_trace(bad)
        assert any("negative dur" in p for p in problems)
        assert any("missing numeric 'dur'" in p for p in problems)
        assert any("scope" in p for p in problems)
        assert any("missing integer" in p for p in problems)
        assert any("not an object" in p for p in problems)

    def test_add_traffic_spans(self):
        traffic = TrafficLog()
        traffic.record(0.0, 1.0, 100, "sync")
        traffic.record(1.0, 2.0, 50, "broadcast")
        tracer = Tracer()
        assert add_traffic_spans(tracer, traffic, process="tf") == 2
        assert tracer.tracks("tf") == ["net:sync", "net:broadcast"]
        assert tracer.filter(cat="sync")[0].args == {"nbytes": 100}
        assert add_traffic_spans(NULL_TRACER, traffic) == 0


class TestReport:
    def test_utilization_lines(self):
        lines = utilization_lines(_sample_tracer(), "orion")
        body = "\n".join(lines)
        assert "worker0" in body and "worker1" in body
        # worker1: 3.0 busy over a 4.0 s horizon = 75%.
        assert "75.0%" in body

    def test_utilization_lines_empty(self):
        assert utilization_lines(Tracer(), "nope") == ["  (no spans recorded)"]

    def test_straggler_report_sections(self):
        registry = MetricsRegistry()
        registry.counter("entries_total").inc(42)
        report = straggler_report(_sample_tracer(), registry)
        assert "== orion:" in report
        assert "critical-path blocks" in report
        assert "block[1,0]" in report  # the longest block leads
        assert "slowest rotation hops" in report
        assert "hop 0->1" in report
        assert "== metrics ==" in report
        assert "entries_total: 42" in report

    def test_empty_trace(self):
        assert "(empty trace)" in straggler_report(Tracer())


class TestHistoryJson:
    def _history(self) -> RunHistory:
        history = RunHistory(label="demo")
        history.traffic.record(0.0, 1.0, 100, "rotation")
        history.append(10.0, 1.5, bytes_sent=100, utilization=0.8)
        history.append(8.0, 1.25, bytes_sent=50, utilization=0.9)
        history.meta["initial_loss"] = 12.0
        history.meta["kernel_path"] = True
        history.meta["state"] = {"W": np.zeros(3)}  # not JSON-serializable
        return history

    def test_round_trip(self):
        original = self._history()
        data = json.loads(json.dumps(original.to_json()))
        rebuilt = RunHistory.from_json(data)
        assert rebuilt.label == original.label
        assert rebuilt.records == original.records
        assert rebuilt.traffic.events == original.traffic.events
        assert rebuilt.meta["initial_loss"] == 12.0
        assert rebuilt.meta["kernel_path"] is True

    def test_non_serializable_meta_dropped(self):
        data = self._history().to_json()
        assert "state" not in data["meta"]

    def test_record_fields(self):
        record = self._history().records[0]
        assert isinstance(record, EpochRecord)
        assert record.utilization == 0.8
        assert record.time_s == 1.5


@pytest.fixture()
def traced_mf(mf_small):
    """A small traced Orion MF run: (history, tracer, metrics, cluster)."""
    from repro.apps import MFHyper, build_sgd_mf
    from repro.runtime.cluster import ClusterSpec

    cluster = ClusterSpec(num_machines=2, workers_per_machine=2)
    tracer = Tracer()
    metrics = MetricsRegistry()
    program = build_sgd_mf(
        mf_small, cluster=cluster, hyper=MFHyper(rank=4), seed=3,
        tracer=tracer, metrics=metrics,
    )
    history = program.run(2)
    return history, tracer, metrics, cluster


class TestEndToEndTracing:
    def test_one_track_per_worker(self, traced_mf):
        _history, tracer, _metrics, cluster = traced_mf
        tracks = tracer.tracks("orion")
        for worker in range(cluster.num_workers):
            assert f"worker{worker}" in tracks
        assert "epochs" in tracks

    def test_block_spans_account_for_utilization(self, traced_mf):
        """Acceptance: per-worker block spans sum to the busy time implied
        by the reported utilization, within 1e-6 virtual seconds."""
        history, tracer, _metrics, cluster = traced_mf
        busy = tracer.busy_by_track(cat="block", process="orion")
        traced_busy = sum(
            seconds for track, seconds in busy.items()
            if track.startswith("worker")
        )
        reported_busy = cluster.num_workers * sum(
            record.utilization * record.epoch_time_s
            for record in history.records
        )
        assert abs(traced_busy - reported_busy) < 1e-6

    def test_phase_spans_partition_blocks(self, traced_mf):
        _history, tracer, _metrics, _cluster = traced_mf
        blocks = sum(span.duration
                     for span in tracer.filter(cat="block", process="orion"))
        phases = sum(
            span.duration
            for cat in ("prefetch", "compute", "flush", "overhead")
            for span in tracer.filter(cat=cat, process="orion")
            if span.track.startswith("worker")
        )
        assert phases == pytest.approx(blocks, abs=1e-9)

    def test_exported_trace_validates_and_accounts(self, traced_mf):
        history, tracer, _metrics, cluster = traced_mf
        trace = to_chrome_trace(tracer)
        assert validate_chrome_trace(trace) == []
        # The same busy-time invariant must hold in the exported JSON (µs).
        dur_us = sum(
            event["dur"] for event in trace["traceEvents"]
            if event.get("cat") == "block" and event["ph"] == "X"
        )
        reported_us = 1e6 * cluster.num_workers * sum(
            record.utilization * record.epoch_time_s
            for record in history.records
        )
        assert abs(dur_us - reported_us) < 1.0  # 1 µs == 1e-6 virtual s

    def test_epoch_spans_and_barriers(self, traced_mf):
        history, tracer, _metrics, _cluster = traced_mf
        epochs = tracer.filter(cat="epoch", process="orion")
        assert len(epochs) == len(history.records)
        assert epochs[0].args["strategy"] == "TWO_D"
        assert tracer.filter(cat="barrier", process="orion")

    def test_metrics_recorded(self, traced_mf):
        history, _tracer, metrics, _cluster = traced_mf
        snapshot = metrics.snapshot()
        assert snapshot["epochs_total"] == len(history.records)
        assert snapshot["blocks_total"] > 0
        total = (snapshot.get("kernel_blocks_total", 0)
                 + snapshot.get("scalar_blocks_total", 0))
        assert total == snapshot["blocks_total"]
        assert snapshot["traffic_bytes_rotation"] > 0
        assert 0.0 < snapshot["utilization"] <= 1.0
        assert snapshot["block_seconds"]["count"] == snapshot["blocks_total"]

    def test_history_surfaces_observability(self, traced_mf):
        history, tracer, metrics, _cluster = traced_mf
        assert history.meta["tracer"] is tracer
        assert history.meta["metrics"] is metrics
        assert isinstance(history.meta["kernel_path"], bool)
        assert all(0.0 < r.utilization <= 1.0 for r in history.records)

    def test_disabled_tracing_is_bit_identical(self, mf_small):
        """Acceptance: instrumenting a run must not perturb its results."""
        from repro.apps import MFHyper, build_sgd_mf
        from repro.runtime.cluster import ClusterSpec

        def run(**obs):
            cluster = ClusterSpec(num_machines=2, workers_per_machine=2)
            program = build_sgd_mf(
                mf_small, cluster=cluster, hyper=MFHyper(rank=4), seed=3,
                **obs,
            )
            return program.run(3)

        plain = run()
        traced = run(tracer=Tracer(), metrics=MetricsRegistry())
        assert [r.loss for r in plain.records] \
            == [r.loss for r in traced.records]
        assert [r.time_s for r in plain.records] \
            == [r.time_s for r in traced.records]
        assert plain.records == traced.records
        assert plain.traffic.total_bytes == traced.traffic.total_bytes

    def test_serial_baseline_traced(self, mf_small):
        from repro.apps.sgd_mf import MFHyper, SGDMFApp
        from repro.baselines import run_serial

        tracer = Tracer()
        history = run_serial(SGDMFApp(mf_small, MFHyper(rank=4)), 2,
                             tracer=tracer)
        blocks = tracer.filter(cat="block", process="serial")
        assert len(blocks) == 2
        assert sum(b.duration for b in blocks) \
            == pytest.approx(history.total_time_s)
        assert all(r.utilization == 1.0 for r in history.records)

    def test_bosen_baseline_traced(self, mf_small):
        from repro.apps.sgd_mf import MFHyper, SGDMFApp
        from repro.baselines import run_bosen
        from repro.runtime.cluster import ClusterSpec

        tracer = Tracer()
        metrics = MetricsRegistry()
        cluster = ClusterSpec(num_machines=2, workers_per_machine=2)
        history = run_bosen(SGDMFApp(mf_small, MFHyper(rank=4)), cluster, 2,
                            tracer=tracer, metrics=metrics)
        assert "bosen" in tracer.processes()
        busy = tracer.busy_by_track(cat="block", process="bosen")
        traced_busy = sum(v for k, v in busy.items() if k.startswith("worker"))
        reported_busy = cluster.num_workers * sum(
            r.utilization * r.epoch_time_s for r in history.records
        )
        assert abs(traced_busy - reported_busy) < 1e-6
        assert validate_chrome_trace(to_chrome_trace(tracer)) == []


class TestWallClockTraceRoundTrip:
    """Chrome-trace export/validate round trip of real-clock (`@wall`)
    spans produced by the multiprocess backend (satellite of the insight
    layer: docs/observability.md, "Real-clock spans")."""

    @pytest.fixture(scope="class")
    def wall_tracer(self, mf_small):
        from repro.apps import MFHyper, build_sgd_mf
        from repro.runtime.cluster import ClusterSpec

        tracer = Tracer()
        metrics = MetricsRegistry()
        cluster = ClusterSpec(num_machines=1, workers_per_machine=2)
        program = build_sgd_mf(
            mf_small, cluster=cluster, hyper=MFHyper(rank=4), seed=3,
            tracer=tracer, metrics=metrics, backend="multiprocess",
        )
        try:
            program.run(2)
        finally:
            program.close()
        return tracer

    def test_wall_process_records_epochs_and_blocks(self, wall_tracer):
        from repro.obs import wall_process

        wall = wall_process("orion")
        assert wall in wall_tracer.processes()
        epochs = wall_tracer.filter(
            cat="epoch", track="epochs", process=wall
        )
        assert len(epochs) == 2
        blocks = wall_tracer.filter(cat="block", process=wall)
        assert blocks
        # Real-clock blocks carry their schedule step and token wait.
        for block in blocks:
            assert "step" in block.args
            assert block.args["token_wait_s"] >= 0.0

    def test_export_validate_reload_round_trip(self, wall_tracer, tmp_path):
        from repro.obs import wall_process

        path = tmp_path / "wall_trace.json"
        trace = write_chrome_trace(wall_tracer, str(path))
        assert validate_chrome_trace(trace) == []

        reloaded = json.loads(path.read_text())
        assert validate_chrome_trace(reloaded) == []
        assert len(reloaded["traceEvents"]) == len(trace["traceEvents"])

        # The @wall process survives the round trip as its own Perfetto
        # process, with every span's timing intact.
        names = {
            event["args"]["name"]
            for event in reloaded["traceEvents"]
            if event["ph"] == "M" and event["name"] == "process_name"
        }
        assert wall_process("orion") in names
        durations = sorted(
            event["dur"] for event in reloaded["traceEvents"]
            if event["ph"] == "X" and event["cat"] == "epoch"
        )
        original = sorted(
            span.duration * 1e6
            for span in wall_tracer.filter(cat="epoch")
        )
        assert durations == pytest.approx(original)
