"""Unit tests for accumulators (repro.core.accumulator)."""

import operator

import pytest

from repro.core import access
from repro.core.accumulator import Accumulator, AccumulatorRegistry
from repro.errors import AccumulatorError


class TestAccumulator:
    def test_add_and_aggregate(self):
        acc = Accumulator("err", 0.0)
        acc.add(1.0)
        acc.add(2.5)
        assert acc.aggregate() == 3.5

    def test_per_worker_slots(self):
        acc = Accumulator("err", 0.0)
        with access.worker_scope(0):
            acc.add(1.0)
        with access.worker_scope(1):
            acc.add(10.0)
        assert acc.worker_value(0) == 1.0
        assert acc.worker_value(1) == 10.0
        assert acc.aggregate() == 11.0

    def test_untouched_worker_has_initial(self):
        acc = Accumulator("err", 5.0)
        assert acc.worker_value(3) == 5.0

    def test_slots_retained_across_epochs(self):
        # The paper: worker accumulator state persists across for-loop
        # executions until explicitly reset.
        acc = Accumulator("err", 0.0)
        for _epoch in range(3):
            with access.worker_scope(0):
                acc.add(1.0)
        assert acc.aggregate() == 3.0

    def test_reset(self):
        acc = Accumulator("err", 0.0)
        acc.add(4.0)
        acc.reset()
        assert acc.aggregate() == 0.0

    def test_custom_op_max(self):
        acc = Accumulator("peak", float("-inf"), op=max)
        with access.worker_scope(0):
            acc.add(3.0)
        with access.worker_scope(1):
            acc.add(7.0)
        assert acc.aggregate() == 7.0

    def test_aggregate_with_override_op(self):
        acc = Accumulator("v", 1.0, op=operator.add)
        with access.worker_scope(0):
            acc.add(2.0)  # slot = 1 + 2 = 3
        assert acc.aggregate(operator.mul) == 3.0  # 1.0 * 3.0

    def test_initial_seeds_each_slot(self):
        acc = Accumulator("v", 100.0)
        with access.worker_scope(0):
            acc.add(1.0)
        assert acc.worker_value(0) == 101.0


class TestRegistry:
    def test_create_and_get(self):
        registry = AccumulatorRegistry()
        acc = registry.create("err")
        assert registry.get("err") is acc

    def test_duplicate_name_raises(self):
        registry = AccumulatorRegistry()
        registry.create("err")
        with pytest.raises(AccumulatorError):
            registry.create("err")

    def test_unknown_name_raises(self):
        registry = AccumulatorRegistry()
        with pytest.raises(AccumulatorError):
            registry.get("nope")

    def test_aggregate_and_reset_via_registry(self):
        registry = AccumulatorRegistry()
        registry.create("err", 0.0)
        registry.get("err").add(2.0)
        assert registry.aggregate("err") == 2.0
        registry.reset("err")
        assert registry.aggregate("err") == 0.0
