"""Unit tests for cluster spec, cost model, history and checkpoint helpers."""

import numpy as np
import pytest

from repro.core.distarray import DistArray
from repro.errors import CheckpointError, ExecutionError
from repro.runtime.checkpoint import checkpoint_arrays, restore_arrays
from repro.runtime.cluster import ClusterSpec
from repro.runtime.history import RunHistory
from repro.runtime.simtime import CostModel


class TestClusterSpec:
    def test_num_workers(self):
        assert ClusterSpec(num_machines=3, workers_per_machine=4).num_workers == 12

    def test_machine_of_contiguous(self):
        cluster = ClusterSpec(num_machines=2, workers_per_machine=3)
        assert [cluster.machine_of(w) for w in range(6)] == [0, 0, 0, 1, 1, 1]

    def test_machine_of_out_of_range(self):
        cluster = ClusterSpec(num_machines=1, workers_per_machine=2)
        with pytest.raises(ExecutionError):
            cluster.machine_of(5)

    def test_same_machine(self):
        cluster = ClusterSpec(num_machines=2, workers_per_machine=2)
        assert cluster.same_machine(0, 1)
        assert not cluster.same_machine(1, 2)

    def test_invalid_sizes_raise(self):
        with pytest.raises(ExecutionError):
            ClusterSpec(num_machines=0)

    def test_paper_default(self):
        cluster = ClusterSpec.paper_default()
        assert cluster.num_workers == 384

    def test_single_machine(self):
        cluster = ClusterSpec.single_machine(8)
        assert cluster.num_machines == 1
        assert cluster.num_workers == 8


class TestCostModel:
    def test_compute_time(self):
        cost = CostModel(entry_cost_s=2e-6, overhead_factor=1.5)
        assert cost.compute_time(1000) == pytest.approx(3e-3)

    def test_with_overhead(self):
        cost = CostModel(entry_cost_s=1e-6).with_overhead(2.0)
        assert cost.overhead_factor == 2.0
        assert cost.entry_cost_s == 1e-6

    def test_scaled(self):
        cost = CostModel(overhead_factor=1.5).scaled(5e-6)
        assert cost.entry_cost_s == 5e-6
        assert cost.overhead_factor == 1.5

    def test_frozen(self):
        with pytest.raises(Exception):
            CostModel().entry_cost_s = 1.0


class TestRunHistory:
    def test_append_accumulates_time(self):
        history = RunHistory("x")
        history.append(10.0, 2.0)
        history.append(5.0, 3.0)
        assert history.times == [2.0, 5.0]
        assert history.losses == [10.0, 5.0]
        assert history.final_loss == 5.0
        assert history.total_time_s == 5.0

    def test_time_per_iteration_skips_warmup(self):
        history = RunHistory("x")
        history.append(1.0, 10.0)  # warm-up pass
        history.append(1.0, 2.0)
        history.append(1.0, 2.0)
        assert history.time_per_iteration() == pytest.approx(2.0)

    def test_time_per_iteration_single_record(self):
        history = RunHistory("x")
        history.append(1.0, 4.0)
        assert history.time_per_iteration() == pytest.approx(4.0)

    def test_epochs_to_reach(self):
        history = RunHistory("x")
        for loss in [9.0, 5.0, 2.0]:
            history.append(loss, 1.0)
        assert history.epochs_to_reach(5.0) == 2
        assert history.epochs_to_reach(1.0) is None

    def test_time_to_reach(self):
        history = RunHistory("x")
        for loss in [9.0, 5.0, 2.0]:
            history.append(loss, 1.0)
        assert history.time_to_reach(2.5) == pytest.approx(3.0)

    def test_empty_total_time(self):
        assert RunHistory("x").total_time_s == 0.0


class TestCheckpointHelpers:
    def test_roundtrip(self, tmp_path):
        dense = DistArray.randn(3, 3, seed=1, name="cp_dense").materialize()
        sparse = DistArray.from_entries(
            [((0, 1), 4.0)], shape=(2, 2), name="cp_sparse"
        ).materialize()
        paths = checkpoint_arrays([dense, sparse], str(tmp_path), "epoch5")
        assert set(paths) == {"cp_dense", "cp_sparse"}

        original = dense.values.copy()
        dense.values[:] = 0.0
        sparse[(0, 1)] = -1.0
        restore_arrays([dense, sparse], str(tmp_path), "epoch5")
        assert np.array_equal(dense.values, original)
        assert sparse[(0, 1)] == 4.0

    def test_missing_tag_raises(self, tmp_path):
        dense = DistArray.zeros(2, name="cp_missing").materialize()
        with pytest.raises(CheckpointError):
            restore_arrays([dense], str(tmp_path), "nope")

    def test_no_tmp_files_left(self, tmp_path):
        dense = DistArray.zeros(2, name="cp_clean").materialize()
        checkpoint_arrays([dense], str(tmp_path), "t")
        leftovers = [p for p in tmp_path.iterdir() if p.name.endswith(".tmp")]
        assert not leftovers
