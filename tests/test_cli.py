"""Tests for the command-line runner (repro.cli)."""

import io

import pytest

from repro.cli import ENGINES, build_parser, main


def _run(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["mf"])
        assert args.engine == "orion"
        assert args.epochs == 5

    def test_engine_choices_cover_all(self):
        for engine in ENGINES:
            args = build_parser().parse_args(["mf", "--engine", engine])
            assert args.engine == engine

    def test_bad_app_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["resnet"])


class TestSingleEngineRuns:
    def test_orion_mf(self):
        code, output = _run(
            ["mf", "--engine", "orion", "--epochs", "2", "--scale", "0.3",
             "--machines", "2", "--workers-per-machine", "2"]
        )
        assert code == 0
        assert "Orion SGD MF" in output
        assert "pass" in output
        assert output.count("\n") >= 4

    def test_serial_slr(self):
        code, output = _run(
            ["slr", "--engine", "serial", "--epochs", "2", "--scale", "0.2"]
        )
        assert code == 0
        assert "Serial" in output

    def test_bosen_lda(self):
        code, output = _run(
            ["lda", "--engine", "bosen", "--epochs", "1", "--scale", "0.3",
             "--machines", "1", "--workers-per-machine", "2"]
        )
        assert code == 0
        assert "Bosen" in output

    def test_gbt_orion(self):
        code, output = _run(
            ["gbt", "--engine", "orion", "--epochs", "1", "--scale", "0.2"]
        )
        assert code == 0
        assert "Orion GBT" in output

    def test_adarev_variant(self):
        code, output = _run(
            ["mf-adarev", "--engine", "orion", "--epochs", "1",
             "--scale", "0.2", "--machines", "1",
             "--workers-per-machine", "2"]
        )
        assert code == 0
        assert "AdaRev" in output


class TestUnsupportedCombos:
    def test_tux2_requires_mf(self):
        code, output = _run(["slr", "--engine", "tux2", "--epochs", "1",
                             "--scale", "0.2"])
        assert code == 2
        assert "does not support" in output

    def test_serial_requires_numpy_app(self):
        code, output = _run(["gbt", "--engine", "serial", "--epochs", "1",
                             "--scale", "0.2"])
        assert code == 2


class TestAllEnginesTable:
    def test_comparison_table(self):
        code, output = _run(
            ["mf", "--engine", "all", "--epochs", "1", "--scale", "0.2",
             "--machines", "1", "--workers-per-machine", "2"]
        )
        assert code == 0
        header = output.splitlines()[0]
        assert "final loss" in header
        for engine in ("serial", "orion", "bosen", "strads", "tux2"):
            assert engine in output


class TestPlotFlag:
    def test_plot_renders_curves(self):
        code, output = _run(
            ["mf", "--engine", "orion", "--epochs", "2", "--scale", "0.2",
             "--machines", "1", "--workers-per-machine", "2", "--plot"]
        )
        assert code == 0
        assert "epoch" in output
        assert "|" in output


class TestLda1d:
    def test_lda_one_d_runs(self):
        code, output = _run(
            ["lda-1d", "--engine", "orion", "--epochs", "1", "--scale", "0.2",
             "--machines", "1", "--workers-per-machine", "2"]
        )
        assert code == 0
        assert "Orion LDA" in output


class TestObservabilityFlags:
    def test_trace_and_report(self, tmp_path):
        import json

        from repro.obs import validate_chrome_trace

        trace_path = tmp_path / "trace.json"
        code, output = _run(
            ["mf", "--engine", "orion", "--epochs", "2", "--scale", "0.2",
             "--machines", "1", "--workers-per-machine", "2",
             "--trace", str(trace_path), "--report"]
        )
        assert code == 0
        assert "execution path:" in output
        assert "util%" in output
        assert "== orion:" in output  # the straggler report section
        assert "== metrics ==" in output
        trace = json.loads(trace_path.read_text())
        assert validate_chrome_trace(trace) == []
        assert f"trace written to {trace_path}" in output

    def test_all_engines_share_one_trace(self, tmp_path):
        import json

        trace_path = tmp_path / "trace.json"
        code, output = _run(
            ["mf", "--engine", "all", "--epochs", "1", "--scale", "0.2",
             "--machines", "1", "--workers-per-machine", "2",
             "--trace", str(trace_path)]
        )
        assert code == 0
        trace = json.loads(trace_path.read_text())
        processes = {
            event["args"]["name"]
            for event in trace["traceEvents"]
            if event["ph"] == "M" and event["name"] == "process_name"
        }
        # Natively traced engines plus traffic tracks lifted from the rest.
        assert {"serial", "orion", "orion-ordered", "bosen"} <= processes
        assert "tf" in processes or "tux2" in processes

    def test_history_out(self, tmp_path):
        import json

        from repro.runtime.history import RunHistory

        history_path = tmp_path / "history.json"
        code, output = _run(
            ["mf", "--engine", "orion", "--epochs", "2", "--scale", "0.2",
             "--machines", "1", "--workers-per-machine", "2",
             "--history-out", str(history_path)]
        )
        assert code == 0
        assert f"histories written to {history_path}" in output
        payload = json.loads(history_path.read_text())
        assert payload["app"] == "mf"
        history = RunHistory.from_json(payload["histories"]["orion"])
        assert len(history.records) == 2
        assert history.records[0].utilization > 0.0
