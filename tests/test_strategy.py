"""Unit tests for parallelization strategy selection (repro.analysis.strategy)."""

import pytest

from repro.analysis.loop_info import analyze_loop_body
from repro.analysis.strategy import PlacementKind, Strategy, choose_plan
from repro.core.buffers import DistArrayBuffer
from repro.core.distarray import DistArray
from repro.errors import ParallelizationError


def _space_2d(shape=(8, 6)):
    entries = [((i, j), 1.0) for i in range(shape[0]) for j in range(shape[1])]
    return DistArray.from_entries(entries, name="sp2", shape=shape).materialize()


def _space_1d(extent=10):
    entries = [((i,), float(i)) for i in range(extent)]
    return DistArray.from_entries(entries, name="sp1", shape=(extent,)).materialize()


Wm = DistArray.randn(4, 8, name="Wm", seed=2).materialize()
Hm = DistArray.randn(4, 6, name="Hm", seed=3).materialize()


def _mf_plan(ordered=False, force_dims=None):
    space = _space_2d()
    step = 0.1

    def body(key, value):
        w = Wm[:, key[0]]
        h = Hm[:, key[1]]
        Wm[:, key[0]] = w - step * h
        Hm[:, key[1]] = h - step * w

    info = analyze_loop_body(body, space, ordered=ordered)
    return choose_plan(info, force_dims=force_dims)


class TestMFPlan:
    def test_two_d_unordered(self):
        plan = _mf_plan()
        assert plan.strategy is Strategy.TWO_D
        assert not plan.ordered
        assert {plan.space_dim, plan.time_dim} == {0, 1}

    def test_dependence_vectors_match_paper(self):
        plan = _mf_plan()
        assert sorted(v.describe() for v in plan.dvecs) == \
            ["(+inf, 0)", "(0, +inf)"]

    def test_both_orientations_are_candidates(self):
        plan = _mf_plan()
        assert set(plan.candidates_2d) == {(0, 1), (1, 0)}
        assert plan.candidates_1d == ()

    def test_smaller_factor_rotated(self):
        # Hm (4x6) is smaller than Wm (4x8): the heuristic pins the larger
        # factor and rotates the smaller one (paper Fig. 6 step 4).
        plan = _mf_plan()
        assert plan.placements["Wm"].kind is PlacementKind.LOCAL
        assert plan.placements["Hm"].kind is PlacementKind.ROTATED

    def test_ordered_flag_propagates(self):
        plan = _mf_plan(ordered=True)
        assert plan.ordered
        assert plan.strategy is Strategy.TWO_D

    def test_force_dims_valid_orientation(self):
        plan = _mf_plan(force_dims=(1, 0))
        assert (plan.space_dim, plan.time_dim) == (1, 0)
        # Forced orientation flips the placements.
        assert plan.placements["Hm"].kind is PlacementKind.LOCAL
        assert plan.placements["Wm"].kind is PlacementKind.ROTATED

    def test_force_dims_invalid_raises(self):
        with pytest.raises(ParallelizationError):
            _mf_plan(force_dims=(0,))

    def test_describe_mentions_strategy(self):
        assert "2D" in _mf_plan().describe()


class TestOneDPlan:
    def test_single_index_writes_give_one_d(self):
        space = _space_1d()
        vec = DistArray.zeros(10, name="vec1d").materialize()

        def body(key, value):
            vec[key[0]] = vec[key[0]] + value

        info = analyze_loop_body(body, space)
        plan = choose_plan(info)
        assert plan.strategy is Strategy.ONE_D
        assert plan.space_dim == 0
        assert plan.placements["vec"].kind is PlacementKind.LOCAL

    def test_read_only_array_replicated(self):
        space = _space_1d()
        vec = DistArray.zeros(10, name="vecA").materialize()
        table = DistArray.randn(3, 3, name="tableA", seed=4).materialize()

        def body(key, value):
            vec[key[0]] = table[0, 1] + value

        info = analyze_loop_body(body, space)
        plan = choose_plan(info)
        assert plan.placements["table"].kind is PlacementKind.REPLICATED

    def test_one_d_preferred_over_two_d(self):
        # Writes pinned by dim 0 only: dim 0 is a 1D candidate and must win.
        space = _space_2d()
        rows = DistArray.zeros(8, name="rows8").materialize()

        def body(key, value):
            rows[key[0]] = rows[key[0]] + value

        info = analyze_loop_body(body, space)
        plan = choose_plan(info)
        assert plan.strategy is Strategy.ONE_D
        assert plan.space_dim == 0


class TestDataParallelPlan:
    def test_buffered_writes_give_data_parallel(self):
        space = _space_1d()
        weights = DistArray.zeros(30, name="weightsB").materialize()
        buf = DistArrayBuffer(weights, name="bufB")

        def body(key, value):
            w = weights[int(value)]
            buf[int(value)] = w * 0.1

        info = analyze_loop_body(body, space)
        plan = choose_plan(info)
        assert plan.strategy is Strategy.DATA_PARALLEL
        assert plan.uses_buffers
        assert "data parallelism" in plan.describe()

    def test_buffer_target_placed_on_server(self):
        space = _space_1d()
        weights = DistArray.zeros(30, name="weightsC").materialize()
        buf = DistArrayBuffer(weights, name="bufC")

        def body(key, value):
            w = weights[int(value)]
            buf[int(value)] = w * 0.1

        info = analyze_loop_body(body, space)
        plan = choose_plan(info)
        assert plan.placements["weights"].kind is PlacementKind.SERVER


class TestUnimodularPlan:
    def test_axis_stencil_stays_two_d(self):
        # grid[key[0]-1, key[1]] and grid[key[0], key[1]-1] read,
        # grid[key[0], key[1]] written: dvecs {(1,0),(0,1)} — each vector is
        # zero in one of the two dims, so the paper's 2D condition holds
        # (the ordered wavefront schedule respects both dependences).
        space = _space_2d((6, 6))
        grid = DistArray.zeros(6, 6, name="grid6").materialize()

        def body(key, value):
            up = grid[key[0] - 1, key[1]]
            left = grid[key[0], key[1] - 1]
            grid[key[0], key[1]] = 0.5 * (up + left)

        info = analyze_loop_body(body, space, ordered=True)
        plan = choose_plan(info)
        assert plan.strategy is Strategy.TWO_D
        assert sorted(v.describe() for v in plan.dvecs) == ["(0, 1)", "(1, 0)"]

    def _diagonal_plan(self):
        # Reads at (key0, key1-1) and (key0-1, key1-1) give dvecs
        # {(0,1), (1,1)}: no dimension is all-zero (no 1D) and every 2D
        # pair is defeated by (1,1) — a unimodular transformation (e.g.
        # interchange) carries both on the outer level.
        space = _space_2d((6, 6))
        grid = DistArray.zeros(6, 6, name="grid7").materialize()

        def body(key, value):
            left = grid[key[0], key[1] - 1]
            diag = grid[key[0] - 1, key[1] - 1]
            grid[key[0], key[1]] = 0.5 * (left + diag)

        info = analyze_loop_body(body, space, ordered=True)
        return choose_plan(info)

    def test_diagonal_needs_transformation(self):
        plan = self._diagonal_plan()
        assert plan.strategy is Strategy.TWO_D_UNIMODULAR
        assert plan.transform is not None
        assert plan.transform_inverse is not None
        assert sorted(v.describe() for v in plan.dvecs) == ["(0, 1)", "(1, 1)"]

    def test_transform_carries_all_dependences(self):
        plan = self._diagonal_plan()
        from repro.analysis.depvec import entry_is_positive

        for vector in plan.dvecs:
            transformed = vector.transform(plan.transform)
            assert entry_is_positive(transformed[0])


class TestNoParallelization:
    def test_all_unknown_writes_raise(self):
        space = _space_1d()
        weights = DistArray.zeros(30, name="weightsD").materialize()

        def body(key, value):
            weights[int(value)] = weights[int(value)] + 1.0

        info = analyze_loop_body(body, space)
        with pytest.raises(ParallelizationError) as excinfo:
            choose_plan(info)
        assert "DistArrayBuffer" in str(excinfo.value)

    def test_scalar_cell_update_raises(self):
        # Every iteration writes the same cell: (POS,)-style dependence on
        # a 1-D space has no zero dimension and no eligible transform.
        space = _space_1d()
        cell = DistArray.zeros(1, name="cell1").materialize()

        def body(key, value):
            cell[0] = cell[0] + value

        info = analyze_loop_body(body, space)
        with pytest.raises(ParallelizationError):
            choose_plan(info)


class TestLDAPlan:
    def test_lda_is_two_d_with_buffered_topic_sum(self):
        space = _space_2d((8, 6))
        doc_topic = DistArray.zeros(8, 4, name="doc_topicT").materialize()
        word_topic = DistArray.zeros(6, 4, name="word_topicT").materialize()
        topic_sum = DistArray.zeros(4, name="topic_sumT").materialize()
        topic_buf = DistArrayBuffer(topic_sum, name="topic_bufT")

        def body(key, count):
            dt = doc_topic[key[0], :]
            wt = word_topic[key[1], :]
            ts = topic_sum[:]
            doc_topic[key[0], :] = dt + 1.0
            word_topic[key[1], :] = wt + 1.0
            topic_buf[0] = 1.0

        info = analyze_loop_body(body, space)
        plan = choose_plan(info)
        assert plan.strategy is Strategy.TWO_D
        assert plan.placements["topic_sum"].kind is PlacementKind.SERVER
        kinds = {
            plan.placements["doc_topic"].kind,
            plan.placements["word_topic"].kind,
        }
        assert kinds == {PlacementKind.LOCAL, PlacementKind.ROTATED}


class TestThreeDimensionalIterationSpaces:
    """3-D loops (tensor factorization): Orion supports only 1D/2D
    parallelization, so a 3-factor CP decomposition is correctly refused —
    and buffering one factor's updates recovers a 2D plan."""

    def _space_3d(self, extent=4):
        entries = [
            ((i, j, k), 1.0)
            for i in range(extent)
            for j in range(extent)
            for k in range(extent)
        ]
        return DistArray.from_entries(
            entries, name="sp3", shape=(extent, extent, extent)
        ).materialize()

    def test_cp_decomposition_refused(self):
        space = self._space_3d()
        U = DistArray.randn(2, 4, name="U3", seed=1).materialize()
        V = DistArray.randn(2, 4, name="V3", seed=2).materialize()
        Wf = DistArray.randn(2, 4, name="W3", seed=3).materialize()

        def body(key, value):
            u = U[:, key[0]]
            v = V[:, key[1]]
            w = Wf[:, key[2]]
            U[:, key[0]] = u * 0.9
            V[:, key[1]] = v * 0.9
            Wf[:, key[2]] = w * 0.9

        info = analyze_loop_body(body, space)
        with pytest.raises(ParallelizationError):
            choose_plan(info)

    def test_buffering_one_factor_recovers_two_d(self):
        space = self._space_3d()
        U = DistArray.randn(2, 4, name="U3b", seed=1).materialize()
        V = DistArray.randn(2, 4, name="V3b", seed=2).materialize()
        Wf = DistArray.randn(2, 4, name="W3b", seed=3).materialize()
        w_buf = DistArrayBuffer(Wf, name="w3_buf")

        def body(key, value):
            u = U[:, key[0]]
            v = V[:, key[1]]
            w = Wf[:, key[2]]
            U[:, key[0]] = u * 0.9
            V[:, key[1]] = v * 0.9
            w_buf[0, key[2]] = 0.1 * w[0]

        info = analyze_loop_body(body, space)
        plan = choose_plan(info)
        assert plan.strategy is Strategy.TWO_D
        assert {plan.space_dim, plan.time_dim} == {0, 1}
        assert plan.placements["Wf"].kind is PlacementKind.SERVER

    def test_two_factor_tensor_loop_is_two_d(self):
        # Only two of three dims carry parameters: the third is free.
        space = self._space_3d()
        U = DistArray.randn(2, 4, name="U3c", seed=1).materialize()
        V = DistArray.randn(2, 4, name="V3c", seed=2).materialize()

        def body(key, value):
            U[:, key[0]] = U[:, key[0]] * 0.9
            V[:, key[1]] = V[:, key[1]] * 0.9

        info = analyze_loop_body(body, space)
        plan = choose_plan(info)
        assert plan.strategy is Strategy.TWO_D
        assert {plan.space_dim, plan.time_dim} == {0, 1}
