"""Unit tests for adaptive-gradient optimizers (repro.apps.optimizers)."""

import numpy as np
import pytest

from repro.apps.optimizers import AdaGrad, AdaRevision, sgd_step


class TestSGDStep:
    def test_direction(self):
        param = np.array([1.0, 2.0])
        grad = np.array([1.0, -1.0])
        out = sgd_step(param, grad, 0.5)
        assert np.allclose(out, [0.5, 2.5])

    def test_not_in_place(self):
        param = np.array([1.0])
        sgd_step(param, np.array([1.0]), 0.1)
        assert param[0] == 1.0


class TestAdaGrad:
    def test_accumulator_grows(self):
        opt = AdaGrad(step_size=1.0)
        acc = np.zeros(2)
        opt.step(acc, np.array([2.0, 3.0]))
        assert np.allclose(acc, [4.0, 9.0])

    def test_step_shrinks_with_history(self):
        opt = AdaGrad(step_size=1.0)
        acc = np.zeros(1)
        first = opt.step(acc, np.array([1.0]))
        second = opt.step(acc, np.array([1.0]))
        assert abs(second[0]) < abs(first[0])

    def test_per_coordinate_adaptivity(self):
        opt = AdaGrad(step_size=1.0)
        acc = np.zeros(2)
        opt.step(acc, np.array([10.0, 0.1]))
        update = opt.step(acc, np.array([1.0, 1.0]))
        # The frequently-large coordinate gets a smaller effective step.
        assert abs(update[0]) < abs(update[1])

    def test_opposes_gradient(self):
        opt = AdaGrad(step_size=0.5)
        acc = np.zeros(2)
        update = opt.step(acc, np.array([1.0, -2.0]))
        assert update[0] < 0 < update[1]


class TestAdaRevision:
    def test_no_staleness_equals_adagrad(self):
        ada = AdaGrad(step_size=0.7)
        rev = AdaRevision(step_size=0.7)
        acc = np.zeros(3)
        z = np.zeros(3)
        z2 = np.zeros(3)
        rng = np.random.default_rng(0)
        for _ in range(5):
            grad = rng.standard_normal(3)
            expected = ada.step(acc, grad.copy())
            got = rev.step(z, z2, grad.copy(), z_read=z.copy())
            assert np.allclose(expected, got)

    def test_z_tracks_gradient_sum(self):
        rev = AdaRevision()
        z = np.zeros(2)
        z2 = np.zeros(2)
        rev.step(z, z2, np.array([1.0, -1.0]))
        rev.step(z, z2, np.array([2.0, 0.5]))
        assert np.allclose(z, [3.0, -0.5])

    def test_delay_correction_shrinks_step(self):
        # A stale gradient aligned with intervening updates gets a larger
        # z2 correction, hence a smaller step, than a fresh one.
        rev = AdaRevision(step_size=1.0)
        z = np.array([5.0])  # updates applied since the read
        z2 = np.array([1.0])
        fresh = rev.step(z.copy(), z2.copy(), np.array([1.0]), z_read=z.copy())
        stale = rev.step(z.copy(), z2.copy(), np.array([1.0]),
                         z_read=np.array([0.0]))
        assert abs(stale[0]) < abs(fresh[0])

    def test_correction_never_negative(self):
        # Opposing g_bck cannot shrink z2 below the plain-AdaGrad growth
        # floor of zero increment.
        rev = AdaRevision()
        z = np.array([-100.0])
        z2 = np.array([1.0])
        rev.step(z, z2, np.array([1.0]), z_read=np.array([0.0]))
        assert z2[0] >= 1.0

    def test_none_z_read_means_fresh(self):
        rev = AdaRevision(step_size=1.0)
        z = np.zeros(1)
        z2 = np.zeros(1)
        update = rev.step(z, z2, np.array([2.0]), z_read=None)
        assert update[0] == pytest.approx(-1.0, rel=1e-3)
