"""Unit tests for unimodular transformations (repro.analysis.unimodular)."""

import numpy as np

from repro.analysis.depvec import ANY, NEG, POS, DepVector, entry_is_positive
from repro.analysis import unimodular as uni


class TestElementaryMatrices:
    def test_identity(self):
        assert uni.identity(3) == ((1, 0, 0), (0, 1, 0), (0, 0, 1))

    def test_interchange(self):
        assert uni.interchange(2, 0, 1) == ((0, 1), (1, 0))

    def test_reversal(self):
        assert uni.reversal(2, 1) == ((1, 0), (0, -1))

    def test_skew(self):
        assert uni.skew(2, 0, 1, 2) == ((1, 2), (0, 1))

    def test_all_generators_unimodular(self):
        for n in (2, 3):
            assert uni.is_unimodular(uni.identity(n))
            assert uni.is_unimodular(uni.interchange(n, 0, 1))
            assert uni.is_unimodular(uni.reversal(n, 0))
            assert uni.is_unimodular(uni.skew(n, 0, 1, 3))

    def test_invert_unimodular_roundtrip(self):
        matrix = uni.skew(2, 0, 1, 2)
        inverse = uni.invert_unimodular(matrix)
        product = np.array(matrix) @ np.array(inverse)
        assert np.array_equal(product, np.eye(2, dtype=int))

    def test_invert_composed(self):
        matrix = tuple(
            tuple(int(v) for v in row)
            for row in np.array(uni.interchange(2, 0, 1)) @ np.array(uni.skew(2, 0, 1, 1))
        )
        inverse = uni.invert_unimodular(matrix)
        assert np.array_equal(
            np.array(matrix) @ np.array(inverse), np.eye(2, dtype=int)
        )


class TestEligibility:
    def test_numbers_and_pos_eligible(self):
        assert uni.eligible_for_transformation(
            [DepVector((1, 0)), DepVector((POS, 2))]
        )

    def test_any_ineligible(self):
        assert not uni.eligible_for_transformation([DepVector((ANY, 0))])

    def test_neg_ineligible(self):
        assert not uni.eligible_for_transformation([DepVector((1, NEG))])


class TestSearch:
    def test_wavefront_case(self):
        dvecs = [DepVector((1, 0)), DepVector((0, 1))]
        matrix = uni.find_transformation(dvecs, 2)
        assert matrix is not None
        assert uni.is_unimodular(matrix)
        for vector in dvecs:
            assert entry_is_positive(vector.transform(matrix)[0])

    def test_already_carried_returns_identity(self):
        dvecs = [DepVector((1, 0)), DepVector((2, -1))]
        assert uni.find_transformation(dvecs, 2) == uni.identity(2)

    def test_negative_lead_needs_work(self):
        # (0, 1) and (1, -1): skewing by 2 (or similar) carries both.
        dvecs = [DepVector((0, 1)), DepVector((1, -1))]
        matrix = uni.find_transformation(dvecs, 2)
        assert matrix is not None
        for vector in dvecs:
            assert entry_is_positive(vector.transform(matrix)[0])

    def test_pos_infinity_entries(self):
        dvecs = [DepVector((POS, 0)), DepVector((0, POS))]
        matrix = uni.find_transformation(dvecs, 2)
        assert matrix is not None
        for vector in dvecs:
            assert entry_is_positive(vector.transform(matrix)[0])

    def test_three_level_nest(self):
        dvecs = [DepVector((1, 0, 0)), DepVector((0, 1, 0)), DepVector((0, 0, 1))]
        matrix = uni.find_transformation(dvecs, 3)
        assert matrix is not None
        for vector in dvecs:
            assert entry_is_positive(vector.transform(matrix)[0])

    def test_ineligible_returns_none(self):
        assert uni.find_transformation([DepVector((ANY, 0))], 2) is None

    def test_empty_returns_none(self):
        assert uni.find_transformation([], 2) is None

    def test_one_dim_returns_none(self):
        assert uni.find_transformation([DepVector((1,))], 1) is None


class TestTransformPoint:
    def test_skew_point(self):
        matrix = uni.skew(2, 0, 1, 1)
        assert uni.transform_point(matrix, (3, 4)) == (7, 4)

    def test_interchange_point(self):
        matrix = uni.interchange(2, 0, 1)
        assert uni.transform_point(matrix, (3, 4)) == (4, 3)
