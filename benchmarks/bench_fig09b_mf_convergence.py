"""Fig. 9b — SGD MF per-iteration convergence by parallelization scheme.

Paper result (Netflix, 384 workers): serial, dependence-aware unordered
and dependence-aware ordered track each other closely, while data
parallelism converges substantially slower per iteration.
"""

import pytest

import _workloads as wl
from repro.apps import SGDMFApp, build_sgd_mf
from repro.baselines import run_bosen, run_serial

EPOCHS = 10


def _run_all():
    dataset = wl.netflix_bench()
    cluster = wl.mf_cluster()
    app = SGDMFApp(dataset, wl.MF_HYPER)
    runs = {
        "serial": run_serial(app, EPOCHS, cost=cluster.cost),
        "data parallel (Bosen)": run_bosen(app, cluster, EPOCHS),
        "dep-aware (unordered)": build_sgd_mf(
            dataset, cluster=cluster, hyper=wl.MF_HYPER, ordered=False
        ).run(EPOCHS),
        "dep-aware (ordered)": build_sgd_mf(
            dataset, cluster=cluster, hyper=wl.MF_HYPER, ordered=True
        ).run(EPOCHS),
    }
    return runs


@pytest.mark.benchmark(group="fig09b")
def test_fig09b_mf_convergence(benchmark, report):
    runs = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    checkpoints = [1, 2, 4, 6, 8, 10]
    rows = []
    for label, history in runs.items():
        rows.append(
            [label]
            + [f"{history.losses[epoch - 1]:.1f}" for epoch in checkpoints]
        )
    table = wl.fmt_table(
        ["scheme"] + [f"iter {e}" for e in checkpoints], rows
    )
    report(
        "Fig 9b: SGD MF convergence per iteration (Netflix-like)",
        table
        + "\npaper shape: serial ~= dep-aware (ordered ~= unordered) "
        "<< data parallelism",
    )

    serial = runs["serial"].final_loss
    unordered = runs["dep-aware (unordered)"].final_loss
    ordered = runs["dep-aware (ordered)"].final_loss
    bosen = runs["data parallel (Bosen)"].final_loss
    initial = runs["serial"].meta["initial_loss"]
    # Dependence-aware tracks serial within a modest band...
    assert abs(unordered - serial) < 0.35 * (initial - serial)
    # ...ordering relaxation costs (almost) nothing...
    assert abs(unordered - ordered) < 0.2 * (initial - serial)
    # ...and data parallelism lags behind all of them.
    assert bosen > max(serial, unordered, ordered)
    # The paper's framing: data parallelism takes *more data passes* to
    # reach the same model quality.
    target = runs["serial"].losses[5]  # serial quality after 6 passes
    serial_epochs = runs["serial"].epochs_to_reach(target)
    bosen_epochs = runs["data parallel (Bosen)"].epochs_to_reach(target)
    dep_epochs = runs["dep-aware (unordered)"].epochs_to_reach(target)
    assert bosen_epochs is None or bosen_epochs >= serial_epochs + 1
    assert dep_epochs is not None and dep_epochs <= serial_epochs + 1
