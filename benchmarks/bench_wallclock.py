"""Wall-clock throughput: scalar body vs hand kernels vs synthesized kernels.

Unlike the other benchmarks (which report *virtual* time from the cost
model), this one measures real host seconds: each app runs the same
program once per variant in the same process — ``use_kernel=False`` (the
per-entry interpreted body), ``use_kernel="hand"`` (the app's hand-written
block kernel, where one exists) and ``use_kernel="auto"`` (the kernel
synthesized from the loop body by ``repro.analysis.synth``) — and reports
entries/second for each plus speedups over scalar.  Results land in
``BENCH_wallclock.json`` at the repo root.

Apps whose bodies synthesis cannot batch (LDA's sparse sampling) report
``"synth": null`` — they fall back to the scalar interpreter (W50x).

Run:  make bench-smoke        (or: PYTHONPATH=src python benchmarks/bench_wallclock.py)
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

from repro.apps.embeddings import build_orion_program as build_glove
from repro.apps.embeddings import cooccurrence_corpus
from repro.apps.lda import LDAHyper
from repro.apps.lda import build_orion_program as build_lda
from repro.apps.sgd_mf import MFHyper
from repro.apps.sgd_mf import build_orion_program as build_mf
from repro.apps.slr import SLRHyper
from repro.apps.slr import build_orion_program as build_slr
from repro.data.synthetic import lda_corpus, netflix_like, sparse_classification

EPOCHS = 3


def _measure(build, num_entries: int, variants=None) -> dict:
    """Time ``EPOCHS`` passes of each variant of one program, scalar first."""
    variants = variants or (
        ("scalar", False), ("hand", "hand"), ("synth", "auto")
    )
    out = {}
    for variant, use_kernel in variants:
        program = build(use_kernel=use_kernel)
        if use_kernel == "auto" and not program.train_loop.synthesis().engaged:
            out[variant] = None  # fell back: nothing distinct to measure
            continue
        program.epoch_fn()  # warm-up pass: block materialization, caches
        start = time.perf_counter()
        for _ in range(EPOCHS):
            program.epoch_fn()
        wall = time.perf_counter() - start
        out[variant] = {
            "wall_seconds": round(wall, 4),
            "entries_per_sec": round(EPOCHS * num_entries / wall, 1),
        }
    scalar_rate = out["scalar"]["entries_per_sec"]
    for variant in ("hand", "synth"):
        row = out.get(variant)
        out[f"speedup_{variant}"] = (
            round(row["entries_per_sec"] / scalar_rate, 2) if row else None
        )
    return out


def run(out_path: Path) -> dict:
    mf = netflix_like(num_rows=300, num_cols=240, num_ratings=18000, seed=5)
    slr = sparse_classification(
        num_samples=4000, num_features=2000, nnz_per_sample=12, seed=5
    )
    lda = lda_corpus(num_docs=150, vocab_size=200, num_topics=8, doc_length=30, seed=5)
    glove = cooccurrence_corpus(vocab_size=300, num_tokens=40000, seed=5)

    results = {
        "epochs_timed": EPOCHS,
        "apps": {
            "sgd_mf": _measure(
                lambda use_kernel: build_mf(mf, seed=7, use_kernel=use_kernel),
                len(mf.entries),
            ),
            "sgd_mf_adarev": _measure(
                lambda use_kernel: build_mf(
                    mf, hyper=MFHyper(adarev=True), seed=7, use_kernel=use_kernel
                ),
                len(mf.entries),
            ),
            "slr": _measure(
                lambda use_kernel: build_slr(
                    slr, hyper=SLRHyper(step_size=0.2), seed=7, use_kernel=use_kernel
                ),
                len(slr.entries),
            ),
            "lda": _measure(
                lambda use_kernel: build_lda(
                    lda, hyper=LDAHyper(num_topics=8), seed=7, use_kernel=use_kernel
                ),
                len(lda.entries),
            ),
            # GloVe ships no hand kernel: synthesis is its only fast path.
            "glove": _measure(
                lambda use_kernel: build_glove(
                    glove, seed=7, use_kernel=use_kernel
                ),
                len(glove.entries),
                variants=(("scalar", False), ("synth", "auto")),
            ),
        },
    }
    out_path.write_text(json.dumps(results, indent=2) + "\n")
    return results


def main() -> int:
    out_path = Path(sys.argv[1]) if len(sys.argv) > 1 else (
        Path(__file__).resolve().parent.parent / "BENCH_wallclock.json"
    )
    results = run(out_path)
    print(f"wrote {out_path}")
    width = max(len(name) for name in results["apps"])
    for name, row in results["apps"].items():
        cells = [f"scalar {row['scalar']['entries_per_sec']:>11,.0f}/s"]
        for variant in ("hand", "synth"):
            if row.get(variant):
                cells.append(
                    f"{variant} {row[variant]['entries_per_sec']:>11,.0f}/s"
                    f" ({row[f'speedup_{variant}']:.2f}x)"
                )
            else:
                cells.append(f"{variant} {'—':>11s}")
        print(f"  {name:{width}s}  " + "  ".join(cells))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
