"""Adaptive tuner recovering a mistuned pipeline depth (docs/tuning.md).

SGD MF on the virtual clock, deliberately mistuned to ``pipeline_depth=1``
(no rotation pipelining).  The benchmark sweeps fixed depths as the
reference frontier, then runs the same loop with ``tune="auto"``: the
tuner reads epoch 1's trace attribution, model-scans the legal re-tilings
and re-chooses the depth for epoch 2 — numerics stay bit-identical to the
untuned run, only the epoch makespan changes.  A second run with
``tune="cached"`` starts at the persisted winner from epoch 1.

Results land in ``BENCH_tuning.json`` at the repo root:

* per-epoch virtual times for every fixed depth and both tuned runs,
* the tuner's decision trail,
* ``recovery_ratio`` — tuned epoch-3 time over the best fixed epoch time
  (the acceptance bar is <= 1.05).

Run:  PYTHONPATH=src python benchmarks/bench_tuning.py
"""

from __future__ import annotations

import json
import sys
import tempfile
from pathlib import Path

from repro.apps.sgd_mf import MFHyper, build_orion_program, mf_cost_model
from repro.data.synthetic import netflix_like
from repro.runtime.cluster import ClusterSpec
from repro.runtime.options import LoopOptions

EPOCHS = 4
FIXED_DEPTHS = [1, 2, 4, 8, 16]
MISTUNED_DEPTH = 1
HYPER = MFHyper(rank=8, step_size=0.04)


def _build(dataset, options: LoopOptions):
    cluster = ClusterSpec(
        num_machines=4, workers_per_machine=1, cost=mf_cost_model(HYPER)
    )
    return build_orion_program(
        dataset, cluster=cluster, hyper=HYPER, seed=7, options=options
    )


def run(out_path: Path) -> dict:
    dataset = netflix_like(
        num_rows=150, num_cols=120, num_ratings=8000, seed=5
    )

    fixed = {}
    for depth in FIXED_DEPTHS:
        program = _build(dataset, LoopOptions(pipeline_depth=depth))
        results = program.train_loop.run(EPOCHS)
        fixed[depth] = [round(r.epoch_time_s, 7) for r in results]
    best_fixed = min(times[-1] for times in fixed.values())

    with tempfile.TemporaryDirectory() as store:
        tuned = _build(
            dataset,
            LoopOptions(
                pipeline_depth=MISTUNED_DEPTH, tune="auto", run_store=store
            ),
        )
        tuned_results = tuned.train_loop.run(EPOCHS)
        tuner = tuned.train_loop.tuning()
        decisions = [d.to_json() for d in tuner.decisions]

        cached = _build(
            dataset,
            LoopOptions(
                pipeline_depth=MISTUNED_DEPTH, tune="cached", run_store=store
            ),
        )
        cached_results = cached.train_loop.run(2)
        cached_seed = cached.train_loop.tuning().seeded

    tuned_times = [round(r.epoch_time_s, 7) for r in tuned_results]
    recovery_epoch = min(3, len(tuned_times))
    results = {
        "workload": "sgd_mf 150x120, 8000 ratings, 4 machines x 1 worker",
        "epochs": EPOCHS,
        "clock": "virtual",
        "fixed_depths": {str(d): times for d, times in fixed.items()},
        "best_fixed_epoch_s": best_fixed,
        "mistuned_depth": MISTUNED_DEPTH,
        "tuned_epochs_s": tuned_times,
        "decisions": decisions,
        "recovery_ratio": round(
            tuned_times[recovery_epoch - 1] / best_fixed, 4
        ),
        "cached_seed": cached_seed,
        "cached_epochs_s": [
            round(r.epoch_time_s, 7) for r in cached_results
        ],
        "cached_first_epoch_ratio": round(
            cached_results[0].epoch_time_s / best_fixed, 4
        ),
    }
    out_path.write_text(json.dumps(results, indent=2) + "\n")
    return results


def main() -> int:
    out_path = Path(sys.argv[1]) if len(sys.argv) > 1 else (
        Path(__file__).resolve().parent.parent / "BENCH_tuning.json"
    )
    results = run(out_path)
    print(f"wrote {out_path}")
    for depth, times in results["fixed_depths"].items():
        print(f"  fixed depth {depth:>2s}: {times[-1] * 1e3:9.3f} ms/epoch")
    print(f"  best fixed    : {results['best_fixed_epoch_s'] * 1e3:9.3f} ms")
    tuned = results["tuned_epochs_s"]
    print(
        "  tuned (from depth "
        f"{results['mistuned_depth']}): "
        + " -> ".join(f"{t * 1e3:.3f}" for t in tuned)
        + " ms"
    )
    for decision in results["decisions"]:
        print(
            f"    epoch {decision['epoch']}: {decision['knob']} "
            f"{decision['old']!r} -> {decision['new']!r} "
            f"({'applied' if decision['applied'] else 'declined'})"
        )
    print(f"  recovery ratio: {results['recovery_ratio']:.4f} (bar: <= 1.05)")
    print(
        "  cached rerun  : seeds "
        f"{results['cached_seed']} and starts at "
        f"{results['cached_first_epoch_ratio']:.4f}x best fixed"
    )
    return 0 if results["recovery_ratio"] <= 1.05 else 1


if __name__ == "__main__":
    raise SystemExit(main())
