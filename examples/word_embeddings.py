"""Word embeddings (GloVe-style) auto-parallelized 2D unordered.

The paper motivates static parallelization with text-data parameters
"accessed based on word ID" — word-topic vectors, word embeddings.  This
example trains GloVe-style embeddings on a synthetic co-occurrence matrix
with topical cluster structure and shows the embeddings recover the
clusters.  Note the placement grouping: the word-indexed arrays (W and its
bias vector) are pinned together, the context-indexed arrays rotate
together.

Run:  python examples/word_embeddings.py
"""

import numpy as np

from repro import ClusterSpec
from repro.apps.embeddings import (
    GloVeHyper,
    build_orion_program,
    cooccurrence_corpus,
)

corpus = cooccurrence_corpus(
    vocab_size=150, num_tokens=12_000, num_clusters=6, seed=8
)
print(f"co-occurrence pairs: {len(corpus.entries)}")

program = build_orion_program(
    corpus,
    cluster=ClusterSpec(num_machines=2, workers_per_machine=4),
    hyper=GloVeHyper(dim=8, step_size=0.05),
    seed=2,
)
print("chosen parallelization:", program.plan.describe())
print(
    "placements:",
    {name: p.kind.value for name, p in program.plan.placements.items()},
)

history = program.run(epochs=10)
print("\nGloVe objective by pass:")
print(f"  initial: {history.meta['initial_loss']:.1f}")
for record in history.records:
    print(f"  pass {record.epoch:2d}: {record.loss:10.1f}")

# Do the learned embeddings reflect the generative clusters?
vectors = program.arrays["W"].values + program.arrays["C"].values
vectors /= np.maximum(np.linalg.norm(vectors, axis=0, keepdims=True), 1e-9)
cluster_of = corpus.meta["cluster_of"]
same, cross = [], []
for (i, j), _count in corpus.entries:
    similarity = float(vectors[:, i] @ vectors[:, j])
    (same if cluster_of[i] == cluster_of[j] else cross).append(similarity)
print(
    f"\nmean cosine similarity: same-cluster pairs {np.mean(same):.3f}, "
    f"cross-cluster pairs {np.mean(cross):.3f}"
)

# Nearest neighbours of a mid-frequency word land in its cluster.  (The
# very head of the Zipf distribution co-occurs with everything and has no
# distinctive neighbourhood — the paper's skew discussion in miniature.)
probe = 30
similarity = vectors.T @ vectors[:, probe]
neighbours = np.argsort(similarity)[::-1][1:6]
print(
    f"word {probe} (cluster {cluster_of[probe]}) nearest neighbours: "
    + ", ".join(
        f"{word}(c{cluster_of[word]})" for word in neighbours
    )
)
