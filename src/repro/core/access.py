"""Access brokering for DistArrays during parallel loop execution.

Outside a parallel for-loop, DistArray reads and writes go straight to the
driver-side storage.  While the distributed executor runs a loop body on
behalf of a simulated worker, it installs an :class:`AccessBroker` so the
same array objects route element access through the worker's view — which
is how the runtime implements locality accounting, parameter-server access
counting, and (in validation mode) the serializability check that iterations
claimed concurrent touch disjoint elements.

The broker is installed via a context variable, so nested/parallel use in
tests stays isolated.
"""

from __future__ import annotations

import contextlib
import contextvars
from typing import Any, Iterator, Optional

__all__ = [
    "AccessBroker",
    "current_broker",
    "install_broker",
    "current_worker",
    "worker_scope",
    "DRIVER_WORKER",
]

#: Pseudo worker id used for driver-side (outside any loop) accesses.
DRIVER_WORKER = -1


class AccessBroker:
    """Interface the executor implements to observe DistArray element access.

    The default implementations pass straight through to the array's own
    storage; subclasses override to count, validate or redirect accesses.
    """

    def read(self, array: Any, index: Any) -> Any:
        """Observe (and serve) a point/set read of ``array`` at ``index``."""
        return array.direct_get(index)

    def write(self, array: Any, index: Any, value: Any) -> None:
        """Observe (and apply) a point/set write of ``array`` at ``index``."""
        array.direct_set(index, value)

    def buffer_write(self, buffer: Any, index: Any, value: Any) -> None:
        """Observe a write into a DistArray Buffer (exempt from analysis)."""
        buffer.direct_buffer_write(index, value)

    # ---------------- bulk element access ------------------------------ #
    #
    # The batched-kernel fast path touches whole blocks at a time; these
    # hooks let a broker account N accesses in one call instead of N
    # dispatches.  Defaults delegate to the scalar hooks so subclasses
    # that only override read/write stay correct.

    def bulk_read(self, array: Any, indices: Any) -> Any:
        """Observe (and serve) many point/set reads of ``array``."""
        return [self.read(array, index) for index in indices]

    def bulk_write(self, array: Any, indices: Any, values: Any) -> None:
        """Observe (and apply) many point/set writes of ``array``."""
        for index, value in zip(indices, values):
            self.write(array, index, value)

    def bulk_buffer_write(self, buffer: Any, indices: Any, values: Any) -> None:
        """Observe many buffer writes (merged in order, like N scalar writes)."""
        buffer.direct_buffer_write_many(indices, values)


_ACTIVE: contextvars.ContextVar[Optional[AccessBroker]] = contextvars.ContextVar(
    "repro_active_access_broker", default=None
)


def current_broker() -> Optional[AccessBroker]:
    """Return the broker installed for the current context, if any."""
    return _ACTIVE.get()


@contextlib.contextmanager
def install_broker(broker: Optional[AccessBroker]) -> Iterator[None]:
    """Context manager installing ``broker`` for the dynamic extent."""
    token = _ACTIVE.set(broker)
    try:
        yield
    finally:
        _ACTIVE.reset(token)


_WORKER: contextvars.ContextVar[int] = contextvars.ContextVar(
    "repro_current_worker", default=DRIVER_WORKER
)


def current_worker() -> int:
    """The simulated worker on whose behalf code is currently executing.

    Returns :data:`DRIVER_WORKER` outside any parallel for-loop.  Worker-local
    state (accumulator slots, DistArray Buffer instances) keys off this.
    """
    return _WORKER.get()


@contextlib.contextmanager
def worker_scope(worker_id: int) -> Iterator[None]:
    """Context manager marking the dynamic extent as worker ``worker_id``."""
    token = _WORKER.set(worker_id)
    try:
        yield
    finally:
        _WORKER.reset(token)
