"""Structured tracing on the simulated virtual clock.

A :class:`Tracer` collects :class:`Span` records — named intervals of
virtual time placed on a (process, track) pair — from which the runtime's
execution can be inspected after the fact: per-worker busy time, rotation
and flush traffic, schedule barriers, whole epochs.  Because the runtime
operates on a *virtual* clock, spans carry explicit start/end times rather
than sampling a wall clock; the executor and baseline engines place each
span exactly where the timing model put the work.

Design goals:

* **Near-zero overhead when disabled.**  Every recording method checks
  ``self.enabled`` first and returns; a disabled tracer allocates nothing
  per call.  The module-level :data:`NULL_TRACER` singleton is what
  un-instrumented runs share.
* **Virtual-time native.**  ``add_span`` takes explicit ``t_start`` /
  ``t_end`` in virtual seconds.  For code with a natural enter/exit shape
  there is also a ``begin``/``end`` stack per track that records nesting
  depth, so exports can show parent/child structure.
* **Multi-process traces.**  Spans carry a ``process`` label (one per
  engine: ``orion``, ``bosen``, ``strads``, ...) so one trace file can
  hold several engines' runs side by side for comparison.

The span taxonomy used by the runtime is documented in
``docs/observability.md``: ``epoch`` → ``block`` → phase spans
(``prefetch`` / ``compute`` / ``flush`` / ``overhead``) on worker tracks,
plus traffic spans (``rotation`` / ``flush`` / ``prefetch`` /
``broadcast`` / ``sync``) on network tracks and ``barrier`` spans on the
epoch track.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

__all__ = ["Span", "Tracer", "NULL_TRACER", "wall_process"]


def wall_process(process: str) -> str:
    """Trace-process label for *real* wall-clock spans of one engine.

    Spans recorded by a real execution backend (the multiprocess runtime)
    measure ``time.perf_counter()`` seconds, not the virtual cost model,
    so they must never share a process section with virtual spans —
    otherwise utilization and horizon math would mix clock domains.  The
    convention: real-time spans for engine ``"orion"`` live under process
    ``"orion@wall"``, which reports and exporters treat as just another
    process (its own section in :func:`~repro.obs.report.straggler_report`,
    its own Perfetto process lane)."""
    return f"{process}@wall"


@dataclass(frozen=True)
class Span:
    """One named interval of virtual time on a (process, track) pair.

    Attributes:
        name: human-readable label (``"block[2,5]"``, ``"rotation"``).
        cat: category for filtering (``"block"``, ``"compute"``,
            ``"rotation"``, ``"epoch"``, ``"barrier"``, ...).
        t_start: virtual start time in seconds.
        t_end: virtual end time in seconds (``>= t_start``).
        track: lane within the process (``"worker0"``, ``"net:rotation"``,
            ``"epochs"``); becomes a Perfetto thread track.
        process: engine/run label; becomes a Perfetto process.
        depth: nesting depth when recorded via ``begin``/``end`` (0 for
            top-level spans).
        args: optional extra payload shown in the trace viewer.
    """

    name: str
    cat: str
    t_start: float
    t_end: float
    track: str = "main"
    process: str = "run"
    depth: int = 0
    args: Optional[Mapping[str, Any]] = None

    @property
    def duration(self) -> float:
        """Span length in virtual seconds."""
        return self.t_end - self.t_start


@dataclass
class _OpenSpan:
    name: str
    cat: str
    t_start: float
    args: Optional[Mapping[str, Any]]


class Tracer:
    """Collects virtual-time spans; cheap no-op when disabled.

    Args:
        enabled: when ``False`` every method returns immediately without
            recording (the state shared by :data:`NULL_TRACER`).
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.spans: List[Span] = []
        self.instants: List[Span] = []
        self._stacks: Dict[Tuple[str, str], List[_OpenSpan]] = {}

    def __bool__(self) -> bool:
        return self.enabled

    # ---------------- recording ---------------------------------------- #

    def add_span(
        self,
        name: str,
        cat: str,
        t_start: float,
        t_end: float,
        track: str = "main",
        process: str = "run",
        args: Optional[Mapping[str, Any]] = None,
        depth: int = 0,
    ) -> None:
        """Record one complete span with explicit virtual times."""
        if not self.enabled:
            return
        if t_end < t_start:
            t_end = t_start
        self.spans.append(
            Span(name, cat, float(t_start), float(t_end), track, process,
                 depth, args)
        )

    def instant(
        self,
        name: str,
        t: float,
        track: str = "main",
        process: str = "run",
        args: Optional[Mapping[str, Any]] = None,
    ) -> None:
        """Record a zero-duration marker."""
        if not self.enabled:
            return
        self.instants.append(
            Span(name, "instant", float(t), float(t), track, process, 0, args)
        )

    def begin(
        self,
        name: str,
        cat: str,
        t: float,
        track: str = "main",
        process: str = "run",
        args: Optional[Mapping[str, Any]] = None,
    ) -> None:
        """Open a nested span on ``(process, track)``; close with ``end``."""
        if not self.enabled:
            return
        self._stacks.setdefault((process, track), []).append(
            _OpenSpan(name, cat, float(t), args)
        )

    def end(self, t: float, track: str = "main", process: str = "run") -> Span:
        """Close the innermost open span on ``(process, track)``.

        The recorded span's ``depth`` is its nesting level (0 for the
        outermost).  Raises ``ValueError`` when no span is open.
        """
        if not self.enabled:
            return Span("", "", 0.0, 0.0)
        stack = self._stacks.get((process, track))
        if not stack:
            raise ValueError(
                f"Tracer.end with no open span on {(process, track)!r}"
            )
        open_span = stack.pop()
        span = Span(
            open_span.name,
            open_span.cat,
            open_span.t_start,
            max(float(t), open_span.t_start),
            track,
            process,
            depth=len(stack),
            args=open_span.args,
        )
        self.spans.append(span)
        return span

    # ---------------- queries ------------------------------------------ #

    def filter(
        self,
        cat: Optional[str] = None,
        track: Optional[str] = None,
        process: Optional[str] = None,
    ) -> List[Span]:
        """Spans matching every given criterion."""
        out = []
        for span in self.spans:
            if cat is not None and span.cat != cat:
                continue
            if track is not None and span.track != track:
                continue
            if process is not None and span.process != process:
                continue
            out.append(span)
        return out

    def processes(self) -> List[str]:
        """Process labels in first-seen order."""
        seen: Dict[str, None] = {}
        for span in self.spans:
            seen.setdefault(span.process)
        for span in self.instants:
            seen.setdefault(span.process)
        return list(seen)

    def tracks(self, process: str) -> List[str]:
        """Track labels of one process in first-seen order."""
        seen: Dict[str, None] = {}
        for span in self.spans:
            if span.process == process:
                seen.setdefault(span.track)
        for span in self.instants:
            if span.process == process:
                seen.setdefault(span.track)
        return list(seen)

    def epoch_spans(self, process: str) -> List[Span]:
        """One process's ``epoch`` spans, in timeline order.

        The entry point for trace consumers (:mod:`repro.obs.insight`):
        epochs anchor attribution, and their count/durations are the
        per-epoch timing series of a run."""
        return sorted(
            self.filter(cat="epoch", track="epochs", process=process),
            key=lambda span: span.t_start,
        )

    def busy_by_track(
        self, cat: str = "block", process: Optional[str] = None
    ) -> Dict[str, float]:
        """Total ``cat``-span seconds per track (busy-time accounting)."""
        busy: Dict[str, float] = {}
        for span in self.spans:
            if span.cat != cat:
                continue
            if process is not None and span.process != process:
                continue
            busy[span.track] = busy.get(span.track, 0.0) + span.duration
        return busy

    def time_bounds(
        self, process: Optional[str] = None
    ) -> Optional[Tuple[float, float]]:
        """(earliest start, latest end) over spans, or ``None`` if empty."""
        lo: Optional[float] = None
        hi: Optional[float] = None
        for span in self.spans:
            if process is not None and span.process != process:
                continue
            lo = span.t_start if lo is None else min(lo, span.t_start)
            hi = span.t_end if hi is None else max(hi, span.t_end)
        if lo is None or hi is None:
            return None
        return lo, hi

    def clear(self) -> None:
        """Drop every recorded span (open begin/end stacks included)."""
        self.spans.clear()
        self.instants.clear()
        self._stacks.clear()


#: Shared disabled tracer: what un-instrumented code paths receive.
NULL_TRACER = Tracer(enabled=False)
