"""Property-based tests (hypothesis) for core invariants.

The headline property is *Alg. 2 soundness*: for randomly generated
reference patterns, every dependence that exists between two concrete
iterations (brute-forced by evaluating subscripts) must be covered by some
computed dependence vector.  Missing a dependence would make the executor
run conflicting iterations concurrently — the one unforgivable bug in an
auto-parallelizer.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import subscript as sub
from repro.analysis.depvec import (
    ANY,
    NEG,
    POS,
    ArrayRef,
    DepVector,
    compute_dependence_vectors,
    entry_is_exact,
)
from repro.analysis.unimodular import (
    find_transformation,
    invert_unimodular,
    is_unimodular,
)
from repro.runtime.partition import balanced_bounds
from repro.runtime.schedule import unordered_2d_schedule

# ----------------------------------------------------------------- #
# Strategies                                                         #
# ----------------------------------------------------------------- #

ITER_EXTENT = 4  # iteration space is ITER_EXTENT x ITER_EXTENT
ARRAY_EXTENT = 6


def _axis_strategy():
    return st.one_of(
        st.integers(0, ARRAY_EXTENT - 1).map(sub.constant),
        st.tuples(st.integers(0, 1), st.integers(-1, 1)).map(
            lambda t: sub.index(*t)
        ),
        st.just(sub.slice_all()),
        st.tuples(st.integers(0, 3), st.integers(1, 3)).map(
            lambda t: sub.const_range(t[0], t[0] + t[1])
        ),
        st.just(sub.unknown()),
    )


def _ref_strategy(ndim):
    return st.tuples(
        st.tuples(*[_axis_strategy() for _ in range(ndim)]),
        st.booleans(),
    ).map(lambda t: ArrayRef("A", t[0], is_write=t[1]))


def _axis_values(axis, point):
    """Concrete array coordinates an axis can address at iteration
    ``point`` (within small test bounds)."""
    if axis.kind is sub.SubscriptKind.CONSTANT:
        return {axis.const}
    if axis.kind is sub.SubscriptKind.INDEX:
        return {point[axis.dim_idx] + axis.const}
    if axis.kind is sub.SubscriptKind.RANGE:
        return set(range(axis.lo, axis.hi))
    # SLICE_ALL / UNKNOWN: anything in bounds.
    return set(range(-2, ARRAY_EXTENT + 2))


def _refs_conflict(ref_a, ref_b, point_a, point_b):
    for axis_a, axis_b in zip(ref_a.axes, ref_b.axes):
        if not (_axis_values(axis_a, point_a) & _axis_values(axis_b, point_b)):
            return False
    return True


def _delta_covered(delta, dvec):
    for value, entry in zip(delta, dvec):
        if entry is ANY:
            continue
        if entry is POS:
            if value <= 0:
                return False
        elif entry is NEG:
            if value >= 0:
                return False
        elif entry_is_exact(entry):
            if value != entry:
                return False
    return True


class TestAlg2Soundness:
    @settings(max_examples=120, deadline=None)
    @given(
        refs=st.lists(_ref_strategy(2), min_size=1, max_size=3),
        unordered=st.booleans(),
    )
    def test_every_real_dependence_is_covered(self, refs, unordered):
        dvecs = compute_dependence_vectors(refs, 2, unordered_loop=unordered)
        points = [
            (i, j) for i in range(ITER_EXTENT) for j in range(ITER_EXTENT)
        ]
        for a_idx in range(len(points)):
            for b_idx in range(a_idx + 1, len(points)):
                p1, p2 = points[a_idx], points[b_idx]
                delta = (p2[0] - p1[0], p2[1] - p1[1])
                # Is there a real conflict between iterations p1 and p2?
                conflict = False
                for ref_a in refs:
                    for ref_b in refs:
                        if ref_a.is_read and ref_b.is_read:
                            continue
                        if unordered and ref_a.is_write and ref_b.is_write:
                            continue
                        if _refs_conflict(ref_a, ref_b, p1, p2):
                            conflict = True
                            break
                    if conflict:
                        break
                if not conflict:
                    continue
                assert any(_delta_covered(delta, v) for v in dvecs), (
                    f"dependence {delta} between {p1} and {p2} not covered "
                    f"by {[v.describe() for v in dvecs]}"
                )


class TestLexicoPositiveProperties:
    @settings(max_examples=200, deadline=None)
    @given(
        st.lists(
            st.one_of(
                st.integers(-3, 3), st.just(ANY), st.just(POS), st.just(NEG)
            ),
            min_size=1,
            max_size=4,
        )
    )
    def test_output_is_lexicographically_positive(self, entries):
        corrected = DepVector(tuple(entries)).lexico_positive()
        if corrected is None:
            assert all(
                entry_is_exact(e) and e == 0 for e in entries
            )
            return
        # First non-zero entry must be definitely positive or POS.
        for entry in corrected:
            if entry_is_exact(entry) and entry == 0:
                continue
            assert entry is POS or entry is ANY or (
                entry_is_exact(entry) and entry > 0
            )
            break

    @settings(max_examples=100, deadline=None)
    @given(
        st.lists(
            st.one_of(st.integers(-3, 3), st.just(POS), st.just(NEG)),
            min_size=1,
            max_size=4,
        )
    )
    def test_idempotent(self, entries):
        once = DepVector(tuple(entries)).lexico_positive()
        if once is not None:
            assert once.lexico_positive().entries == once.entries


class TestBalancedBoundsProperties:
    @settings(max_examples=150, deadline=None)
    @given(
        counts=st.lists(st.integers(0, 50), min_size=1, max_size=40),
        num_parts=st.integers(1, 8),
    )
    def test_contiguous_cover(self, counts, num_parts):
        bounds = balanced_bounds(np.array(counts), num_parts)
        assert len(bounds) == num_parts
        assert bounds[0][0] == 0
        assert bounds[-1][1] == len(counts) or (
            len(counts) < num_parts and bounds[-1][1] == len(counts)
        )
        position = 0
        for lo, hi in bounds:
            assert lo == position
            assert hi >= lo
            position = hi
        assert position == len(counts)

    @settings(max_examples=100, deadline=None)
    @given(
        counts=st.lists(st.integers(0, 50), min_size=8, max_size=40),
        num_parts=st.integers(2, 4),
    )
    def test_no_part_exceeds_total(self, counts, num_parts):
        array = np.array(counts)
        bounds = balanced_bounds(array, num_parts)
        for lo, hi in bounds:
            assert array[lo:hi].sum() <= array.sum()


class TestOverlapProperties:
    @settings(max_examples=200, deadline=None)
    @given(a=_axis_strategy(), b=_axis_strategy())
    def test_symmetry(self, a, b):
        assert sub.axes_may_overlap(a, b) == sub.axes_may_overlap(b, a)

    @settings(max_examples=200, deadline=None)
    @given(a=_axis_strategy(), b=_axis_strategy())
    def test_soundness_against_concrete_values(self, a, b):
        # If some iteration pair makes the axes address a common coordinate,
        # axes_may_overlap must say True.
        points = [(i, j) for i in range(3) for j in range(3)]
        concrete = any(
            _axis_values(a, p1) & _axis_values(b, p2)
            for p1 in points
            for p2 in points
        )
        if concrete:
            assert sub.axes_may_overlap(a, b)


class TestScheduleProperties:
    @settings(max_examples=60, deadline=None)
    @given(workers=st.integers(1, 8), depth=st.integers(1, 4))
    def test_unordered_rotation_invariants(self, workers, depth):
        num_time = workers * depth
        steps = unordered_2d_schedule(workers, num_time)
        assert len(steps) == num_time
        per_worker = {w: [] for w in range(workers)}
        for tasks in steps:
            indices = [t.time_idx for t in tasks]
            assert len(set(indices)) == len(indices)  # concurrent-disjoint
            for task in tasks:
                per_worker[task.worker].append(task.time_idx)
        for visited in per_worker.values():
            assert sorted(visited) == list(range(num_time))


class TestUnimodularProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        dvecs=st.lists(
            st.tuples(
                st.one_of(st.integers(-2, 2), st.just(POS)),
                st.one_of(st.integers(-2, 2), st.just(POS)),
            ).map(DepVector),
            min_size=1,
            max_size=3,
        )
    )
    def test_found_transform_is_unimodular_and_carries(self, dvecs):
        normalized = [
            v.lexico_positive() for v in dvecs if v.lexico_positive()
        ]
        if not normalized:
            return
        matrix = find_transformation(normalized, 2)
        if matrix is None:
            return
        assert is_unimodular(matrix)
        inverse = invert_unimodular(matrix)
        assert np.array_equal(
            np.array(matrix) @ np.array(inverse), np.eye(2, dtype=int)
        )
        from repro.analysis.depvec import entry_is_positive

        for vector in normalized:
            assert entry_is_positive(vector.transform(matrix)[0])


class TestScheduleTimingProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        work=st.lists(
            st.lists(st.floats(1e-6, 1e-2), min_size=4, max_size=4),
            min_size=2,
            max_size=2,
        ),
        rotated_bytes=st.floats(0, 1e6),
    )
    def test_pipelined_makespan_bounds(self, work, rotated_bytes):
        """The pipelined rotation makespan is at least the busiest worker's
        serial work and at most the fully serialized schedule."""
        from repro.runtime.cluster import ClusterSpec
        from repro.runtime.schedule import time_unordered_2d

        cluster = ClusterSpec(num_machines=1, workers_per_machine=2)
        matrix = np.array(work)
        timing = time_unordered_2d(matrix, cluster, rotated_bytes)
        per_worker = matrix.sum(axis=1).max()
        transfer = cluster.network.transfer_time(
            rotated_bytes, intra_machine=True
        )
        serialized = matrix.sum() + matrix.size * transfer \
            + cluster.cost.sync_overhead_s
        assert timing.makespan >= per_worker
        assert timing.makespan <= serialized + cluster.cost.sync_overhead_s

    @settings(max_examples=60, deadline=None)
    @given(
        work=st.lists(
            st.lists(st.floats(1e-6, 1e-2), min_size=4, max_size=4),
            min_size=2,
            max_size=2,
        ),
    )
    def test_makespan_monotone_in_work(self, work):
        from repro.runtime.cluster import ClusterSpec
        from repro.runtime.schedule import time_unordered_2d

        cluster = ClusterSpec(num_machines=1, workers_per_machine=2)
        matrix = np.array(work)
        base = time_unordered_2d(matrix, cluster, 0.0).makespan
        bigger = time_unordered_2d(matrix * 2.0, cluster, 0.0).makespan
        assert bigger >= base

    @settings(max_examples=40, deadline=None)
    @given(work=st.floats(1e-6, 1e-2))
    def test_ordered_at_least_unordered(self, work):
        """With equal per-block work, the barriered wavefront can never be
        faster than the pipelined rotation.  (Heterogeneous per-block work
        breaks the property: a slow block convoys the rotation pipeline
        while the wavefront only pays each step's max once.)"""
        from repro.runtime.cluster import ClusterSpec
        from repro.runtime.schedule import time_ordered_2d, time_unordered_2d

        cluster = ClusterSpec(num_machines=1, workers_per_machine=3)
        matrix = np.full((3, 3), work)
        ordered = time_ordered_2d(matrix, cluster, 100.0).makespan
        unordered = time_unordered_2d(matrix, cluster, 100.0).makespan
        assert ordered >= unordered * 0.999
