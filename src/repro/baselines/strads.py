"""STRADS-style manual model parallelism (paper Sec. 2.2/6.4; ref. [26]).

STRADS applications are hand-written C++ programs implementing exactly the
dependence-preserving schedule Orion derives automatically — so their
*per-iteration convergence matches Orion's* (paper Fig. 11) while their
throughput differs by implementation constants: a C++ runtime (no Julia
overhead) and intra-machine communication by pointer swapping (zero copy).

This engine therefore reuses the Orion program builder — the semantics are
identical by the paper's own argument — on a cluster whose cost model
encodes STRADS's implementation advantages.  The paper quantifies the gap
at roughly 1× for SGD MF AdaRev (float-array messages serialize trivially)
and 1.8–4× for LDA (complex per-row count data pays marshalling in Julia).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Optional

from repro.apps.base import OrionProgram
from repro.runtime.cluster import ClusterSpec
from repro.runtime.history import RunHistory

__all__ = ["strads_cluster", "run_strads"]


def strads_cluster(
    base: ClusterSpec, speed_factor: float = 1.0
) -> ClusterSpec:
    """A cluster parameterized like STRADS's C++ runtime.

    Args:
        base: the cluster the Orion program runs on.
        speed_factor: per-entry compute relative to the (Julia) Orion
            program — 1.0 when serialization is trivial (SGD MF), below 1
            for marshalling-heavy apps (LDA).
    """
    cost = replace(
        base.cost,
        overhead_factor=base.cost.overhead_factor * speed_factor,
        # C++ workers exchange partitions by pointer swapping / raw memory
        # copies: no per-byte serialization cost.
        marshalling_s_per_byte=0.0,
    )
    network = replace(base.network, intra_machine_factor=0.0)
    return replace(base, cost=cost, network=network)


def run_strads(
    build_program: Callable[..., OrionProgram],
    base_cluster: ClusterSpec,
    epochs: int,
    speed_factor: float = 1.0,
    label: Optional[str] = None,
    builder_opts: Optional[dict] = None,
    options=None,
    obs=None,
) -> RunHistory:
    """Run a manually model-parallel (STRADS) version of a program.

    ``build_program`` is an app's Orion builder partially applied to its
    dataset/hyperparameters; it is rebuilt against the STRADS-tuned cluster
    so schedules and semantics are identical and only implementation
    constants differ.

    Args:
        builder_opts: extra keyword arguments forwarded to the builder —
            e.g. ``{"tracer": tracer, "trace_process": "strads"}`` to place
            this run's spans next to Orion's in one trace file.
        options: optional :class:`~repro.runtime.options.LoopOptions`
            (e.g. carrying a fault plan/checkpoint config) forwarded to the
            builder's ``parallel_for`` calls.
        obs: optional bundled observability, forwarded likewise.
    """
    opts = dict(builder_opts or {})
    if options is not None:
        opts.setdefault("options", options)
    if obs is not None:
        opts.setdefault("obs", obs)
    program = build_program(
        strads_cluster(base_cluster, speed_factor), **opts
    )
    history = program.run(epochs)
    history.label = label or f"STRADS {program.label.replace('Orion ', '')}"
    return history
