"""Compare parallelization strategies on one workload (paper Sec. 6 in one go).

Runs the same SGD MF problem through every engine in the library —
serial, Orion (unordered and ordered 2D), Bösen data parallelism, Bösen
with managed communication, STRADS-style manual model parallelism, and
TensorFlow-style mini-batching — and prints one comparison table of
per-iteration convergence, virtual time and traffic.

Run:  python examples/compare_systems.py
"""

from repro import ClusterSpec
from repro.apps import MFHyper, SGDMFApp, build_sgd_mf
from repro.apps.sgd_mf import mf_cost_model
from repro.baselines import (
    run_bosen,
    run_managed_comm,
    run_serial,
    run_strads,
    run_tensorflow_minibatch,
)
from repro.data import netflix_like

EPOCHS = 8

dataset = netflix_like(num_rows=150, num_cols=120, num_ratings=8000, seed=21)
hyper = MFHyper(rank=8, step_size=0.04)
app = SGDMFApp(dataset, hyper)
cost = mf_cost_model(hyper)
cluster = ClusterSpec(num_machines=4, workers_per_machine=8, cost=cost)

runs = []
runs.append(run_serial(app, EPOCHS, cost=cost, label="Serial"))
runs.append(
    build_sgd_mf(dataset, cluster=cluster, hyper=hyper, label="Orion (2D unordered)")
    .run(EPOCHS)
)
runs.append(
    build_sgd_mf(
        dataset, cluster=cluster, hyper=hyper, ordered=True,
        label="Orion (2D ordered)",
    ).run(EPOCHS)
)
runs.append(run_bosen(app, cluster, EPOCHS, label="Bosen (data parallel)"))
runs.append(
    run_managed_comm(
        app, cluster, EPOCHS, bandwidth_budget_mbps=1600,
        label="Bosen + managed comm",
    )
)
runs.append(
    run_strads(
        lambda c: build_sgd_mf(dataset, cluster=c, hyper=hyper),
        cluster,
        EPOCHS,
        label="STRADS (manual model parallel)",
    )
)
runs.append(
    run_tensorflow_minibatch(
        app,
        ClusterSpec.single_machine(32, cost=cost),
        EPOCHS,
        batch_size=dataset.num_entries // 4,
        step_scale=4.0,
        label="TensorFlow-style mini-batch",
    )
)

from repro.tools import render_report

print(
    render_report(
        runs,
        title="SGD MF: one workload, every parallelization strategy",
        x_axis="epoch",
    )
)

print(
    "\nThe paper's headline shape: dependence-aware parallelization (Orion,"
    "\nSTRADS) matches serial per-iteration convergence while data-parallel"
    "\nand mini-batch engines trade convergence for synchronization slack."
)
