"""Subscript representation for static dependence analysis.

The paper (Sec. 4.2) represents each DistArray subscript position as a
3-tuple ``(dim_idx, const, stype)``: the loop-index variable's dimension in
the iteration space, an additive constant, and the subscript's type.  This
module provides that representation plus the pairwise tests Alg. 2 needs:

* can two subscript positions *ever* refer to the same array coordinate, and
* if both are single loop-index expressions on the same iteration-space
  dimension, what is the dependence distance between them.

Supported subscript forms (anything else is :data:`SubscriptKind.UNKNOWN`,
which is treated conservatively as "may take any value within bounds"):

* a constant integer, e.g. ``A[3, ...]``
* one loop-index variable plus/minus a constant, e.g. ``A[key[0] + 1, ...]``
* a full slice ``A[:, ...]``
* a constant range ``A[1:4, ...]``
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple

__all__ = [
    "SubscriptKind",
    "Axis",
    "constant",
    "index",
    "slice_all",
    "const_range",
    "unknown",
    "axes_may_overlap",
    "index_distance",
]


class SubscriptKind(enum.Enum):
    """Classification of a single subscript position."""

    CONSTANT = "constant"
    INDEX = "index"
    SLICE_ALL = "slice_all"
    RANGE = "range"
    UNKNOWN = "unknown"


@dataclass(frozen=True)
class Axis:
    """One position of a DistArray subscript.

    Attributes:
        kind: which of the supported subscript forms this position is.
        dim_idx: for :data:`SubscriptKind.INDEX`, the iteration-space
            dimension of the loop-index variable appearing here.
        const: for ``INDEX`` the additive constant; for ``CONSTANT`` the
            literal value.
        lo, hi: for ``RANGE``, the half-open constant bounds ``[lo, hi)``.
    """

    kind: SubscriptKind
    dim_idx: Optional[int] = None
    const: int = 0
    lo: Optional[int] = None
    hi: Optional[int] = None

    def is_single_index(self) -> bool:
        """True when this position is one loop-index variable ± a constant."""
        return self.kind is SubscriptKind.INDEX

    def describe(self) -> str:
        """Human-readable rendering used in diagnostics and the demo output."""
        if self.kind is SubscriptKind.CONSTANT:
            return str(self.const)
        if self.kind is SubscriptKind.INDEX:
            if self.const == 0:
                return f"key[{self.dim_idx}]"
            sign = "+" if self.const > 0 else "-"
            return f"key[{self.dim_idx}] {sign} {abs(self.const)}"
        if self.kind is SubscriptKind.SLICE_ALL:
            return ":"
        if self.kind is SubscriptKind.RANGE:
            return f"{self.lo}:{self.hi}"
        return "?"


def constant(value: int) -> Axis:
    """Build a constant subscript position, e.g. the ``3`` in ``A[3, j]``."""
    return Axis(kind=SubscriptKind.CONSTANT, const=int(value))


def index(dim_idx: int, const: int = 0) -> Axis:
    """Build a loop-index position, e.g. ``key[dim_idx] + const``."""
    return Axis(kind=SubscriptKind.INDEX, dim_idx=int(dim_idx), const=int(const))


def slice_all() -> Axis:
    """Build a full-slice position, the ``:`` in ``A[:, j]``."""
    return Axis(kind=SubscriptKind.SLICE_ALL)


def const_range(lo: int, hi: int) -> Axis:
    """Build a constant-range position ``lo:hi`` (half open)."""
    return Axis(kind=SubscriptKind.RANGE, lo=int(lo), hi=int(hi))


def unknown() -> Axis:
    """Build an unsupported/data-dependent position (conservatively any value)."""
    return Axis(kind=SubscriptKind.UNKNOWN)


def axes_may_overlap(a: Axis, b: Axis) -> bool:
    """Return whether two subscript positions can ever address the same
    coordinate of the array dimension they index.

    This implements the "prove independence" half of the dependence test:
    if two positions can *never* match, the pair of references is
    independent regardless of the other positions.  Only purely constant
    forms can be proven disjoint; anything involving a loop index or an
    unknown value may match for some pair of iterations.
    """
    ka, kb = a.kind, b.kind
    if ka is SubscriptKind.CONSTANT and kb is SubscriptKind.CONSTANT:
        return a.const == b.const
    if ka is SubscriptKind.CONSTANT and kb is SubscriptKind.RANGE:
        return b.lo <= a.const < b.hi
    if ka is SubscriptKind.RANGE and kb is SubscriptKind.CONSTANT:
        return a.lo <= b.const < a.hi
    if ka is SubscriptKind.RANGE and kb is SubscriptKind.RANGE:
        return a.lo < b.hi and b.lo < a.hi
    # Any form involving a loop index, a full slice, or an unknown value may
    # coincide with anything for some iteration pair.
    return True


def index_distance(a: Axis, b: Axis) -> Optional[Tuple[int, int]]:
    """If both positions are single loop-index expressions over the *same*
    iteration-space dimension, return ``(dim_idx, distance)`` where
    ``distance = a.const - b.const`` is the iteration-space offset at which
    the two positions address the same coordinate.

    Returns ``None`` when the pair does not constrain any iteration-space
    dimension (different dimensions, or non-index forms).
    """
    if not (a.is_single_index() and b.is_single_index()):
        return None
    if a.dim_idx != b.dim_idx:
        return None
    return (a.dim_idx, a.const - b.const)
