PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: check compile test trace-smoke fault-smoke distributed-smoke \
	bench-smoke bench-distributed clean

## Default verification: imports compile, tier-1 tests pass, the tracing
## pipeline produces a loadable Perfetto trace end to end, the
## fault-injection/recovery story holds its invariants, and the forked
## multiprocess backend stays bitwise-faithful to the simulated oracle.
check: compile test trace-smoke fault-smoke distributed-smoke

compile:
	$(PYTHON) -m compileall -q src

test:
	$(PYTHON) -m pytest -x -q

## Run the quickstart with tracing enabled and validate the exported
## trace.json against the Chrome trace-event schema.
trace-smoke:
	REPRO_TRACE=trace.json $(PYTHON) examples/quickstart.py > /dev/null
	$(PYTHON) -c "import json; from repro.obs import validate_chrome_trace; \
	trace = json.load(open('trace.json')); problems = validate_chrome_trace(trace); \
	assert not problems, problems; \
	print('trace.json ok:', len(trace['traceEvents']), 'events')"

## Crash/drop/straggler injection end to end: the example asserts the
## faulted run recovers to bit-equal parameters and only costs virtual
## time, and that the no-plan path stays bit-identical.
fault-smoke:
	$(PYTHON) examples/fault_tolerance.py > /dev/null
	@echo "fault-smoke ok"

## Tiny-dataset pass of the multiprocess backend on all four apps;
## asserts the SGD MF run is bitwise identical to the simulated oracle.
distributed-smoke:
	$(PYTHON) benchmarks/bench_distributed.py --smoke
	@echo "distributed-smoke ok"

## Wall-clock kernel-vs-scalar throughput; writes BENCH_wallclock.json.
bench-smoke:
	$(PYTHON) benchmarks/bench_wallclock.py

## Real forked-worker scaling (1/2/4 workers, all four apps) vs the
## single-process scalar baseline; writes BENCH_distributed.json.
bench-distributed:
	$(PYTHON) benchmarks/bench_distributed.py

clean:
	find . -name __pycache__ -type d -prune -exec rm -rf {} +
	rm -rf .pytest_cache trace.json
