"""Tests for the GBT application (repro.apps.gbt)."""

import numpy as np
import pytest

from repro.analysis.strategy import Strategy
from repro.apps.gbt import (
    GBTHyper,
    _best_splits,
    build_orion_program,
    quantize_features,
)


class TestQuantization:
    def test_bins_in_range(self):
        rng = np.random.default_rng(0)
        features = rng.random((100, 3))
        binned = quantize_features(features, 8)
        assert binned.min() >= 0
        assert binned.max() <= 7

    def test_bins_monotone_in_value(self):
        features = np.linspace(0, 1, 100).reshape(-1, 1)
        binned = quantize_features(features, 4)[:, 0]
        assert (np.diff(binned) >= 0).all()

    def test_quantiles_balance_bins(self):
        rng = np.random.default_rng(1)
        features = rng.exponential(size=(1000, 1))  # heavily skewed
        binned = quantize_features(features, 4)[:, 0]
        counts = np.bincount(binned, minlength=4)
        assert counts.min() > 150  # quantile binning balances even skew


class TestSplitSelection:
    def test_obvious_split_found(self):
        # Residuals +1 for bin < 2, -1 for bin >= 2 on feature 0.
        hist_sum = np.zeros((1, 2, 4))
        hist_cnt = np.zeros((1, 2, 4))
        hist_sum[0, 0] = [10.0, 10.0, -10.0, -10.0]
        hist_cnt[0, 0] = [10, 10, 10, 10]
        hist_cnt[0, 1] = [40, 0, 0, 0]
        splits = _best_splits(hist_sum, hist_cnt, [0], min_samples=2)
        assert splits[0][0] == 0  # split on feature 0
        assert splits[0][1] == 1  # after bin 1

    def test_no_split_on_tiny_leaf(self):
        hist_sum = np.zeros((1, 1, 4))
        hist_cnt = np.zeros((1, 1, 4))
        hist_cnt[0, 0, 0] = 3
        splits = _best_splits(hist_sum, hist_cnt, [0], min_samples=8)
        assert splits == {}

    def test_no_split_on_pure_leaf(self):
        hist_sum = np.zeros((1, 1, 4))
        hist_cnt = np.full((1, 1, 4), 5.0)
        splits = _best_splits(hist_sum, hist_cnt, [0], min_samples=2)
        assert splits == {}


class TestOrionProgram:
    def test_loops_are_one_d(self, table_small, cluster_tiny):
        program = build_orion_program(table_small, cluster=cluster_tiny)
        assert program.plan.strategy in (
            Strategy.ONE_D,
            Strategy.DATA_PARALLEL,
        )

    def test_boosting_reduces_mse(self, table_small, cluster_tiny):
        program = build_orion_program(
            table_small,
            cluster=cluster_tiny,
            hyper=GBTHyper(max_depth=3, learning_rate=0.3),
        )
        history = program.run(6)
        assert history.final_loss < 0.3 * history.meta["initial_loss"]

    def test_monotone_improvement(self, table_small, cluster_tiny):
        program = build_orion_program(table_small, cluster=cluster_tiny)
        history = program.run(5)
        losses = [history.meta["initial_loss"]] + history.losses
        assert all(b <= a + 1e-9 for a, b in zip(losses, losses[1:]))

    def test_validation_clean(self, table_small, cluster_tiny):
        program = build_orion_program(
            table_small, cluster=cluster_tiny, validate=True
        )
        program.run(2)

    def test_predictions_populated(self, table_small, cluster_tiny):
        program = build_orion_program(table_small, cluster=cluster_tiny)
        program.run(3)
        preds = program.arrays["preds"].values
        assert np.abs(preds).sum() > 0

    def test_deeper_trees_fit_better(self, table_small, cluster_tiny):
        shallow = build_orion_program(
            table_small, cluster=cluster_tiny, hyper=GBTHyper(max_depth=1)
        ).run(6)
        deep = build_orion_program(
            table_small, cluster=cluster_tiny, hyper=GBTHyper(max_depth=3)
        ).run(6)
        assert deep.final_loss < shallow.final_loss
