"""Baseline training engines the paper compares against.

All engines execute the *real* numerical updates of a
:class:`repro.apps.base.SerialApp` (or reuse the Orion executor, for
STRADS) with their own staleness, scheduling and communication semantics,
charging virtual time from the shared cost models — so convergence and
throughput comparisons isolate the parallelization strategy.
"""

from repro.baselines.bosen import run_bosen, shard_entries
from repro.baselines.managed_comm import run_managed_comm
from repro.baselines.serial import run_serial
from repro.baselines.strads import run_strads, strads_cluster
from repro.baselines.tensorflow_like import run_tensorflow_minibatch
from repro.baselines.tux2_like import run_tux2_minibatch

__all__ = [
    "run_bosen",
    "shard_entries",
    "run_managed_comm",
    "run_serial",
    "run_strads",
    "strads_cluster",
    "run_tensorflow_minibatch",
    "run_tux2_minibatch",
]
