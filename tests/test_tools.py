"""Tests for the terminal reporting utilities (repro.tools)."""

import pytest

from repro.runtime.history import RunHistory
from repro.tools import ascii_curves, comparison_table, render_report


def _history(label, losses, epoch_time=1.0):
    history = RunHistory(label)
    for loss in losses:
        history.append(loss, epoch_time)
    return history


@pytest.fixture
def histories():
    return [
        _history("fast", [10.0, 5.0, 2.0, 1.0]),
        _history("slow", [10.0, 9.0, 8.0, 7.0], epoch_time=2.0),
    ]


class TestComparisonTable:
    def test_contains_labels_and_values(self, histories):
        table = comparison_table(histories)
        assert "fast" in table and "slow" in table
        assert "1" in table and "7" in table

    def test_column_headers(self, histories):
        header = comparison_table(histories).splitlines()[0]
        for column in ("engine", "final loss", "s/iter", "total s"):
            assert column in header

    def test_alignment_consistent(self, histories):
        lines = comparison_table(histories).splitlines()
        assert len({len(line) for line in lines}) == 1


class TestAsciiCurves:
    def test_has_axes_and_legend(self, histories):
        plot = ascii_curves(histories)
        assert "|" in plot
        assert "+" in plot
        assert "o fast" in plot
        assert "x slow" in plot

    def test_markers_plotted(self, histories):
        plot = ascii_curves(histories)
        body = "\n".join(plot.splitlines()[:-3])
        assert "o" in body and "x" in body

    def test_extremes_labelled(self, histories):
        plot = ascii_curves(histories)
        assert "10" in plot  # max loss
        assert "1" in plot  # min loss

    def test_time_axis(self, histories):
        plot = ascii_curves(histories, x_axis="time")
        assert "virtual seconds" in plot

    def test_log_scale_handles_divergence(self):
        wild = [
            _history("diverging", [1e2, 1e4, 1e6]),
            _history("fine", [1e2, 1e1, 1e0]),
        ]
        plot = ascii_curves(wild, log_y=True)
        assert "o diverging" in plot

    def test_bad_axis_rejected(self, histories):
        with pytest.raises(ValueError):
            ascii_curves(histories, x_axis="parsecs")

    def test_empty_histories(self):
        assert ascii_curves([_history("empty", [])]) == "(no data)"


class TestRenderReport:
    def test_combines_table_and_plot(self, histories):
        report = render_report(histories, title="comparison")
        assert "comparison" in report
        assert "final loss" in report
        assert "o fast" in report
