"""Recommender training with AdaRev, skew handling and checkpointing.

A more production-shaped example: a *skewed* rating matrix (power-law user
popularity, like real recommender data), adaptive-revision updates,
histogram-balanced partitioning, and fault-tolerance via periodic
DistArray checkpoints that a resumed run restores.

Run:  python examples/recommender_checkpointing.py
"""

import os
import tempfile

from repro import ClusterSpec
from repro.apps import MFHyper, build_sgd_mf
from repro.apps.sgd_mf import mf_cost_model
from repro.data import netflix_like
from repro.runtime.checkpoint import checkpoint_arrays, restore_arrays

dataset = netflix_like(
    num_rows=200, num_cols=160, num_ratings=9000, skew=1.0, seed=13
)
hyper = MFHyper(rank=8, adarev=True, adarev_step=0.3)
cluster = ClusterSpec(
    num_machines=2, workers_per_machine=4, cost=mf_cost_model(hyper)
)

program = build_sgd_mf(dataset, cluster=cluster, hyper=hyper, seed=4)
print("chosen parallelization:", program.plan.describe())

# Histogram-balanced partitioning handles the power-law skew: inspect the
# per-worker load balance the executor produced.
sizes = program.train_loop.executor.partitions.size_matrix().sum(axis=1)
print(
    f"per-worker entries (balanced): min={sizes.min()}, max={sizes.max()}, "
    f"imbalance={sizes.max() / sizes.mean():.2f}x"
)

checkpoint_dir = tempfile.mkdtemp(prefix="orion_ckpt_")
factors = [program.arrays["W"], program.arrays["H"]]

print("\ntraining with a checkpoint every 3 passes:")
history_losses = [program.loss_fn()]
for epoch in range(1, 10):
    program.epoch_fn()
    loss = program.loss_fn()
    history_losses.append(loss)
    marker = ""
    if epoch % 3 == 0:
        checkpoint_arrays(factors, checkpoint_dir, tag=f"epoch{epoch}")
        marker = f"  [checkpointed -> {os.path.basename(checkpoint_dir)}]"
    print(f"  pass {epoch}: loss={loss:10.2f}{marker}")

# Simulate a crash after pass 9 and resume from the pass-6 checkpoint.
print("\nsimulating a crash; restoring the epoch-6 checkpoint...")
restore_arrays(factors, checkpoint_dir, tag="epoch6")
print(f"  loss after restore: {program.loss_fn():10.2f}")
print(f"  loss at pass 6 was: {history_losses[6]:10.2f}")

print("\nresuming training from the checkpoint:")
for epoch in range(7, 10):
    program.epoch_fn()
    print(f"  pass {epoch}: loss={program.loss_fn():10.2f}")
