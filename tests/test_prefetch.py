"""Unit tests for bulk-prefetch synthesis (repro.analysis.prefetch)."""

import numpy as np

from repro.analysis.loop_info import analyze_loop_body
from repro.analysis.prefetch import synthesize_prefetch
from repro.core.buffers import DistArrayBuffer
from repro.core.distarray import DistArray


def _space_1d(extent=6, values=None):
    entries = [
        ((i,), values[i] if values else float(i)) for i in range(extent)
    ]
    return DistArray.from_entries(entries, name="psp", shape=(extent,)).materialize()


weights = DistArray.zeros(50, name="weights_p").materialize()
table = DistArray.randn(4, 50, name="table_p", seed=5).materialize()


class TestSLRStylePrefetch:
    """The paper's SLR case: feature ids from the sample's value."""

    def _build(self):
        values = [([(i * 3 % 50, 1.0), (i * 7 % 50, 2.0)], 1) for i in range(6)]
        space = _space_1d(6, values)
        buf = DistArrayBuffer(weights, name="wbuf_p")
        step = 0.1

        def body(key, sample):
            features, label = sample
            margin = 0.0
            for fid, fval in features:
                margin = margin + weights[fid] * fval
            prob = 1.0 / (1.0 + np.exp(-margin))
            for fid, fval in features:
                buf[fid] = -step * (prob - label) * fval

        info = analyze_loop_body(body, space)
        return body, info, space

    def test_synthesis_succeeds(self):
        body, info, _space = self._build()
        prefetch = synthesize_prefetch(body, info, ["weights"])
        assert prefetch is not None
        assert prefetch.arrays == ("weights",)

    def test_recorded_indices_match_sample_features(self):
        body, info, space = self._build()
        prefetch = synthesize_prefetch(body, info, ["weights"])
        key, sample = next(iter(space.entries()))
        recorded = prefetch(key, sample)
        expected = {("weights", (fid,)) for fid, _v in sample[0]}
        assert {(name, idx) for name, idx in recorded} == expected

    def test_generated_source_has_no_computation(self):
        body, info, _space = self._build()
        prefetch = synthesize_prefetch(body, info, ["weights"])
        assert "exp" not in prefetch.source
        assert "margin" not in prefetch.source
        assert "append" in prefetch.source

    def test_generated_function_does_not_touch_arrays(self):
        body, info, space = self._build()
        prefetch = synthesize_prefetch(body, info, ["weights"])
        before = weights.values.copy()
        for key, sample in space.entries():
            prefetch(key, sample)
        assert np.array_equal(weights.values, before)


class TestTaintSkipping:
    def test_value_dependent_subscript_not_recorded(self):
        # idx = int(weights[key[0]]): the second read's subscript depends on
        # a DistArray value, so only the first read is recorded.
        space = _space_1d(6)

        def body(key, value):
            idx = int(weights[key[0]])
            chained = weights[idx]
            return chained

        info = analyze_loop_body(body, space)
        prefetch = synthesize_prefetch(body, info, ["weights"])
        recorded = prefetch((3,), 0.0)
        assert recorded == [("weights", (3,))]

    def test_all_tainted_returns_none(self):
        space = _space_1d(6)

        def body(key, value):
            idx = int(weights[key[0]])  # itself recordable...
            return idx

        info = analyze_loop_body(body, space)
        # ...but if the only server array read is via a slice of another
        # server read, nothing survives:

        def body2(key, value):
            idx = int(table[0, key[0]])
            chained = table[1, int(idx)]
            return chained

        info2 = analyze_loop_body(body2, space)
        prefetch2 = synthesize_prefetch(body2, info2, ["table"])
        recorded = prefetch2((2,), 0.0)
        assert recorded == [("table", (0, 2))]

    def test_empty_server_set_returns_none(self):
        space = _space_1d(6)

        def body(key, value):
            return weights[key[0]]

        info = analyze_loop_body(body, space)
        assert synthesize_prefetch(body, info, []) is None


class TestControlFlow:
    def test_branch_condition_kept(self):
        space = _space_1d(6)

        def body(key, value):
            if value > 2.0:
                a = weights[key[0]]
            else:
                a = weights[key[0] + 1]
            return a

        info = analyze_loop_body(body, space)
        prefetch = synthesize_prefetch(body, info, ["weights"])
        assert prefetch((3,), 5.0) == [("weights", (3,))]
        assert prefetch((3,), 0.0) == [("weights", (4,))]

    def test_tainted_branch_not_recorded(self):
        # The branch condition reads a server array: subscripts inside are
        # control dependent on remote values and must be skipped.
        space = _space_1d(6)

        def body(key, value):
            if weights[key[0]] > 0:
                b = weights[key[0] + 1]
            else:
                b = 0.0
            return b

        info = analyze_loop_body(body, space)
        prefetch = synthesize_prefetch(body, info, ["weights"])
        recorded = prefetch((2,), 0.0)
        # Only the condition's own (untainted) read is recorded.
        assert recorded == [("weights", (2,))]

    def test_slice_read_recorded_with_slice_object(self):
        space = _space_1d(6)

        def body(key, value):
            column = table[:, key[0]]
            return column

        info = analyze_loop_body(body, space)
        prefetch = synthesize_prefetch(body, info, ["table"])
        recorded = prefetch((4,), 0.0)
        assert recorded == [("table", (slice(None, None), 4))]
