"""Unit tests for the network model and traffic log (repro.runtime.network)."""

import numpy as np
import pytest

from repro.runtime.network import NetworkModel, TrafficLog


class TestNetworkModel:
    def test_transfer_time_components(self):
        net = NetworkModel(bandwidth_bytes_per_s=1e6, latency_s=0.01)
        assert net.transfer_time(1e6) == pytest.approx(0.01 + 1.0)

    def test_intra_machine_discount(self):
        net = NetworkModel(
            bandwidth_bytes_per_s=1e6, latency_s=0.01, intra_machine_factor=0.5
        )
        assert net.transfer_time(1e6, intra_machine=True) == pytest.approx(
            0.5 * (0.01 + 1.0)
        )

    def test_zero_intra_factor_models_pointer_swap(self):
        net = NetworkModel(intra_machine_factor=0.0)
        assert net.transfer_time(1e9, intra_machine=True) == 0.0

    def test_random_access_pays_latency_per_request(self):
        net = NetworkModel(bandwidth_bytes_per_s=1e9, latency_s=1e-3)
        bulk = net.transfer_time(8000)
        scattered = net.random_access_time(1000, 8000)
        # 1000 round trips vs one: the bulk-prefetch motivation.
        assert scattered > 100 * bulk

    def test_default_is_40gbps(self):
        net = NetworkModel()
        assert net.bandwidth_bytes_per_s == pytest.approx(5e9)


class TestTrafficLog:
    def test_total_bytes(self):
        log = TrafficLog()
        log.record(0.0, 1.0, 100, "a")
        log.record(1.0, 2.0, 200, "b")
        assert log.total_bytes == 300

    def test_bytes_by_kind(self):
        log = TrafficLog()
        log.record(0.0, 1.0, 100, "rotation")
        log.record(0.0, 1.0, 50, "rotation")
        log.record(0.0, 1.0, 70, "flush")
        assert log.bytes_by_kind() == {"rotation": 150.0, "flush": 70.0}

    def test_inverted_span_clamped(self):
        log = TrafficLog()
        log.record(2.0, 1.0, 10, "x")
        assert log.events[0].t_end == 2.0

    def test_empty_series(self):
        times, mbps = TrafficLog().bandwidth_series(1.0)
        assert times.size == 0 and mbps.size == 0

    def test_series_conserves_bytes(self):
        log = TrafficLog()
        log.record(0.0, 2.0, 1_000_000, "x")
        log.record(1.5, 3.5, 500_000, "y")
        times, mbps = log.bandwidth_series(0.5)
        total_bits = float(np.sum(mbps * 1e6 * 0.5))
        assert total_bits == pytest.approx(1_500_000 * 8, rel=1e-6)

    def test_series_rate_value(self):
        log = TrafficLog()
        log.record(0.0, 1.0, 1_000_000, "x")  # 8 Mb over 1 s
        _times, mbps = log.bandwidth_series(1.0)
        assert mbps[0] == pytest.approx(8.0)

    def test_series_spreads_over_span(self):
        log = TrafficLog()
        log.record(0.0, 2.0, 2_000_000, "x")
        _times, mbps = log.bandwidth_series(1.0)
        assert mbps[0] == pytest.approx(mbps[1])

    def test_series_horizon_extends_axis(self):
        log = TrafficLog()
        log.record(0.0, 1.0, 8, "x")
        times, _ = log.bandwidth_series(1.0, horizon_s=5.0)
        assert len(times) == 5

    def test_boundary_crossing_split_is_proportional(self):
        # 800 bytes over [0.5, 1.5] with 1 s buckets: exactly half per bin.
        log = TrafficLog()
        log.record(0.5, 1.5, 800, "x")
        _times, mbps = log.bandwidth_series(1.0)
        assert mbps[0] == pytest.approx(400 * 8 / 1e6)
        assert mbps[1] == pytest.approx(400 * 8 / 1e6)

    def test_zero_duration_event_keeps_bytes(self):
        # Regression: an instantaneous transfer used to contribute nothing
        # (zero-length overlap with every bin); its bytes must land in the
        # containing bin.
        log = TrafficLog()
        log.record(1.2, 1.2, 1_000_000, "x")
        _times, mbps = log.bandwidth_series(1.0, horizon_s=3.0)
        assert mbps[1] == pytest.approx(8.0)
        assert mbps[0] == 0.0 and mbps[2] == 0.0

    def test_zero_duration_on_bin_boundary(self):
        log = TrafficLog()
        log.record(1.0, 1.0, 500, "x")
        _times, mbps = log.bandwidth_series(1.0, horizon_s=2.0)
        total_bits = float(np.sum(mbps * 1e6 * 1.0))
        assert total_bits == pytest.approx(500 * 8)
        assert mbps[1] > 0.0  # t=1.0 belongs to bin [1, 2)

    def test_zero_duration_beyond_horizon_dropped(self):
        log = TrafficLog()
        log.record(5.0, 5.0, 500, "x")
        log.record(0.0, 1.0, 100, "y")
        _times, mbps = log.bandwidth_series(1.0, horizon_s=2.0)
        total_bits = float(np.sum(mbps * 1e6 * 1.0))
        assert total_bits == pytest.approx(100 * 8)

    def test_mixed_events_conserve_bytes(self):
        log = TrafficLog()
        log.record(0.0, 2.5, 1_000, "a")
        log.record(0.7, 0.7, 300, "b")
        log.record(1.9, 3.1, 400, "c")
        _times, mbps = log.bandwidth_series(0.5)
        total_bits = float(np.sum(mbps * 1e6 * 0.5))
        assert total_bits == pytest.approx(1_700 * 8, rel=1e-9)

    def test_json_round_trip(self):
        log = TrafficLog()
        log.record(0.0, 1.0, 100, "rotation")
        log.record(1.0, 1.0, 50, "flush")
        rebuilt = TrafficLog.from_json(log.to_json())
        assert rebuilt.events == log.events
        assert rebuilt.total_bytes == 150.0
