"""Unit tests for DistArrays (repro.core.distarray)."""

import numpy as np
import pytest

from repro.core.distarray import DistArray, parse_dense_line
from repro.errors import CheckpointError, MaterializationError, SubscriptError


class TestLazyCreation:
    def test_from_entries_is_lazy(self):
        array = DistArray.from_entries([((0, 0), 1.0)], shape=(2, 2))
        assert not array.is_materialized

    def test_materialize_is_idempotent(self):
        array = DistArray.from_entries([((0, 0), 1.0)], shape=(2, 2))
        array.materialize()
        first = array._entries
        array.materialize()
        assert array._entries is first

    def test_access_before_materialize_raises(self):
        array = DistArray.from_entries([((0, 0), 1.0)], shape=(2, 2))
        with pytest.raises(MaterializationError):
            array[0, 0]

    def test_shape_unknown_before_materialize(self):
        array = DistArray.from_entries([((0, 0), 1.0)])
        with pytest.raises(MaterializationError):
            array.shape

    def test_shape_inference(self):
        array = DistArray.from_entries(
            [((0, 0), 1.0), ((3, 5), 2.0)]
        ).materialize()
        assert array.shape == (4, 6)

    def test_empty_entries_shape_inference_fails(self):
        array = DistArray.from_entries([])
        with pytest.raises(MaterializationError):
            array.materialize()

    def test_no_recipe_raises(self):
        array = DistArray(name="bare", shape=(2,), sparse=True)
        with pytest.raises(MaterializationError):
            array.materialize()


class TestDenseCreation:
    def test_randn_shape_and_determinism(self):
        a = DistArray.randn(3, 4, seed=42).materialize()
        b = DistArray.randn(3, 4, seed=42).materialize()
        assert a.values.shape == (3, 4)
        assert np.array_equal(a.values, b.values)

    def test_randn_scale(self):
        a = DistArray.randn(50, 50, seed=0, scale=0.01).materialize()
        assert np.abs(a.values).max() < 1.0

    def test_rand_in_unit_interval(self):
        a = DistArray.rand(10, 10, seed=1).materialize()
        assert a.values.min() >= 0.0
        assert a.values.max() < 1.0

    def test_zeros(self):
        a = DistArray.zeros(2, 3).materialize()
        assert np.array_equal(a.values, np.zeros((2, 3)))

    def test_full(self):
        a = DistArray.full((2, 2), 7.5).materialize()
        assert np.array_equal(a.values, np.full((2, 2), 7.5))

    def test_dense_requires_shape(self):
        array = DistArray(name="noshape", recipes=[], sparse=False)
        with pytest.raises(MaterializationError):
            array.materialize()


class TestMapFusion:
    def test_map_values_on_dense(self):
        a = DistArray.zeros(2, 2).map(lambda v: v + 1.0, map_values=True)
        a.materialize()
        assert np.array_equal(a.values, np.ones((2, 2)))

    def test_map_chain_fuses(self):
        a = (
            DistArray.zeros(2, 2)
            .map(lambda v: v + 1.0, map_values=True)
            .map(lambda v: v * 3.0, map_values=True)
        ).materialize()
        assert np.array_equal(a.values, np.full((2, 2), 3.0))

    def test_map_is_lazy(self):
        calls = []

        def fn(v):
            calls.append(v)
            return v

        a = DistArray.zeros(2, 2).map(fn, map_values=True)
        assert not calls
        a.materialize()
        assert calls

    def test_map_does_not_mutate_parent(self):
        parent = DistArray.from_entries([((0,), 1.0)], shape=(1,))
        child = parent.map(lambda v: v * 2, map_values=True)
        parent.materialize()
        child.materialize()
        assert parent[(0,)] == 1.0
        assert child[(0,)] == 2.0

    def test_map_entries_sparse(self):
        a = DistArray.from_entries(
            [((0, 1), 2.0), ((1, 0), 3.0)], shape=(2, 2)
        ).map(lambda key, value: ((key[1], key[0]), value), map_values=False)
        a.materialize()
        assert a[(1, 0)] == 2.0
        assert a[(0, 1)] == 3.0

    def test_map_entries_can_drop(self):
        a = DistArray.from_entries(
            [((0,), 1.0), ((1,), 2.0)], shape=(2,)
        ).map(lambda key, value: None if value > 1.5 else (key, value))
        a.materialize()
        assert a.num_entries == 1

    def test_dense_map_entries_rejected(self):
        with pytest.raises(MaterializationError):
            DistArray.zeros(2, 2).map(lambda k, v: (k, v), map_values=False)


class TestTextFile(object):
    def test_load_and_parse(self, tmp_path):
        path = tmp_path / "data.txt"
        path.write_text("0 1 2.5\n1 0 -1.0\n\n")
        array = DistArray.text_file(str(path)).materialize()
        assert array.num_entries == 2
        assert array[(0, 1)] == 2.5
        assert array[(1, 0)] == -1.0

    def test_custom_parser(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("3,4,9.0\n")

        def parser(line):
            a, b, v = line.split(",")
            return (int(a), int(b)), float(v)

        array = DistArray.text_file(str(path), parser).materialize()
        assert array[(3, 4)] == 9.0

    def test_default_parser_rejects_garbage(self):
        with pytest.raises(MaterializationError):
            parse_dense_line("oops")


class TestAccess:
    def test_sparse_point_get_set(self):
        a = DistArray.from_entries([((1, 2), 5.0)], shape=(3, 3)).materialize()
        assert a[1, 2] == 5.0
        a[1, 2] = 6.0
        assert a[1, 2] == 6.0

    def test_sparse_missing_entry_raises(self):
        a = DistArray.from_entries([((0, 0), 1.0)], shape=(2, 2)).materialize()
        with pytest.raises(SubscriptError):
            a[1, 1]

    def test_sparse_get_with_default(self):
        a = DistArray.from_entries([((0, 0), 1.0)], shape=(2, 2)).materialize()
        assert a.get((1, 1), -1.0) == -1.0

    def test_sparse_contains(self):
        a = DistArray.from_entries([((0, 0), 1.0)], shape=(2, 2)).materialize()
        assert a.contains((0, 0))
        assert not a.contains((1, 1))

    def test_sparse_wrong_arity_raises(self):
        a = DistArray.from_entries([((0, 0), 1.0)], shape=(2, 2)).materialize()
        with pytest.raises(SubscriptError):
            a[(0,)]

    def test_dense_point_and_set_queries(self):
        a = DistArray.zeros(3, 4).materialize()
        a[1, 2] = 9.0
        assert a[1, 2] == 9.0
        column = a[:, 2]
        assert column.shape == (3,)
        assert column[1] == 9.0

    def test_dense_range_query(self):
        a = DistArray.zeros(5, 5).materialize()
        a[1:3, 0] = np.array([1.0, 2.0])
        assert np.array_equal(a[1:3, 0], np.array([1.0, 2.0]))

    def test_values_on_sparse_raises(self):
        a = DistArray.from_entries([((0,), 1.0)], shape=(1,)).materialize()
        with pytest.raises(SubscriptError):
            a.values

    def test_set_dense_replaces_storage(self):
        a = DistArray.zeros(2, 2).materialize()
        a.set_dense(np.ones((2, 2)))
        assert np.array_equal(a.values, np.ones((2, 2)))

    def test_entries_iteration_dense(self):
        a = DistArray.zeros(2, 2).materialize()
        keys = {key for key, _v in a.entries()}
        assert keys == {(0, 0), (0, 1), (1, 0), (1, 1)}

    def test_nbytes_positive(self):
        dense = DistArray.zeros(4, 4).materialize()
        sparse = DistArray.from_entries([((0,), 1.0)], shape=(4,)).materialize()
        assert dense.nbytes == 4 * 4 * 8
        assert sparse.nbytes > 0


class TestSetOperations:
    def _sparse(self):
        entries = [((i, j), float(i * 10 + j)) for i in range(4) for j in range(3)]
        return DistArray.from_entries(entries, shape=(4, 3)).materialize()

    def test_group_by_dimension(self):
        grouped = self._sparse().group_by(0)
        assert grouped.sparse
        assert grouped.num_entries == 4
        rows = grouped[(2,)]
        assert len(rows) == 3
        assert all(key[0] == 2 for key, _v in rows)

    def test_group_by_out_of_range(self):
        with pytest.raises(SubscriptError):
            self._sparse().group_by(5)

    def test_group_by_dense_rejected(self):
        with pytest.raises(SubscriptError):
            DistArray.zeros(2, 2).materialize().group_by(0)

    def test_randomize_preserves_multiset(self):
        original = self._sparse()
        shuffled = original.randomize(seed=3)
        assert shuffled.num_entries == original.num_entries
        assert sorted(v for _k, v in shuffled.entries()) == sorted(
            v for _k, v in original.entries()
        )

    def test_randomize_permutations_recorded(self):
        shuffled = self._sparse().randomize(dims=[0], seed=3)
        assert set(shuffled.permutations) == {0}
        assert sorted(shuffled.permutations[0]) == list(range(4))

    def test_randomize_single_dim_keeps_other(self):
        original = self._sparse()
        shuffled = original.randomize(dims=[0], seed=3)
        original_cols = sorted(key[1] for key, _v in original.entries())
        shuffled_cols = sorted(key[1] for key, _v in shuffled.entries())
        assert original_cols == shuffled_cols

    def test_histogram_per_coordinate(self):
        counts = self._sparse().histogram(0)
        assert counts.tolist() == [3, 3, 3, 3]

    def test_histogram_binned(self):
        counts = self._sparse().histogram(0, num_bins=2)
        assert counts.tolist() == [6, 6]

    def test_histogram_bad_dim(self):
        with pytest.raises(SubscriptError):
            self._sparse().histogram(9)


class TestCheckpoint:
    def test_roundtrip_dense(self, tmp_path):
        a = DistArray.randn(3, 3, seed=7, name="ckpt_dense").materialize()
        path = str(tmp_path / "a.ckpt")
        a.checkpoint(path)
        restored = DistArray.load_checkpoint(path)
        assert np.array_equal(restored.values, a.values)
        assert restored.name == "ckpt_dense"

    def test_roundtrip_sparse(self, tmp_path):
        a = DistArray.from_entries(
            [((0, 1), 2.0)], shape=(2, 2), name="ckpt_sparse"
        ).materialize()
        path = str(tmp_path / "b.ckpt")
        a.checkpoint(path)
        restored = DistArray.load_checkpoint(path)
        assert restored[(0, 1)] == 2.0

    def test_missing_checkpoint_raises(self, tmp_path):
        with pytest.raises(CheckpointError):
            DistArray.load_checkpoint(str(tmp_path / "missing.ckpt"))

    def test_unwritable_path_raises(self):
        a = DistArray.zeros(2).materialize()
        with pytest.raises(CheckpointError):
            a.checkpoint("/nonexistent-dir-xyz/a.ckpt")
