"""Cross-run tuning cache: winning knob configurations by loop signature.

One JSON file (``tuning.json``) next to the run store's ``runs.jsonl``:
a mapping from *tuning signature* — the run store's loop signature minus
the tunable knobs themselves — to the best configuration a tuned run
measured for that loop.  ``tune="auto"`` runs write their winner at the
end of each ``run()`` call and seed from a hit on the next construction;
``tune="cached"`` runs seed read-only.

The file is human-readable on purpose (the cache is a record of learned
decisions, not an opaque artifact) and written atomically via a temp-file
rename so concurrent runs can't interleave partial JSON.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Dict, Optional, Union

__all__ = ["CACHE_FILENAME", "TuningCache", "tuning_signature", "TUNED_KNOBS"]

CACHE_FILENAME = "tuning.json"

#: The knobs the tuner owns — excluded from the cache key so one run's
#: winner is visible to runs starting from any other setting of them.
TUNED_KNOBS = ("pipeline_depth", "prefetch", "cache_prefetch")


def tuning_signature(loop: Any) -> str:
    """Cache key for one compiled loop: the run store's loop signature
    with the tunable knobs excluded.

    A loop mistuned to ``pipeline_depth=1`` and the same loop hand-tuned
    to depth 3 therefore share a key — which is the whole point: the
    mistuned run must find the hand-tuned run's entry."""
    from repro.obs.runstore import loop_signature

    return loop_signature(loop, exclude=TUNED_KNOBS)


class TuningCache:
    """JSON-backed map of tuning signature -> winning configuration."""

    def __init__(self, root: Union[str, Path] = ".repro_runs") -> None:
        self.root = Path(root)

    @property
    def path(self) -> Path:
        return self.root / CACHE_FILENAME

    def load(self) -> Dict[str, Dict[str, Any]]:
        """The whole cache (empty on a missing or corrupt file — a bad
        cache only costs a cold start, never a failed run)."""
        try:
            with self.path.open() as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            return {}
        entries = payload.get("entries")
        return entries if isinstance(entries, dict) else {}

    def get(self, signature: str) -> Optional[Dict[str, Any]]:
        """The cached entry for one loop, or ``None`` on a miss.

        Entries carry ``config`` (the knob dict to seed), the
        ``epoch_time_s`` that config measured, and bookkeeping fields."""
        return self.load().get(signature)

    def put(
        self,
        signature: str,
        config: Dict[str, Any],
        epoch_time_s: float,
        clock: str = "virtual",
        label: str = "",
    ) -> None:
        """Record one loop's winning configuration (read-modify-write)."""
        entries = self.load()
        previous = entries.get(signature, {})
        entries[signature] = {
            "config": dict(config),
            "epoch_time_s": float(epoch_time_s),
            "clock": clock,
            "label": label,
            "runs": int(previous.get("runs", 0)) + 1,
            "updated_at": time.strftime(
                "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
            ),
        }
        self.root.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_name(self.path.name + ".tmp")
        with tmp.open("w") as handle:
            json.dump({"version": 1, "entries": entries}, handle, indent=2)
            handle.write("\n")
        os.replace(tmp, self.path)

    @classmethod
    def resolve(cls, run_store: Any) -> "TuningCache":
        """The cache co-located with a loop's run store.

        ``run_store`` is the raw ``LoopOptions.run_store`` value (a
        ``RunStore``, a path, ``True`` for the default root, or ``None``
        — which also means the default root: tuning without run
        recording still needs somewhere to persist its winners)."""
        if run_store is None:
            return cls()
        from repro.obs.runstore import RunStore

        return cls(RunStore.resolve(run_store).root)
