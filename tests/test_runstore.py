"""Tests for run persistence and regression detection (repro.obs.runstore).

Covers the RunRecord JSONL round trip, the loop signature (stable for
identical configurations, deliberately blind to fault plans), opt-in
recording through ``LoopOptions.run_store`` (bit-identical when off),
noise-aware regression verdicts, and the ``repro perf`` CLI.
"""

import io
import json

import numpy as np

from repro.apps import MFHyper, build_sgd_mf
from repro.faults.plan import FaultPlan, Straggler
from repro.obs.runstore import (
    RunRecord,
    RunStore,
    check_store,
    compare_records,
    loop_signature,
)
from repro.runtime.cluster import ClusterSpec
from repro.runtime.options import LoopOptions


def _program(mf_small, cluster=None, **option_kwargs):
    cluster = cluster or ClusterSpec(num_machines=2, workers_per_machine=2)
    kwargs = {}
    if option_kwargs:
        kwargs["options"] = LoopOptions(**option_kwargs)
    return build_sgd_mf(
        mf_small, cluster=cluster, hyper=MFHyper(rank=4), seed=3, **kwargs
    )


def _dense_arrays(program):
    return {
        name: array
        for name, array in program.arrays.items()
        if getattr(array, "_dense", None) is not None
    }


def _record(total_s=1.0, epochs=1, **overrides):
    fields = dict(
        label="mf:orion",
        signature="abcd1234",
        backend="simulated",
        clock="virtual",
        kernel_tier="hand",
        epochs=[
            {"epoch": i + 1, "epoch_time_s": total_s / epochs}
            for i in range(epochs)
        ],
    )
    fields.update(overrides)
    return RunRecord(**fields)


class TestRecording:
    def test_run_store_option_records_each_run(self, mf_small, tmp_path):
        store = RunStore(tmp_path / "rs")
        program = _program(mf_small, run_store=store, run_label="mf:test")
        program.run(2)
        records = store.load()
        assert len(records) == 2  # one loop.run() per pass
        first, second = records
        assert first.label == second.label == "mf:test"
        assert first.signature == second.signature
        assert (first.first_epoch, second.first_epoch) == (1, 2)
        for record in records:
            assert record.backend == "simulated"
            assert record.clock == "virtual"
            assert record.kernel_tier in ("scalar", "hand", "synth:vector",
                                          "synth:block-loop")
            assert record.total_time_s > 0
            assert record.plan["num_workers"] == 4
            assert not record.faulted

    def test_store_resolves_from_path_and_true(self, tmp_path):
        assert RunStore.resolve(True).root == RunStore().root
        assert RunStore.resolve(tmp_path / "x").root == tmp_path / "x"
        store = RunStore(tmp_path)
        assert RunStore.resolve(store) is store

    def test_disabled_recording_is_bit_identical(self, mf_small, tmp_path):
        plain = _program(mf_small)
        recorded = _program(
            mf_small, run_store=RunStore(tmp_path / "rs")
        )
        plain.run(2)
        recorded.run(2)
        for name, array in _dense_arrays(plain).items():
            assert np.array_equal(
                array.values, _dense_arrays(recorded)[name].values
            ), f"{name}: recording changed the results"

    def test_multiprocess_record_uses_real_clock(self, mf_small, tmp_path):
        store = RunStore(tmp_path / "rs")
        cluster = ClusterSpec(num_machines=1, workers_per_machine=2)
        program = _program(
            mf_small, cluster=cluster, run_store=store,
            backend="multiprocess",
        )
        try:
            program.run(1)
        finally:
            program.close()
        (record,) = store.load()
        assert record.backend == "multiprocess"
        assert record.clock == "real"
        assert record.runner["num_workers"] == 2


class TestRoundTrip:
    def test_json_round_trip(self, mf_small, tmp_path):
        store = RunStore(tmp_path / "rs")
        program = _program(mf_small, run_store=store)
        program.run(1)
        (record,) = store.load()
        payload = json.loads(json.dumps(record.to_json()))
        assert RunRecord.from_json(payload) == record

    def test_unknown_fields_are_ignored(self):
        payload = _record().to_json()
        payload["from_the_future"] = {"schema": 99}
        assert RunRecord.from_json(payload) == _record()


class TestSignature:
    def test_stable_across_identical_builds(self, mf_small):
        a = _program(mf_small).train_loop
        b = _program(mf_small).train_loop
        assert loop_signature(a) == loop_signature(b)

    def test_excludes_fault_plan(self, mf_small):
        clean = _program(mf_small).train_loop
        slowed = _program(
            mf_small,
            faults=FaultPlan(
                stragglers=[Straggler(worker=0, epoch=1, slowdown=2.0)]
            ),
        ).train_loop
        assert loop_signature(clean) == loop_signature(slowed)

    def test_sensitive_to_cluster_size(self, mf_small):
        small = _program(mf_small).train_loop
        big = _program(
            mf_small,
            cluster=ClusterSpec(num_machines=4, workers_per_machine=2),
        ).train_loop
        assert loop_signature(small) != loop_signature(big)


class TestVerdicts:
    def test_identical_runs_pass(self):
        verdict = compare_records(_record(1.0), _record(1.0))
        assert not verdict.regressed
        assert verdict.ratio == 1.0

    def test_two_x_slowdown_is_flagged(self):
        verdict = compare_records(_record(1.0), _record(2.0))
        assert verdict.regressed
        assert "REGRESSION" in verdict.describe()

    def test_improvement_is_not_a_regression(self):
        verdict = compare_records(_record(1.0), _record(0.5))
        assert not verdict.regressed
        assert verdict.improved

    def test_signature_and_fault_notes(self):
        verdict = compare_records(
            _record(1.0), _record(1.0, signature="ffff0000", faulted=True)
        )
        assert any("signatures differ" in note for note in verdict.notes)
        assert any("fault injection" in note for note in verdict.notes)

    def test_check_store_groups_and_flags(self):
        clean = [_record(1.0), _record(1.0)]
        verdicts = check_store(clean)
        assert len(verdicts) == 1 and not verdicts[0].regressed
        (verdict,) = check_store(clean + [_record(2.0)])
        assert verdict.regressed
        assert verdict.num_baselines == 2

    def test_check_store_separates_clocks_and_epochs(self):
        records = [
            _record(1.0),
            _record(2.0, clock="real"),
            _record(2.0, first_epoch=2),
        ]
        # Three singleton groups: nothing to compare, nothing flagged.
        assert check_store(records) == []

    def test_noise_margin_widens_with_spread(self):
        # Baselines spread 0.8..1.2 around median 1.0: the default
        # noise factor 2.0 stretches the allowed ratio to 1.8.
        baselines = [_record(0.8), _record(1.0), _record(1.2)]
        verdicts = check_store(baselines + [_record(1.5)])
        assert not verdicts[0].regressed
        verdicts = check_store(baselines + [_record(2.0)])
        assert verdicts[0].regressed


class TestPerfCli:
    def _run(self, argv):
        from repro.cli import main

        out = io.StringIO()
        code = main(argv, out=out)
        return code, out.getvalue()

    def test_end_to_end_regression_detection(self, tmp_path):
        store = str(tmp_path / "rs")
        base = ["slr", "--engine", "orion", "--epochs", "2",
                "--scale", "0.2", "--run-store", store]
        assert self._run(base)[0] == 0
        assert self._run(base)[0] == 0

        code, text = self._run(["perf", "show", "--store", store])
        assert code == 0 and "slr:orion" in text

        code, text = self._run(["perf", "compare", "--store", store])
        assert code == 0 and "per-epoch" in text

        code, text = self._run(["perf", "check", "--store", store])
        assert code == 0 and "REGRESSION" not in text

        assert self._run(base + ["--slow-factor", "2.5"])[0] == 0
        code, text = self._run(["perf", "check", "--store", store])
        assert code == 1 and "REGRESSION" in text

    def test_empty_store_behaviors(self, tmp_path):
        store = str(tmp_path / "empty")
        code, text = self._run(["perf", "show", "--store", store])
        assert code == 0 and "empty" in text
        code, _ = self._run(["perf", "compare", "--store", store])
        assert code == 2
        code, _ = self._run(["perf", "check", "--store", store])
        assert code == 0

    def test_slow_factor_needs_simulated_backend(self):
        code, text = self._run(
            ["mf", "--backend", "multiprocess", "--slow-factor", "2.0"]
        )
        assert code == 2 and "--backend simulated" in text
