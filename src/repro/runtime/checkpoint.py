"""Checkpointing helpers (paper Sec. 4.3, fault tolerance).

An Orion driver checkpoints parameter DistArrays by writing them to disk,
eagerly, typically every N data passes.  These helpers checkpoint/restore a
set of arrays atomically enough for the training-resume pattern: each
array's file goes to a temp name and is renamed into place, and a per-tag
*manifest* is written (atomically, last) only after every array of the tag
has landed — so restore can pick the latest *complete* tag and a crash
between two array renames can never produce a mixed-tag restore.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional

from repro.core.distarray import DistArray
from repro.errors import CheckpointError

__all__ = [
    "checkpoint_arrays",
    "restore_arrays",
    "checkpoint_path",
    "manifest_path",
    "manifest_meta",
    "latest_complete_tag",
    "CheckpointPolicy",
    "CheckpointConfig",
]


def checkpoint_path(directory: str, name: str, tag: str) -> str:
    """Filesystem path for one array's checkpoint under a tag."""
    return os.path.join(directory, f"{name}.{tag}.ckpt")


def manifest_path(directory: str, tag: str) -> str:
    """Filesystem path of one tag's manifest file."""
    return os.path.join(directory, f"manifest.{tag}.json")


def checkpoint_arrays(
    arrays: Iterable[DistArray],
    directory: str,
    tag: str,
    meta: Optional[Dict[str, Any]] = None,
) -> Dict[str, str]:
    """Write each array's checkpoint under ``directory`` with ``tag``.

    Returns name -> path.  Each file is written to a temporary name first
    and renamed; after *all* arrays land, the tag's manifest is renamed
    into place the same way.  A tag without its manifest is incomplete by
    definition and ignored by :func:`latest_complete_tag`.
    """
    os.makedirs(directory, exist_ok=True)
    paths: Dict[str, str] = {}
    for array in arrays:
        final = checkpoint_path(directory, array.name, tag)
        temp = final + ".tmp"
        array.checkpoint(temp)
        try:
            os.replace(temp, final)
        except OSError as exc:
            raise CheckpointError(f"cannot finalize checkpoint {final!r}: {exc}")
        paths[array.name] = final
    manifest = {
        "tag": tag,
        "files": {name: os.path.basename(path) for name, path in paths.items()},
        "meta": dict(meta or {}),
    }
    final = manifest_path(directory, tag)
    temp = final + ".tmp"
    try:
        with open(temp, "w") as handle:
            json.dump(manifest, handle, indent=2)
        os.replace(temp, final)
    except OSError as exc:
        raise CheckpointError(f"cannot finalize manifest {final!r}: {exc}")
    return paths


def _read_manifest(directory: str, tag: str) -> Optional[Dict[str, Any]]:
    try:
        with open(manifest_path(directory, tag)) as handle:
            return json.load(handle)
    except (OSError, ValueError):
        return None


def manifest_meta(directory: str, tag: str) -> Dict[str, Any]:
    """The ``meta`` dict stored with one tag's manifest ({} when absent)."""
    manifest = _read_manifest(directory, tag)
    if manifest is None:
        return {}
    return dict(manifest.get("meta", {}))


def _tag_sort_key(directory: str, tag: str) -> Any:
    meta = manifest_meta(directory, tag)
    epoch = meta.get("epoch")
    return (epoch if isinstance(epoch, (int, float)) else -1, tag)


def latest_complete_tag(directory: str) -> Optional[str]:
    """The newest tag whose manifest and every listed file exist.

    Tags are ordered by the ``epoch`` their manifest records (falling back
    to the tag string).  Tags missing any array file — e.g. half-pruned or
    interrupted mid-write — are skipped.
    """
    try:
        entries = os.listdir(directory)
    except OSError:
        return None
    complete: List[str] = []
    for entry in entries:
        if not (entry.startswith("manifest.") and entry.endswith(".json")):
            continue
        tag = entry[len("manifest."):-len(".json")]
        manifest = _read_manifest(directory, tag)
        if manifest is None:
            continue
        files = manifest.get("files", {})
        if all(
            os.path.exists(os.path.join(directory, name))
            for name in files.values()
        ):
            complete.append(tag)
    if not complete:
        return None
    return max(complete, key=lambda tag: _tag_sort_key(directory, tag))


class CheckpointPolicy:
    """Checkpoint every N data passes; restore the latest on demand.

    The paper's fault-tolerance pattern: "a common approach is to
    checkpoint the parameter DistArrays every N data passes".  Drive the
    policy from the training loop::

        policy = CheckpointPolicy([W, H], "/ckpts", every_n_epochs=5)
        for epoch in range(1, epochs + 1):
            loop.run()
            policy.step(epoch)
        ...
        policy.restore_latest()   # after a crash / for evaluation
    """

    def __init__(
        self,
        arrays: Iterable[DistArray],
        directory: str,
        every_n_epochs: int = 5,
        keep: int = 3,
    ) -> None:
        if every_n_epochs <= 0:
            raise CheckpointError("every_n_epochs must be positive")
        self.arrays = list(arrays)
        self.directory = directory
        self.every_n_epochs = every_n_epochs
        self.keep = max(1, keep)
        self._tags: list = []

    @property
    def latest_tag(self) -> str:
        """The most recent checkpoint tag, or raises when none exists."""
        if not self._tags:
            raise CheckpointError("no checkpoint has been written yet")
        return self._tags[-1]

    def step(self, epoch: int) -> bool:
        """Notify the policy that ``epoch`` finished; checkpoint when due.

        Returns whether a checkpoint was written.  Old checkpoints beyond
        ``keep`` are pruned (manifest first, so a partially pruned tag is
        never mistaken for a complete one).
        """
        if epoch % self.every_n_epochs != 0:
            return False
        tag = f"epoch{epoch}"
        checkpoint_arrays(
            self.arrays, self.directory, tag, meta={"epoch": epoch}
        )
        self._tags.append(tag)
        while len(self._tags) > self.keep:
            stale = self._tags.pop(0)
            stale_paths = [manifest_path(self.directory, stale)]
            stale_paths += [
                checkpoint_path(self.directory, array.name, stale)
                for array in self.arrays
            ]
            for path in stale_paths:
                try:
                    os.remove(path)
                except OSError:
                    pass
        return True

    def restore_latest(self) -> str:
        """Restore every array from the latest *complete* checkpoint.

        Prefers the newest on-disk tag whose manifest and files all exist
        (robust against a crash mid-checkpoint, and against checkpoints
        written by another process); falls back to this policy's own tag
        history when no manifest is found (pre-manifest directories).
        """
        tag = latest_complete_tag(self.directory)
        if tag is None:
            tag = self.latest_tag
        restore_arrays(self.arrays, self.directory, tag)
        return tag

    def restore(self, tag: str) -> None:
        """Restore every array from a specific tag."""
        restore_arrays(self.arrays, self.directory, tag)


@dataclass
class CheckpointConfig:
    """Declarative checkpointing for :class:`~repro.api.ParallelLoop`.

    Attach via ``LoopOptions(checkpoint=CheckpointConfig(...))`` — the
    loop then drives a :class:`CheckpointPolicy` automatically after each
    completed epoch, and fault recovery restores from the latest complete
    tag.

    Attributes:
        directory: where checkpoint files and manifests are written.
        every_n_epochs: checkpoint cadence (paper Sec. 4.3's "every N
            data passes").
        keep: checkpoints retained before pruning.
        arrays: the DistArrays to checkpoint; ``None`` selects every
            array the loop body writes (plus buffer flush targets).
    """

    directory: str
    every_n_epochs: int = 5
    keep: int = 3
    arrays: Optional[List[DistArray]] = None


def restore_arrays(
    arrays: Iterable[DistArray], directory: str, tag: str
) -> None:
    """Restore each array's storage in place from its tagged checkpoint."""
    for array in arrays:
        path = checkpoint_path(directory, array.name, tag)
        loaded = DistArray.load_checkpoint(path)
        if loaded.sparse != array.sparse:
            raise CheckpointError(
                f"checkpoint {path!r} is {'sparse' if loaded.sparse else 'dense'} "
                f"but target array is not"
            )
        if loaded.sparse:
            array._entries = loaded._entries
            array._shape = loaded._shape
        else:
            array.set_dense(loaded.values)
