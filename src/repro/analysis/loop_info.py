"""Static extraction of loop information from a loop-body function.

This is the first stage of the paper's Fig. 6 pipeline: given the loop body
and the iteration-space DistArray, recover

* the loop index vector and its per-dimension aliases,
* every static DistArray reference with its subscript pattern,
* writes routed to DistArray Buffers (exempt from dependence analysis),
* accumulator updates,
* inherited driver-program variables (captured and, on a real cluster,
  broadcast read-only to workers).
"""

from __future__ import annotations

import ast
import inspect
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.analysis import ast_utils
from repro.analysis.depvec import ArrayRef
from repro.analysis.subscript import Axis, SubscriptKind, index
from repro.core.accumulator import Accumulator
from repro.core.buffers import DistArrayBuffer
from repro.core.distarray import DistArray
from repro.errors import AnalysisError

__all__ = ["LoopInfo", "analyze_loop_body"]


@dataclass
class LoopInfo:
    """Everything static analysis learned about one parallel for-loop."""

    iteration_space: DistArray
    num_iter_dims: int
    index_param: str
    value_param: Optional[str]
    ordered: bool
    #: Static references per DistArray name (dependence-relevant ones).
    refs: Dict[str, List[ArrayRef]] = field(default_factory=dict)
    #: Name -> DistArray for every array referenced in the body.
    arrays: Dict[str, DistArray] = field(default_factory=dict)
    #: Name -> DistArrayBuffer for every buffer written in the body.
    buffers: Dict[str, DistArrayBuffer] = field(default_factory=dict)
    #: Buffered writes (exempt from dependence analysis), per buffer name.
    buffer_refs: Dict[str, List[ArrayRef]] = field(default_factory=dict)
    #: Names of accumulators updated by the body.
    accumulators: Set[str] = field(default_factory=set)
    #: Name -> Accumulator object for accumulators updated by the body.
    accumulator_refs: Dict[str, Accumulator] = field(default_factory=dict)
    #: Inherited driver variables (name -> current value at analysis time).
    inherited: Dict[str, Any] = field(default_factory=dict)
    #: The body's FunctionDef, kept for prefetch-function synthesis.
    tree: Optional[ast.FunctionDef] = None
    #: Loop-index aliases discovered in the body (for prefetch synthesis).
    index_bindings: Dict[str, ast_utils.IndexBinding] = field(default_factory=dict)

    def arrays_with_unknown_subscripts(self) -> Set[str]:
        """Array names read or written through a data-dependent subscript."""
        out = set()
        for name, refs in self.refs.items():
            for ref in refs:
                if any(a.kind is SubscriptKind.UNKNOWN for a in ref.axes):
                    out.add(name)
        return out

    def written_arrays(self) -> Set[str]:
        """Array names with at least one non-buffered write."""
        return {
            name
            for name, refs in self.refs.items()
            if any(ref.is_write for ref in refs)
        }

    def array_access_dims(self, name: str) -> Dict[int, int]:
        """Map iteration-space dim -> array dim for single-index subscripts.

        Used by the placement heuristic: if array ``name`` is always indexed
        on array dimension ``a`` by iteration dimension ``i``, partitioning
        the iteration space on ``i`` lets the array be range-partitioned on
        ``a`` and served locally.
        """
        mapping: Dict[int, int] = {}
        for ref in self.refs.get(name, []):
            for array_dim, axis in enumerate(ref.axes):
                if axis.kind is SubscriptKind.INDEX:
                    mapping.setdefault(axis.dim_idx, array_dim)
        return mapping

    def pinned_array_dim(self, name: str, iter_dim: int) -> Optional[int]:
        """The array dimension consistently indexed by ``iter_dim``.

        Returns the array dimension ``a`` such that *every* static reference
        to the array subscripts position ``a`` with ``key[iter_dim] ± c``,
        or ``None`` when some reference does not (then partitioning the
        array on ``a`` would not make all of the loop's accesses local).
        """
        pinned: Optional[int] = None
        for ref in self.refs.get(name, []):
            ref_dim: Optional[int] = None
            for array_dim, axis in enumerate(ref.axes):
                if axis.kind is SubscriptKind.INDEX and axis.dim_idx == iter_dim:
                    ref_dim = array_dim
                    break
            if ref_dim is None:
                return None
            if pinned is None:
                pinned = ref_dim
            elif pinned != ref_dim:
                return None
        return pinned


class _BodyVisitor(ast.NodeVisitor):
    """AST walk collecting references, bindings and inherited names."""

    def __init__(
        self,
        env: Dict[str, Any],
        index_param: str,
        value_param: Optional[str],
    ) -> None:
        self.env = env
        self.index_param = index_param
        self.value_param = value_param
        self.bindings: Dict[str, ast_utils.IndexBinding] = {
            index_param: ast_utils.IndexBinding(dim_idx=None)
        }
        self._assign_counts: Dict[str, int] = {}
        self.array_refs: List[Tuple[str, Tuple[ast.expr, ...], bool]] = []
        self.buffer_writes: List[Tuple[str, Tuple[ast.expr, ...]]] = []
        self.accumulators: Set[str] = set()
        self.loaded_names: Set[str] = set()
        self.local_names: Set[str] = set()
        if value_param:
            self.local_names.add(value_param)
        self.local_names.add(index_param)

    # -- bindings ------------------------------------------------------- #

    def _record_binding(self, name: str, binding: ast_utils.IndexBinding) -> None:
        count = self._assign_counts.get(name, 0)
        self._assign_counts[name] = count + 1
        if count == 0:
            self.bindings[name] = binding
        else:
            # Reassigned: no longer a reliable loop-index alias.
            self.bindings.pop(name, None)

    def _invalidate(self, name: str) -> None:
        self._assign_counts[name] = self._assign_counts.get(name, 0) + 1
        self.bindings.pop(name, None)

    def visit_Assign(self, node: ast.Assign) -> None:
        # `i, j = key` gives one binding per position.
        if (
            len(node.targets) == 1
            and isinstance(node.targets[0], ast.Tuple)
            and isinstance(node.value, ast.Name)
            and node.value.id in self.bindings
            and self.bindings[node.value.id].is_whole_key
        ):
            for position, element in enumerate(node.targets[0].elts):
                if isinstance(element, ast.Name):
                    self._record_binding(
                        element.id, ast_utils.IndexBinding(dim_idx=position)
                    )
                    self.local_names.add(element.id)
            self.generic_visit(node.value)
            return
        # `u = key[0] + 1` style single-name bindings.
        for target in node.targets:
            if isinstance(target, ast.Name):
                self.local_names.add(target.id)
                indexed = ast_utils._index_expr(node.value, self.bindings)
                if indexed is not None:
                    self._record_binding(
                        target.id,
                        ast_utils.IndexBinding(dim_idx=indexed[0], const=indexed[1]),
                    )
                else:
                    self._invalidate(target.id)
            elif isinstance(target, ast.Tuple):
                for element in target.elts:
                    if isinstance(element, ast.Name):
                        self.local_names.add(element.id)
                        self._invalidate(element.id)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if isinstance(node.target, ast.Name):
            self.local_names.add(node.target.id)
            self._invalidate(node.target.id)
        # An augmented subscript write reads and writes the element; the
        # Store-context Subscript is recorded by visit_Subscript, and we add
        # the implied read here.
        if isinstance(node.target, ast.Subscript):
            self._handle_subscript(node.target, is_write=False)
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        if isinstance(node.target, ast.Name):
            self.local_names.add(node.target.id)
            self._invalidate(node.target.id)
        self.generic_visit(node)

    # -- references ----------------------------------------------------- #

    @staticmethod
    def _subscript_elements(node: ast.Subscript) -> Tuple[ast.expr, ...]:
        if isinstance(node.slice, ast.Tuple):
            return tuple(node.slice.elts)
        return (node.slice,)

    def _handle_subscript(self, node: ast.Subscript, is_write: bool) -> None:
        if not isinstance(node.value, ast.Name):
            return
        name = node.value.id
        bound = self.env.get(name)
        elements = self._subscript_elements(node)
        if isinstance(bound, DistArray):
            self.array_refs.append((name, elements, is_write))
        elif isinstance(bound, DistArrayBuffer) and is_write:
            self.buffer_writes.append((name, elements))

    def visit_Subscript(self, node: ast.Subscript) -> None:
        self._handle_subscript(node, is_write=isinstance(node.ctx, ast.Store))
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        # Accumulator updates: `err.add(value)`.
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "add"
            and isinstance(node.func.value, ast.Name)
            and isinstance(self.env.get(node.func.value.id), Accumulator)
        ):
            self.accumulators.add(node.func.value.id)
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            self.loaded_names.add(node.id)
        self.generic_visit(node)


def _axes_for_ref(
    array: DistArray,
    name: str,
    elements: Tuple[ast.expr, ...],
    bindings: Dict[str, ast_utils.IndexBinding],
    num_iter_dims: int,
) -> Tuple[Axis, ...]:
    """Turn subscript AST elements into per-array-dimension axes."""
    # Whole-key subscript, e.g. `zs[key]`: one index axis per iteration dim.
    if len(elements) == 1 and isinstance(elements[0], ast.Name):
        binding = bindings.get(elements[0].id)
        if binding is not None and binding.is_whole_key:
            if array.ndim != num_iter_dims:
                raise AnalysisError(
                    f"{name}[<key>] used but array has {array.ndim} dims while "
                    f"the iteration space has {num_iter_dims}"
                )
            return tuple(index(d, 0) for d in range(num_iter_dims))
    axes = tuple(ast_utils.parse_axis(element, bindings) for element in elements)
    if len(axes) != array.ndim:
        raise AnalysisError(
            f"{name} subscript has {len(axes)} positions but the array has "
            f"{array.ndim} dimensions"
        )
    return axes


def analyze_loop_body(
    body: Callable[..., Any],
    iteration_space: DistArray,
    ordered: bool = False,
) -> LoopInfo:
    """Statically analyze a loop-body function (paper Fig. 6, stage 1).

    Args:
        body: a plain function ``body(key, value)`` (value optional) whose
            free variables may include DistArrays, DistArrayBuffers,
            Accumulators and ordinary driver variables.
        iteration_space: the materialized DistArray being iterated.
        ordered: whether the application requires lexicographic iteration
            order (the paper's ``ordered`` argument; default relaxed).
    """
    if not iteration_space.is_materialized:
        raise AnalysisError(
            "the iteration-space DistArray must be materialized before a "
            "parallel for-loop over it is compiled (JIT-style, paper Sec. 4.1)"
        )
    tree = ast_utils.get_function_def(body)
    params = [arg.arg for arg in tree.args.args]
    if not params:
        raise AnalysisError("loop body must take (key, value) or (key,)")
    index_param = params[0]
    value_param = params[1] if len(params) > 1 else None
    env = ast_utils.resolve_free_variables(body)

    visitor = _BodyVisitor(env, index_param, value_param)
    visitor.visit(tree)

    num_iter_dims = iteration_space.ndim
    info = LoopInfo(
        iteration_space=iteration_space,
        num_iter_dims=num_iter_dims,
        index_param=index_param,
        value_param=value_param,
        ordered=ordered,
        tree=tree,
        index_bindings=dict(visitor.bindings),
    )
    info.accumulators = set(visitor.accumulators)
    info.accumulator_refs = {
        name: env[name] for name in visitor.accumulators if name in env
    }

    for name, elements, is_write in visitor.array_refs:
        array = env[name]
        axes = _axes_for_ref(array, name, elements, visitor.bindings, num_iter_dims)
        info.arrays[name] = array
        info.refs.setdefault(name, []).append(
            ArrayRef(array_name=name, axes=axes, is_write=is_write)
        )
    for name, elements in visitor.buffer_writes:
        buffer = env[name]
        info.buffers[name] = buffer
        target_ndim = buffer.target.ndim
        axes = tuple(
            ast_utils.parse_axis(element, visitor.bindings) for element in elements
        )
        if len(axes) != target_ndim:
            raise AnalysisError(
                f"buffer {name} subscript arity {len(axes)} does not match "
                f"target array dimensionality {target_ndim}"
            )
        info.buffer_refs.setdefault(name, []).append(
            ArrayRef(array_name=name, axes=axes, is_write=True, buffered=True)
        )

    # Inherited driver variables: loaded free names that resolve in the
    # environment and are not arrays/buffers/accumulators or locals.
    special = set(info.arrays) | set(info.buffers) | info.accumulators
    for name in sorted(visitor.loaded_names):
        if name in visitor.local_names or name in special:
            continue
        if name not in env:
            continue  # builtins and genuinely unresolved names
        value = env[name]
        if isinstance(value, (DistArray, DistArrayBuffer, Accumulator)):
            # Reachable but only via non-subscript use (e.g. accumulator obj).
            continue
        if inspect.ismodule(value):
            continue  # imported modules (np, math) are code, not data
        if callable(value) and getattr(value, "__module__", "").startswith(
            ("numpy", "math", "builtins")
        ):
            continue  # library helpers are not data to broadcast
        info.inherited[name] = value
    return info
