"""Table 3 — ordered vs. unordered 2D parallelization, time per iteration.

Paper result (12 machines, averaged over iterations 2-100):

    =====================  =======  =========  =======
    app                    ordered  unordered  speedup
    =====================  =======  =========  =======
    SGD MF (Netflix)        13.1 s     5.9 s    2.2x
    SGD MF AdaRev           43.6 s    16.7 s    2.6x
    LDA (NYTimes)           29.9 s     5.0 s    6.0x
    =====================  =======  =========  =======

Relaxing the ordering constraint theoretically at most doubles parallelism,
but it additionally enables the pipelined rotation scheme that hides
communication latency, so measured speedups exceed 2x.  This benchmark
reproduces the three rows and asserts the shape: every speedup > 1.5x and
LDA's (the communication-heaviest app) is the largest.
"""

import pytest

import _workloads as wl
from repro.apps import build_lda, build_sgd_mf

EPOCHS = 3

PAPER = {
    "SGD MF": (13.1, 5.9, 2.2),
    "SGD MF AdaRev": (43.6, 16.7, 2.6),
    "LDA": (29.9, 5.0, 6.0),
}


def _measure_mf(adarev: bool):
    dataset = wl.netflix_bench()
    hyper = wl.MF_ADAREV_HYPER if adarev else wl.MF_HYPER
    times = {}
    for ordered in (True, False):
        program = build_sgd_mf(
            dataset,
            cluster=wl.mf_cluster(adarev=adarev),
            hyper=hyper,
            ordered=ordered,
            pipeline_depth=wl.BENCH_PIPELINE_DEPTH,
        )
        times[ordered] = program.run(EPOCHS).time_per_iteration()
    return times[True], times[False]


def _measure_lda():
    dataset = wl.nytimes_bench()
    times = {}
    for ordered in (True, False):
        program = build_lda(
            dataset,
            cluster=wl.lda_cluster(),
            hyper=wl.LDA_HYPER,
            ordered=ordered,
            pipeline_depth=wl.BENCH_PIPELINE_DEPTH,
        )
        times[ordered] = program.run(EPOCHS).time_per_iteration()
    return times[True], times[False]


def _run_all():
    return {
        "SGD MF": _measure_mf(adarev=False),
        "SGD MF AdaRev": _measure_mf(adarev=True),
        "LDA": _measure_lda(),
    }


@pytest.mark.benchmark(group="table3")
def test_table3_ordering(benchmark, report):
    measured = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    rows = []
    for app, (ordered_t, unordered_t) in measured.items():
        paper_o, paper_u, paper_s = PAPER[app]
        rows.append(
            (
                app,
                f"{ordered_t:.4f}",
                f"{unordered_t:.4f}",
                f"{ordered_t / unordered_t:.2f}x",
                f"{paper_s:.1f}x",
            )
        )
    table = wl.fmt_table(
        ["app", "ordered s/iter", "unordered s/iter", "speedup", "paper"],
        rows,
    )
    report("Table 3: ordered vs unordered 2D parallelization", table)

    speedups = {
        app: ordered_t / unordered_t
        for app, (ordered_t, unordered_t) in measured.items()
    }
    assert all(s > 1.5 for s in speedups.values()), speedups
    # LDA, the communication-heaviest app, gains the most (paper: 6x).
    assert speedups["LDA"] >= max(
        speedups["SGD MF"], speedups["SGD MF AdaRev"]
    ) * 0.9, speedups
