"""Trace-driven adaptive auto-tuning (``LoopOptions.tune``).

The tuner closes the observe->decide->act loop over the runtime's
tunable-but-legal knobs: it consumes each traced epoch's exact time
attribution (:mod:`repro.obs.insight`), re-predicts the makespan at
every legal pipeline depth through the schedule's own timing model, and
applies winning configurations to the next epoch — never touching the
dependence-driven strategy or anything else that would move entry
ownership.  A cross-run cache keyed by the run store's loop signature
persists winners so future runs start tuned.

This package is imported only when a loop opts in
(``tune="auto"|"cached"``); the default ``tune="off"`` path never loads
it and is bit-identical to pre-tuner behavior.
"""

from repro.tuning.cache import (
    CACHE_FILENAME,
    TUNED_KNOBS,
    TuningCache,
    tuning_signature,
)
from repro.tuning.tuner import (
    MIN_PREDICTED_GAIN,
    MIN_PREFETCH_GAIN,
    AdaptiveTuner,
    TuningDecision,
)

__all__ = [
    "CACHE_FILENAME",
    "TUNED_KNOBS",
    "MIN_PREDICTED_GAIN",
    "MIN_PREFETCH_GAIN",
    "AdaptiveTuner",
    "TuningCache",
    "TuningDecision",
    "tuning_signature",
]
