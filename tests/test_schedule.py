"""Unit tests for computation schedules and timing (repro.runtime.schedule)."""

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.runtime import schedule as sched
from repro.runtime.cluster import ClusterSpec
from repro.runtime.network import NetworkModel
from repro.runtime.simtime import CostModel


def _cluster(workers_per_machine=4, machines=2, latency=1e-4, bw=1e9):
    return ClusterSpec(
        num_machines=machines,
        workers_per_machine=workers_per_machine,
        network=NetworkModel(bandwidth_bytes_per_s=bw, latency_s=latency),
        cost=CostModel(entry_cost_s=1e-6, sync_overhead_s=1e-4),
    )


class TestScheduleShapes:
    def test_one_d_single_step(self):
        steps = sched.one_d_schedule(4)
        assert len(steps) == 1
        assert [t.worker for t in steps[0]] == [0, 1, 2, 3]
        assert all(t.space_idx == t.worker for t in steps[0])

    def test_ordered_wavefront_step_count(self):
        steps = sched.ordered_2d_schedule(4, 6)
        assert len(steps) == 6 + 4 - 1

    def test_ordered_wavefront_valid_time_indices(self):
        for tasks in sched.ordered_2d_schedule(3, 5):
            for task in tasks:
                assert 0 <= task.time_idx < 5
                assert task.time_idx == task.step - task.worker

    def test_ordered_covers_all_blocks_once(self):
        seen = set()
        for tasks in sched.ordered_2d_schedule(3, 5):
            for task in tasks:
                seen.add((task.space_idx, task.time_idx))
        assert seen == {(s, t) for s in range(3) for t in range(5)}

    def test_unordered_requires_divisibility(self):
        with pytest.raises(ExecutionError):
            sched.unordered_2d_schedule(4, 6)

    def test_unordered_each_worker_covers_all_time_indices(self):
        steps = sched.unordered_2d_schedule(4, 8)
        per_worker = {w: set() for w in range(4)}
        for tasks in steps:
            for task in tasks:
                per_worker[task.worker].add(task.time_idx)
        assert all(v == set(range(8)) for v in per_worker.values())

    def test_unordered_distinct_time_indices_within_step(self):
        # The serializability-critical invariant: concurrent workers hold
        # different time partitions (paper Fig. 7c/7f).
        for tasks in sched.unordered_2d_schedule(4, 8):
            indices = [task.time_idx for task in tasks]
            assert len(indices) == len(set(indices))

    def test_unordered_staggered_starts(self):
        first = sched.unordered_2d_schedule(4, 8)[0]
        assert [t.time_idx for t in first] == [0, 2, 4, 6]

    def test_sequential_outer_one_time_index_per_step(self):
        steps = sched.sequential_outer_schedule(3, 5)
        assert len(steps) == 5
        for step_idx, tasks in enumerate(steps):
            assert all(task.time_idx == step_idx for task in tasks)


class TestTiming:
    def test_one_d_is_slowest_worker_plus_barrier(self):
        cluster = _cluster()
        work = np.array([[1.0], [3.0], [2.0], [1.0]])
        timing = sched.time_one_d(work, cluster)
        assert timing.makespan == pytest.approx(3.0 + 1e-4)

    def test_one_d_finish_times(self):
        cluster = _cluster()
        work = np.array([[1.0], [3.0]])
        timing = sched.time_one_d(work, cluster)
        assert timing.finish[(0, 0)] == 1.0
        assert timing.finish[(1, 0)] == 3.0

    def test_ordered_sums_step_maxima(self):
        cluster = _cluster(latency=0.0, bw=1e18)
        cluster.cost = CostModel(entry_cost_s=1e-6, sync_overhead_s=0.0)
        work = np.ones((2, 2))
        timing = sched.time_ordered_2d(work, cluster, rotated_block_bytes=0.0)
        # Wavefront over 2+2-1 = 3 steps, each step max work 1.0.
        assert timing.makespan == pytest.approx(3.0)

    def test_unordered_perfect_pipeline(self):
        # With zero transfer cost, rotation is free: makespan = per-worker
        # total work.
        cluster = _cluster(latency=0.0, bw=1e18)
        cluster.cost = CostModel(entry_cost_s=1e-6, sync_overhead_s=0.0)
        work = np.ones((2, 4))
        timing = sched.time_unordered_2d(work, cluster, rotated_block_bytes=0.0)
        assert timing.makespan == pytest.approx(4.0)

    def test_unordered_beats_ordered(self):
        # The paper's Table 3: relaxing ordering yields > 2x speedups,
        # because pipelined rotation hides transfer latency and avoids the
        # wavefront's fill/drain and barriers.
        cluster = _cluster(latency=5e-3)
        work = np.full((4, 8), 1e-2)
        ordered = sched.time_ordered_2d(work, cluster, rotated_block_bytes=1e6)
        unordered = sched.time_unordered_2d(work, cluster, rotated_block_bytes=1e6)
        assert ordered.makespan / unordered.makespan > 2.0

    def test_unordered_transfer_stalls_increase_makespan(self):
        cluster = _cluster(latency=0.1)
        work = np.full((2, 4), 1e-3)
        slow = sched.time_unordered_2d(work, cluster, rotated_block_bytes=1e6)
        cluster_fast = _cluster(latency=0.0, bw=1e18)
        fast = sched.time_unordered_2d(work, cluster_fast, rotated_block_bytes=1e6)
        assert slow.makespan > fast.makespan

    def test_deeper_pipeline_hides_more_latency(self):
        cluster = _cluster(workers_per_machine=2, machines=1, latency=2e-3)
        work_shallow = np.full((2, 2), 1e-3)  # depth 1
        work_deep = np.full((2, 8), 2.5e-4)  # depth 4, same total work
        shallow = sched.time_unordered_2d(
            work_shallow, cluster, rotated_block_bytes=0.0
        )
        deep = sched.time_unordered_2d(work_deep, cluster, rotated_block_bytes=0.0)
        # Same total work; the deeper pipeline overlaps transfers better
        # relative to its per-step latency exposure.
        assert deep.makespan <= shallow.makespan * 1.5

    def test_sequential_outer_sums_steps(self):
        cluster = _cluster()
        cluster.cost = CostModel(entry_cost_s=1e-6, sync_overhead_s=0.0)
        work = np.ones((2, 3))
        timing = sched.time_sequential_outer(work, cluster)
        assert timing.makespan == pytest.approx(3.0)

    def test_monotone_in_work(self):
        cluster = _cluster()
        small = np.full((2, 4), 1e-3)
        large = np.full((2, 4), 2e-3)
        assert (
            sched.time_unordered_2d(large, cluster, 0.0).makespan
            > sched.time_unordered_2d(small, cluster, 0.0).makespan
        )

    def test_intra_machine_transfers_cheaper(self):
        fast_intra = ClusterSpec(
            num_machines=1,
            workers_per_machine=4,
            network=NetworkModel(
                bandwidth_bytes_per_s=1e8, latency_s=1e-3, intra_machine_factor=0.0
            ),
            cost=CostModel(entry_cost_s=1e-6, sync_overhead_s=0.0),
        )
        slow_intra = ClusterSpec(
            num_machines=1,
            workers_per_machine=4,
            network=NetworkModel(
                bandwidth_bytes_per_s=1e8, latency_s=1e-3, intra_machine_factor=1.0
            ),
            cost=CostModel(entry_cost_s=1e-6, sync_overhead_s=0.0),
        )
        work = np.full((4, 4), 1e-4)
        cheap = sched.time_unordered_2d(work, fast_intra, rotated_block_bytes=1e5)
        costly = sched.time_unordered_2d(work, slow_intra, rotated_block_bytes=1e5)
        assert cheap.makespan < costly.makespan
