"""Topic modeling with LDA, auto-parallelized 2D unordered.

Collapsed Gibbs sampling over a synthetic corpus.  The doc-topic and
word-topic count matrices are dependence-tracked (and the loop comes out
2D: doc dimension × word dimension); the global per-topic totals are
updated through a DistArray Buffer — a deliberately violated non-critical
dependence, exactly as the paper describes for LDA.

Run:  python examples/topic_modeling.py
"""

import numpy as np

from repro import ClusterSpec
from repro.apps import LDAHyper, build_lda
from repro.data import lda_corpus

corpus = lda_corpus(
    num_docs=150, vocab_size=200, num_topics=6, doc_length=40, seed=3
)
hyper = LDAHyper(num_topics=6, alpha=0.5, beta=0.1)

program = build_lda(
    corpus,
    cluster=ClusterSpec(num_machines=2, workers_per_machine=4),
    hyper=hyper,
    seed=9,
)

print("chosen parallelization:", program.plan.describe())
print(
    "placements:",
    {name: p.kind.value for name, p in program.plan.placements.items()},
)
print("buffered (dependence-violating) arrays:", list(program.plan.dvecs_by_array))

history = program.run(epochs=8)
print("\nnegative per-token log likelihood by pass:")
print(f"  initial: {history.meta['initial_loss']:.4f}")
for record in history.records:
    print(f"  pass {record.epoch}: {record.loss:.4f}")

# Show the learned topics: top words by topic from the word-topic counts.
word_topic = program.arrays["word_topic"].values
print("\ntop words per topic (word ids):")
for topic in range(hyper.num_topics):
    top = np.argsort(word_topic[:, topic])[::-1][:8]
    print(f"  topic {topic}: {top.tolist()}")

# Sanity: compare against the corpus' generative truth via topic-word mass.
truth = corpus.truth["topic_word"]
learned = word_topic.T + hyper.beta
learned /= learned.sum(axis=1, keepdims=True)
overlap = 0
for topic in range(hyper.num_topics):
    best = max(
        range(hyper.num_topics),
        key=lambda t: float(np.minimum(learned[topic], truth[t]).sum()),
    )
    overlap += float(np.minimum(learned[topic], truth[best]).sum())
print(f"\nmean best-match topic overlap vs truth: {overlap / hyper.num_topics:.2f}")
