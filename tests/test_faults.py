"""The repro.faults subsystem: deterministic injection, recovery, options.

Covers the fault-injection contract end to end:

* determinism — identical plans produce identical timing and traffic;
* the chaos property — faults cost virtual time, never data: any fault
  plan leaves final parameters bit-identical to the fault-free run;
* crash recovery — replay from the latest complete checkpoint (or the
  initial snapshot) converges to the fault-free state;
* retry/backoff accounting, straggler slowdowns, manifest completeness;
* the LoopOptions / Observability API consolidation.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import OrionContext
from repro.apps import MFHyper, build_sgd_mf
from repro.baselines import run_bosen
from repro.data import netflix_like
from repro.errors import FaultError
from repro.faults import (
    FaultPlan,
    FaultyLink,
    MessageDrops,
    RecoveryCosts,
    Straggler,
    WorkerCrash,
)
from repro.faults.plan import stable_uniform
from repro.obs import MetricsRegistry, Observability, Tracer
from repro.runtime.checkpoint import (
    CheckpointConfig,
    checkpoint_arrays,
    latest_complete_tag,
    manifest_meta,
    manifest_path,
)
from repro.runtime.cluster import ClusterSpec
from repro.runtime.network import RetryPolicy
from repro.runtime.options import UNSET, LoopOptions


@pytest.fixture(scope="module")
def mf_data():
    return netflix_like(num_rows=24, num_cols=20, num_ratings=420, seed=5)


@pytest.fixture
def cluster():
    return ClusterSpec(num_machines=2, workers_per_machine=2)


def _program(mf_data, cluster, **kw):
    return build_sgd_mf(
        mf_data, cluster=cluster, hyper=MFHyper(rank=4, step_size=0.05),
        seed=7, **kw,
    )


def _final_state(program):
    return {
        name: program.arrays[name].values.copy() for name in ("W", "H")
    }


def _states_equal(a, b):
    return all(np.array_equal(a[name], b[name]) for name in a)


# --------------------------------------------------------------------- #
# Plans: construction, determinism, parsing                              #
# --------------------------------------------------------------------- #


class TestFaultPlan:
    def test_random_is_deterministic(self):
        a = FaultPlan.random(seed=11, epochs=6, num_workers=4, crashes=2,
                             stragglers=1, drop_probability=0.05)
        b = FaultPlan.random(seed=11, epochs=6, num_workers=4, crashes=2,
                             stragglers=1, drop_probability=0.05)
        assert a.crashes == b.crashes
        assert a.stragglers == b.stragglers
        assert a.drops == b.drops

    def test_from_spec_round_trip(self):
        plan = FaultPlan.from_spec(
            "seed=7,crashes=1,drops=0.02,stragglers=1,slowdown=3.0",
            epochs=4, num_workers=4,
        )
        assert plan.seed == 7
        assert len(plan.crashes) == 1
        assert len(plan.stragglers) == 1
        assert plan.drops is not None
        assert plan.drops.probability == pytest.approx(0.02)

    def test_from_spec_unknown_key(self):
        with pytest.raises(FaultError):
            FaultPlan.from_spec("bogus=1", epochs=2, num_workers=2)

    def test_crash_validation(self):
        with pytest.raises(FaultError):
            WorkerCrash(worker=0)  # neither at_s nor epoch
        with pytest.raises(FaultError):
            WorkerCrash(worker=0, at_s=1.0, epoch=2)  # both

    def test_claim_crash_fires_once(self):
        plan = FaultPlan(crashes=(WorkerCrash(worker=1, epoch=2),))
        assert plan.claim_crash(1, 0.0, 1.0) is None
        fired = plan.claim_crash(2, 1.0, 2.0)
        assert fired is not None
        assert fired.at_s == pytest.approx(1.5)
        assert plan.claim_crash(2, 2.0, 3.0) is None  # one-shot
        plan.reset()
        assert plan.claim_crash(2, 1.0, 2.0) is not None

    def test_drop_count_is_order_independent(self):
        plan = FaultPlan(drops=MessageDrops(probability=0.4, seed=9))
        keys = [("flush", 0, 1), ("rotation", 2, 3), ("sync", 0)]
        forward = [plan.drop_count(4, key) for key in keys]
        backward = [plan.drop_count(4, key) for key in reversed(keys)]
        assert forward == backward[::-1]

    def test_stable_uniform_range(self):
        values = [stable_uniform(i, "x", 3) for i in range(200)]
        assert all(0.0 <= v < 1.0 for v in values)
        assert len(set(values)) > 150  # actually varies

    def test_straggle_factors_window_overlap(self):
        plan = FaultPlan(
            stragglers=(Straggler(worker=0, slowdown=3.0, t_start=0.5,
                                  t_end=1.0),)
        )
        # Epoch fully inside the window: full slowdown.
        assert plan.straggle_factors(1, 0.5, 1.0)[0] == pytest.approx(3.0)
        # Half overlap: factor interpolates.
        partial = plan.straggle_factors(1, 0.25, 0.75)[0]
        assert 1.0 < partial < 3.0
        # Disjoint: no factor.
        assert 0 not in plan.straggle_factors(1, 2.0, 3.0)


class TestRetryPolicy:
    def test_penalty_math(self):
        retry = RetryPolicy(timeout_s=1.0, backoff_s=0.5, multiplier=2.0,
                            max_attempts=4)
        assert retry.penalty_s(0) == 0.0
        assert retry.penalty_s(1) == pytest.approx(1.5)
        assert retry.penalty_s(2) == pytest.approx(1.5 + 2.0)

    def test_link_accounting(self, cluster):
        plan = FaultPlan(drops=MessageDrops(probability=0.9, seed=1))
        metrics = MetricsRegistry()
        link = FaultyLink(plan, cluster.network, metrics=metrics)
        link.begin_epoch(1)
        outcome = link.transfer(1000.0, key=("flush", 0, 0))
        assert outcome.attempts >= 1
        assert outcome.nbytes_sent == pytest.approx(1000.0 * outcome.attempts)
        base = cluster.network.transfer_time(1000.0)
        drops = outcome.attempts - 1
        assert outcome.seconds == pytest.approx(
            base + plan.retry.penalty_s(drops)
        )
        # Memoized: same key, same outcome object semantics.
        again = link.transfer(1000.0, key=("flush", 0, 0))
        assert again == outcome
        snapshot = metrics.snapshot()
        assert snapshot.get("messages_total") >= 1


# --------------------------------------------------------------------- #
# Options / Observability consolidation                                  #
# --------------------------------------------------------------------- #


class TestLoopOptions:
    def test_merged_with_applies_only_explicit(self):
        opts = LoopOptions(ordered=True, pipeline_depth=3)
        merged = opts.merged_with(ordered=UNSET, validate=True)
        assert merged.ordered is True
        assert merged.pipeline_depth == 3
        assert merged.validate is True

    def test_legacy_kwargs_override_options(self, mf_data, cluster):
        program = _program(
            mf_data, cluster,
            options=LoopOptions(pipeline_depth=2), pipeline_depth=4,
        )
        assert program.train_loop.executor.pipeline_depth == 4

    def test_options_equivalent_to_legacy(self, mf_data, cluster):
        legacy = _program(mf_data, cluster, pipeline_depth=2)
        bundled = _program(mf_data, cluster,
                           options=LoopOptions(pipeline_depth=2))
        assert (
            legacy.train_loop.executor.pipeline_depth
            == bundled.train_loop.executor.pipeline_depth
            == 2
        )
        h1 = legacy.run(2)
        h2 = bundled.run(2)
        assert [r.loss for r in h1.records] == [r.loss for r in h2.records]
        assert [r.time_s for r in h1.records] == [r.time_s for r in h2.records]

    def test_observability_resolution(self):
        tracer, metrics = Tracer(), MetricsRegistry()
        obs = Observability(tracer=tracer, metrics=metrics)
        # Bundle alone.
        r = Observability.resolve(obs=obs)
        assert r.tracer is tracer and r.metrics is metrics
        # Explicit component wins over bundle.
        other = Tracer()
        r = Observability.resolve(obs=obs, tracer=other)
        assert r.tracer is other and r.metrics is metrics
        # Default fills the gaps.
        r = Observability.resolve(default=obs)
        assert r.tracer is tracer
        # Nothing: the disabled singletons.
        r = Observability.resolve()
        assert not r.enabled_any

    def test_context_obs_kwarg(self, cluster):
        obs = Observability.enabled()
        ctx = OrionContext(cluster=cluster, obs=obs)
        assert ctx.tracer is obs.tracer
        assert ctx.metrics is obs.metrics


# --------------------------------------------------------------------- #
# Orion executor: determinism, recovery, accounting                      #
# --------------------------------------------------------------------- #


class TestOrionFaults:
    def test_no_fault_options_bit_identical(self, mf_data, cluster):
        plain = _program(mf_data, cluster)
        opted = _program(mf_data, cluster, options=LoopOptions())
        h1, h2 = plain.run(3), opted.run(3)
        assert [r.time_s for r in h1.records] == [r.time_s for r in h2.records]
        assert _states_equal(_final_state(plain), _final_state(opted))

    def test_fault_run_is_deterministic(self, mf_data, cluster):
        def run():
            plan = FaultPlan(
                crashes=(WorkerCrash(worker=1, epoch=2, frac=0.4),),
                drops=MessageDrops(probability=0.05, seed=3),
            )
            program = _program(mf_data, cluster,
                               options=LoopOptions(faults=plan))
            history = program.run(4)
            return history, _final_state(program)

        h1, s1 = run()
        h2, s2 = run()
        assert [r.time_s for r in h1.records] == [r.time_s for r in h2.records]
        assert _states_equal(s1, s2)

    def test_crash_recovery_matches_fault_free(self, mf_data, cluster,
                                               tmp_path):
        clean = _program(mf_data, cluster)
        clean_history = clean.run(5)

        plan = FaultPlan(crashes=(WorkerCrash(worker=0, epoch=4, frac=0.5),))
        ckpt = CheckpointConfig(directory=str(tmp_path), every_n_epochs=2)
        program = _program(mf_data, cluster,
                           options=LoopOptions(faults=plan, checkpoint=ckpt))
        history = program.run(5)

        # Same final parameters, same loss curve values, more virtual time.
        assert _states_equal(_final_state(clean), _final_state(program))
        assert history.final_loss == pytest.approx(clean_history.final_loss)
        assert history.total_time_s > clean_history.total_time_s
        assert history.meta["recoveries"] == 1
        # The crash at epoch 4 replayed from the epoch-2 checkpoint.
        assert latest_complete_tag(str(tmp_path)) is not None

    def test_crash_before_first_checkpoint(self, mf_data, cluster):
        clean = _program(mf_data, cluster)
        clean.run(3)

        plan = FaultPlan(crashes=(WorkerCrash(worker=1, epoch=1, frac=0.2),))
        program = _program(mf_data, cluster,
                           options=LoopOptions(faults=plan))
        history = program.run(3)
        assert _states_equal(_final_state(clean), _final_state(program))
        assert history.meta["recoveries"] == 1

    def test_drops_cost_time_not_data(self, mf_data, cluster):
        clean = _program(mf_data, cluster)
        clean_history = clean.run(3)

        plan = FaultPlan(drops=MessageDrops(probability=0.2, seed=8))
        program = _program(mf_data, cluster,
                           options=LoopOptions(faults=plan))
        history = program.run(3)
        assert _states_equal(_final_state(clean), _final_state(program))
        assert history.total_time_s > clean_history.total_time_s
        # Resends inflate traffic.
        dropped_bytes = sum(r.bytes_sent for r in history.records)
        clean_bytes = sum(r.bytes_sent for r in clean_history.records)
        assert dropped_bytes > clean_bytes

    def test_drops_ordered_schedule(self, mf_data, cluster):
        clean = _program(mf_data, cluster, ordered=True)
        clean_history = clean.run(2)
        plan = FaultPlan(drops=MessageDrops(probability=0.3, seed=2))
        program = _program(mf_data, cluster, ordered=True,
                           options=LoopOptions(faults=plan))
        history = program.run(2)
        assert _states_equal(_final_state(clean), _final_state(program))
        assert history.total_time_s > clean_history.total_time_s

    def test_straggler_inflates_epoch(self, mf_data, cluster):
        clean = _program(mf_data, cluster)
        clean_history = clean.run(3)

        plan = FaultPlan(
            stragglers=(Straggler(worker=0, slowdown=4.0, epoch=2),)
        )
        program = _program(mf_data, cluster,
                           options=LoopOptions(faults=plan))
        history = program.run(3)
        assert _states_equal(_final_state(clean), _final_state(program))
        # Only epoch 2 slows down.
        assert history.records[0].epoch_time_s == pytest.approx(
            clean_history.records[0].epoch_time_s
        )
        assert (
            history.records[1].epoch_time_s
            > clean_history.records[1].epoch_time_s
        )

    def test_fault_spans_and_metrics(self, mf_data, cluster, tmp_path):
        obs = Observability.enabled()
        plan = FaultPlan(crashes=(WorkerCrash(worker=0, epoch=2, frac=0.5),))
        ckpt = CheckpointConfig(directory=str(tmp_path), every_n_epochs=1)
        program = _program(
            mf_data, cluster,
            options=LoopOptions(faults=plan, checkpoint=ckpt), obs=obs,
        )
        program.run(3)
        cats = {span.cat for span in obs.tracer.spans}
        assert "fault" in cats
        assert "recovery" in cats
        assert "checkpoint" in cats
        snapshot = obs.metrics.snapshot()
        assert snapshot["worker_crashes_total"] == 1
        assert snapshot["recoveries_total"] == 1
        assert snapshot["checkpoints_total"] >= 1


# --------------------------------------------------------------------- #
# Checkpoint manifests                                                   #
# --------------------------------------------------------------------- #


class TestManifests:
    def _array(self, ctx, name):
        array = ctx.randn(4, 4, name=name)
        ctx.materialize(array)
        return array

    def test_latest_complete_skips_partial(self, cluster, tmp_path):
        ctx = OrionContext(cluster=cluster, seed=1)
        array = self._array(ctx, "A")
        checkpoint_arrays([array], str(tmp_path), "epoch2",
                          meta={"epoch": 2})
        checkpoint_arrays([array], str(tmp_path), "epoch4",
                          meta={"epoch": 4})
        # Corrupt epoch4: manifest present but an array file missing.
        import json
        import os

        with open(manifest_path(str(tmp_path), "epoch4")) as handle:
            manifest = json.load(handle)
        victim = next(iter(manifest["files"].values()))
        os.remove(os.path.join(str(tmp_path), victim))
        assert latest_complete_tag(str(tmp_path)) == "epoch2"
        assert manifest_meta(str(tmp_path), "epoch2")["epoch"] == 2

    def test_latest_complete_orders_by_epoch(self, cluster, tmp_path):
        ctx = OrionContext(cluster=cluster, seed=1)
        array = self._array(ctx, "A")
        # Written out of lexicographic order: epoch10 > epoch9 numerically.
        checkpoint_arrays([array], str(tmp_path), "epoch9",
                          meta={"epoch": 9})
        checkpoint_arrays([array], str(tmp_path), "epoch10",
                          meta={"epoch": 10})
        assert latest_complete_tag(str(tmp_path)) == "epoch10"


# --------------------------------------------------------------------- #
# Baselines                                                              #
# --------------------------------------------------------------------- #


class TestBosenFaults:
    def _app(self, mf_data):
        from repro.apps import SGDMFApp

        return SGDMFApp(mf_data, MFHyper(rank=4, step_size=0.05))

    def test_no_fault_bit_identical(self, mf_data, cluster):
        app = self._app(mf_data)
        h1 = run_bosen(app, cluster, epochs=3, seed=2)
        app2 = self._app(mf_data)
        h2 = run_bosen(app2, cluster, epochs=3, seed=2, faults=None)
        assert [r.loss for r in h1.records] == [r.loss for r in h2.records]
        assert [r.time_s for r in h1.records] == [r.time_s for r in h2.records]

    def test_crash_recovery_matches_fault_free(self, mf_data, cluster):
        app = self._app(mf_data)
        clean = run_bosen(app, cluster, epochs=4, seed=2)

        plan = FaultPlan(crashes=(WorkerCrash(worker=1, epoch=3, frac=0.5),))
        app2 = self._app(mf_data)
        faulted = run_bosen(app2, cluster, epochs=4, seed=2, faults=plan,
                            ckpt_every=2)
        assert faulted.meta["recoveries"] == 1
        assert faulted.final_loss == pytest.approx(clean.final_loss)
        for name, value in clean.meta["state"].items():
            assert np.array_equal(value, faulted.meta["state"][name])
        assert faulted.total_time_s > clean.total_time_s

    def test_drops_and_stragglers_cost_time(self, mf_data, cluster):
        app = self._app(mf_data)
        clean = run_bosen(app, cluster, epochs=3, seed=2)
        plan = FaultPlan(
            drops=MessageDrops(probability=0.3, seed=4),
            stragglers=(Straggler(worker=0, slowdown=3.0, epoch=1),),
        )
        app2 = self._app(mf_data)
        faulted = run_bosen(app2, cluster, epochs=3, seed=2, faults=plan)
        assert faulted.final_loss == pytest.approx(clean.final_loss)
        assert faulted.total_time_s > clean.total_time_s


class TestCLI:
    def test_faults_smoke(self, mf_data, tmp_path, capsys):
        import io

        from repro.cli import main

        out = io.StringIO()
        code = main(
            [
                "mf", "--engine", "orion", "--epochs", "4",
                "--scale", "0.2",
                "--faults", "seed=5,crashes=1",
                "--ckpt-every", "2", "--ckpt-dir", str(tmp_path),
            ],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert "crash recoveries: 1" in text

    def test_faults_bosen_smoke(self, tmp_path):
        import io

        from repro.cli import main

        out = io.StringIO()
        code = main(
            [
                "mf", "--engine", "bosen", "--epochs", "3",
                "--scale", "0.2", "--faults", "seed=1,drops=0.05",
            ],
            out=out,
        )
        assert code == 0


# --------------------------------------------------------------------- #
# Chaos property                                                         #
# --------------------------------------------------------------------- #


class TestChaos:
    @settings(max_examples=8, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        crashes=st.integers(min_value=0, max_value=2),
        drop_p=st.floats(min_value=0.0, max_value=0.3),
        stragglers=st.integers(min_value=0, max_value=1),
    )
    def test_random_faults_never_corrupt_state(self, seed, crashes, drop_p,
                                               stragglers):
        mf_data = netflix_like(num_rows=16, num_cols=12, num_ratings=160,
                               seed=3)
        cluster = ClusterSpec(num_machines=2, workers_per_machine=2)
        epochs = 3

        clean = _program(mf_data, cluster)
        clean_history = clean.run(epochs)

        plan = FaultPlan.random(
            seed=seed, epochs=epochs, num_workers=cluster.num_workers,
            crashes=crashes, stragglers=stragglers,
            drop_probability=drop_p,
        )
        program = _program(mf_data, cluster,
                           options=LoopOptions(faults=plan))
        history = program.run(epochs)

        # Faults cost virtual time, never data.
        assert _states_equal(_final_state(clean), _final_state(program))
        assert history.final_loss == pytest.approx(clean_history.final_loss)
        assert history.total_time_s >= clean_history.total_time_s
        assert math.isfinite(history.total_time_s)
