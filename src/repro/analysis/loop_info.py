"""Static extraction of loop information from a loop-body function.

This is the first stage of the paper's Fig. 6 pipeline: given the loop body
and the iteration-space DistArray, recover

* the loop index vector and its per-dimension aliases,
* every static DistArray reference with its subscript pattern,
* writes routed to DistArray Buffers (exempt from dependence analysis),
* accumulator updates,
* inherited driver-program variables (captured and, on a real cluster,
  broadcast read-only to workers).
"""

from __future__ import annotations

import ast
import inspect
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.analysis import ast_utils
from repro.analysis.depvec import ArrayRef
from repro.analysis.lint import Diagnostic, SourceLocation, location_of
from repro.analysis.subscript import Axis, SubscriptKind, index
from repro.core.accumulator import Accumulator
from repro.core.buffers import DistArrayBuffer
from repro.core.distarray import DistArray
from repro.errors import AnalysisError

__all__ = ["LoopInfo", "analyze_loop_body"]


@dataclass
class LoopInfo:
    """Everything static analysis learned about one parallel for-loop."""

    iteration_space: DistArray
    num_iter_dims: int
    index_param: str
    value_param: Optional[str]
    ordered: bool
    #: Static references per DistArray name (dependence-relevant ones).
    refs: Dict[str, List[ArrayRef]] = field(default_factory=dict)
    #: Name -> DistArray for every array referenced in the body.
    arrays: Dict[str, DistArray] = field(default_factory=dict)
    #: Name -> DistArrayBuffer for every buffer written in the body.
    buffers: Dict[str, DistArrayBuffer] = field(default_factory=dict)
    #: Buffered writes (exempt from dependence analysis), per buffer name.
    buffer_refs: Dict[str, List[ArrayRef]] = field(default_factory=dict)
    #: Names of accumulators updated by the body.
    accumulators: Set[str] = field(default_factory=set)
    #: Name -> Accumulator object for accumulators updated by the body.
    accumulator_refs: Dict[str, Accumulator] = field(default_factory=dict)
    #: Inherited driver variables (name -> current value at analysis time).
    inherited: Dict[str, Any] = field(default_factory=dict)
    #: The body's FunctionDef, kept for prefetch-function synthesis.
    tree: Optional[ast.FunctionDef] = None
    #: Loop-index aliases discovered in the body (for prefetch synthesis).
    index_bindings: Dict[str, ast_utils.IndexBinding] = field(default_factory=dict)
    #: The file the body was defined in, for diagnostic locations.
    source_file: Optional[str] = None
    #: Lint warnings collected during analysis (W-codes; hard failures
    #: raise instead, carrying their E-code diagnostic on the exception).
    diagnostics: List[Diagnostic] = field(default_factory=list)

    def arrays_with_unknown_subscripts(self) -> Set[str]:
        """Array names read or written through a data-dependent subscript."""
        out = set()
        for name, refs in self.refs.items():
            for ref in refs:
                if any(a.kind is SubscriptKind.UNKNOWN for a in ref.axes):
                    out.add(name)
        return out

    def written_arrays(self) -> Set[str]:
        """Array names with at least one non-buffered write."""
        return {
            name
            for name, refs in self.refs.items()
            if any(ref.is_write for ref in refs)
        }

    def array_access_dims(self, name: str) -> Dict[int, int]:
        """Map iteration-space dim -> array dim for single-index subscripts.

        Used by the placement heuristic: if array ``name`` is always indexed
        on array dimension ``a`` by iteration dimension ``i``, partitioning
        the iteration space on ``i`` lets the array be range-partitioned on
        ``a`` and served locally.
        """
        mapping: Dict[int, int] = {}
        for ref in self.refs.get(name, []):
            for array_dim, axis in enumerate(ref.axes):
                if axis.kind is SubscriptKind.INDEX:
                    mapping.setdefault(axis.dim_idx, array_dim)
        return mapping

    def pinned_array_dim(self, name: str, iter_dim: int) -> Optional[int]:
        """The array dimension consistently indexed by ``iter_dim``.

        Returns the array dimension ``a`` such that *every* static reference
        to the array subscripts position ``a`` with ``key[iter_dim] ± c``,
        or ``None`` when some reference does not (then partitioning the
        array on ``a`` would not make all of the loop's accesses local).
        """
        pinned: Optional[int] = None
        for ref in self.refs.get(name, []):
            ref_dim: Optional[int] = None
            for array_dim, axis in enumerate(ref.axes):
                if axis.kind is SubscriptKind.INDEX and axis.dim_idx == iter_dim:
                    ref_dim = array_dim
                    break
            if ref_dim is None:
                return None
            if pinned is None:
                pinned = ref_dim
            elif pinned != ref_dim:
                return None
        return pinned


class _BodyVisitor(ast.NodeVisitor):
    """AST walk collecting references, bindings and inherited names."""

    def __init__(
        self,
        env: Dict[str, Any],
        index_param: str,
        value_param: Optional[str],
        source_file: Optional[str] = None,
    ) -> None:
        self.env = env
        self.index_param = index_param
        self.value_param = value_param
        self.source_file = source_file
        self.bindings: Dict[str, ast_utils.IndexBinding] = {
            index_param: ast_utils.IndexBinding(dim_idx=None)
        }
        self._assign_counts: Dict[str, int] = {}
        self.array_refs: List[
            Tuple[str, Tuple[ast.expr, ...], bool, ast.Subscript]
        ] = []
        self.buffer_writes: List[
            Tuple[str, Tuple[ast.expr, ...], ast.Subscript]
        ] = []
        self.accumulators: Set[str] = set()
        self.loaded_names: Set[str] = set()
        self.local_names: Set[str] = set()
        self.diagnostics: List[Diagnostic] = []
        if value_param:
            self.local_names.add(value_param)
        self.local_names.add(index_param)

    def _warn(
        self, code: str, message: str, node: ast.AST, hint: Optional[str] = None
    ) -> None:
        diag = Diagnostic(
            code=code,
            message=message,
            location=location_of(node, self.source_file),
            hint=hint,
        )
        if diag not in self.diagnostics:
            self.diagnostics.append(diag)

    # -- bindings ------------------------------------------------------- #

    def _record_binding(self, name: str, binding: ast_utils.IndexBinding) -> None:
        count = self._assign_counts.get(name, 0)
        self._assign_counts[name] = count + 1
        if count == 0:
            self.bindings[name] = binding
        else:
            # Reassigned: no longer a reliable loop-index alias.
            self.bindings.pop(name, None)

    def _invalidate(self, name: str) -> None:
        self._assign_counts[name] = self._assign_counts.get(name, 0) + 1
        self.bindings.pop(name, None)

    def visit_Assign(self, node: ast.Assign) -> None:
        # `i, j = key` gives one binding per position.
        if (
            len(node.targets) == 1
            and isinstance(node.targets[0], ast.Tuple)
            and isinstance(node.value, ast.Name)
            and node.value.id in self.bindings
            and self.bindings[node.value.id].is_whole_key
        ):
            for position, element in enumerate(node.targets[0].elts):
                if isinstance(element, ast.Name):
                    self._record_binding(
                        element.id,
                        ast_utils.IndexBinding(
                            dim_idx=position,
                            location=location_of(element, self.source_file),
                        ),
                    )
                    self.local_names.add(element.id)
            self.generic_visit(node.value)
            return
        # `u = key[0] + 1` style single-name bindings.
        for target in node.targets:
            if isinstance(target, ast.Name):
                self.local_names.add(target.id)
                indexed = ast_utils._index_expr(node.value, self.bindings)
                if indexed is not None:
                    self._record_binding(
                        target.id,
                        ast_utils.IndexBinding(
                            dim_idx=indexed[0],
                            const=indexed[1],
                            location=location_of(target, self.source_file),
                        ),
                    )
                else:
                    self._invalidate(target.id)
            elif isinstance(target, ast.Tuple):
                for element in target.elts:
                    if isinstance(element, ast.Name):
                        self.local_names.add(element.id)
                        self._invalidate(element.id)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if isinstance(node.target, ast.Name):
            name = node.target.id
            # Augmenting a name that is not (yet) a body local but resolves
            # in the inherited environment mutates driver state the runtime
            # never ships back — per-iteration effects are silently lost.
            if (
                name not in self.local_names
                and name in self.env
                and self._is_inherited_data(self.env[name])
            ):
                self._warn(
                    "W301",
                    f"augmented assignment to inherited variable {name!r}; "
                    "workers mutate a private copy that is never merged",
                    node,
                    hint="use an Accumulator or a DistArray for cross-"
                    "iteration state",
                )
            self.local_names.add(name)
            self._invalidate(name)
        # An augmented subscript write reads and writes the element; the
        # Store-context Subscript is recorded by visit_Subscript, and we add
        # the implied read here.
        if isinstance(node.target, ast.Subscript):
            self._handle_subscript(node.target, is_write=False)
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        if isinstance(node.target, ast.Name):
            self.local_names.add(node.target.id)
            self._invalidate(node.target.id)
        self.generic_visit(node)

    # -- references ----------------------------------------------------- #

    @staticmethod
    def _subscript_elements(node: ast.Subscript) -> Tuple[ast.expr, ...]:
        if isinstance(node.slice, ast.Tuple):
            return tuple(node.slice.elts)
        return (node.slice,)

    @staticmethod
    def _is_inherited_data(value: Any) -> bool:
        """Whether an env value counts as inherited driver *data* (the same
        filter ``analyze_loop_body`` applies when building ``inherited``)."""
        if isinstance(value, (DistArray, DistArrayBuffer, Accumulator)):
            return False
        if inspect.ismodule(value):
            return False
        if callable(value) and getattr(value, "__module__", "").startswith(
            ("numpy", "math", "builtins")
        ):
            return False
        return True

    def _handle_subscript(self, node: ast.Subscript, is_write: bool) -> None:
        if not isinstance(node.value, ast.Name):
            return
        name = node.value.id
        if name in self.local_names:
            return  # body-local containers are private per iteration
        bound = self.env.get(name)
        elements = self._subscript_elements(node)
        if isinstance(bound, DistArray):
            self.array_refs.append((name, elements, is_write, node))
        elif isinstance(bound, DistArrayBuffer) and is_write:
            self.buffer_writes.append((name, elements, node))
        elif is_write and name in self.env and self._is_inherited_data(bound):
            # Storing into an inherited plain container (list/dict/ndarray):
            # each worker mutates its own broadcast copy.
            self._warn(
                "W301",
                f"subscript store into inherited variable {name!r}; workers "
                "mutate a private copy that is never merged",
                node,
                hint="use a DistArray (or DistArrayBuffer) for shared state",
            )

    def visit_Subscript(self, node: ast.Subscript) -> None:
        self._handle_subscript(node, is_write=isinstance(node.ctx, ast.Store))
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        # Accumulator updates: `err.add(value)`.
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "add"
            and isinstance(node.func.value, ast.Name)
            and isinstance(self.env.get(node.func.value.id), Accumulator)
        ):
            self.accumulators.add(node.func.value.id)
        self._check_global_randomness(node)
        self.generic_visit(node)

    def _check_global_randomness(self, node: ast.Call) -> None:
        """W401: a draw through module-level RNG state (``random.random()``
        or ``np.random.uniform()``) is neither seeded per worker nor
        replayable — results differ run to run and across schedules.
        Calls on an explicit Generator object (``rng.integers(...)``) are
        fine and do not fire."""
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        base = func.value
        # `random.<fn>(...)` with `random` resolving to the stdlib module.
        if isinstance(base, ast.Name) and base.id not in self.local_names:
            value = self.env.get(base.id)
            if inspect.ismodule(value) and getattr(value, "__name__", "") in (
                "random",
                "numpy.random",
            ):
                self._warn(
                    "W401",
                    f"call to {base.id}.{func.attr}() draws from module-level "
                    "RNG state shared across workers",
                    node,
                    hint="create a seeded np.random.default_rng(...) in the "
                    "driver and call methods on it",
                )
            return
        # `np.random.<fn>(...)` attribute chains rooted at the numpy module.
        if (
            isinstance(base, ast.Attribute)
            and base.attr == "random"
            and isinstance(base.value, ast.Name)
            and base.value.id not in self.local_names
        ):
            value = self.env.get(base.value.id)
            if inspect.ismodule(value) and getattr(value, "__name__", "") == "numpy":
                self._warn(
                    "W401",
                    f"call to {base.value.id}.random.{func.attr}() draws from "
                    "numpy's global RNG state shared across workers",
                    node,
                    hint="create a seeded np.random.default_rng(...) in the "
                    "driver and call methods on it",
                )

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            self.loaded_names.add(node.id)
        self.generic_visit(node)


def _axes_for_ref(
    array: DistArray,
    name: str,
    elements: Tuple[ast.expr, ...],
    bindings: Dict[str, ast_utils.IndexBinding],
    num_iter_dims: int,
    location: Optional[SourceLocation] = None,
) -> Tuple[Axis, ...]:
    """Turn subscript AST elements into per-array-dimension axes."""
    at = f" at {location.describe()}" if location is not None else ""
    # Whole-key subscript, e.g. `zs[key]`: one index axis per iteration dim.
    if len(elements) == 1 and isinstance(elements[0], ast.Name):
        binding = bindings.get(elements[0].id)
        if binding is not None and binding.is_whole_key:
            if array.ndim != num_iter_dims:
                message = (
                    f"{name}[<key>] used but array has {array.ndim} dims while "
                    f"the iteration space has {num_iter_dims}"
                )
                raise AnalysisError(
                    message + at,
                    diagnostic=Diagnostic(
                        code="E102", message=message, location=location
                    ),
                )
            return tuple(index(d, 0) for d in range(num_iter_dims))
    axes = tuple(ast_utils.parse_axis(element, bindings) for element in elements)
    if len(axes) != array.ndim:
        message = (
            f"{name} subscript has {len(axes)} positions but the array has "
            f"{array.ndim} dimensions"
        )
        raise AnalysisError(
            message + at,
            diagnostic=Diagnostic(code="E102", message=message, location=location),
        )
    return axes


def analyze_loop_body(
    body: Callable[..., Any],
    iteration_space: DistArray,
    ordered: bool = False,
) -> LoopInfo:
    """Statically analyze a loop-body function (paper Fig. 6, stage 1).

    Args:
        body: a plain function ``body(key, value)`` (value optional) whose
            free variables may include DistArrays, DistArrayBuffers,
            Accumulators and ordinary driver variables.
        iteration_space: the materialized DistArray being iterated.
        ordered: whether the application requires lexicographic iteration
            order (the paper's ``ordered`` argument; default relaxed).
    """
    if not iteration_space.is_materialized:
        message = (
            "the iteration-space DistArray must be materialized before a "
            "parallel for-loop over it is compiled (JIT-style, paper Sec. 4.1)"
        )
        raise AnalysisError(
            message, diagnostic=Diagnostic(code="E103", message=message)
        )
    tree, source_file = ast_utils.get_function_source(body)
    params = [arg.arg for arg in tree.args.args]
    if not params:
        message = "loop body must take (key, value) or (key,)"
        raise AnalysisError(
            message,
            diagnostic=Diagnostic(
                code="E103",
                message=message,
                location=location_of(tree, source_file),
            ),
        )
    index_param = params[0]
    value_param = params[1] if len(params) > 1 else None
    env = ast_utils.resolve_free_variables(body)

    visitor = _BodyVisitor(env, index_param, value_param, source_file)
    visitor.visit(tree)

    num_iter_dims = iteration_space.ndim
    info = LoopInfo(
        iteration_space=iteration_space,
        num_iter_dims=num_iter_dims,
        index_param=index_param,
        value_param=value_param,
        ordered=ordered,
        tree=tree,
        index_bindings=dict(visitor.bindings),
        source_file=source_file,
    )
    info.diagnostics.extend(visitor.diagnostics)
    info.accumulators = set(visitor.accumulators)
    info.accumulator_refs = {
        name: env[name] for name in visitor.accumulators if name in env
    }

    for name, elements, is_write, node in visitor.array_refs:
        array = env[name]
        location = location_of(node, source_file)
        axes = _axes_for_ref(
            array, name, elements, visitor.bindings, num_iter_dims, location
        )
        info.arrays[name] = array
        info.refs.setdefault(name, []).append(
            ArrayRef(
                array_name=name, axes=axes, is_write=is_write, location=location
            )
        )
    for name, elements, node in visitor.buffer_writes:
        buffer = env[name]
        location = location_of(node, source_file)
        info.buffers[name] = buffer
        target_ndim = buffer.target.ndim
        axes = tuple(
            ast_utils.parse_axis(element, visitor.bindings) for element in elements
        )
        if len(axes) != target_ndim:
            message = (
                f"buffer {name} subscript arity {len(axes)} does not match "
                f"target array dimensionality {target_ndim}"
            )
            at = f" at {location.describe()}" if location is not None else ""
            raise AnalysisError(
                message + at,
                diagnostic=Diagnostic(
                    code="E102", message=message, location=location
                ),
            )
        info.buffer_refs.setdefault(name, []).append(
            ArrayRef(
                array_name=name,
                axes=axes,
                is_write=True,
                buffered=True,
                location=location,
            )
        )

    # W201: data-dependent subscripts force the paper's conservative
    # any-value treatment; worth surfacing even though the loop still
    # parallelizes (often as DATA_PARALLEL or via server placement).
    for name, refs in info.refs.items():
        for ref in refs:
            if any(a.kind is SubscriptKind.UNKNOWN for a in ref.axes):
                diag = Diagnostic(
                    code="W201",
                    message=f"data-dependent subscript on {name!r}: analysis "
                    "assumes the access may touch any element",
                    location=ref.location,
                    hint="index with the loop key (key[d] ± const) when "
                    "possible to enable tighter dependence vectors",
                )
                if diag not in info.diagnostics:
                    info.diagnostics.append(diag)

    # W202: two body names bound to the same DistArray object are analyzed
    # as independent arrays, hiding any dependence between their accesses.
    by_identity: Dict[int, List[str]] = {}
    for name, array in info.arrays.items():
        by_identity.setdefault(id(array), []).append(name)
    for names in by_identity.values():
        if len(names) > 1:
            alias_list = ", ".join(sorted(names))
            info.diagnostics.append(
                Diagnostic(
                    code="W202",
                    message=f"names {alias_list} are bound to the same "
                    "DistArray; dependence analysis treats them as distinct "
                    "arrays and may miss conflicts between them",
                    location=location_of(tree, source_file),
                    hint="reference the array through a single name inside "
                    "the loop body",
                )
            )

    # Inherited driver variables: loaded free names that resolve in the
    # environment and are not arrays/buffers/accumulators or locals.
    special = set(info.arrays) | set(info.buffers) | info.accumulators
    for name in sorted(visitor.loaded_names):
        if name in visitor.local_names or name in special:
            continue
        if name not in env:
            continue  # builtins and genuinely unresolved names
        value = env[name]
        if isinstance(value, (DistArray, DistArrayBuffer, Accumulator)):
            # Reachable but only via non-subscript use (e.g. accumulator obj).
            continue
        if inspect.ismodule(value):
            continue  # imported modules (np, math) are code, not data
        if callable(value) and getattr(value, "__module__", "").startswith(
            ("numpy", "math", "builtins")
        ):
            continue  # library helpers are not data to broadcast
        info.inherited[name] = value
    return info
