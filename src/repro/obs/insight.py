"""Trace consumption: time attribution, bottlenecks, prediction error.

The tracer (:mod:`repro.obs.tracer`) records *where* the runtime put every
piece of work; this module answers *why a run took as long as it did*:

* :func:`attribute_epochs` re-tiles each traced epoch into an exact
  per-worker partition of ``[epoch start, epoch end]`` — ``compute`` /
  ``prefetch`` / ``flush`` / ``overhead`` busy segments from the block
  phase spans, plus ``barrier`` and ``wait`` idle segments for the gaps.
  The tiling is *bit-exact*: consecutive segments share their boundary
  float, so the attributed time provably sums to the epoch makespan
  (:meth:`EpochAttribution.verify_exact` checks the invariant).
* :meth:`EpochAttribution.what_if` produces bottleneck estimates: the
  epoch time with stragglers balanced away, with communication free, and
  with perfect prefetch overlap.
* :func:`paired_prediction` lines up a virtual-clock process with its
  ``@wall`` twin (the multiprocess backend) and reports the cost model's
  per-epoch prediction error.
* :func:`insight_report` renders all of the above as the plain-text
  report behind the CLI's ``--report`` flag.

Everything here is a pure consumer: it never mutates the tracer and adds
zero cost to runs that do not call it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs.tracer import Span, Tracer, wall_process

__all__ = [
    "BUSY_CATEGORIES",
    "IDLE_CATEGORIES",
    "Segment",
    "WorkerAttribution",
    "EpochAttribution",
    "attribute_epochs",
    "prediction_error",
    "paired_prediction",
    "insight_report",
]

#: Segment categories charged as busy worker time (the executor's block
#: phase taxonomy, in the order phases run inside a block).
BUSY_CATEGORIES: Tuple[str, ...] = ("prefetch", "compute", "flush", "overhead")

#: Idle categories tiling the rest of the epoch: ``barrier`` while the
#: schedule holds every worker, ``wait`` for rotation/flush/dispatch gaps.
IDLE_CATEGORIES: Tuple[str, ...] = ("barrier", "wait")

_PHASE_CATS = frozenset(BUSY_CATEGORIES)


@dataclass(frozen=True)
class Segment:
    """One attributed interval of a worker's epoch timeline."""

    t_start: float
    t_end: float
    category: str
    #: Owning block span name for busy segments (``None`` for idle time).
    block: Optional[str] = None
    #: Schedule step of the owning block, when the span recorded one.
    step: Optional[int] = None

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start


def _span_terms(segments: Sequence[Segment]) -> List[float]:
    """``t_end``/``-t_start`` terms whose exact sum telescopes.

    Feeding these to :func:`math.fsum` yields the *correctly rounded*
    value of the exact real sum; when the segments tile an interval the
    exact sum telescopes to ``t_end - t_start`` of the whole interval, so
    the fsum equals the float subtraction bit for bit.
    """
    terms: List[float] = []
    for segment in segments:
        terms.append(segment.t_end)
        terms.append(-segment.t_start)
    return terms


@dataclass
class WorkerAttribution:
    """One worker's exact segment tiling of an epoch."""

    track: str
    segments: List[Segment] = field(default_factory=list)
    #: The worker's block spans inside the epoch (critical-path input).
    blocks: List[Span] = field(default_factory=list)

    def attributed_seconds(self) -> float:
        """Total attributed time — bit-equal to the epoch makespan when
        the segments tile it (see :func:`_span_terms`)."""
        return math.fsum(_span_terms(self.segments))

    def seconds_by_category(self) -> Dict[str, float]:
        """Correctly rounded seconds per category."""
        grouped: Dict[str, List[float]] = {}
        for segment in self.segments:
            terms = grouped.setdefault(segment.category, [])
            terms.append(segment.t_end)
            terms.append(-segment.t_start)
        return {cat: math.fsum(terms) for cat, terms in grouped.items()}

    def busy_seconds(self) -> float:
        return math.fsum(
            _span_terms(
                [s for s in self.segments if s.category in _PHASE_CATS]
            )
        )


@dataclass
class EpochAttribution:
    """Exact per-worker time attribution of one traced epoch."""

    process: str
    epoch: Span
    workers: Dict[str, WorkerAttribution] = field(default_factory=dict)
    #: ``"virtual"`` for cost-model spans, ``"real"`` for ``@wall`` spans.
    clock: str = "virtual"

    @property
    def t_start(self) -> float:
        return self.epoch.t_start

    @property
    def t_end(self) -> float:
        return self.epoch.t_end

    @property
    def makespan(self) -> float:
        return self.epoch.t_end - self.epoch.t_start

    def totals(self) -> Dict[str, float]:
        """Seconds per category summed over workers (known cats first)."""
        ordered = list(BUSY_CATEGORIES) + list(IDLE_CATEGORIES)
        terms: Dict[str, List[float]] = {}
        for worker in self.workers.values():
            for segment in worker.segments:
                bucket = terms.setdefault(segment.category, [])
                bucket.append(segment.t_end)
                bucket.append(-segment.t_start)
        out: Dict[str, float] = {}
        for cat in ordered:
            if cat in terms:
                out[cat] = math.fsum(terms.pop(cat))
        for cat in sorted(terms):
            out[cat] = math.fsum(terms[cat])
        return out

    def verify_exact(self) -> List[str]:
        """Check the bit-exact tiling invariant; returns problem strings.

        Per worker: the first segment starts exactly at the epoch start,
        consecutive segments share their boundary float, the last segment
        ends exactly at the epoch end, no segment runs backwards — and
        therefore the fsum of attributed time equals the makespan bit for
        bit.  An empty list means the attribution is provably exact.
        """
        problems: List[str] = []
        makespan = self.makespan
        for track, worker in self.workers.items():
            segments = worker.segments
            if not segments:
                if makespan != 0.0:
                    problems.append(
                        f"{self.process}/{track}: no segments over a "
                        f"non-empty epoch"
                    )
                continue
            if segments[0].t_start != self.t_start:
                problems.append(
                    f"{self.process}/{track}: first segment starts at "
                    f"{segments[0].t_start!r}, epoch at {self.t_start!r}"
                )
            if segments[-1].t_end != self.t_end:
                problems.append(
                    f"{self.process}/{track}: last segment ends at "
                    f"{segments[-1].t_end!r}, epoch at {self.t_end!r}"
                )
            for prev, cur in zip(segments, segments[1:]):
                if prev.t_end != cur.t_start:
                    problems.append(
                        f"{self.process}/{track}: boundary mismatch "
                        f"{prev.t_end!r} -> {cur.t_start!r}"
                    )
            for segment in segments:
                if segment.t_end < segment.t_start:
                    problems.append(
                        f"{self.process}/{track}: negative segment "
                        f"{segment!r}"
                    )
            attributed = worker.attributed_seconds()
            if attributed != makespan:
                problems.append(
                    f"{self.process}/{track}: attributed {attributed!r} "
                    f"!= makespan {makespan!r}"
                )
        return problems

    def busy_by_worker(self) -> Dict[str, float]:
        """Busy seconds per worker track, correctly rounded.

        The adaptive tuner's load signal (:mod:`repro.tuning`): feeding
        these measured per-worker totals back through the schedule's
        timing model predicts the epoch makespan at other tilings."""
        return {
            track: worker.busy_seconds()
            for track, worker in self.workers.items()
        }

    def what_if(self) -> Dict[str, float]:
        """Bottleneck what-if estimates (lower-bound epoch times).

        * ``balanced`` — stragglers removed: total busy work spread
          evenly over the workers (ignores barriers, so a true bound);
        * ``comm_free`` — prefetch and flush transfer cost zero: the
          slowest worker's remaining compute + overhead;
        * ``perfect_prefetch`` — prefetch fully overlapped with compute,
          flush still paid.
        """
        if not self.workers:
            return {}
        busy: List[float] = []
        comm_free: List[float] = []
        no_prefetch: List[float] = []
        for worker in self.workers.values():
            by_cat = worker.seconds_by_category()
            total = worker.busy_seconds()
            busy.append(total)
            comm_free.append(
                total - by_cat.get("prefetch", 0.0) - by_cat.get("flush", 0.0)
            )
            no_prefetch.append(total - by_cat.get("prefetch", 0.0))
        return {
            "actual": self.makespan,
            "balanced": math.fsum(busy) / len(busy),
            "comm_free": max(comm_free),
            "perfect_prefetch": max(no_prefetch),
        }

    def critical_path(self) -> List[Tuple[int, str, str, float]]:
        """Per schedule step, the longest block: the makespan's skeleton.

        Returns ``(step, block name, worker track, seconds)`` rows sorted
        by step.  Blocks whose spans carry no ``step`` argument (older
        traces) are skipped.
        """
        slowest: Dict[int, Tuple[float, str, str]] = {}
        for track, worker in self.workers.items():
            for block in worker.blocks:
                if not block.args or "step" not in block.args:
                    continue
                step = int(block.args["step"])
                duration = block.duration
                best = slowest.get(step)
                if best is None or duration > best[0]:
                    slowest[step] = (duration, block.name, track)
        return [
            (step, name, track, duration)
            for step, (duration, name, track) in sorted(slowest.items())
        ]


def _gap_segments(
    t_start: float, t_end: float, barriers: Sequence[Span]
) -> List[Segment]:
    """Tile an idle gap, splitting it at barrier-span boundaries."""
    segments: List[Segment] = []
    cursor = t_start
    for barrier in barriers:
        b_start = max(barrier.t_start, cursor)
        b_end = min(barrier.t_end, t_end)
        if b_end <= b_start:
            continue
        if b_start > cursor:
            segments.append(Segment(cursor, b_start, "wait"))
        segments.append(Segment(b_start, b_end, "barrier"))
        cursor = b_end
    if cursor < t_end:
        segments.append(Segment(cursor, t_end, "wait"))
    return segments


def _block_segments(
    block: Span,
    phases: Sequence[Span],
    cursor: float,
    t_limit: float,
) -> Tuple[List[Segment], float]:
    """Tile one block's interval, walking its phase spans in order.

    ``cursor`` is where the worker's previous segment ended; the block's
    recorded boundaries are clamped onto it so the tiling stays exact even
    when the emitter's float associativity left ulp-sized seams between
    spans.  Returns the segments and the new cursor (the block's clamped
    end).
    """
    step = None
    if block.args and "step" in block.args:
        step = int(block.args["step"])
    b_end = min(max(block.t_end, cursor), t_limit)
    segments: List[Segment] = []
    inner = cursor
    for phase in sorted(phases, key=lambda s: s.t_start):
        p_end = min(max(phase.t_end, inner), b_end)
        if p_end <= inner:
            continue
        segments.append(
            Segment(inner, p_end, phase.cat, block=block.name, step=step)
        )
        inner = p_end
    if inner < b_end:
        # No phase breakdown (a real-clock block, or an aborted one): the
        # whole block is compute; with phases, the residual is the ulp
        # seam the emitter rounded away — charge it as overhead.
        category = "overhead" if segments else "compute"
        segments.append(
            Segment(inner, b_end, category, block=block.name, step=step)
        )
    return segments, b_end


def attribute_epochs(
    tracer: Tracer, process: str
) -> List[EpochAttribution]:
    """Exact per-worker time attribution for every epoch of one process.

    Walks the process's ``epoch`` spans on the ``epochs`` track; inside
    each, every ``worker*`` track is tiled into busy segments (from the
    block phase spans) and idle segments (``barrier`` where a barrier span
    covers the gap, ``wait`` otherwise).  The tiling is constructed to be
    bit-exact — see :meth:`EpochAttribution.verify_exact`.
    """
    epochs = tracer.epoch_spans(process)
    if not epochs:
        return []
    barriers = sorted(
        tracer.filter(cat="barrier", process=process),
        key=lambda s: s.t_start,
    )
    worker_tracks = [
        track for track in tracer.tracks(process)
        if track.startswith("worker")
    ]
    blocks_by_track: Dict[str, List[Span]] = {t: [] for t in worker_tracks}
    phases_by_track: Dict[str, List[Span]] = {t: [] for t in worker_tracks}
    for span in tracer.spans:
        if span.process != process or span.track not in blocks_by_track:
            continue
        if span.cat == "block":
            blocks_by_track[span.track].append(span)
        elif span.cat in _PHASE_CATS and span.depth > 0:
            phases_by_track[span.track].append(span)
    clock = "real" if process.endswith("@wall") else "virtual"

    out: List[EpochAttribution] = []
    for epoch in epochs:
        attribution = EpochAttribution(process, epoch, clock=clock)
        in_epoch = [
            b for b in barriers
            if b.t_start >= epoch.t_start and b.t_start < epoch.t_end
        ]
        for track in worker_tracks:
            blocks = sorted(
                (
                    b for b in blocks_by_track[track]
                    if epoch.t_start <= b.t_start < epoch.t_end
                ),
                key=lambda s: s.t_start,
            )
            worker = WorkerAttribution(track, blocks=blocks)
            cursor = epoch.t_start
            for block in blocks:
                b_start = min(max(block.t_start, cursor), epoch.t_end)
                if b_start > cursor:
                    worker.segments.extend(
                        _gap_segments(cursor, b_start, in_epoch)
                    )
                    cursor = b_start
                phases = [
                    p for p in phases_by_track[track]
                    if block.t_start <= p.t_start < block.t_end
                ]
                segments, cursor = _block_segments(
                    block, phases, cursor, epoch.t_end
                )
                worker.segments.extend(segments)
            if cursor < epoch.t_end:
                worker.segments.extend(
                    _gap_segments(cursor, epoch.t_end, in_epoch)
                )
            attribution.workers[track] = worker
        out.append(attribution)
    return out


# --------------------------------------------------------------------- #
# Prediction error (virtual clock vs. wall clock)                        #
# --------------------------------------------------------------------- #

def prediction_error(
    real_seconds: Sequence[float], predicted_seconds: Sequence[float]
) -> Dict[str, Any]:
    """Per-epoch error of the cost model against measured wall time.

    Pairs the two series index by index (up to the shorter length).
    ``error_pct`` is signed — positive when the real run was slower than
    predicted.  Returns an empty dict when either series is empty.
    """
    count = min(len(real_seconds), len(predicted_seconds))
    if count == 0:
        return {}
    rows: List[Dict[str, float]] = []
    for i in range(count):
        real = float(real_seconds[i])
        predicted = float(predicted_seconds[i])
        error = (
            100.0 * (real - predicted) / predicted if predicted > 0 else 0.0
        )
        rows.append(
            {
                "epoch": i + 1,
                "real_s": real,
                "predicted_s": predicted,
                "error_pct": error,
            }
        )
    real_total = math.fsum(row["real_s"] for row in rows)
    predicted_total = math.fsum(row["predicted_s"] for row in rows)
    return {
        "epochs": rows,
        "real_total_s": real_total,
        "predicted_total_s": predicted_total,
        "total_error_pct": (
            100.0 * (real_total - predicted_total) / predicted_total
            if predicted_total > 0 else 0.0
        ),
        "mean_abs_error_pct": math.fsum(
            abs(row["error_pct"]) for row in rows
        ) / count,
    }


def paired_prediction(
    tracer: Tracer, process: str
) -> Optional[Dict[str, Any]]:
    """Prediction-error breakdown when ``process`` has an ``@wall`` twin.

    The multiprocess backend traces measured epochs under
    ``wall_process(process)``; a simulated run of the same loop traces the
    predicted epochs under ``process``.  When both live in one tracer this
    pairs them epoch by epoch; returns ``None`` when either side is
    missing.
    """
    if process.endswith("@wall"):
        return None
    virtual = tracer.epoch_spans(process)
    wall = tracer.epoch_spans(wall_process(process))
    if not virtual or not wall:
        return None
    return prediction_error(
        [s.duration for s in wall], [s.duration for s in virtual]
    )


# --------------------------------------------------------------------- #
# Text report                                                            #
# --------------------------------------------------------------------- #

def _fmt_ms(value: float) -> str:
    return f"{value * 1e3:9.3f}"


def _attribution_lines(attributions: List[EpochAttribution]) -> List[str]:
    cats = list(BUSY_CATEGORIES) + list(IDLE_CATEGORIES)
    header = "  " + f"{'epoch':22s} {'makespan':>12s}"
    for cat in cats:
        header += f" {cat[:8]:>9s}"
    lines = [header + "   exact"]
    for attribution in attributions:
        totals = attribution.totals()
        capacity = attribution.makespan * max(len(attribution.workers), 1)
        row = (
            f"  {attribution.epoch.name[:22]:22s} "
            f"{_fmt_ms(attribution.makespan)} ms"
        )
        for cat in cats:
            share = (
                100.0 * totals.get(cat, 0.0) / capacity if capacity > 0
                else 0.0
            )
            row += f" {share:8.1f}%"
        exact = "yes" if not attribution.verify_exact() else "NO"
        lines.append(row + f"   {exact}")
    return lines


def _what_if_lines(attributions: List[EpochAttribution]) -> List[str]:
    keys = ("actual", "balanced", "comm_free", "perfect_prefetch")
    sums = {key: 0.0 for key in keys}
    seen = False
    for attribution in attributions:
        estimates = attribution.what_if()
        if not estimates:
            continue
        seen = True
        for key in keys:
            sums[key] += estimates[key]
    if not seen:
        return []
    actual = sums["actual"]
    lines = ["  what-if (all epochs):"]
    labels = {
        "balanced": "stragglers removed (balanced work)",
        "comm_free": "communication free",
        "perfect_prefetch": "perfect prefetch overlap",
    }
    for key, label in labels.items():
        estimate = sums[key]
        speedup = actual / estimate if estimate > 0 else float("inf")
        lines.append(
            f"    {label:36s} {_fmt_ms(estimate)} ms  ({speedup:5.2f}x)"
        )
    return lines


def _bottleneck_lines(
    attributions: List[EpochAttribution], top: int
) -> List[str]:
    busy: Dict[str, float] = {}
    for attribution in attributions:
        for track, worker in attribution.workers.items():
            busy[track] = busy.get(track, 0.0) + worker.busy_seconds()
    if not busy:
        return []
    mean = math.fsum(busy.values()) / len(busy)
    slowest_track = max(busy, key=lambda t: busy[t])
    lines = []
    if mean > 0:
        lines.append(
            f"  bottleneck worker: {slowest_track} "
            f"({_fmt_ms(busy[slowest_track]).strip()} ms busy, "
            f"{busy[slowest_track] / mean:.2f}x the mean)"
        )
    last = attributions[-1]
    path = last.critical_path()
    if path:
        total = math.fsum(duration for _, _, _, duration in path)
        share = (
            100.0 * total / last.makespan if last.makespan > 0 else 0.0
        )
        lines.append(
            f"  critical path (last epoch): {len(path)} steps, "
            f"{_fmt_ms(total).strip()} ms ({share:.1f}% of makespan); "
            f"longest:"
        )
        for step, name, track, duration in sorted(
            path, key=lambda row: row[3], reverse=True
        )[:top]:
            lines.append(
                f"    step {step:3d}  {name:20s} {track:10s} "
                f"{_fmt_ms(duration)} ms"
            )
    return lines


def insight_report(
    tracer: Tracer,
    diagnostics: Optional[Sequence[str]] = None,
    top: int = 3,
) -> str:
    """Render the insight layer as a plain-text report.

    One section per traced process with epoch spans: the exact per-phase
    attribution table, bottleneck worker + critical path, and what-if
    estimates; then a prediction-error section for every virtual process
    with an ``@wall`` twin, and the kernel-path diagnostics when given
    (see ``repro.cli --report``).
    """
    lines: List[str] = []
    for process in tracer.processes():
        attributions = attribute_epochs(tracer, process)
        if not attributions:
            continue
        clock = attributions[0].clock
        lines.append(f"== insight: {process} ({clock} clock) ==")
        lines.extend(_attribution_lines(attributions))
        lines.extend(_bottleneck_lines(attributions, top))
        lines.extend(_what_if_lines(attributions))
        lines.append("")
    for process in tracer.processes():
        paired = paired_prediction(tracer, process)
        if not paired:
            continue
        lines.append(
            f"== prediction error: {process} (virtual) vs "
            f"{wall_process(process)} (real) =="
        )
        lines.append(
            f"  {'epoch':>5s} {'real':>12s} {'predicted':>12s} "
            f"{'error':>8s}"
        )
        for row in paired["epochs"]:
            lines.append(
                f"  {row['epoch']:5d} {_fmt_ms(row['real_s'])} ms "
                f"{_fmt_ms(row['predicted_s'])} ms "
                f"{row['error_pct']:+7.1f}%"
            )
        lines.append(
            f"  total {_fmt_ms(paired['real_total_s'])} ms vs "
            f"{_fmt_ms(paired['predicted_total_s'])} ms predicted "
            f"({paired['total_error_pct']:+.1f}%; mean abs error "
            f"{paired['mean_abs_error_pct']:.1f}%)"
        )
        lines.append("")
    if diagnostics:
        lines.append("== kernel-path diagnostics ==")
        for diagnostic in diagnostics:
            for part in str(diagnostic).splitlines():
                lines.append(f"  {part}")
        lines.append("")
    if not lines:
        return "(no traced epochs)"
    return "\n".join(lines).rstrip("\n")
