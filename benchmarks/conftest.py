"""Benchmark-suite plumbing: result tables printed in the terminal summary.

Each benchmark computes the rows/series of one paper figure or table and
registers a formatted block via the ``report`` fixture.  A terminal-summary
hook prints every block after the pytest-benchmark timing table (the hook
runs outside stdout capture, so the paper-versus-measured tables are
visible without ``-s``).  Blocks are also written to
``benchmarks/results/<name>.txt`` for later inspection.
"""

from __future__ import annotations

import os
import re
import sys
from typing import Dict

import pytest

sys.path.insert(0, os.path.dirname(__file__))

_RESULTS: Dict[str, str] = {}
_RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture
def report():
    """Register one experiment's formatted output block."""

    def _record(name: str, text: str) -> None:
        _RESULTS[name] = text.rstrip()
        os.makedirs(_RESULTS_DIR, exist_ok=True)
        slug = re.sub(r"[^A-Za-z0-9]+", "_", name).strip("_").lower()
        with open(os.path.join(_RESULTS_DIR, f"{slug}.txt"), "w") as handle:
            handle.write(text.rstrip() + "\n")

    return _record


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _RESULTS:
        return
    terminalreporter.write_sep("=", "paper figure / table reproductions")
    for name in sorted(_RESULTS):
        terminalreporter.write_sep("-", name)
        for line in _RESULTS[name].splitlines():
            terminalreporter.write_line(line)
