"""Tests for the real multiprocess runtime (repro.runtime.distributed).

The headline property: running a compiled plan on forked OS processes with
IPC-mediated partition rotation produces *bitwise identical* parameters to
the simulated executor's linearization — the plans are truly executable by
a distributed runtime.
"""

import numpy as np
import pytest

from repro.apps import MFHyper, build_sgd_mf, build_slr
from repro.apps.slr import SLRHyper
from repro.data import netflix_like, sparse_classification
from repro.errors import ExecutionError
from repro.runtime.cluster import ClusterSpec
from repro.runtime.distributed import MultiprocessRunner


@pytest.fixture(scope="module")
def mf_data():
    return netflix_like(num_rows=36, num_cols=30, num_ratings=700, seed=61)


@pytest.fixture
def cluster():
    return ClusterSpec(num_machines=2, workers_per_machine=2)


def _mf_programs(mf_data, cluster, **kwargs):
    hyper = MFHyper(rank=4, step_size=0.05)
    simulated = build_sgd_mf(
        mf_data, cluster=cluster, hyper=hyper, seed=7, **kwargs
    )
    distributed = build_sgd_mf(
        mf_data, cluster=cluster, hyper=hyper, seed=7, **kwargs
    )
    return simulated, distributed


class TestBitwiseEquivalence:
    def test_unordered_2d(self, mf_data, cluster):
        simulated, distributed = _mf_programs(mf_data, cluster)
        simulated.run(3)
        with MultiprocessRunner(distributed.train_loop) as runner:
            for _ in range(3):
                runner.run_epoch()
        assert np.array_equal(
            simulated.arrays["W"].values, distributed.arrays["W"].values
        )
        assert np.array_equal(
            simulated.arrays["H"].values, distributed.arrays["H"].values
        )

    def test_ordered_2d(self, mf_data, cluster):
        simulated, distributed = _mf_programs(mf_data, cluster, ordered=True)
        simulated.run(2)
        with MultiprocessRunner(distributed.train_loop) as runner:
            for _ in range(2):
                runner.run_epoch()
        assert np.array_equal(
            simulated.arrays["W"].values, distributed.arrays["W"].values
        )

    def test_loss_progresses(self, mf_data, cluster):
        _sim, distributed = _mf_programs(mf_data, cluster)
        initial = distributed.loss_fn()
        with MultiprocessRunner(distributed.train_loop) as runner:
            for _ in range(4):
                runner.run_epoch()
        assert distributed.loss_fn() < initial


class TestProtocol:
    def test_block_count(self, mf_data, cluster):
        _sim, distributed = _mf_programs(mf_data, cluster)
        executor = distributed.train_loop.executor
        with MultiprocessRunner(distributed.train_loop) as runner:
            blocks = runner.run_epoch()
        assert blocks == executor.num_workers * executor.num_time

    def test_reusable_across_epochs(self, mf_data, cluster):
        _sim, distributed = _mf_programs(mf_data, cluster)
        runner = MultiprocessRunner(distributed.train_loop)
        try:
            first = distributed.loss_fn()
            runner.run_epoch()
            second = distributed.loss_fn()
            runner.run_epoch()
            third = distributed.loss_fn()
        finally:
            runner.close()
        assert third < second < first

    def test_close_is_idempotent(self, mf_data, cluster):
        _sim, distributed = _mf_programs(mf_data, cluster)
        runner = MultiprocessRunner(distributed.train_loop)
        runner.run_epoch()
        runner.close()
        runner.close()


class TestParameterServerPlans:
    """Buffered / server-array plans run with the master as a real
    parameter server: prefetched values ship with each block, buffered
    writes come back as flush messages and are applied through their UDFs."""

    def test_slr_trains_distributed(self, cluster):
        dataset = sparse_classification(
            num_samples=160, num_features=90, nnz_per_sample=5, seed=63
        )
        program = build_slr(dataset, cluster=cluster, hyper=SLRHyper(0.2))
        initial = program.loss_fn()
        with MultiprocessRunner(program.train_loop) as runner:
            for _ in range(3):
                runner.run_epoch()
        assert program.loss_fn() < initial

    def test_lda_counts_consistent_distributed(self, cluster):
        from repro.apps import LDAHyper, build_lda
        from repro.data import lda_corpus

        corpus = lda_corpus(
            num_docs=36, vocab_size=40, num_topics=4, doc_length=12, seed=65
        )
        program = build_lda(corpus, cluster=cluster, hyper=LDAHyper(num_topics=4))
        with MultiprocessRunner(program.train_loop) as runner:
            runner.run_epoch()
        assert program.arrays["doc_topic"].values.sum() == corpus.total_tokens
        assert program.arrays["word_topic"].values.sum() == corpus.total_tokens
        assert program.arrays["topic_sum"].values.sum() == corpus.total_tokens

    def test_mlp_accumulators_collected(self, cluster):
        from repro.apps.mlp import MLPHyper, build_orion_program, make_blobs

        entries = make_blobs(
            num_samples=120, num_features=5, num_classes=3, seed=67
        )
        program = build_orion_program(
            entries, 5, 3, cluster=cluster,
            hyper=MLPHyper(step_size=0.05, max_delay=8), seed=2,
        )
        initial = program.loss_fn()
        # The distributed runtime synchronizes buffers once per block (the
        # paper's once-per-partition bound), i.e. coarser than max_delay,
        # so convergence takes a few passes of whole-block staleness.
        with MultiprocessRunner(program.train_loop) as runner:
            for _ in range(4):
                runner.run_epoch()
        assert program.loss_fn() < initial
        assert program.ctx.get_aggregated_value("train_loss") > 0.0

    def test_unimodular_plan_executes_bitwise(self, cluster):
        """Unimodular plans run stepped: written arrays are server-placed
        dense (in-place shared-memory writes).  Time partitions can lump
        several transformed time values, so the master linearizes such
        steps task-by-task — reproducing the simulated linearization
        bitwise."""
        from repro.analysis.loop_info import analyze_loop_body
        from repro.analysis.strategy import choose_plan
        from repro.api import ParallelLoop
        from repro.core.distarray import DistArray
        from repro.runtime.executor import OrionExecutor

        def build():
            entries = [((i, j), 1.0) for i in range(6) for j in range(6)]
            space = DistArray.from_entries(
                entries, name="mp_uni", shape=(6, 6)
            ).materialize()
            grid = DistArray.randn(6, 6, name="mp_grid", seed=9).materialize()

            def body(key, value):
                left = grid[key[0], key[1] - 1]
                diag = grid[key[0] - 1, key[1] - 1]
                grid[key[0], key[1]] = 0.5 * (left + diag)

            info = analyze_loop_body(body, space, ordered=True)
            plan = choose_plan(info)
            executor = OrionExecutor(body, info, plan, cluster)
            return grid, ParallelLoop(None, body, info, plan, executor)

        grid_sim, loop_sim = build()
        grid_mp, loop_mp = build()
        assert loop_sim.plan.transform is not None
        loop_sim.run(2)
        with MultiprocessRunner(loop_mp) as runner:
            for _ in range(2):
                runner.run_epoch()
        assert np.array_equal(grid_sim.values, grid_mp.values)
