"""Sec. 6.3 — bulk prefetching for SLR (single machine, KDD2010 analogue).

Paper result: without prefetching, each data pass takes 7682 s (almost all
of it per-read communication round trips); Orion's synthesized bulk
prefetch reduces it to 9.2 s, and caching the prefetch indices to 6.3 s.
The absolute numbers are testbed-specific; the shape is a ~3-orders-of-
magnitude gap between per-read round trips and bulk fetching, plus a
further measurable win from caching the synthesized function's output.
"""

import pytest

import _workloads as wl
from repro.apps import build_slr

PAPER_ROWS = {
    "no prefetch": 7682.0,
    "bulk prefetch": 9.2,
    "bulk prefetch + cached indices": 6.3,
}


def _measure():
    dataset = wl.kdd_bench()
    cluster = wl.slr_cluster()
    times = {}
    for label, opts in [
        ("no prefetch", {"prefetch": "none"}),
        ("bulk prefetch", {"prefetch": "auto", "cache_prefetch": False}),
        (
            "bulk prefetch + cached indices",
            {"prefetch": "auto", "cache_prefetch": True},
        ),
    ]:
        program = build_slr(
            dataset, cluster=cluster, hyper=wl.SLR_HYPER, **opts
        )
        history = program.run(3)
        # Skip the first pass: the cached variant pays synthesis once.
        times[label] = history.time_per_iteration(skip_first=1)
    return times


@pytest.mark.benchmark(group="prefetch")
def test_prefetch_slr(benchmark, report):
    times = benchmark.pedantic(_measure, rounds=1, iterations=1)
    rows = [
        (label, f"{seconds:.4f}", f"{PAPER_ROWS[label]:.1f}")
        for label, seconds in times.items()
    ]
    report(
        "Sec 6.3: SLR per-pass time by prefetch configuration",
        wl.fmt_table(["configuration", "s/pass", "paper s/pass"], rows)
        + "\npaper shape: prefetching removes ~3 orders of magnitude of "
        "round-trip latency; caching indices shaves the rest",
    )
    assert times["no prefetch"] > 20 * times["bulk prefetch"]
    assert (
        times["bulk prefetch + cached indices"] < times["bulk prefetch"]
    )
