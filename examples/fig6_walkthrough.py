"""The paper's Fig. 6, live: compilation reports for every application.

Builds each Table 2 application through the real API and prints what
static parallelization decided — the extracted loop information, the
dependence vectors Alg. 2 computed, the chosen strategy with its candidate
set, and the DistArray placements.

Run:  python examples/fig6_walkthrough.py
"""

from repro import ClusterSpec
from repro.apps import (
    GBTHyper,
    LDAHyper,
    MFHyper,
    SLRHyper,
    build_gbt,
    build_glove,
    build_lda,
    build_sgd_mf,
    build_slr,
    cooccurrence_corpus,
)
from repro.data import (
    lda_corpus,
    netflix_like,
    regression_table,
    sparse_classification,
)

cluster = ClusterSpec(num_machines=2, workers_per_machine=2)

programs = [
    (
        "SGD Matrix Factorization (the paper's running example)",
        build_sgd_mf(
            netflix_like(num_rows=60, num_cols=48, num_ratings=1200, seed=1),
            cluster=cluster,
            hyper=MFHyper(rank=4),
        ),
    ),
    (
        "Sparse Logistic Regression",
        build_slr(
            sparse_classification(
                num_samples=200, num_features=120, nnz_per_sample=5, seed=2
            ),
            cluster=cluster,
            hyper=SLRHyper(),
        ),
    ),
    (
        "LDA (collapsed Gibbs, 2D)",
        build_lda(
            lda_corpus(num_docs=50, vocab_size=60, num_topics=4,
                       doc_length=15, seed=3),
            cluster=cluster,
            hyper=LDAHyper(num_topics=4),
        ),
    ),
    (
        "LDA (1D over documents)",
        build_lda(
            lda_corpus(num_docs=50, vocab_size=60, num_topics=4,
                       doc_length=15, seed=3),
            cluster=cluster,
            hyper=LDAHyper(num_topics=4),
            parallelism="1d",
        ),
    ),
    (
        "Gradient Boosted Trees (histogram loop)",
        build_gbt(
            regression_table(num_samples=300, num_features=4, seed=4),
            cluster=cluster,
            hyper=GBTHyper(),
        ),
    ),
    (
        "GloVe word embeddings",
        build_glove(
            cooccurrence_corpus(vocab_size=60, num_tokens=2000, seed=5),
            cluster=cluster,
        ),
    ),
]

for title, program in programs:
    banner = f"  {title}  "
    print("=" * len(banner))
    print(banner)
    print("=" * len(banner))
    print(program.train_loop.explain())
