"""LoopOptions: the consolidated configuration of one parallel for-loop.

``OrionContext.parallel_for`` historically grew 16 keyword arguments; this
dataclass is their single home (plus the fault-injection and tuning knobs,
which exist *only* here).  The options-first form is the documented one::

    loop = ctx.parallel_for(data, options=LoopOptions(ordered=True))(body)

The bare legacy kwargs still work and override the corresponding
``LoopOptions`` field (``dataclasses.replace`` semantics), but they now
emit a :class:`DeprecationWarning`::

    loop = ctx.parallel_for(data, ordered=True)(body)   # deprecated form

See ``docs/api.md`` for the migration guide and ``docs/tuning.md`` for the
auto-tuner the ``tune`` knob enables.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any, Callable, Optional, Tuple, Union

from repro.obs.observability import Observability

if TYPE_CHECKING:  # annotation-only: repro.faults imports repro.runtime
    from repro.faults.plan import FaultPlan
    from repro.runtime.checkpoint import CheckpointConfig

__all__ = ["LoopOptions", "UNSET"]

#: Sentinel distinguishing "kwarg not passed" from an explicit None/False.
UNSET: Any = type("_Unset", (), {"__repr__": lambda self: "UNSET"})()


@dataclass
class LoopOptions:
    """Every knob of one parallel for-loop, in one place.

    Scheduling / execution (the former ``parallel_for`` kwargs):

    Attributes:
        ordered: enforce lexicographic iteration order.
        force_dims: override the partitioning-dimension heuristic.
        pipeline_depth: time partitions per worker for unordered 2D — an
            ``int``, or ``"auto"`` to take the heuristic default (the
            paper's Fig. 8 depth of 2) while marking the knob tunable.
            The executor's ``run_summary()["resolved"]`` reports the
            value actually used, so ``"auto"`` stays introspectable.
        balance: histogram-balanced partitioning of skewed data.
        validate: run the serializability validator every epoch.
        prefetch: ``"auto"`` or ``"none"``.
        cache_prefetch: cache prefetch indices across epochs.
        concurrency: ``"serial"`` or ``"threads"``.
        backend: which runtime executes the compiled plan.
            ``"simulated"`` (default) is the deterministic virtual-clock
            linearization; ``"threaded"`` runs each schedule step's blocks
            on the executor thread pool; ``"multiprocess"`` runs the plan
            on forked OS processes over shared-memory partitions
            (:class:`~repro.runtime.distributed.MultiprocessRunner`) and
            reports *real* wall-clock epoch times.
        kernel: batched block kernel selection — a callable (a hand
            kernel following the contract in ``runtime/kernels.py``),
            ``"auto"`` (synthesize one from the loop body via
            :mod:`repro.analysis.synth`, falling back to the scalar
            interpreter with a W50x diagnostic when the body is not
            batchable), or ``"off"``/``None`` for the scalar path.
            ``"hand"`` is resolved by the app builders' ``use_kernel``
            flag, not here.
        equivalence_check: run the first kernel-eligible block through
            both paths and fail on any difference.
        sanitize: run the shadow-access race detector
            (:mod:`repro.sanitizer`): record every actual DistArray
            element access per iteration and fail the epoch if the
            analyzer's dependence claims, buffered-write exemptions or
            prefetch footprint are contradicted.  Forces scalar
            (non-kernel) execution.
        tracer / metrics: legacy observability pair (prefer ``obs``).
        obs: bundled :class:`~repro.obs.observability.Observability`.
        trace_process: Perfetto process label for this loop's spans.

    Fault tolerance (new — these knobs live only here):

    Attributes:
        faults: a :class:`~repro.faults.plan.FaultPlan` of injected
            crashes/drops/stragglers, or ``None`` for today's loss-free
            cluster (bit-identical to pre-fault-subsystem runs).
        checkpoint: a :class:`~repro.runtime.checkpoint.CheckpointConfig`
            making the loop checkpoint its mutated arrays every N epochs
            and recover from the latest complete tag after a crash.

    Run persistence (see :mod:`repro.obs.runstore`):

    Attributes:
        run_store: where to persist one structured record per
            :meth:`~repro.api.ParallelLoop.run` call — a
            :class:`~repro.obs.runstore.RunStore`, a directory path, or
            ``True`` for the default ``.repro_runs/``.  ``None``
            (default) records nothing and leaves run results
            bit-identical to unrecorded runs (the record is pure
            introspection written after the pass completes).
        run_label: label stored in the run records (defaults to
            ``trace_process``).

    Adaptive tuning (see :mod:`repro.tuning` and ``docs/tuning.md``):

    Attributes:
        tune: ``"off"`` (default) — no tuner; the run is bit-identical to
            pre-tuner builds and :mod:`repro.tuning` is not even imported.
            ``"auto"`` — an :class:`~repro.tuning.AdaptiveTuner` consumes
            each traced epoch's attribution and re-chooses the legally
            tunable knobs (pipeline depth, prefetch policy) for the next
            epoch, charging re-partitioning to the virtual clock; winning
            configurations persist to a cross-run cache that seeds future
            runs.  ``"cached"`` — seed from the cache only (read-only, no
            mid-run adaptation, no cache writes).  Mutually exclusive
            with ``faults`` / ``checkpoint``.
    """

    ordered: bool = False
    force_dims: Optional[Tuple[int, ...]] = None
    pipeline_depth: Union[int, str] = 2
    balance: bool = True
    validate: bool = False
    prefetch: str = "auto"
    cache_prefetch: bool = True
    concurrency: str = "serial"
    backend: str = "simulated"
    kernel: Optional[Union[Callable[..., Any], str]] = None
    equivalence_check: bool = False
    sanitize: bool = False
    tracer: Optional[Any] = None
    metrics: Optional[Any] = None
    obs: Optional[Observability] = None
    trace_process: str = "orion"
    faults: Optional[FaultPlan] = None
    checkpoint: Optional[CheckpointConfig] = None
    run_store: Optional[Any] = None
    run_label: Optional[str] = None
    tune: str = "off"

    def merged_with(self, **overrides: Any) -> "LoopOptions":
        """A copy with every non-``UNSET`` override applied."""
        explicit = {
            key: value for key, value in overrides.items()
            if value is not UNSET
        }
        return replace(self, **explicit) if explicit else self

    def resolve_obs(
        self, default: Optional[Observability] = None
    ) -> Observability:
        """The effective observability pair for this loop.

        Component-wise: explicit ``tracer``/``metrics`` fields win, then
        the ``obs`` bundle, then ``default`` (the context's pair).
        """
        return Observability.resolve(
            obs=self.obs,
            tracer=self.tracer,
            metrics=self.metrics,
            default=default,
        )
