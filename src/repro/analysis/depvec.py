"""Dependence vectors and the paper's Alg. 2.

A *dependence vector* ``d`` for an ``n``-deep loop nest asserts that
iteration ``p + d`` may depend on iteration ``p`` (they touch the same
DistArray element and at least one access is a write).  Entries are either
exact integers or one of three extended values:

* :data:`ANY` — the paper's ``∞``: the distance may be any integer,
* :data:`POS` — ``+∞``: any strictly positive integer,
* :data:`NEG` — ``-∞``: any strictly negative integer.

:func:`compute_dependence_vectors` implements the paper's Alg. 2: for every
pair of static DistArray references it either proves independence or refines
an all-:data:`ANY` vector with one exact distance per constrained
iteration-space dimension, then corrects the result for lexicographic
positivity.  Read-read pairs are always skipped; write-write pairs are
skipped when the loop is *unordered* (the paper's ordering relaxation,
Sec. 4.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Sequence, Tuple, Union

from repro.errors import DependenceError
from repro.analysis.lint import SourceLocation
from repro.analysis.subscript import Axis, axes_may_overlap, index_distance

__all__ = [
    "ANY",
    "POS",
    "NEG",
    "Entry",
    "DepVector",
    "ArrayRef",
    "entry_negate",
    "entry_mul",
    "entry_add",
    "entry_is_zero",
    "entry_is_positive",
    "entry_is_exact",
    "compute_dependence_vectors",
]


class _Extended:
    """Sentinel for a non-exact dependence distance (``∞``-style values)."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


ANY = _Extended("ANY")
POS = _Extended("POS")
NEG = _Extended("NEG")

Entry = Union[int, _Extended]


def entry_is_exact(value: Entry) -> bool:
    """True when the entry is an exact integer distance."""
    return not isinstance(value, _Extended)


def entry_is_zero(value: Entry) -> bool:
    """True when the distance is *definitely* zero."""
    return entry_is_exact(value) and value == 0


def entry_is_positive(value: Entry) -> bool:
    """True when the distance is *definitely* strictly positive."""
    if value is POS:
        return True
    return entry_is_exact(value) and value > 0


def entry_negate(value: Entry) -> Entry:
    """Negate an entry (used when flipping a vector's direction)."""
    if value is ANY:
        return ANY
    if value is POS:
        return NEG
    if value is NEG:
        return POS
    return -value


def entry_mul(coefficient: int, value: Entry) -> Entry:
    """Multiply an entry by an exact integer coefficient.

    Used when applying a unimodular transformation matrix to a vector.
    """
    if coefficient == 0:
        return 0
    if entry_is_exact(value):
        return coefficient * value
    if value is ANY:
        return ANY
    positive = (value is POS) == (coefficient > 0)
    return POS if positive else NEG


def entry_add(a: Entry, b: Entry) -> Entry:
    """Add two entries, conservatively widening when signs are uncertain."""
    if entry_is_exact(a) and entry_is_exact(b):
        return a + b
    if a is ANY or b is ANY:
        return ANY
    # Exactly one or both are POS/NEG here.
    if entry_is_exact(a):
        a, b = b, a
    # a is POS or NEG, b is exact or the same/opposite sentinel.
    if entry_is_exact(b):
        if a is POS:
            return POS if b >= 0 else ANY
        return NEG if b <= 0 else ANY
    if a is b:
        return a
    return ANY


@dataclass(frozen=True)
class DepVector:
    """An immutable dependence vector over the iteration space."""

    entries: Tuple[Entry, ...]

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    def __getitem__(self, i: int) -> Entry:
        return self.entries[i]

    def is_zero_at(self, dim: int) -> bool:
        """Whether this vector's distance at ``dim`` is definitely zero."""
        return entry_is_zero(self.entries[dim])

    def is_all_zero(self) -> bool:
        """Whether every entry is exactly zero (iteration vs. itself)."""
        return all(entry_is_zero(e) for e in self.entries)

    def negate(self) -> "DepVector":
        """Return the direction-flipped vector."""
        return DepVector(tuple(entry_negate(e) for e in self.entries))

    def lexico_positive(self) -> Optional["DepVector"]:
        """The primary lexicographically-positive representative.

        Returns ``None`` when the vector is all-zero, i.e. a dependence of an
        iteration on itself, which is not a loop-carried dependence at all.
        A vector whose leading non-zero entry is negative is flipped (the
        same conflict read with source/sink roles swapped); a leading
        :data:`ANY` entry's positive-direction half leads with :data:`POS`.

        Note: a leading ``ANY`` also admits dependences whose distance is
        *zero* at that position and positive later — use
        :meth:`lexico_positive_set` for the complete cover (what Alg. 2
        stores); this method returns only the head representative.
        """
        cover = self.lexico_positive_set()
        return cover[0] if cover else None

    def lexico_positive_set(self) -> Tuple["DepVector", ...]:
        """The complete lexicographically-positive cover of this vector.

        A raw pair-test vector describes a *symmetric* conflict set; its
        loop-carried half is every lexicographically positive distance it
        matches.  Exact or :data:`POS`/:data:`NEG` leads normalize to a
        single vector, but an :data:`ANY` lead splits: distances with a
        strictly positive lead (``POS`` head) *and* distances with a zero
        lead whose tail is itself lexicographically positive.  Dropping the
        second half would let the scheduler run genuinely dependent
        iterations concurrently.
        """
        entries = self.entries

        def normalize(tail: Tuple[Entry, ...]) -> List[Tuple[Entry, ...]]:
            if not tail:
                return []
            head, rest = tail[0], tail[1:]
            if entry_is_zero(head):
                return [(0,) + sub for sub in normalize(rest)]
            if entry_is_exact(head):
                if head > 0:
                    return [tail]
                return [tuple(entry_negate(e) for e in tail)]
            if head is POS:
                return [tail]
            if head is NEG:
                return [tuple(entry_negate(e) for e in tail)]
            # ANY lead: strictly-positive half plus the zero-lead half.
            out = [(POS,) + rest]
            out.extend((0,) + sub for sub in normalize(rest))
            return out

        return tuple(DepVector(v) for v in normalize(entries))

    def transform(self, matrix: Sequence[Sequence[int]]) -> "DepVector":
        """Apply an integer matrix to this vector (``matrix @ d``)."""
        n = len(self.entries)
        if any(len(row) != n for row in matrix) or len(matrix) != n:
            raise DependenceError(
                f"transform matrix shape does not match vector length {n}"
            )
        out: List[Entry] = []
        for row in matrix:
            acc: Entry = 0
            for coefficient, value in zip(row, self.entries):
                acc = entry_add(acc, entry_mul(coefficient, value))
            out.append(acc)
        return DepVector(tuple(out))

    def describe(self) -> str:
        """Render like the paper, e.g. ``(0, inf)``."""
        parts = []
        for value in self.entries:
            if value is ANY:
                parts.append("inf")
            elif value is POS:
                parts.append("+inf")
            elif value is NEG:
                parts.append("-inf")
            else:
                parts.append(str(value))
        return "(" + ", ".join(parts) + ")"


@dataclass(frozen=True)
class ArrayRef:
    """One static DistArray reference found in a loop body.

    Attributes:
        array_name: the variable name the DistArray is bound to.
        axes: one :class:`~repro.analysis.subscript.Axis` per array dimension.
        is_write: whether this reference stores to the array.
        buffered: whether the write goes to a DistArray *Buffer* and is
            therefore exempt from dependence analysis (paper Sec. 3.3).
        location: where the reference appears in the user's source, when
            known.  Excluded from equality/hashing so duplicate references
            on different lines still deduplicate for analysis.
    """

    array_name: str
    axes: Tuple[Axis, ...]
    is_write: bool
    buffered: bool = False
    location: Optional["SourceLocation"] = field(
        default=None, compare=False, repr=False
    )

    @property
    def is_read(self) -> bool:
        """Whether this reference loads from the array."""
        return not self.is_write

    def describe(self) -> str:
        """Human-readable rendering, e.g. ``W[:, key[0]] (write)``.

        Appends the ``file:line`` source location when one is attached.
        """
        subs = ", ".join(axis.describe() for axis in self.axes)
        mode = "write" if self.is_write else "read"
        out = f"{self.array_name}[{subs}] ({mode})"
        if self.location is not None:
            out += f" at {self.location.describe()}"
        return out


def _pair_dependence(
    ref_a: ArrayRef,
    ref_b: ArrayRef,
    num_iter_dims: int,
) -> Optional[DepVector]:
    """Dependence test for one pair of references to the same array.

    Returns the (uncorrected) dependence vector, or ``None`` when the pair
    is proven independent.  This is the inner loop of the paper's Alg. 2.
    """
    entries: List[Entry] = [ANY] * num_iter_dims
    for axis_a, axis_b in zip(ref_a.axes, ref_b.axes):
        constrained = index_distance(axis_a, axis_b)
        if constrained is not None:
            dim, dist = constrained
            if dim >= num_iter_dims:
                raise DependenceError(
                    f"subscript references iteration dimension {dim} but the "
                    f"iteration space has only {num_iter_dims} dimensions"
                )
            current = entries[dim]
            if entry_is_exact(current) and current != dist:
                # The same iteration-space dimension would need two different
                # distances at once: the references can never conflict.
                return None
            entries[dim] = dist
        elif not axes_may_overlap(axis_a, axis_b):
            return None
    return DepVector(tuple(entries))


def compute_dependence_vectors(
    refs: Sequence[ArrayRef],
    num_iter_dims: int,
    unordered_loop: bool = False,
) -> FrozenSet[DepVector]:
    """Compute the set of dependence vectors for one DistArray (Alg. 2).

    Args:
        refs: every static reference to a single DistArray in the loop body.
            References marked ``buffered`` are exempt and ignored here.
        num_iter_dims: dimensionality of the loop's iteration space.
        unordered_loop: when true, write-write pairs are skipped — under
            relaxed ordering any interleaving of pure overwrites is an
            acceptable serial order (paper Sec. 4.3).

    Returns:
        The frozen set of lexicographically positive dependence vectors.
    """
    live = [ref for ref in refs if not ref.buffered]
    vectors = set()
    for position, ref_a in enumerate(live):
        # Self-pairs matter for writes: two *different* iterations may both
        # write through the same static reference.
        for ref_b in live[position:]:
            if ref_a.is_read and ref_b.is_read:
                continue
            if unordered_loop and ref_a.is_write and ref_b.is_write:
                continue
            raw = _pair_dependence(ref_a, ref_b, num_iter_dims)
            if raw is None:
                continue
            # The pair test fixes an (a-at-p, b-at-p') role assignment;
            # swapping roles negates the exact distances while ANY entries
            # stay symmetric.  With an ANY lead and exact tail the two
            # directions have *different* lexicographically positive
            # covers (e.g. (ANY,-1) -> {(+inf,-1),(0,1)} but the mirror
            # (ANY,1) also admits (+inf,1)), so both must be unioned.
            vectors.update(raw.lexico_positive_set())
            vectors.update(raw.negate().lexico_positive_set())
    return frozenset(vectors)
