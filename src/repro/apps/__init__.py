"""The paper's ML applications (Table 2), in Orion and numpy forms."""

from repro.apps.base import OrionProgram, SerialApp
from repro.apps.embeddings import CooccurrenceDataset, GloVeApp, GloVeHyper
from repro.apps.embeddings import build_orion_program as build_glove
from repro.apps.embeddings import cooccurrence_corpus
from repro.apps.gbt import GBTHyper
from repro.apps.gbt import build_orion_program as build_gbt
from repro.apps.lda import LDAApp, LDAHyper
from repro.apps.lda import build_orion_program as build_lda
from repro.apps.mlp import MLPApp, MLPHyper
from repro.apps.mlp import build_orion_program as build_mlp
from repro.apps.optimizers import AdaGrad, AdaRevision
from repro.apps.sgd_mf import MFHyper, SGDMFApp
from repro.apps.sgd_mf import build_orion_program as build_sgd_mf
from repro.apps.slr import SLRApp, SLRHyper
from repro.apps.slr import build_orion_program as build_slr

__all__ = [
    "OrionProgram",
    "SerialApp",
    "CooccurrenceDataset",
    "GloVeApp",
    "GloVeHyper",
    "build_glove",
    "cooccurrence_corpus",
    "GBTHyper",
    "build_gbt",
    "LDAApp",
    "LDAHyper",
    "build_lda",
    "MLPApp",
    "MLPHyper",
    "build_mlp",
    "AdaGrad",
    "AdaRevision",
    "MFHyper",
    "SGDMFApp",
    "build_sgd_mf",
    "SLRApp",
    "SLRHyper",
    "build_slr",
]
