"""Observability for the simulated runtime: tracing, metrics, exporters.

Everything in this package is aligned to the *virtual* clock the runtime
simulates — spans are placed where the timing model put the work, not
where the host CPU happened to run it.  See ``docs/observability.md`` for
the span taxonomy, metric names, and how to open a trace in Perfetto.

Quick use::

    from repro.obs import MetricsRegistry, Tracer, write_chrome_trace

    from repro.obs.observability import Observability

    obs = Observability.enabled()
    tracer, metrics = obs.tracer, obs.metrics
    ctx = OrionContext(cluster=cluster, obs=obs)
    ...  # build and run parallel loops
    write_chrome_trace(tracer, "trace.json")   # open in ui.perfetto.dev
    print(straggler_report(tracer, metrics))
"""

from repro.obs.export import (
    add_traffic_spans,
    chrome_trace_events,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.insight import (
    EpochAttribution,
    Segment,
    WorkerAttribution,
    attribute_epochs,
    insight_report,
    paired_prediction,
    prediction_error,
)
from repro.obs.metrics import (
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.observability import Observability
from repro.obs.report import straggler_report, utilization_lines
from repro.obs.runstore import (
    RunRecord,
    RunStore,
    Verdict,
    check_store,
    compare_records,
    loop_signature,
    record_run,
)
from repro.obs.tracer import NULL_TRACER, Span, Tracer, wall_process

__all__ = [
    "Span",
    "Tracer",
    "NULL_TRACER",
    "wall_process",
    "Observability",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRICS",
    "chrome_trace_events",
    "to_chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
    "add_traffic_spans",
    "straggler_report",
    "utilization_lines",
    "Segment",
    "WorkerAttribution",
    "EpochAttribution",
    "attribute_epochs",
    "insight_report",
    "paired_prediction",
    "prediction_error",
    "RunRecord",
    "RunStore",
    "Verdict",
    "loop_signature",
    "record_run",
    "compare_records",
    "check_store",
]
