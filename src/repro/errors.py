"""Exception hierarchy for the Orion reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""

from __future__ import annotations

from typing import Any, Optional


class ReproError(Exception):
    """Base class for every exception raised by this package.

    Analyzer-facing subclasses may carry a structured
    :class:`repro.analysis.lint.Diagnostic` alongside the human-readable
    message; ``repro lint`` and ``ParallelLoop.diagnostics()`` surface it
    with its stable code and source location instead of the bare string.
    """

    def __init__(self, *args: Any, diagnostic: Optional[Any] = None) -> None:
        super().__init__(*args)
        self.diagnostic = diagnostic


class MaterializationError(ReproError):
    """A DistArray operation required a materialized array but got a lazy one,
    or materialization itself failed (e.g. a parser raised on a text line)."""


class SubscriptError(ReproError):
    """A DistArray point/set query used an invalid subscript (wrong arity,
    out-of-bounds constant index, unsupported index object)."""


class DependenceError(ReproError):
    """Static dependence analysis failed in a way that is a bug rather than a
    conservative fallback (e.g. inconsistent dependence vector arithmetic)."""


class ParallelizationError(ReproError):
    """No dependence-preserving parallelization exists for a loop and the
    program did not opt into a semantic relaxation (buffers / unordered)."""


class AnalysisError(ReproError):
    """The loop body's source could not be analyzed at all (e.g. source is
    unavailable, the body is not a plain function, or the iteration-space
    argument is not a DistArray)."""


class PartitionError(ReproError):
    """Iteration-space or DistArray partitioning was given invalid arguments
    (e.g. zero partitions, a dimension out of range)."""


class ExecutionError(ReproError):
    """The distributed executor hit an inconsistent state at run time (e.g. a
    worker accessed an element outside its assigned partition in validation
    mode, or the schedule referenced an unknown partition)."""


class CheckpointError(ReproError):
    """Saving or restoring a DistArray checkpoint failed."""


class AccumulatorError(ReproError):
    """An accumulator was used incorrectly (unknown name, non-associative
    aggregation request, reset of an unregistered accumulator)."""


class FaultError(ReproError):
    """A fault plan is malformed (conflicting crash coordinates, invalid
    drop probability, unparsable ``--faults`` spec) or recovery was asked
    to proceed from an impossible state."""
