"""Counters, gauges and histograms for the simulated runtime.

A :class:`MetricsRegistry` is a flat namespace of named instruments the
runtime increments as it executes: entries processed, bytes moved by
traffic kind, prefetch cache hits, kernel-vs-scalar path counts,
serializability-validator checks.  Like the tracer, a disabled registry
(:data:`NULL_METRICS`) costs one attribute check per update — instrument
handles it returns are shared no-op objects.

Metric names used by the runtime are listed in ``docs/observability.md``.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRICS",
]


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the total."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount


class Gauge:
    """A value that can move both ways (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Streaming summary of observed samples (count/sum/min/max)."""

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> Dict[str, float]:
        return {
            "count": float(self.count),
            "sum": self.total,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
            "mean": self.mean,
        }


class _NullCounter:
    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass


class _NullGauge:
    __slots__ = ()

    def set(self, value: float) -> None:
        pass


class _NullHistogram:
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class MetricsRegistry:
    """Named instruments, created on first use.

    Args:
        enabled: when ``False`` the registry records nothing and every
            instrument accessor returns a shared no-op handle.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def __bool__(self) -> bool:
        return self.enabled

    def counter(self, name: str) -> Counter:
        if not self.enabled:
            return _NULL_COUNTER  # type: ignore[return-value]
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def gauge(self, name: str) -> Gauge:
        if not self.enabled:
            return _NULL_GAUGE  # type: ignore[return-value]
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge(name)
        return gauge

    def histogram(self, name: str) -> Histogram:
        if not self.enabled:
            return _NULL_HISTOGRAM  # type: ignore[return-value]
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(name)
        return histogram

    def snapshot(self, prefix: Optional[str] = None) -> Dict[str, Any]:
        """All current values as one JSON-safe dict.

        Counters and gauges map to their value; histograms map to their
        ``summary()`` dict.  Names are sorted for stable output; with
        ``prefix`` only instruments whose name starts with it are
        included (e.g. ``snapshot("sanitize_")``).
        """
        out: Dict[str, Any] = {}
        for name in sorted(self._counters):
            out[name] = self._counters[name].value
        for name in sorted(self._gauges):
            out[name] = self._gauges[name].value
        for name in sorted(self._histograms):
            out[name] = self._histograms[name].summary()
        if prefix is not None:
            out = {
                name: value for name, value in out.items()
                if name.startswith(prefix)
            }
        return out


#: Shared disabled registry: what un-instrumented code paths receive.
NULL_METRICS = MetricsRegistry(enabled=False)
