"""Ablation A3 — the partitioning-dimension heuristic (Sec. 4.3).

Among candidate partitionings, Orion picks the one minimizing the
DistArray volume communicated during the loop (for SGD MF: pin the larger
factor matrix, rotate the smaller — paper Fig. 6 step 4).  The application
can override the heuristic; this ablation forces the opposite orientation
and measures the extra rotation traffic and time.
"""

import pytest

import _workloads as wl
from repro.analysis.strategy import PlacementKind
from repro.apps import build_sgd_mf

EPOCHS = 3


def _run(force_dims):
    dataset = wl.netflix_bench()  # 300 rows x 240 cols: W bigger than H
    program = build_sgd_mf(
        dataset,
        cluster=wl.mf_cluster(),
        hyper=wl.MF_HYPER,
        force_dims=force_dims,
    )
    history = program.run(EPOCHS)
    rotated = [
        name
        for name, placement in program.plan.placements.items()
        if placement.kind is PlacementKind.ROTATED
    ]
    bytes_per_epoch = history.records[-1].bytes_sent
    return history.time_per_iteration(), bytes_per_epoch, rotated


@pytest.mark.benchmark(group="ablation")
def test_ablation_partition_dim(benchmark, report):
    heuristic, forced = benchmark.pedantic(
        lambda: (_run(None), _run((1, 0))), rounds=1, iterations=1
    )
    rows = [
        (
            "heuristic (rotate smaller H)",
            f"{heuristic[0]:.4f}",
            f"{heuristic[1] / 1e3:.1f}",
            ",".join(heuristic[2]),
        ),
        (
            "forced worst (rotate larger W)",
            f"{forced[0]:.4f}",
            f"{forced[1] / 1e3:.1f}",
            ",".join(forced[2]),
        ),
    ]
    report(
        "Ablation A3: partitioning-dimension heuristic (SGD MF)",
        wl.fmt_table(
            ["choice", "s/iter", "KB/epoch", "rotated arrays"], rows
        )
        + "\nexpected shape: the heuristic rotates the smaller factor and "
        "moves fewer bytes",
    )
    assert heuristic[2] == ["H"]
    assert forced[2] == ["W"]
    assert heuristic[1] < forced[1]  # fewer bytes per epoch
    assert heuristic[0] <= forced[0] * 1.02  # never meaningfully slower