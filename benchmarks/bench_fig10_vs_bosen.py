"""Fig. 10 — Orion vs. Bösen: convergence over time and over iterations.

Paper results (12 machines / 384 workers):

* (a) SGD MF AdaRev over *time*: Orion (and Orion AdaRev) reach low loss
  fastest; manual data parallelism on Bösen trails; managed communication
  plus AdaRev closes much of the gap.
* (b) SGD MF AdaRev over *iterations*: same ranking, driven by dependence
  preservation.
* (c) LDA on ClueWeb over time: managed communication's extra traffic costs
  CPU, so Orion wins overall despite Bösen's raw throughput.
"""

import pytest

import _workloads as wl
from repro.apps import LDAApp, MFHyper, SGDMFApp, build_lda, build_sgd_mf
from repro.baselines import run_bosen, run_managed_comm

EPOCHS_MF = 8
EPOCHS_LDA = 5


def _run_mf():
    dataset = wl.netflix_bench()
    cluster = wl.mf_cluster(adarev=True)
    hyper = wl.MF_ADAREV_HYPER
    runs = {
        # Two manual data-parallel rows: the paper's "Manual Data
        # Parallelism on Bosen" (AdaRev, synced once per pass — it degrades
        # badly, which is why CM exists) and a plain-SGD variant for
        # reference.
        "Bosen DP (AdaRev)": run_bosen(
            SGDMFApp(dataset, hyper), cluster, EPOCHS_MF
        ),
        "Bosen DP (plain SGD)": run_bosen(
            SGDMFApp(dataset, MFHyper(rank=hyper.rank, step_size=0.04)),
            cluster,
            EPOCHS_MF,
        ),
        "Bosen CM + AdaRev": run_managed_comm(
            SGDMFApp(dataset, hyper),
            cluster,
            EPOCHS_MF,
            bandwidth_budget_mbps=1600,
        ),
        "Orion": build_sgd_mf(
            dataset,
            cluster=wl.mf_cluster(adarev=False),
            hyper=wl.MF_HYPER,
        ).run(EPOCHS_MF),
        "Orion AdaRev": build_sgd_mf(
            dataset, cluster=cluster, hyper=hyper
        ).run(EPOCHS_MF),
    }
    return runs


def _run_lda():
    dataset = wl.clueweb_bench()
    cluster = wl.lda_cluster()
    runs = {
        "Bosen data parallel": run_bosen(
            LDAApp(dataset, wl.LDA_HYPER, seed=0), cluster, EPOCHS_LDA
        ),
        "Bosen CM": run_managed_comm(
            LDAApp(dataset, wl.LDA_HYPER, seed=0),
            cluster,
            EPOCHS_LDA,
            bandwidth_budget_mbps=2560,
            cpu_overhead_s_per_mb=5e-3,
        ),
        "Orion": build_lda(
            dataset,
            cluster=cluster,
            hyper=wl.LDA_HYPER,
            pipeline_depth=wl.BENCH_PIPELINE_DEPTH,
        ).run(EPOCHS_LDA),
    }
    return runs


def _table(runs, fmt):
    rows = []
    for label, history in runs.items():
        rows.append(
            [
                label,
                fmt.format(history.final_loss),
                f"{history.total_time_s:.3f}",
                f"{history.time_per_iteration():.4f}",
            ]
        )
    return wl.fmt_table(
        ["engine", "final loss", "total time (s)", "s/iter"], rows
    )


@pytest.mark.benchmark(group="fig10")
def test_fig10ab_mf_adarev(benchmark, report):
    runs = benchmark.pedantic(_run_mf, rounds=1, iterations=1)
    # Per-iteration series (Fig. 10b).
    series = "\n".join(
        wl.fmt_series(
            label, list(zip(range(1, EPOCHS_MF + 1), history.losses)), "{:.0f}"
        )
        for label, history in runs.items()
    )
    report(
        "Fig 10a/b: Orion vs Bosen, SGD MF AdaRev (Netflix-like)",
        _table(runs, "{:.1f}")
        + "\n\nloss per iteration (Fig 10b):\n"
        + series
        + "\npaper shape: Orion AdaRev fastest; CM+AdaRev close; plain "
        "data parallelism slowest per iteration",
    )
    # Ranking (Fig. 10b): Orion AdaRev best, CM+AdaRev close behind, plain
    # data parallelism worse, AdaRev-without-CM worst (staleness breaks the
    # adaptive accumulators — the reason Bösen pairs AdaRev with CM).
    finals = {k: h.final_loss for k, h in runs.items()}
    assert finals["Orion AdaRev"] < finals["Bosen CM + AdaRev"]
    assert finals["Bosen CM + AdaRev"] < finals["Bosen DP (plain SGD)"]
    assert finals["Bosen DP (plain SGD)"] < finals["Bosen DP (AdaRev)"]

    # Over time (Fig. 10a): Orion reaches Bösen's plain-DP quality sooner.
    target = finals["Bosen DP (plain SGD)"]
    orion_time = runs["Orion AdaRev"].time_to_reach(target)
    assert orion_time is not None
    assert orion_time < runs["Bosen DP (plain SGD)"].total_time_s


@pytest.mark.benchmark(group="fig10")
def test_fig10c_lda_over_time(benchmark, report):
    runs = benchmark.pedantic(_run_lda, rounds=1, iterations=1)
    report(
        "Fig 10c: Orion vs Bosen, LDA over time (ClueWeb-like)",
        _table(runs, "{:.4f}")
        + "\npaper shape: Orion converges fastest overall; CM's extra "
        "communication costs CPU and trails Orion",
    )
    initial = runs["Orion"].meta["initial_loss"]
    progress = {k: initial - h.final_loss for k, h in runs.items()}
    # Paper (ClueWeb): CM matches Orion's *per-iteration* convergence...
    assert progress["Bosen CM"] > 0.8 * progress["Orion"]
    # ...but its aggressive communication costs CPU, so Orion's *overall*
    # (wall-clock) convergence is faster.
    assert runs["Orion"].total_time_s < 0.8 * runs["Bosen CM"].total_time_s
    target = initial - 0.8 * progress["Bosen CM"]
    orion_time = runs["Orion"].time_to_reach(target)
    cm_time = runs["Bosen CM"].time_to_reach(target)
    assert orion_time is not None and cm_time is not None
    assert orion_time < cm_time
    # Plain data parallelism converges slowest per iteration.
    assert progress["Bosen data parallel"] < progress["Orion"]
