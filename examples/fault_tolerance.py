"""Fault injection and crash recovery on the virtual timeline.

Runs the paper's Fig. 5 SGD MF program three times on the same data:

1. fault-free — the reference run;
2. under a `FaultPlan` — a worker crash mid-epoch, 1% message drops and a
   straggler — with periodic checkpoints, so the loop detects the crash,
   restores the latest complete checkpoint, and replays the lost epochs;
3. fault-free again with the `LoopOptions` bundle attached but empty, to
   show the no-plan path is bit-identical to the plain one.

The point the output makes: faults cost *virtual time*, never *data* —
the faulted run lands on exactly the same parameters and loss as the
clean one, just later on the virtual clock.

Run:  python examples/fault_tolerance.py
"""

import tempfile

import numpy as np

from repro import (
    CheckpointConfig,
    ClusterSpec,
    FaultPlan,
    LoopOptions,
    MessageDrops,
    Observability,
    Straggler,
    WorkerCrash,
)
from repro.apps import MFHyper, build_sgd_mf
from repro.data import netflix_like

EPOCHS = 6

dataset = netflix_like(num_rows=60, num_cols=48, num_ratings=2400, seed=11)
hyper = MFHyper(rank=6, step_size=0.05)
cluster = ClusterSpec(num_machines=2, workers_per_machine=2)


def build(**kw):
    return build_sgd_mf(dataset, cluster=cluster, hyper=hyper, seed=3, **kw)


# ---- 1. the reference run ------------------------------------------------ #
clean = build()
clean_history = clean.run(EPOCHS)
clean_state = {n: clean.arrays[n].values.copy() for n in ("W", "H")}
print(f"clean run:   loss {clean_history.final_loss:.4f}, "
      f"virtual time {clean_history.total_time_s * 1e3:.2f} ms")

# ---- 2. the same run under faults ---------------------------------------- #
plan = FaultPlan(
    crashes=(WorkerCrash(worker=1, epoch=4, frac=0.5),),
    drops=MessageDrops(probability=0.01, seed=7),
    stragglers=(Straggler(worker=0, slowdown=3.0, epoch=2),),
)
obs = Observability.enabled()
ckpt_dir = tempfile.mkdtemp(prefix="orion_faults_")
faulted = build(
    options=LoopOptions(
        faults=plan,
        checkpoint=CheckpointConfig(ckpt_dir, every_n_epochs=2),
    ),
    obs=obs,
)
faulted_history = faulted.run(EPOCHS)
faulted_state = {n: faulted.arrays[n].values.copy() for n in ("W", "H")}
print(f"faulted run: loss {faulted_history.final_loss:.4f}, "
      f"virtual time {faulted_history.total_time_s * 1e3:.2f} ms, "
      f"recoveries {faulted_history.meta.get('recoveries', 0)}")

snapshot = obs.metrics.snapshot()
print("  crashes detected: ", snapshot.get("worker_crashes_total", 0))
print("  messages dropped:  ", snapshot.get("message_drops_total", 0))
print("  checkpoints taken: ", snapshot.get("checkpoints_total", 0))
fault_spans = [s for s in obs.tracer.spans
               if s.cat in ("fault", "recovery", "checkpoint", "straggler")]
print(f"  fault-related spans on the trace: {len(fault_spans)}")

# ---- the invariant: time inflated, data intact --------------------------- #
assert faulted_history.meta.get("recoveries") == 1
assert faulted_history.total_time_s > clean_history.total_time_s
for name in ("W", "H"):
    assert np.array_equal(clean_state[name], faulted_state[name])
print("faults cost virtual time, never data: final parameters bit-equal, "
      f"clock inflated {faulted_history.total_time_s / clean_history.total_time_s:.2f}x")

# ---- 3. no plan attached -> bit-identical to the plain run --------------- #
plain_again = build(options=LoopOptions())
again_history = plain_again.run(EPOCHS)
assert [r.time_s for r in again_history.records] == [
    r.time_s for r in clean_history.records
]
assert all(
    np.array_equal(clean_state[n], plain_again.arrays[n].values)
    for n in ("W", "H")
)
print("no-plan run with LoopOptions() attached: bit-identical to plain run")
