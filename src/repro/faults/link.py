"""An unreliable network link: drops, timeouts, retries — memoized.

The executor computes each transfer's cost in two places (the schedule
timing model and the traffic/span emitter).  :class:`FaultyLink` keys
every message by ``(epoch serial, message key)`` and memoizes its
:class:`LinkOutcome`, so both call sites observe the *same* drop outcome
and the injected loss stays deterministic no matter how often a message's
cost is asked for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.faults.plan import FaultPlan
from repro.obs.metrics import NULL_METRICS, MetricsRegistry
from repro.runtime.network import NetworkModel

__all__ = ["LinkOutcome", "FaultyLink"]


@dataclass(frozen=True)
class LinkOutcome:
    """The resolved fate of one message on an unreliable link.

    Attributes:
        seconds: total virtual time from first send to delivery (retry
            penalty + the surviving attempt's transfer time).
        attempts: sends performed (1 = delivered first try).
        nbytes_sent: bytes put on the wire across all attempts.
    """

    seconds: float
    attempts: int
    nbytes_sent: float


class FaultyLink:
    """Applies a :class:`FaultPlan`'s message drops to network transfers.

    Args:
        plan: the fault plan (supplies drop probability and retry policy).
        network: the underlying loss-free cost model.
        metrics: observability registry; counts ``messages_total``,
            ``message_drops_total`` and ``retry_seconds_total``.
    """

    def __init__(
        self,
        plan: FaultPlan,
        network: NetworkModel,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.plan = plan
        self.network = network
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self._epoch_serial = 0
        self._memo: Dict[Tuple, LinkOutcome] = {}

    def begin_epoch(self, epoch_serial: int) -> None:
        """Start a new message namespace (and clear the per-epoch memo)."""
        self._epoch_serial = int(epoch_serial)
        self._memo.clear()

    def transfer(
        self, nbytes: float, key: Tuple, intra_machine: bool = False
    ) -> LinkOutcome:
        """Deliver one message, resolving (and memoizing) its drops.

        ``key`` identifies the message within the current epoch — e.g.
        ``("rotation", worker, step)`` — and fully determines the drop
        outcome together with the plan's seed and the epoch serial.
        """
        memo_key = (key, intra_machine)
        cached = self._memo.get(memo_key)
        if cached is not None:
            return cached
        drops = self.plan.drop_count(self._epoch_serial, key)
        attempts = drops + 1
        seconds = self.network.reliable_transfer_time(
            nbytes, drops, self.plan.retry, intra_machine
        )
        outcome = LinkOutcome(
            seconds=seconds,
            attempts=attempts,
            nbytes_sent=float(nbytes) * attempts,
        )
        self._memo[memo_key] = outcome
        metrics = self.metrics
        if metrics.enabled:
            metrics.counter("messages_total").inc(attempts)
            if drops:
                metrics.counter("message_drops_total").inc(drops)
                metrics.counter("retry_seconds_total").inc(
                    self.plan.retry.penalty_s(drops)
                )
        return outcome

    def transfer_time(
        self, nbytes: float, intra_machine: bool = False, key: Tuple = ()
    ) -> float:
        """Drop-aware replacement for ``NetworkModel.transfer_time``."""
        return self.transfer(nbytes, key, intra_machine).seconds
