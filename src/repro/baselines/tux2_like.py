"""TuX²-style mini-batch graph engine (paper Sec. 6.1; ref. [49]).

TuX² is a graph-processing system optimized for ML: on SGD MF it posts a
per-iteration time roughly *half* of Orion's (0.7 s vs 1.4 s per Netflix
pass on 8 comparable machines) — yet its best tuned run reaches a nonzero
squared loss of ~7x10^10 in ~600 s on 32 machines, while Orion reaches
~8.3x10^9 in ~68 s on 8 machines.  The throughput comes from a lean C++
runtime and bulk-synchronous mini-batch execution; the convergence gap
comes from violating data dependence: every vertex update within a
mini-batch reads stale snapshot values.

The engine here reproduces those semantics: workers process mini-batch
rounds against a parameter snapshot (gradients within a round never see
each other), synchronizing once per round, with a cost model faster per
entry than Orion's.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.apps.sgd_mf import SGDMFApp
from repro.baselines.bosen import shard_entries
from repro.runtime.cluster import ClusterSpec
from repro.runtime.history import RunHistory

__all__ = ["run_tux2_minibatch"]


def run_tux2_minibatch(
    app: SGDMFApp,
    cluster: ClusterSpec,
    epochs: int,
    rounds_per_epoch: int = 4,
    seed: int = 0,
    speed_factor: float = 0.5,
    step_scale: float = 2.0,
    label: Optional[str] = None,
) -> RunHistory:
    """Train SGD MF with TuX²-style bulk-synchronous mini-batching.

    Args:
        rounds_per_epoch: mini-batch synchronization rounds per data pass
            (TuX²'s tuned mini-batch size corresponds to a handful of
            rounds per pass).
        speed_factor: per-entry compute relative to Orion's cost model —
            TuX²'s lean C++ engine is roughly 2x faster per pass.
        step_scale: mini-batch methods tolerate a larger step than
            per-entry SGD; TuX² runs are tuned this way in the paper.
    """
    workers = cluster.num_workers
    state = app.init_state(seed)
    shards = shard_entries(list(app.entries()), workers, seed)
    entry_cost = cluster.cost.entry_cost_s * speed_factor
    step_size = app.hyper.step_size * step_scale
    model_nbytes = app.model_nbytes(state)
    history = RunHistory(label=label or "TuX2-style mini-batch")
    history.meta["initial_loss"] = app.loss(state)
    clock = 0.0

    for _epoch in range(epochs):
        epoch_start = clock
        epoch_bytes = 0.0
        for round_idx in range(rounds_per_epoch):
            grads = {name: np.zeros_like(array) for name, array in state.items()}
            counts = {
                name: np.ones(array.shape[-1]) for name, array in state.items()
            }
            slowest = 0.0
            for worker in range(workers):
                shard = shards[worker]
                lo = len(shard) * round_idx // rounds_per_epoch
                hi = len(shard) * (round_idx + 1) // rounds_per_epoch
                batch = shard[lo:hi]
                worker_grads, worker_counts = app.batch_gradient(state, batch)
                for name in worker_grads:
                    grads[name] += worker_grads[name]
                    counts[name] += worker_counts[name][0] - 1.0
                slowest = max(slowest, (hi - lo) * entry_cost)
            for name in grads:
                state[name] = state[name] - step_size * grads[name] / np.maximum(
                    counts[name], 1.0
                )
            # TuX² partitions vertex (parameter) data across machines, so a
            # sync round moves each machine's shard in parallel — the
            # per-link payload is the model divided across machines.
            round_bytes = 2.0 * model_nbytes * cluster.num_machines
            transfer = cluster.network.transfer_time(
                2.0 * model_nbytes / cluster.num_machines
            )
            clock += slowest
            history.traffic.record(clock, clock + transfer, round_bytes, "sync")
            clock += transfer + cluster.cost.sync_overhead_s
            epoch_bytes += round_bytes
        history.append(app.loss(state), clock - epoch_start, epoch_bytes)
    history.meta["state"] = state
    return history
