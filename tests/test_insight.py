"""Tests for the trace-consumption insight layer (repro.obs.insight).

The tentpole invariant: per-epoch time attribution — compute vs.
prefetch/flush waits vs. barrier vs. idle — tiles every worker's
timeline with no gaps or overlaps, so the attributed seconds sum *bit
for bit* to the epoch makespan on the virtual clock, for every bundled
application.  On top of that: bottleneck what-if estimates, critical
paths, and virtual-vs-real prediction error.
"""

import math

import pytest

from repro.obs import (
    MetricsRegistry,
    Tracer,
    attribute_epochs,
    insight_report,
    paired_prediction,
    prediction_error,
)
from repro.obs.insight import BUSY_CATEGORIES, IDLE_CATEGORIES
from repro.runtime.cluster import ClusterSpec

APPS = ["mf", "mf-adarev", "lda", "lda-1d", "slr", "gbt"]


def _build_program(app, data, cluster, tracer, metrics):
    from repro.apps import (
        LDAHyper,
        MFHyper,
        SLRHyper,
        build_gbt,
        build_lda,
        build_sgd_mf,
        build_slr,
    )

    obs = {"tracer": tracer, "metrics": metrics}
    if app == "mf":
        return build_sgd_mf(
            data, cluster=cluster, hyper=MFHyper(rank=4), seed=3, **obs
        )
    if app == "mf-adarev":
        return build_sgd_mf(
            data, cluster=cluster,
            hyper=MFHyper(rank=4, adarev=True, adarev_step=0.15),
            seed=3, **obs,
        )
    if app == "lda":
        return build_lda(
            data, cluster=cluster, hyper=LDAHyper(num_topics=4), seed=3,
            parallelism="2d", **obs,
        )
    if app == "lda-1d":
        return build_lda(
            data, cluster=cluster, hyper=LDAHyper(num_topics=4), seed=3,
            parallelism="1d", **obs,
        )
    if app == "slr":
        return build_slr(
            data, cluster=cluster, hyper=SLRHyper(step_size=0.2), seed=3,
            **obs,
        )
    if app == "gbt":
        return build_gbt(data, cluster=cluster, **obs)
    raise AssertionError(app)


@pytest.fixture(scope="module")
def app_traces(mf_small, corpus_small, slr_small, table_small):
    """Every bundled app run for two traced epochs: app -> tracer."""
    data = {
        "mf": mf_small,
        "mf-adarev": mf_small,
        "lda": corpus_small,
        "lda-1d": corpus_small,
        "slr": slr_small,
        "gbt": table_small,
    }
    traces = {}
    for app in APPS:
        cluster = ClusterSpec(num_machines=2, workers_per_machine=2)
        tracer, metrics = Tracer(), MetricsRegistry()
        program = _build_program(app, data[app], cluster, tracer, metrics)
        program.run(2)
        traces[app] = tracer
    return traces


class TestExactAttribution:
    @pytest.mark.parametrize("app", APPS)
    def test_attribution_is_provably_exact(self, app_traces, app):
        """Acceptance: attributed time sums bit-exactly to the epoch
        makespan on the virtual clock, for every epoch of every app."""
        tracer = app_traces[app]
        attributions = attribute_epochs(tracer, "orion")
        assert attributions, f"{app}: no epochs attributed"
        for attribution in attributions:
            assert attribution.clock == "virtual"
            problems = attribution.verify_exact()
            assert problems == [], f"{app}: {problems}"
            for worker in attribution.workers.values():
                assert (
                    worker.attributed_seconds() == attribution.makespan
                ), f"{app}: attribution != makespan bit-for-bit"

    @pytest.mark.parametrize("app", APPS)
    def test_categories_cover_known_taxonomy(self, app_traces, app):
        attributions = attribute_epochs(app_traces[app], "orion")
        known = set(BUSY_CATEGORIES) | set(IDLE_CATEGORIES)
        for attribution in attributions:
            for worker in attribution.workers.values():
                by_cat = worker.seconds_by_category()
                assert set(by_cat) <= known
                assert all(value >= 0.0 for value in by_cat.values())

    @pytest.mark.parametrize("app", APPS)
    def test_totals_span_all_workers(self, app_traces, app):
        for attribution in attribute_epochs(app_traces[app], "orion"):
            totals = attribution.totals()
            capacity = attribution.makespan * len(attribution.workers)
            assert math.fsum(totals.values()) == pytest.approx(capacity)


class TestBottleneckAnalysis:
    def test_what_if_estimates_bound_actual(self, app_traces):
        for attribution in attribute_epochs(app_traces["mf"], "orion"):
            scenarios = attribution.what_if()
            assert scenarios["actual"] == attribution.makespan
            # Removing waits can only shrink the (estimated) makespan.
            assert 0.0 < scenarios["balanced"] <= scenarios["actual"]
            assert 0.0 < scenarios["comm_free"] <= scenarios["actual"]
            assert 0.0 < scenarios["perfect_prefetch"] <= scenarios["actual"]

    def test_critical_path_is_one_block_per_step(self, app_traces):
        attribution = attribute_epochs(app_traces["mf"], "orion")[-1]
        path = attribution.critical_path()
        assert path
        steps = [step for step, _name, _track, _duration in path]
        assert steps == sorted(set(steps))
        assert all(duration >= 0.0 for _s, _n, _t, duration in path)


class TestPredictionError:
    def test_signed_per_epoch_error(self):
        report = prediction_error([2.0, 1.0], [1.0, 1.0])
        assert [row["error_pct"] for row in report["epochs"]] == [100.0, 0.0]
        assert report["real_total_s"] == 3.0
        assert report["predicted_total_s"] == 2.0
        assert report["total_error_pct"] == pytest.approx(50.0)
        assert report["mean_abs_error_pct"] == pytest.approx(50.0)

    def test_empty_series(self):
        assert prediction_error([], [1.0]) == {}

    def test_paired_prediction_requires_wall_process(self, app_traces):
        # Virtual-clock-only traces have no @wall twin to pair with.
        assert paired_prediction(app_traces["mf"], "orion") is None


class TestInsightReport:
    def test_report_renders_and_is_exact(self, app_traces):
        report = insight_report(app_traces["mf"])
        assert "insight: orion (virtual clock)" in report
        assert "what-if" in report
        assert "yes" in report and " NO" not in report

    def test_report_carries_diagnostics(self, app_traces):
        report = insight_report(
            app_traces["mf"], diagnostics=["W501: no kernel for you"]
        )
        assert "W501" in report

    def test_empty_tracer_reports_nothing(self):
        assert "no traced epochs" in insight_report(Tracer())
