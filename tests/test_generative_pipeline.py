"""Generative end-to-end property test: random bodies → plans → validation.

For randomly generated (supported-grammar) loop bodies, the full pipeline —
AST analysis, Alg. 2, strategy choice, partitioning, scheduling, execution
— must either refuse to parallelize (ParallelizationError) or produce a
schedule that passes the serializability validator.  A validator failure
would mean the analyzer claimed independence between genuinely dependent
blocks: the one unforgivable auto-parallelizer bug, probed here from the
source-code level rather than the dependence-vector level.
"""

import itertools
import linecache

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.loop_info import analyze_loop_body
from repro.analysis.strategy import choose_plan
from repro.core.distarray import DistArray
from repro.errors import ParallelizationError
from repro.runtime.cluster import ClusterSpec
from repro.runtime.executor import OrionExecutor

_counter = itertools.count()

EXTENT = 8  # iteration space is EXTENT x EXTENT
PAD = 2     # array extents exceed the iteration extent so +1 offsets fit


def _compile_body(source: str, env: dict):
    """Compile a generated body with retrievable source (linecache trick)."""
    filename = f"<generated-body-{next(_counter)}>"
    linecache.cache[filename] = (
        len(source),
        None,
        source.splitlines(True),
        filename,
    )
    code = compile(source, filename, "exec")
    namespace = dict(env)
    exec(code, namespace)
    return namespace["body"]


# One statement template per access pattern.  {a} is the array name,
# {sub} the subscript.  Read-modify-write keeps the same subscript on both
# sides, which is the paper's applications' shape.
_SUBSCRIPTS = [
    "key[0], :",
    "key[1], :",
    ":, key[0]",
    ":, key[1]",
    "key[0] + 1, :",
    ":, key[1] + 1",
    "key[0], key[1]",
    "0, :",
]


def _statement(array: str, subscript: str, is_write: bool) -> str:
    if is_write:
        return (
            f"    {array}[{subscript}] = {array}[{subscript}] * 0.9 + value\n"
        )
    return f"    _ = {array}[{subscript}]\n"


_access_strategy = st.lists(
    st.tuples(
        st.sampled_from(["A", "B"]),
        st.sampled_from(range(len(_SUBSCRIPTS))),
        st.booleans(),
    ),
    min_size=1,
    max_size=4,
)


class TestGeneratedBodies:
    @settings(max_examples=40, deadline=None)
    @given(accesses=_access_strategy, ordered=st.booleans())
    def test_plan_always_validates(self, accesses, ordered):
        size = EXTENT + PAD
        space = DistArray.from_entries(
            [((i, j), 1.0) for i in range(EXTENT) for j in range(EXTENT)],
            name=f"gen_space_{next(_counter)}",
            shape=(EXTENT, EXTENT),
        ).materialize()
        env = {
            "A": DistArray.randn(
                size, size, name=f"genA_{next(_counter)}", seed=1
            ).materialize(),
            "B": DistArray.randn(
                size, size, name=f"genB_{next(_counter)}", seed=2
            ).materialize(),
        }
        source = "def body(key, value):\n" + "".join(
            _statement(array, _SUBSCRIPTS[sub_idx], is_write)
            for array, sub_idx, is_write in accesses
        )
        body = _compile_body(source, env)
        info = analyze_loop_body(body, space, ordered=ordered)
        try:
            plan = choose_plan(info)
        except ParallelizationError:
            return  # refusing to parallelize is always sound
        executor = OrionExecutor(
            body,
            info,
            plan,
            ClusterSpec(num_machines=2, workers_per_machine=2),
            validate=True,
        )
        # Raises ExecutionError("serializability violation ...") on any
        # missed dependence.
        executor.run_epoch()

    @settings(max_examples=20, deadline=None)
    @given(accesses=_access_strategy)
    def test_refs_extracted_match_source(self, accesses):
        """Every generated access appears in the analysis' reference list."""
        size = EXTENT + PAD
        space = DistArray.from_entries(
            [((i, j), 1.0) for i in range(EXTENT) for j in range(EXTENT)],
            name=f"gen_space_{next(_counter)}",
            shape=(EXTENT, EXTENT),
        ).materialize()
        env = {
            "A": DistArray.randn(
                size, size, name=f"genA_{next(_counter)}", seed=1
            ).materialize(),
            "B": DistArray.randn(
                size, size, name=f"genB_{next(_counter)}", seed=2
            ).materialize(),
        }
        source = "def body(key, value):\n" + "".join(
            _statement(array, _SUBSCRIPTS[sub_idx], is_write)
            for array, sub_idx, is_write in accesses
        )
        body = _compile_body(source, env)
        info = analyze_loop_body(body, space)
        touched = {array for array, _s, _w in accesses}
        assert set(info.refs) == touched
        for array in touched:
            expected_writes = sum(
                1 for a, _s, w in accesses if a == array and w
            )
            found_writes = sum(1 for r in info.refs[array] if r.is_write)
            assert found_writes == expected_writes


# --------------------------------------------------------------------- #
# Generative prefetch-completeness: random SLR-shaped bodies             #
# --------------------------------------------------------------------- #

_feature_patterns = st.lists(
    st.sampled_from(["direct", "plus_one", "double_read"]),
    min_size=1,
    max_size=3,
)


class TestGeneratedPrefetchCompleteness:
    @settings(max_examples=25, deadline=None)
    @given(patterns=_feature_patterns)
    def test_prefetch_covers_all_server_reads(self, patterns):
        """Random bodies reading a server array through value-derived
        indices: the synthesized prefetch function must cover every read
        the body performs (checked with a recording broker)."""
        from repro.analysis.prefetch import synthesize_prefetch
        from repro.core import access as access_mod

        weights = DistArray.zeros(
            64, name=f"gen_w_{next(_counter)}"
        ).materialize()
        env = {"weights": weights}
        lines = ["def body(key, sample):\n", "    feats, label = sample\n"]
        for pattern in patterns:
            if pattern == "direct":
                lines.append("    for fid, fval in feats:\n")
                lines.append("        _ = weights[fid] * fval\n")
            elif pattern == "plus_one":
                lines.append("    for fid, fval in feats:\n")
                lines.append("        _ = weights[fid + 1]\n")
            else:
                lines.append("    for fid, fval in feats:\n")
                lines.append("        _ = weights[fid] + weights[fid + 2]\n")
        body = _compile_body("".join(lines), env)

        entries = [
            ((i,), ([(3 * i % 60, 1.0), (7 * i % 60, 2.0)], i % 2))
            for i in range(12)
        ]
        space = DistArray.from_entries(
            entries, name=f"gen_sp_{next(_counter)}", shape=(12,)
        ).materialize()
        info = analyze_loop_body(body, space)
        prefetch = synthesize_prefetch(body, info, ["weights"])
        assert prefetch is not None

        class _Recorder(access_mod.AccessBroker):
            def __init__(self):
                self.reads = set()

            def read(self, array, index):
                if array is weights:
                    idx = index if isinstance(index, tuple) else (index,)
                    self.reads.add(tuple(int(c) for c in idx))
                return array.direct_get(index)

        for key, sample in entries:
            recorder = _Recorder()
            with access_mod.install_broker(recorder):
                body(key, sample)
            predicted = {
                tuple(int(c) for c in idx)
                for name, idx in prefetch(key, sample)
                if name == "weights"
            }
            missing = recorder.reads - predicted
            assert not missing, f"unprefetched reads: {missing}"
