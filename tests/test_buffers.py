"""Unit tests for DistArray Buffers (repro.core.buffers)."""

import numpy as np
import pytest

from repro.core import access
from repro.core.buffers import DistArrayBuffer
from repro.core.distarray import DistArray


def _target(extent=10):
    return DistArray.zeros(extent, name="buf_target").materialize()


class TestBuffering:
    def test_writes_are_buffered_not_applied(self):
        target = _target()
        buf = DistArrayBuffer(target)
        buf[3] = 2.0
        assert target[(3,)] == 0.0
        assert buf.pending_count() == 1

    def test_flush_applies_with_default_add(self):
        target = _target()
        buf = DistArrayBuffer(target)
        buf[3] = 2.0
        applied = buf.flush_all()
        assert applied == 1
        assert target[(3,)] == 2.0
        assert buf.pending_count() == 0

    def test_same_index_writes_combine(self):
        target = _target()
        buf = DistArrayBuffer(target)
        buf[3] = 2.0
        buf[3] = 5.0
        assert buf.pending_count() == 1
        buf.flush_all()
        assert target[(3,)] == 7.0

    def test_custom_combiner(self):
        target = _target()
        buf = DistArrayBuffer(target, combiner=lambda old, new: new)
        buf[3] = 2.0
        buf[3] = 5.0
        buf.flush_all()
        assert target[(3,)] == 5.0

    def test_read_pending_value(self):
        buf = DistArrayBuffer(_target())
        buf[3] = 2.0
        assert buf[3] == 2.0
        assert buf[4] is None

    def test_clear_discards(self):
        target = _target()
        buf = DistArrayBuffer(target)
        buf[3] = 2.0
        buf.clear()
        buf.flush_all()
        assert target[(3,)] == 0.0


class TestPerWorkerIsolation:
    def test_worker_slots_independent(self):
        target = _target()
        buf = DistArrayBuffer(target)
        with access.worker_scope(0):
            buf[1] = 1.0
        with access.worker_scope(1):
            buf[1] = 10.0
        assert buf.pending_count(0) == 1
        assert buf.pending_count(1) == 1
        buf.flush_worker(0)
        assert target[(1,)] == 1.0
        assert buf.pending_count(1) == 1
        buf.flush_worker(1)
        assert target[(1,)] == 11.0

    def test_driver_writes_use_driver_slot(self):
        buf = DistArrayBuffer(_target())
        buf[0] = 1.0
        assert buf.pending_count(access.DRIVER_WORKER) == 1


class TestApplyUDF:
    def test_two_arg_udf(self):
        target = _target()
        buf = DistArrayBuffer(target, apply_fn=lambda cur, up: cur - up)
        buf[2] = 3.0
        buf.flush_all()
        assert target[(2,)] == -3.0

    def test_three_arg_udf_receives_key(self):
        target = _target()
        seen = []

        def udf(key, current, update):
            seen.append(key)
            return current + 2 * update

        buf = DistArrayBuffer(target, apply_fn=udf)
        buf[4] = 1.5
        buf.flush_all()
        assert seen == [(4,)]
        assert target[(4,)] == 3.0

    def test_adagrad_style_udf(self):
        target = _target(5)
        n2 = np.full(5, 1e-8)

        def adagrad(key, current, grad):
            n2[key[0]] += grad * grad
            return current - grad / np.sqrt(n2[key[0]])

        buf = DistArrayBuffer(target, apply_fn=adagrad)
        buf[1] = 2.0
        buf.flush_all()
        assert n2[1] == pytest.approx(4.0, rel=1e-6)
        assert target[(1,)] == pytest.approx(-1.0, rel=1e-3)


class TestMaxDelay:
    def test_tick_forces_flush_at_bound(self):
        buf = DistArrayBuffer(_target(), max_delay=3)
        assert not buf.tick(0)
        assert not buf.tick(0)
        assert buf.tick(0)

    def test_flush_resets_age(self):
        buf = DistArrayBuffer(_target(), max_delay=2)
        buf.tick(0)
        buf.flush_worker(0)
        assert not buf.tick(0)

    def test_no_bound_never_forces(self):
        buf = DistArrayBuffer(_target())
        assert not any(buf.tick(0) for _ in range(100))


class TestAccounting:
    def test_pending_bytes_scales_with_count(self):
        buf = DistArrayBuffer(_target())
        buf[0] = 1.0
        one = buf.pending_bytes()
        buf[1] = 1.0
        assert buf.pending_bytes() == 2 * one

    def test_multidim_target_bytes(self):
        grid = DistArray.zeros(4, 4, name="grid_b").materialize()
        buf = DistArrayBuffer(grid)
        buf[1, 1] = 1.0
        assert buf.pending_bytes() == 8 * 3  # 2-dim index + payload


class TestSliceKeys:
    """Buffers accept slice (set-query) indices for dense-model updates."""

    def test_whole_vector_write(self):
        import numpy as np

        target = _target(5)
        buf = DistArrayBuffer(target)
        buf[:] = np.ones(5)
        buf.flush_all()
        assert np.array_equal(target.values, np.ones(5))

    def test_whole_matrix_write(self):
        import numpy as np

        grid = DistArray.zeros(3, 4, name="grid_slice").materialize()
        buf = DistArrayBuffer(grid)
        buf[:, :] = np.full((3, 4), 2.0)
        buf[:, :] = np.full((3, 4), 3.0)  # combines before flushing
        buf.flush_all()
        assert np.array_equal(grid.values, np.full((3, 4), 5.0))

    def test_row_slice_write(self):
        import numpy as np

        grid = DistArray.zeros(3, 4, name="grid_row").materialize()
        buf = DistArrayBuffer(grid)
        buf[1, :] = np.arange(4.0)
        buf.flush_all()
        assert np.array_equal(grid.values[1], np.arange(4.0))
        assert grid.values[0].sum() == 0.0

    def test_bounded_slice_write(self):
        import numpy as np

        target = _target(6)
        buf = DistArrayBuffer(target)
        buf[2:4] = np.array([1.0, 2.0])
        buf.flush_all()
        assert target[(2,)] == 1.0
        assert target[(3,)] == 2.0

    def test_slice_pending_bytes_count_elements(self):
        import numpy as np

        grid = DistArray.zeros(4, 8, name="grid_bytes").materialize()
        buf = DistArrayBuffer(grid)
        buf[0, 0] = 1.0
        point_bytes = buf.pending_bytes()
        buf.clear()
        buf[:, :] = np.zeros((4, 8))
        assert buf.pending_bytes() > 8 * point_bytes
