"""Shared application plumbing: Orion programs and the serial-app protocol.

Every paper application is provided in two equivalent forms:

* an **Orion program** — the real thing: DistArrays + ``parallel_for``
  loop bodies that go through static analysis, strategy selection and the
  distributed executor (this is what the paper's Table 2 describes);
* a **serial app** — plain numpy state plus an ``apply_entry`` update,
  which the baseline engines (serial, Bösen data parallelism, managed
  communication, TensorFlow-style mini-batching) drive with their own
  staleness and synchronization semantics.

Both forms share hyperparameters and loss functions, so convergence
comparisons across engines measure parallelization strategy and nothing
else.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.api import OrionContext, ParallelLoop
from repro.runtime.executor import EpochResult
from repro.runtime.history import RunHistory
from repro.runtime.options import LoopOptions

__all__ = [
    "OrionProgram",
    "SerialApp",
    "resolve_kernel_option",
    "resolve_loop_options",
]

Entry = Tuple[Tuple[int, ...], Any]


def resolve_kernel_option(
    use_kernel: Any, hand_kernel: Optional[Callable[..., Any]] = None
) -> Any:
    """Resolve an app builder's ``use_kernel`` flag to a ``kernel`` option.

    The returned value is what the builder passes to ``parallel_for``:

    * ``True`` — the best available: the app's hand kernel when it ships
      one, otherwise ``"auto"`` (synthesize from the body, scalar fallback
      with a W50x diagnostic when the body is not batchable);
    * ``"hand"`` — the hand kernel, an error when the app has none;
    * ``"auto"`` — always synthesize (hand kernel ignored);
    * ``False`` / ``None`` / ``"off"`` — the scalar interpreter.
    """
    if use_kernel is True:
        return hand_kernel if hand_kernel is not None else "auto"
    if use_kernel in (False, None):
        return None
    if use_kernel == "hand":
        if hand_kernel is None:
            raise ValueError(
                "this app has no hand-written kernel; "
                "pass use_kernel='auto', True, or 'off'"
            )
        return hand_kernel
    if use_kernel == "auto":
        return "auto"
    if use_kernel == "off":
        return None
    raise ValueError(
        f"use_kernel must be True, False, 'hand', 'auto' or 'off' "
        f"(got {use_kernel!r})"
    )


def resolve_loop_options(loop_opts: Dict[str, Any]) -> LoopOptions:
    """Fold a builder's remaining ``**loop_opts`` into one ``LoopOptions``.

    App builders accept either an options-first ``options=LoopOptions(...)``
    or the historical per-knob keyword arguments (which ``parallel_for``
    itself deprecates).  This merges both — explicit kwargs win over the
    ``options`` bundle — and empties ``loop_opts`` so the builder can make
    a single warning-free ``parallel_for(space, options=...)`` call.
    """
    base = loop_opts.pop("options", None) or LoopOptions()
    if loop_opts:
        base = base.merged_with(**loop_opts)
        loop_opts.clear()
    return base


@dataclass
class OrionProgram:
    """A runnable Orion training program.

    Attributes:
        label: name used in histories and printed tables.
        ctx: the driver context (owns the virtual clock and traffic log).
        epoch_fn: runs one data pass (usually one ``ParallelLoop.run()``;
            GBT runs a whole boosting round of several loops) and returns
            the epoch's :class:`EpochResult` list.
        loss_fn: measures the objective from the current DistArray state.
        train_loop: the main loop, when there is a single one (for plan
            inspection in tests and Table 2).
        arrays: the program's named DistArrays.
    """

    label: str
    ctx: OrionContext
    epoch_fn: Callable[[], List[EpochResult]]
    loss_fn: Callable[[], float]
    train_loop: Optional[ParallelLoop] = None
    arrays: Dict[str, Any] = field(default_factory=dict)
    meta: Dict[str, Any] = field(default_factory=dict)

    @property
    def plan(self):
        """The main loop's parallelization plan (None for multi-loop apps)."""
        return self.train_loop.plan if self.train_loop is not None else None

    def close(self) -> None:
        """Release backend resources of every loop in the program (worker
        processes, shared memory) via :meth:`OrionContext.close`."""
        self.ctx.close()

    def __enter__(self) -> "OrionProgram":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def run(self, epochs: int) -> RunHistory:
        """Train for ``epochs`` data passes, measuring loss after each.

        The history surfaces the executor's observability output: each
        record carries the pass's worker utilization, and ``meta`` gains
        ``kernel_path`` (whether the batched-kernel fast path ran) plus the
        live ``tracer``/``metrics`` objects when tracing is enabled, so
        benchmarks opt in with one flag and export afterwards.
        """
        history = RunHistory(label=self.label, traffic=self.ctx.traffic)
        history.meta["initial_loss"] = self.loss_fn()
        history.meta.update(self.meta)
        executor = (
            self.train_loop.executor if self.train_loop is not None else None
        )
        if executor is not None:
            history.meta["kernel_path"] = executor.kernel_path
            history.meta["kernel_tier"] = executor.kernel_tier
            # Kernel-synthesis fallback diagnostics (W501-W503): recorded
            # so a run's report can explain why the scalar path ran
            # without a separate `repro lint` invocation.
            kernel_diags = [
                diag.describe()
                for diag in self.train_loop.diagnostics()
                if diag.code.startswith("W5")
            ]
            if kernel_diags:
                history.meta["kernel_diagnostics"] = kernel_diags
            if executor.tracer.enabled:
                history.meta["tracer"] = executor.tracer
            if executor.metrics.enabled:
                history.meta["metrics"] = executor.metrics
        # Crash-protected loops charge recovery/checkpoint time directly on
        # the context clock (outside any EpochResult), so the pass time is
        # the clock delta; unprotected loops keep the historical sum (the
        # two only differ by float association, and bit-identity matters).
        protected = (
            self.train_loop is not None
            and self.train_loop._recovery is not None
        )
        recoveries = 0
        for _ in range(epochs):
            t_before = self.ctx.now
            results = self.epoch_fn()
            epoch_time = sum(result.epoch_time_s for result in results)
            if protected:
                epoch_time = self.ctx.now - t_before
            recoveries += sum(
                1 for result in results if result.fault is not None
            )
            nbytes = sum(result.bytes_sent for result in results)
            # Utilization of the pass: busy worker-seconds over capacity,
            # i.e. the makespan-weighted mean of per-loop utilizations.
            busy = sum(
                result.utilization * result.epoch_time_s for result in results
            )
            utilization = busy / epoch_time if epoch_time > 0 else 0.0
            history.append(
                self.loss_fn(), epoch_time, nbytes, utilization=utilization
            )
        if recoveries:
            history.meta["recoveries"] = recoveries
        return history


class SerialApp(abc.ABC):
    """The numpy form of an application, driven by baseline engines.

    Engines own staleness: they hand ``apply_entry`` a *replica* of the
    state and synchronize replicas according to their semantics.  State is
    a flat dict of numpy arrays so engines can snapshot, diff and merge it
    generically.
    """

    #: Application name used in labels.
    name: str = "app"
    #: Relative compute cost per processed entry (1.0 = plain SGD MF step).
    entry_cost_factor: float = 1.0

    @abc.abstractmethod
    def init_state(self, seed: int = 0) -> Dict[str, np.ndarray]:
        """Fresh model state (one numpy array per parameter tensor)."""

    @abc.abstractmethod
    def apply_entry(self, state: Dict[str, np.ndarray], key, value) -> None:
        """Process one data entry, updating ``state`` in place."""

    @abc.abstractmethod
    def loss(self, state: Dict[str, np.ndarray]) -> float:
        """Objective value of ``state`` on the training set."""

    @abc.abstractmethod
    def entries(self) -> List[Entry]:
        """The training entries (the iteration space)."""

    def model_nbytes(self, state: Dict[str, np.ndarray]) -> int:
        """Total model payload, for communication accounting."""
        return int(sum(array.nbytes for array in state.values()))

    def clone_state(self, state: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        """Deep copy of the state dict (one worker replica)."""
        return {name: array.copy() for name, array in state.items()}
