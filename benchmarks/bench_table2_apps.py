"""Table 2 — the application suite and its chosen parallelizations.

Paper's Table 2:

    =============  =========================  ====  ==================
    app            algorithm                  LoC   parallelization
    =============  =========================  ====  ==================
    SGD MF         SGD                          87  2D Unordered
    SGD MF AdaRev  SGD w/ Adaptive Revision    108  2D Unordered
    SLR            SGD                         118  1D (data parallel)
    SLR AdaRev     SGD w/ Adaptive Revision    143  1D (data parallel)
    LDA            Collapsed Gibbs             398  2D Unordered, 1D
    GBT            Gradient Boosting           695  1D
    =============  =========================  ====  ==================

This benchmark builds every application through the real API, reads the
parallelization the static analyzer actually chose, and counts the
application program's source lines — verifying the automation story: the
programs are small and the analyzer derives the paper's strategies.
"""

import inspect

import pytest

import _workloads as wl
from repro.analysis.strategy import Strategy
from repro.apps import (
    GBTHyper,
    SLRHyper,
    build_gbt,
    build_lda,
    build_sgd_mf,
    build_slr,
)
from repro.apps import gbt as gbt_module
from repro.apps import lda as lda_module
from repro.apps import sgd_mf as mf_module
from repro.apps import slr as slr_module

PAPER = {
    "SGD MF": (87, "2D Unordered"),
    "SGD MF AdaRev": (108, "2D Unordered"),
    "SLR": (118, "1D (data parallelism)"),
    "SLR AdaRev": (143, "1D (data parallelism)"),
    "LDA": (398, "2D Unordered, 1D"),
    "LDA (1D)": (398, "2D Unordered, 1D"),
    "GBT": (695, "1D"),
}


def _loc(module) -> int:
    """Application-program size: source lines of the Orion program builder
    (the analogue of the paper's per-app Julia script)."""
    return len(inspect.getsource(module.build_orion_program).splitlines())


def _build_all():
    cluster = wl.mf_cluster()
    out = {}
    out["SGD MF"] = (
        build_sgd_mf(wl.netflix_bench(), cluster=cluster, hyper=wl.MF_HYPER),
        _loc(mf_module),
    )
    out["SGD MF AdaRev"] = (
        build_sgd_mf(
            wl.netflix_bench(),
            cluster=wl.mf_cluster(adarev=True),
            hyper=wl.MF_ADAREV_HYPER,
        ),
        _loc(mf_module),
    )
    out["SLR"] = (
        build_slr(wl.kdd_bench(), cluster=wl.slr_cluster(), hyper=wl.SLR_HYPER),
        _loc(slr_module),
    )
    out["SLR AdaRev"] = (
        build_slr(
            wl.kdd_bench(),
            cluster=wl.slr_cluster(),
            hyper=SLRHyper(adarev=True),
        ),
        _loc(slr_module),
    )
    out["LDA"] = (
        build_lda(wl.nytimes_bench(), cluster=wl.lda_cluster(), hyper=wl.LDA_HYPER),
        _loc(lda_module),
    )
    out["LDA (1D)"] = (
        build_lda(
            wl.nytimes_bench(),
            cluster=wl.lda_cluster(),
            hyper=wl.LDA_HYPER,
            parallelism="1d",
        ),
        _loc(lda_module),
    )
    out["GBT"] = (
        build_gbt(wl.gbt_bench(), cluster=cluster, hyper=GBTHyper()),
        _loc(gbt_module),
    )
    return out


@pytest.mark.benchmark(group="table2")
def test_table2_applications(benchmark, report):
    programs = benchmark.pedantic(_build_all, rounds=1, iterations=1)
    rows = []
    for app, (program, loc) in programs.items():
        paper_loc, paper_par = PAPER[app]
        rows.append(
            (app, loc, program.plan.describe(), paper_loc, paper_par)
        )
    report(
        "Table 2: applications, program size, chosen parallelization",
        wl.fmt_table(
            ["app", "LoC", "analyzer's choice", "paper LoC", "paper choice"],
            rows,
        ),
    )
    plans = {app: program.plan for app, (program, _loc) in programs.items()}
    assert plans["SGD MF"].strategy is Strategy.TWO_D
    assert not plans["SGD MF"].ordered
    assert plans["SGD MF AdaRev"].strategy is Strategy.TWO_D
    assert plans["SLR"].strategy is Strategy.DATA_PARALLEL
    assert plans["SLR AdaRev"].strategy is Strategy.DATA_PARALLEL
    assert plans["LDA"].strategy is Strategy.TWO_D
    assert not plans["LDA"].ordered
    assert plans["LDA (1D)"].strategy is Strategy.ONE_D
    assert plans["GBT"].strategy in (Strategy.ONE_D, Strategy.DATA_PARALLEL)
    # The automation story: every program is small (the paper's largest,
    # GBT, is 695 lines of Julia; ours are of the same order).
    assert all(loc < 800 for _p, loc in programs.values())
