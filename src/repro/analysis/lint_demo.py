"""Deliberately offending loop bodies for ``repro lint demo``.

Each function below builds one minimal loop that trips a specific
diagnostic code, so one CLI invocation demonstrates the whole catalog
with real ``file:line`` locations pointing into this module.  The bodies
are never executed — they exist purely to be linted.  ``docs/analysis.md``
documents each code with these examples.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.analysis.lint import LintReport, run_lint
from repro.core.distarray import DistArray

__all__ = ["demo_reports"]


def _space() -> DistArray:
    """A tiny materialized 2-D iteration space shared by the demos."""
    space = DistArray.from_entries(
        [((i, j), 1.0) for i in range(4) for j in range(4)],
        name="demo_space",
        shape=(4, 4),
    )
    space.materialize()
    return space


def _line() -> DistArray:
    """A tiny materialized 1-D iteration space."""
    space = DistArray.from_entries(
        [((i,), 1.0) for i in range(6)], name="demo_line", shape=(6,)
    )
    space.materialize()
    return space


def _demo_e101() -> Tuple[str, LintReport]:
    """E101: a lambda has no analyzable ``def`` body."""
    space = _space()
    body = lambda key, value: None  # noqa: E731 - the offense on purpose
    return "E101 lambda loop body", run_lint(body, space)


def _demo_e102() -> Tuple[str, LintReport]:
    """E102: subscript arity does not match the array's dimensionality."""
    space = _space()
    grid = DistArray.zeros(4, 4, name="demo_grid")
    grid.materialize()

    def body(key, value):
        grid[key[0]] = value  # one position, two array dims

    return "E102 subscript arity mismatch", run_lint(body, space)


def _demo_e103() -> Tuple[str, LintReport]:
    """E103: the loop body takes no parameters at all."""
    space = _space()

    def body():
        pass

    return "E103 invalid loop signature", run_lint(body, space)


def _demo_e110() -> Tuple[str, LintReport]:
    """E110: an ordered 1-D loop whose only dimension carries a
    dependence — no dependence-preserving parallelization exists."""
    space = _line()
    chain = DistArray.zeros(6, name="demo_chain")
    chain.materialize()

    def body(key, value):
        chain[key[0]] = chain[key[0] + 1] + value

    return "E110 refused parallelization", run_lint(body, space, ordered=True)


def _demo_w201() -> Tuple[str, LintReport]:
    """W201: a data-dependent subscript forces conservative analysis."""
    space = _line()
    table = DistArray.zeros(100, name="demo_table")
    table.materialize()

    def body(key, value):
        slot = int(value) % 100
        table[slot] = table[slot] + 1.0

    return "W201 data-dependent subscript", run_lint(body, space)


def _demo_w202() -> Tuple[str, LintReport]:
    """W202: two names bound to the same DistArray hide dependences."""
    space = _line()
    params = DistArray.zeros(8, name="demo_params")
    params.materialize()
    alias = params

    def body(key, value):
        alias[key[0]] = params[key[0]] + value

    return "W202 aliased DistArray names", run_lint(body, space)


def _demo_w301() -> Tuple[str, LintReport]:
    """W301: augmenting an inherited driver variable mutates a private
    per-worker copy that is never merged back."""
    space = _line()
    counts = DistArray.zeros(6, name="demo_counts")
    counts.materialize()
    total = 0.0

    def body(key, value):
        nonlocal total
        counts[key[0]] = counts[key[0]] + value
        total += value  # lost: each worker updates a private copy

    return "W301 inherited mutation", run_lint(body, space)


def _demo_w401() -> Tuple[str, LintReport]:
    """W401: drawing from numpy's module-level RNG is unseeded per worker
    and unreplayable."""
    import numpy as np

    space = _line()
    noise = DistArray.zeros(6, name="demo_noise")
    noise.materialize()

    def body(key, value):
        noise[key[0]] = value + np.random.uniform()

    return "W401 unseeded randomness", run_lint(body, space)


def _synth_lint(body, space, ordered: bool = False) -> LintReport:
    """Lint a body through the kernel-synthesis pipeline (W50x codes)."""
    from repro.analysis.synth import synth_report

    _result, diagnostics = synth_report(body, space, ordered=ordered)
    return LintReport(diagnostics=diagnostics)


def _demo_w501() -> Tuple[str, LintReport]:
    """W501: a conditional expression short-circuits around an array read —
    the synthesized kernel cannot reproduce the scalar access sequence."""
    space = _line()
    big = DistArray.zeros(6, name="demo_big")
    out = DistArray.zeros(6, name="demo_out")
    big.materialize()
    out.materialize()

    def body(key, value):
        bonus = big[key[0]] if value > 0.5 else 0.0
        out[key[0]] = value + bonus

    return "W501 synthesis: unsupported construct", _synth_lint(body, space)


def _demo_w502() -> Tuple[str, LintReport]:
    """W502: an array is read through an index computed from another
    array's contents — the access pattern depends on mutable state, so a
    batched kernel's memoized accounting would go stale."""
    space = _line()
    noise = DistArray.zeros(6, name="demo_noise2")
    table = DistArray.zeros(100, name="demo_table2")
    out = DistArray.zeros(6, name="demo_out2")
    for array in (noise, table, out):
        array.materialize()

    def body(key, value):
        slot = int(noise[key[0]])
        out[key[0]] = table[slot] * value

    return "W502 synthesis: state-dependent access", _synth_lint(body, space)


def _demo_w503() -> Tuple[str, LintReport]:
    """W503: synthesis succeeds, but the chosen plan (1D with direct
    shared writes, nothing buffered) never executes blocks as batchable
    units — the kernel is emitted and then unused."""
    space = _line()
    out = DistArray.zeros(6, name="demo_out3")
    out.materialize()

    def body(key, value):
        out[key[0]] = value * 2.0

    return "W503 synthesis: plan refuses batching", _synth_lint(body, space)


def demo_reports() -> List[Tuple[str, LintReport]]:
    """Run every demo lint and return ``(title, report)`` pairs."""
    return [
        _demo_e101(),
        _demo_e102(),
        _demo_e103(),
        _demo_e110(),
        _demo_w201(),
        _demo_w202(),
        _demo_w301(),
        _demo_w401(),
        _demo_w501(),
        _demo_w502(),
        _demo_w503(),
    ]
