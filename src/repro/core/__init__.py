"""Core DSM abstractions: DistArrays, buffers, accumulators, access brokering."""

from repro.core.accumulator import Accumulator, AccumulatorRegistry
from repro.core.buffers import DistArrayBuffer
from repro.core.distarray import DistArray

__all__ = [
    "Accumulator",
    "AccumulatorRegistry",
    "DistArrayBuffer",
    "DistArray",
]
