"""Tests for the TuX²-style engine and the checkpoint policy."""

import numpy as np
import pytest

from repro.apps import MFHyper, SGDMFApp
from repro.baselines import run_serial, run_tux2_minibatch
from repro.core.distarray import DistArray
from repro.errors import CheckpointError
from repro.runtime.checkpoint import CheckpointPolicy, checkpoint_path
from repro.runtime.cluster import ClusterSpec


class TestTux2Engine:
    @pytest.fixture(scope="class")
    def setup(self, mf_small):
        hyper = MFHyper(rank=4, step_size=0.05)
        app = SGDMFApp(mf_small, hyper)
        cluster = ClusterSpec(num_machines=2, workers_per_machine=2)
        return app, cluster

    def test_converges(self, setup):
        app, cluster = setup
        history = run_tux2_minibatch(app, cluster, 5)
        assert history.final_loss < history.meta["initial_loss"]

    def test_slower_per_iteration_convergence_than_serial(self, setup):
        app, cluster = setup
        epochs = 5
        serial = run_serial(app, epochs, cost=cluster.cost)
        tux2 = run_tux2_minibatch(app, cluster, epochs)
        assert tux2.final_loss > serial.final_loss

    def test_more_rounds_converge_better(self, setup):
        app, cluster = setup
        few = run_tux2_minibatch(app, cluster, 4, rounds_per_epoch=1)
        many = run_tux2_minibatch(app, cluster, 4, rounds_per_epoch=8)
        assert many.final_loss < few.final_loss

    def test_speed_factor_scales_time(self, setup):
        app, cluster = setup
        fast = run_tux2_minibatch(app, cluster, 2, speed_factor=0.25)
        slow = run_tux2_minibatch(app, cluster, 2, speed_factor=1.0)
        assert fast.time_per_iteration() < slow.time_per_iteration()

    def test_sync_traffic_recorded(self, setup):
        app, cluster = setup
        history = run_tux2_minibatch(app, cluster, 2)
        assert history.traffic.bytes_by_kind().get("sync", 0) > 0


class TestCheckpointPolicy:
    def _array(self, name):
        return DistArray.randn(3, 3, seed=5, name=name).materialize()

    def test_checkpoints_on_schedule(self, tmp_path):
        array = self._array("cp_sched")
        policy = CheckpointPolicy([array], str(tmp_path), every_n_epochs=3)
        written = [policy.step(epoch) for epoch in range(1, 8)]
        assert written == [False, False, True, False, False, True, False]
        assert policy.latest_tag == "epoch6"

    def test_restore_latest(self, tmp_path):
        array = self._array("cp_restore")
        policy = CheckpointPolicy([array], str(tmp_path), every_n_epochs=1)
        policy.step(1)
        saved = array.values.copy()
        array.values[:] = -1.0
        tag = policy.restore_latest()
        assert tag == "epoch1"
        assert np.array_equal(array.values, saved)

    def test_restore_specific_tag(self, tmp_path):
        array = self._array("cp_tagged")
        policy = CheckpointPolicy([array], str(tmp_path), every_n_epochs=1)
        policy.step(1)
        first = array.values.copy()
        array.values[:] = 7.0
        policy.step(2)
        policy.restore("epoch1")
        assert np.array_equal(array.values, first)

    def test_prunes_old_checkpoints(self, tmp_path):
        import os

        array = self._array("cp_prune")
        policy = CheckpointPolicy(
            [array], str(tmp_path), every_n_epochs=1, keep=2
        )
        for epoch in range(1, 6):
            policy.step(epoch)
        assert not os.path.exists(
            checkpoint_path(str(tmp_path), "cp_prune", "epoch1")
        )
        assert os.path.exists(
            checkpoint_path(str(tmp_path), "cp_prune", "epoch5")
        )

    def test_restore_before_any_checkpoint_raises(self, tmp_path):
        array = self._array("cp_none")
        policy = CheckpointPolicy([array], str(tmp_path))
        with pytest.raises(CheckpointError):
            policy.restore_latest()

    def test_invalid_interval_rejected(self, tmp_path):
        array = self._array("cp_bad")
        with pytest.raises(CheckpointError):
            CheckpointPolicy([array], str(tmp_path), every_n_epochs=0)
