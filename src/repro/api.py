"""The Orion driver API (paper Sec. 3, Fig. 5).

An application creates an :class:`OrionContext` — the driver's handle on
the distributed runtime — builds DistArrays lazily, materializes them, and
parallelizes loops with :meth:`OrionContext.parallel_for`:

.. code-block:: python

    ctx = OrionContext(cluster=ClusterSpec.paper_default())
    ratings = ctx.text_file(path, parse_line)
    ctx.materialize(ratings)
    W = ctx.randn(K, num_rows)
    H = ctx.randn(K, num_cols)
    ctx.materialize(W, H)
    err = ctx.accumulator("err", 0.0)

    def body(key, rating):
        w = W[:, key[0]]
        h = H[:, key[1]]
        ...
        W[:, key[0]] = w - step_size * gw
        H[:, key[1]] = h - step_size * gh

    loop = ctx.parallel_for(ratings)(body)     # JIT-style static analysis
    for _ in range(num_iterations):
        loop.run()
    total = ctx.get_aggregated_value("err")

The decorator form mirrors the paper's ``@parallel_for`` macro: applying it
triggers static dependence analysis, strategy selection and schedule
construction exactly once; each ``run()`` executes one pass.
"""

from __future__ import annotations

import operator
import warnings
from dataclasses import replace
from typing import TYPE_CHECKING, Any, Callable, Dict, Iterable, List, Optional, Tuple

if TYPE_CHECKING:  # annotation-only: synth itself lazily imports the API
    from repro.analysis.synth import SynthResult
    from repro.tuning import AdaptiveTuner

from repro.analysis.lint import Diagnostic
from repro.analysis.loop_info import LoopInfo, analyze_loop_body
from repro.analysis.strategy import Plan, choose_plan
from repro.core.accumulator import Accumulator, AccumulatorRegistry
from repro.core.buffers import DistArrayBuffer, default_apply
from repro.core.distarray import DistArray, parse_dense_line
from repro.faults.recovery import RecoveryManager
from repro.obs.metrics import MetricsRegistry
from repro.obs.observability import Observability
from repro.obs.tracer import Tracer
from repro.runtime.backend import Backend, create_backend
from repro.runtime.cluster import ClusterSpec
from repro.runtime.executor import EpochResult, OrionExecutor
from repro.runtime.network import TrafficLog
from repro.runtime.options import UNSET, LoopOptions

__all__ = ["OrionContext", "ParallelLoop"]


class ParallelLoop:
    """A compiled parallel for-loop: analysis, plan and executor in one.

    Created by :meth:`OrionContext.parallel_for`.  The static analysis and
    schedule construction happen at creation (the paper's macro-expansion /
    JIT step); :meth:`run` executes data passes.
    """

    def __init__(
        self,
        ctx: "OrionContext",
        body: Callable[..., Any],
        info: LoopInfo,
        plan: Plan,
        executor: OrionExecutor,
        options: Optional[LoopOptions] = None,
    ) -> None:
        self.ctx = ctx
        self.body = body
        self.info = info
        self.plan = plan
        self.executor = executor
        self.options = options if options is not None else executor.options
        #: Logical (1-based) epoch counter across run() calls — fault
        #: events are pinned against this, not the executor's pass count.
        self._epoch = 0
        self._recovery: Optional[RecoveryManager] = None
        opts = self.options
        if opts.backend == "multiprocess" and (
            opts.faults is not None or opts.checkpoint is not None
        ):
            from repro.errors import ExecutionError

            raise ExecutionError(
                "fault injection and checkpointing model virtual-clock "
                "crashes; they are not supported on the multiprocess "
                "backend (run them on backend='simulated')"
            )
        #: The adaptive tuner (``tune="auto"|"cached"``); ``None`` keeps
        #: the default path free of even the import.
        self._tuner: Optional["AdaptiveTuner"] = None
        if opts.tune != "off":
            if opts.faults is not None or opts.checkpoint is not None:
                from repro.errors import ExecutionError

                raise ExecutionError(
                    "adaptive tuning and fault injection both re-shape "
                    "the epoch timeline; run them separately "
                    "(tune='off' with faults, or drop the fault plan)"
                )
            from repro.tuning import AdaptiveTuner

            self._tuner = AdaptiveTuner(self)
            # Seeding happens before the backend exists (and before any
            # partition has been used), so a cache hit costs nothing.
            self._tuner.seed()
        #: The execution engine driving :meth:`run` — see
        #: :mod:`repro.runtime.backend`.
        self.backend: Backend = create_backend(self)
        if opts.faults is not None or opts.checkpoint is not None:
            self._recovery = RecoveryManager(
                self._protected_arrays(opts),
                accumulators=info.accumulator_refs,
                checkpoint=opts.checkpoint,
                costs=opts.faults.costs if opts.faults is not None else None,
                tracer=executor.tracer,
                metrics=executor.metrics,
                trace_process=executor.trace_process,
            )

    def _protected_arrays(self, opts: LoopOptions) -> List[DistArray]:
        """The arrays recovery must restore: the checkpoint config's
        explicit list, or every array/buffer target the loop mutates."""
        if opts.checkpoint is not None and opts.checkpoint.arrays:
            return list(opts.checkpoint.arrays)
        seen: Dict[str, DistArray] = {}
        written = self.info.written_arrays()
        for name, array in self.info.arrays.items():
            if name in written:
                seen[array.name] = array
        for buffer in self.info.buffers.values():
            target = buffer.target
            seen[target.name] = target
        return list(seen.values())

    def run(self, epochs: int = 1) -> List[EpochResult]:
        """Execute ``epochs`` full passes, advancing the context clock and
        recording traffic on the context's log.

        Without a fault plan or checkpoint config this is exactly the
        historical loop (bit-identical results).  With one, each logical
        epoch runs under crash protection: a detected crash restores the
        latest complete checkpoint (or the initial state), charges the
        virtual clock for detection + restore, and replays the lost
        epochs.  Aborted passes stay in the returned list (check
        :attr:`EpochResult.fault`), so the result count can exceed
        ``epochs`` when crashes fired.
        """
        results: List[EpochResult] = []
        if self._recovery is None:
            for _ in range(epochs):
                self._epoch += 1
                result = self.backend.run_epoch(
                    t0=self.ctx.now if self.ctx is not None else 0.0,
                    epoch=self._epoch,
                )
                if self.ctx is not None:
                    self.ctx._absorb(result)
                results.append(result)
                if self._tuner is not None:
                    cost = self._tuner.after_epoch(self._epoch, result)
                    if cost > 0.0 and result.clock != "real":
                        # Re-partitioning isn't free: the tuner's re-bin
                        # + reshuffle lands on the virtual clock, right
                        # after the epoch that motivated it.
                        self.ctx.now += cost
        else:
            for _ in range(epochs):
                self._epoch += 1
                self._run_protected(self._epoch, results)
        if self._tuner is not None:
            self._tuner.finish()
        if self.options.run_store is not None:
            self._persist_run(results)
        return results

    def _persist_run(self, results: List[EpochResult]) -> None:
        """Append one run-store record for a finished :meth:`run` call.

        Pure introspection after the pass: with ``run_store`` unset this
        is never reached and results stay bit-identical (the import is
        lazy so unrecorded runs do not even load the module)."""
        from repro.obs.runstore import RunStore, record_run

        store = RunStore.resolve(self.options.run_store)
        store.append(
            record_run(self, results, label=self.options.run_label)
        )

    def _apply_retune(self, **knobs: Any) -> float:
        """Apply a legal knob change and invalidate backend state.

        The executor validates legality (see
        :meth:`~repro.runtime.executor.OrionExecutor.retunable`) and
        returns the virtual seconds the change costs; the backend hook
        lets engines holding state derived from the old tiling (the
        multiprocess runner's forked partitions) rebuild it lazily.
        """
        cost = self.executor.retune(**knobs)
        self.backend.on_retune()
        return cost

    def tuning(self) -> Optional["AdaptiveTuner"]:
        """The loop's adaptive tuner, or ``None`` when ``tune="off"``.

        Exposes the decision trail (``tuning().decisions``), the live
        configuration (``tuning().current_config()``) and the JSON
        summary recorded in run-store records (``tuning().summary()``).
        """
        return self._tuner

    def run_summary(self) -> Dict[str, Any]:
        """Plan/schedule introspection, including the requested vs.
        resolved values of every tunable knob (``pipeline_depth="auto"``
        reports both sides).  Same payload the run store records."""
        return self.executor.run_summary()

    def close(self) -> None:
        """Release the backend's resources (worker processes, shared
        memory, thread pools).  Safe to call more than once; the loop can
        still run afterwards — the backend re-acquires what it needs."""
        self.backend.close()

    def __enter__(self) -> "ParallelLoop":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _run_protected(self, epoch: int, results: List[EpochResult]) -> None:
        """Run one logical epoch; on a detected crash, restore and replay.

        Recursion handles crashes during replay: each crash in the plan is
        one-shot, so the depth is bounded by the number of planned crashes.
        """
        recovery = self._recovery
        assert recovery is not None
        result = self.backend.run_epoch(t0=self.ctx.now, epoch=epoch)
        self.ctx._absorb(result)
        results.append(result)
        if result.fault is None:
            self.ctx.now += recovery.after_epoch(epoch, self.ctx.now)
            return
        seconds, replay_from, restored_nbytes = recovery.recover(self.ctx.now)
        if restored_nbytes:
            self.ctx.traffic.record(
                self.ctx.now, self.ctx.now + seconds, restored_nbytes,
                "restore",
            )
        self.ctx.now += seconds
        for replay_epoch in range(replay_from + 1, epoch + 1):
            self._run_protected(replay_epoch, results)

    def explain(self) -> str:
        """A Fig. 6-style report of what static parallelization decided.

        When kernel synthesis ran (``kernel="auto"``), the report also
        shows the outcome — the generated kernel source, or why synthesis
        fell back to the scalar interpreter.  When the loop is tuned
        (``tune="auto"|"cached"``), a Tuning section shows the cache
        seed, the live configuration and the decision trail.
        """
        from repro.analysis.explain import explain_plan

        return explain_plan(
            self.info,
            self.plan,
            synth=self.executor.synth,
            tuning=self._tuner.describe() if self._tuner else None,
        )

    def synthesis(self) -> Optional["SynthResult"]:
        """The kernel-synthesis outcome, or ``None`` unless
        ``kernel="auto"`` was requested (see :mod:`repro.analysis.synth`)."""
        return self.executor.synth

    def diagnostics(self) -> List["Diagnostic"]:
        """The analyzer's lint findings for this loop's body.

        A compiled loop has no E-code errors by construction (they raise
        during ``parallel_for``); this returns the W-code warnings — see
        the catalog in ``docs/analysis.md`` and the ``repro lint`` CLI
        for linting a loop without compiling or running it.
        """
        return list(self.info.diagnostics)

    def __call__(self, epochs: int = 1) -> List[EpochResult]:
        return self.run(epochs)


class OrionContext:
    """Driver-side handle on the (simulated) Orion runtime.

    Args:
        cluster: the simulated cluster; defaults to a small 1×4 cluster so
            examples run instantly (the paper's figures use
            ``ClusterSpec.paper_default()``).
        seed: base seed for random array initialization.
        tracer: observability tracer shared by every loop this context
            builds (legacy form; default: the disabled
            :data:`~repro.obs.tracer.NULL_TRACER`, zero overhead).
        metrics: observability metrics registry shared by every loop
            (legacy form; default: the disabled
            :data:`~repro.obs.metrics.NULL_METRICS`).
        obs: bundled :class:`~repro.obs.observability.Observability`
            (``Observability.enabled()`` for a live pair).  Explicit
            ``tracer=`` / ``metrics=`` arguments override the bundle
            component-wise, so both forms mix freely.
    """

    def __init__(
        self,
        cluster: Optional[ClusterSpec] = None,
        seed: Optional[int] = None,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        obs: Optional[Observability] = None,
    ) -> None:
        self.cluster = cluster or ClusterSpec(num_machines=1, workers_per_machine=4)
        self.seed = seed
        self.obs = Observability.resolve(obs=obs, tracer=tracer, metrics=metrics)
        self.tracer = self.obs.tracer
        self.metrics = self.obs.metrics
        self.accumulators = AccumulatorRegistry()
        self.traffic = TrafficLog()
        #: Cumulative virtual seconds spent in parallel loops.
        self.now = 0.0
        #: Cumulative *real* wall-clock seconds spent in parallel loops
        #: executed by a real backend (``EpochResult.clock == "real"``).
        #: Kept apart from :attr:`now` — the two clocks never mix.
        self.real_now = 0.0
        self._arrays: List[DistArray] = []
        self._loops: List["ParallelLoop"] = []
        self._seed_counter = 0

    # ---------------- array creation ----------------------------------- #

    def _next_seed(self) -> Optional[int]:
        if self.seed is None:
            return None
        self._seed_counter += 1
        return self.seed + self._seed_counter

    def _register(self, array: DistArray) -> DistArray:
        self._arrays.append(array)
        return array

    def text_file(
        self,
        path: str,
        parser: Callable[[str], Tuple[Tuple[int, ...], Any]] = parse_dense_line,
        name: Optional[str] = None,
        shape: Optional[Tuple[int, ...]] = None,
    ) -> DistArray:
        """Lazily load a sparse DistArray from a text file (paper Fig. 5)."""
        return self._register(DistArray.text_file(path, parser, name, shape))

    def from_entries(
        self,
        entries: Iterable[Tuple[Tuple[int, ...], Any]],
        name: Optional[str] = None,
        shape: Optional[Tuple[int, ...]] = None,
    ) -> DistArray:
        """Lazily create a sparse DistArray from ``(key, value)`` pairs."""
        return self._register(DistArray.from_entries(entries, name, shape))

    def randn(
        self, *shape: int, name: Optional[str] = None, scale: float = 1.0
    ) -> DistArray:
        """Lazily create a dense normal-initialized DistArray."""
        return self._register(
            DistArray.randn(*shape, name=name, seed=self._next_seed(), scale=scale)
        )

    def rand(self, *shape: int, name: Optional[str] = None) -> DistArray:
        """Lazily create a dense uniform-initialized DistArray."""
        return self._register(
            DistArray.rand(*shape, name=name, seed=self._next_seed())
        )

    def zeros(self, *shape: int, name: Optional[str] = None) -> DistArray:
        """Lazily create a dense zero DistArray."""
        return self._register(DistArray.zeros(*shape, name=name))

    def full(
        self, shape: Tuple[int, ...], value: float, name: Optional[str] = None
    ) -> DistArray:
        """Lazily create a dense constant DistArray."""
        return self._register(DistArray.full(shape, value, name=name))

    @staticmethod
    def materialize(*arrays: DistArray) -> None:
        """Force evaluation of lazy arrays (paper's ``Orion.materialize``)."""
        for array in arrays:
            array.materialize()

    # ---------------- accumulators & buffers --------------------------- #

    def accumulator(
        self,
        name: str,
        initial: Any = 0.0,
        op: Callable[[Any, Any], Any] = operator.add,
    ) -> Accumulator:
        """Create a named accumulator (paper's ``@accumulator``)."""
        return self.accumulators.create(name, initial, op)

    def get_aggregated_value(
        self, name: str, op: Optional[Callable[[Any, Any], Any]] = None
    ) -> Any:
        """Aggregate one accumulator across all workers."""
        return self.accumulators.aggregate(name, op)

    def reset_accumulator(self, name: str) -> None:
        """Reset one accumulator on every worker."""
        self.accumulators.reset(name)

    def dist_array_buffer(
        self,
        target: DistArray,
        apply_fn: Callable[[Any, Any], Any] = default_apply,
        combiner: Optional[Callable[[Any, Any], Any]] = None,
        max_delay: Optional[int] = None,
        name: Optional[str] = None,
    ) -> DistArrayBuffer:
        """Create a write-back buffer for ``target`` (paper Sec. 3.3)."""
        kwargs = {"apply_fn": apply_fn, "max_delay": max_delay, "name": name}
        if combiner is not None:
            kwargs["combiner"] = combiner
        return DistArrayBuffer(target, **kwargs)

    # ---------------- parallel for-loops ------------------------------- #

    def parallel_for(
        self,
        iteration_space: DistArray,
        ordered: Any = UNSET,
        force_dims: Any = UNSET,
        pipeline_depth: Any = UNSET,
        balance: Any = UNSET,
        validate: Any = UNSET,
        prefetch: Any = UNSET,
        cache_prefetch: Any = UNSET,
        concurrency: Any = UNSET,
        backend: Any = UNSET,
        kernel: Any = UNSET,
        equivalence_check: Any = UNSET,
        sanitize: Any = UNSET,
        tracer: Any = UNSET,
        metrics: Any = UNSET,
        trace_process: Any = UNSET,
        options: Optional[LoopOptions] = None,
        obs: Any = UNSET,
    ) -> Callable[[Callable[..., Any]], ParallelLoop]:
        """Parallelize a loop body over ``iteration_space``.

        Returns a decorator; applying it performs static dependence
        analysis, chooses the parallelization strategy, partitions the
        iteration space and builds the schedule — once.  The decorated name
        becomes a :class:`ParallelLoop`.

        Configuration is **options-first**: build a
        :class:`~repro.runtime.options.LoopOptions` and pass it as
        ``options=`` —

        .. code-block:: python

            loop = ctx.parallel_for(
                ratings,
                options=LoopOptions(pipeline_depth="auto", kernel="auto"),
            )(body)

        Every field is documented on ``LoopOptions`` itself; the knobs
        that exist only there include fault injection (``faults`` /
        ``checkpoint``), run recording (``run_store`` / ``run_label``)
        and adaptive tuning (``tune="auto"|"cached"``, see
        ``docs/tuning.md``).

        .. deprecated::
            The historical bare keyword arguments (``ordered=``,
            ``pipeline_depth=``, ``prefetch=``, ... — everything except
            ``options`` and ``obs``) still work and override the
            corresponding ``LoopOptions`` field, but emit a
            :class:`DeprecationWarning`; migrate to
            ``options=LoopOptions(...)`` (or
            ``options.merged_with(...)`` for call-site overrides).

        Args:
            iteration_space: materialized DistArray to iterate over.
            options: the :class:`~repro.runtime.options.LoopOptions`
                bundle carrying every knob.
            obs: per-loop :class:`~repro.obs.observability.Observability`
                bundle (defaults to the context's).
        """
        legacy = {
            "ordered": ordered,
            "force_dims": force_dims,
            "pipeline_depth": pipeline_depth,
            "balance": balance,
            "validate": validate,
            "prefetch": prefetch,
            "cache_prefetch": cache_prefetch,
            "concurrency": concurrency,
            "backend": backend,
            "kernel": kernel,
            "equivalence_check": equivalence_check,
            "sanitize": sanitize,
            "tracer": tracer,
            "metrics": metrics,
            "trace_process": trace_process,
        }
        passed = [name for name, value in legacy.items() if value is not UNSET]
        if passed:
            warnings.warn(
                "passing loop configuration to parallel_for as bare "
                f"keyword arguments ({', '.join(passed)}) is deprecated; "
                "pass options=LoopOptions(...) instead (see the "
                "LoopOptions docstring for the migration guide)",
                DeprecationWarning,
                stacklevel=2,
            )
        opts = (options if options is not None else LoopOptions()).merged_with(
            ordered=ordered,
            force_dims=force_dims,
            pipeline_depth=pipeline_depth,
            balance=balance,
            validate=validate,
            prefetch=prefetch,
            cache_prefetch=cache_prefetch,
            concurrency=concurrency,
            backend=backend,
            kernel=kernel,
            equivalence_check=equivalence_check,
            sanitize=sanitize,
            tracer=tracer,
            metrics=metrics,
            obs=obs,
            trace_process=trace_process,
        )
        resolved = opts.resolve_obs(default=self.obs)
        final = replace(opts, obs=resolved, tracer=None, metrics=None)
        if final.backend == "threaded" and final.concurrency == "serial":
            # The threaded backend *is* the executor's thread-pool mode.
            final = replace(final, concurrency="threads")
        if final.tune == "auto" and not final.obs.tracer.enabled:
            # The tuner's model scan reads the epoch attribution, so an
            # adapting loop needs a live tracer; attach a private one
            # rather than fail (virtual-clock tracing never changes
            # numerics or timing — it only records them).
            final = replace(
                final,
                obs=Observability(
                    tracer=Tracer(), metrics=final.obs.metrics
                ),
            )

        def decorate(body: Callable[..., Any]) -> ParallelLoop:
            info = analyze_loop_body(
                body, iteration_space, ordered=final.ordered
            )
            plan = choose_plan(info, force_dims=final.force_dims)
            executor = OrionExecutor(
                body, info, plan, self.cluster, options=final
            )
            loop = ParallelLoop(
                self, body, info, plan, executor, options=final
            )
            self._loops.append(loop)
            return loop

        return decorate

    # ---------------- bookkeeping -------------------------------------- #

    def close(self) -> None:
        """Release backend resources (worker processes, shared memory) of
        every loop this context built.  Safe to call more than once; loops
        can still run afterwards — backends re-acquire what they need.
        Multi-loop programs (e.g. GBT) need this rather than closing
        ``train_loop`` alone."""
        for loop in self._loops:
            loop.close()

    def __enter__(self) -> "OrionContext":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _absorb(self, result: EpochResult) -> None:
        if result.clock == "real":
            # Real backends measure the host, not the cost model: advance
            # the wall clock and leave the virtual timeline untouched.
            self.real_now += result.epoch_time_s
            return
        for t_start, t_end, nbytes, kind in result.events:
            self.traffic.record(
                self.now + t_start, self.now + t_end, nbytes, kind
            )
        self.now += result.epoch_time_s
