"""Shared fixtures: small datasets, clusters, and helper factories.

Loop-body functions used by analysis tests must live in real source files
(the analyzer reads their source), so tests define bodies at module level
or inside test functions — both work with ``inspect.getsource``.
"""

from __future__ import annotations

import pytest

from repro.data import (
    lda_corpus,
    netflix_like,
    regression_table,
    sparse_classification,
)
from repro.runtime.cluster import ClusterSpec
from repro.runtime.network import NetworkModel
from repro.runtime.simtime import CostModel


@pytest.fixture(scope="session")
def mf_small():
    """A small dense-ish rating matrix for MF tests."""
    return netflix_like(num_rows=40, num_cols=32, num_ratings=900, seed=11)


@pytest.fixture(scope="session")
def mf_skewed():
    """A skewed rating matrix exercising balanced partitioning."""
    return netflix_like(
        num_rows=60, num_cols=50, num_ratings=1200, skew=1.2, seed=13
    )


@pytest.fixture(scope="session")
def corpus_small():
    """A small LDA corpus."""
    return lda_corpus(
        num_docs=40, vocab_size=60, num_topics=4, doc_length=20, seed=17
    )


@pytest.fixture(scope="session")
def slr_small():
    """A small sparse-classification dataset."""
    return sparse_classification(
        num_samples=150, num_features=80, nnz_per_sample=5, seed=19
    )


@pytest.fixture(scope="session")
def table_small():
    """A small regression table for GBT."""
    return regression_table(num_samples=200, num_features=4, seed=23)


@pytest.fixture
def cluster_tiny():
    """2 machines × 2 workers — enough for 2D schedules, fast."""
    return ClusterSpec(num_machines=2, workers_per_machine=2)


@pytest.fixture
def cluster_mid():
    """4 machines × 4 workers for scaling-ish tests."""
    return ClusterSpec(num_machines=4, workers_per_machine=4)


@pytest.fixture
def fast_net():
    """A network model with visible but small costs."""
    return NetworkModel(bandwidth_bytes_per_s=1e9, latency_s=1e-5)


@pytest.fixture
def unit_cost():
    """A cost model with entry cost exactly 1 µs for arithmetic checks."""
    return CostModel(entry_cost_s=1e-6)
