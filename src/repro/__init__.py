"""Orion reproduction: dependence-aware auto-parallelization of ML training.

Reproduction of Wei et al., *Automating Dependence-Aware Parallelization of
Machine Learning Training on Distributed Shared Memory* (EuroSys 2019).

Public entry points:

* :class:`repro.api.OrionContext` — the driver API (DistArrays, buffers,
  accumulators, ``parallel_for``).
* :mod:`repro.analysis` — static dependence analysis and strategy choice.
* :mod:`repro.runtime` — the simulated cluster and executor.
* :mod:`repro.apps` — the paper's ML applications (SGD MF, SLR, LDA, GBT).
* :mod:`repro.baselines` — serial / Bösen / managed-communication /
  STRADS-style / TensorFlow-style comparison engines.
* :mod:`repro.data` — synthetic dataset generators standing in for
  Netflix / NYTimes / ClueWeb / KDD2010.
* :mod:`repro.faults` — deterministic fault injection (crashes, message
  drops, stragglers) and crash recovery (see ``docs/fault_tolerance.md``).
"""

from repro.api import OrionContext, ParallelLoop
from repro.core.accumulator import Accumulator
from repro.core.buffers import DistArrayBuffer
from repro.core.distarray import DistArray
from repro.errors import (
    AnalysisError,
    DependenceError,
    ExecutionError,
    FaultError,
    MaterializationError,
    ParallelizationError,
    PartitionError,
    ReproError,
    SubscriptError,
)
from repro.faults import FaultPlan, MessageDrops, Straggler, WorkerCrash
from repro.obs.observability import Observability
from repro.runtime.checkpoint import CheckpointConfig
from repro.runtime.cluster import ClusterSpec
from repro.runtime.history import RunHistory
from repro.runtime.network import NetworkModel, RetryPolicy
from repro.runtime.options import LoopOptions
from repro.runtime.simtime import CostModel

__version__ = "1.0.0"

__all__ = [
    "OrionContext",
    "ParallelLoop",
    "Accumulator",
    "DistArrayBuffer",
    "DistArray",
    "ClusterSpec",
    "RunHistory",
    "NetworkModel",
    "RetryPolicy",
    "CostModel",
    "LoopOptions",
    "Observability",
    "CheckpointConfig",
    "FaultPlan",
    "WorkerCrash",
    "Straggler",
    "MessageDrops",
    "AnalysisError",
    "FaultError",
    "DependenceError",
    "ExecutionError",
    "MaterializationError",
    "ParallelizationError",
    "PartitionError",
    "ReproError",
    "SubscriptError",
    "__version__",
]
