"""Unit tests for AST helpers (repro.analysis.ast_utils)."""

import ast

import pytest

from repro.analysis import ast_utils
from repro.analysis.subscript import SubscriptKind
from repro.errors import AnalysisError


def _axis_from(expr_src: str, bindings=None):
    bindings = bindings or {
        "key": ast_utils.IndexBinding(dim_idx=None),
        "i": ast_utils.IndexBinding(dim_idx=0),
        "j": ast_utils.IndexBinding(dim_idx=1, const=2),
    }
    node = ast.parse(f"A[{expr_src}]", mode="eval").body
    element = node.slice
    return ast_utils.parse_axis(element, bindings)


class TestConstantInt:
    def test_plain_int(self):
        node = ast.parse("7", mode="eval").body
        assert ast_utils.constant_int(node) == 7

    def test_negative_int(self):
        node = ast.parse("-4", mode="eval").body
        assert ast_utils.constant_int(node) == -4

    def test_bool_rejected(self):
        node = ast.parse("True", mode="eval").body
        assert ast_utils.constant_int(node) is None

    def test_float_rejected(self):
        node = ast.parse("1.5", mode="eval").body
        assert ast_utils.constant_int(node) is None

    def test_name_rejected(self):
        node = ast.parse("x", mode="eval").body
        assert ast_utils.constant_int(node) is None


class TestParseAxis:
    def test_constant(self):
        axis = _axis_from("3")
        assert axis.kind is SubscriptKind.CONSTANT
        assert axis.const == 3

    def test_full_slice(self):
        assert _axis_from(":").kind is SubscriptKind.SLICE_ALL

    def test_constant_range(self):
        axis = _axis_from("1:4")
        assert axis.kind is SubscriptKind.RANGE
        assert (axis.lo, axis.hi) == (1, 4)

    def test_stepped_slice_unknown(self):
        assert _axis_from("1:8:2").kind is SubscriptKind.UNKNOWN

    def test_half_open_slice_unknown(self):
        assert _axis_from("2:").kind is SubscriptKind.UNKNOWN

    def test_key_subscript(self):
        axis = _axis_from("key[0]")
        assert axis.kind is SubscriptKind.INDEX
        assert (axis.dim_idx, axis.const) == (0, 0)

    def test_key_subscript_plus_const(self):
        axis = _axis_from("key[1] + 3")
        assert (axis.dim_idx, axis.const) == (1, 3)

    def test_key_subscript_minus_const(self):
        axis = _axis_from("key[0] - 2")
        assert (axis.dim_idx, axis.const) == (0, -2)

    def test_const_plus_key_subscript(self):
        axis = _axis_from("5 + key[0]")
        assert (axis.dim_idx, axis.const) == (0, 5)

    def test_alias_name(self):
        axis = _axis_from("i")
        assert (axis.dim_idx, axis.const) == (0, 0)

    def test_alias_with_stored_offset(self):
        # j was bound as key[1] + 2; using j +1 gives total offset 3.
        axis = _axis_from("j + 1")
        assert (axis.dim_idx, axis.const) == (1, 3)

    def test_unbound_name_unknown(self):
        assert _axis_from("fid").kind is SubscriptKind.UNKNOWN

    def test_arithmetic_on_two_indices_unknown(self):
        assert _axis_from("i + j").kind is SubscriptKind.UNKNOWN

    def test_multiplication_unknown(self):
        assert _axis_from("2 * i").kind is SubscriptKind.UNKNOWN

    def test_whole_key_name_not_an_index_axis(self):
        # `A[key]` handling happens at the reference level, not per axis.
        assert _axis_from("key").kind is SubscriptKind.UNKNOWN


class TestFunctionTools:
    def test_get_function_def(self):
        def sample(key, value):
            return key

        tree = ast_utils.get_function_def(sample)
        assert tree.name == "sample"
        assert [a.arg for a in tree.args.args] == ["key", "value"]

    def test_get_function_def_rejects_builtins(self):
        with pytest.raises(AnalysisError):
            ast_utils.get_function_def(len)

    def test_resolve_free_variables_closure_beats_globals(self):
        shadow = "closure"

        def inner(key):
            return shadow

        env = ast_utils.resolve_free_variables(inner)
        assert env["shadow"] == "closure"

    def test_resolve_free_variables_includes_globals(self):
        def uses_global(key):
            return ast_utils

        env = ast_utils.resolve_free_variables(uses_global)
        assert env["ast_utils"] is ast_utils

    def test_is_builtin_name(self):
        assert ast_utils.is_builtin_name("len")
        assert not ast_utils.is_builtin_name("definitely_not_a_builtin_xyz")
