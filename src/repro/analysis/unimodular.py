"""Unimodular iteration-space transformations (paper Sec. 4.3, ref. [46]).

When neither 1D nor 2D parallelization applies directly, Orion searches for
a unimodular transformation ``T`` (integer matrix, ``|det T| = 1``) such
that every transformed dependence vector is carried by the *outermost*
loop: ``(T d)[0] > 0`` for all ``d``.  Then iterations of the inner loop
nest within one outer index are independent, giving a 2D parallelization of
the transformed space (outer = time dimension, an inner = space dimension).

The search composes the classic elementary transformations — loop
interchange, loop reversal, and loop skewing — breadth first up to a small
depth, which covers the standard wavefront cases (e.g. dependence set
``{(1,0), (0,1)}`` is solved by the skew ``[[1,1],[0,1]]``).

Per the paper, the transformation applies only when the dependence vectors
contain exact numbers or ``+∞`` (:data:`~repro.analysis.depvec.POS`) —
``ANY``-valued distances cannot be carried by a single outer loop.
"""

from __future__ import annotations

import itertools
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.depvec import ANY, NEG, DepVector, entry_is_positive

__all__ = [
    "Matrix",
    "identity",
    "interchange",
    "reversal",
    "skew",
    "is_unimodular",
    "invert_unimodular",
    "eligible_for_transformation",
    "find_transformation",
]

Matrix = Tuple[Tuple[int, ...], ...]


def identity(n: int) -> Matrix:
    """The n×n identity transformation."""
    return tuple(
        tuple(1 if r == c else 0 for c in range(n)) for r in range(n)
    )


def _from_numpy(array: np.ndarray) -> Matrix:
    return tuple(tuple(int(v) for v in row) for row in array)


def interchange(n: int, i: int, j: int) -> Matrix:
    """Elementary matrix swapping loop levels ``i`` and ``j``."""
    mat = np.eye(n, dtype=np.int64)
    mat[[i, j]] = mat[[j, i]]
    return _from_numpy(mat)


def reversal(n: int, i: int) -> Matrix:
    """Elementary matrix reversing loop level ``i``."""
    mat = np.eye(n, dtype=np.int64)
    mat[i, i] = -1
    return _from_numpy(mat)


def skew(n: int, i: int, j: int, factor: int) -> Matrix:
    """Elementary matrix skewing level ``i`` by ``factor`` × level ``j``."""
    mat = np.eye(n, dtype=np.int64)
    mat[i, j] = factor
    return _from_numpy(mat)


def _matmul(a: Matrix, b: Matrix) -> Matrix:
    return _from_numpy(np.array(a, dtype=np.int64) @ np.array(b, dtype=np.int64))


def is_unimodular(matrix: Matrix) -> bool:
    """Whether ``matrix`` is integer with determinant ±1."""
    det = round(float(np.linalg.det(np.array(matrix, dtype=np.float64))))
    return det in (1, -1)


def invert_unimodular(matrix: Matrix) -> Matrix:
    """Exact integer inverse of a unimodular matrix."""
    array = np.array(matrix, dtype=np.float64)
    inverse = np.linalg.inv(array)
    return _from_numpy(np.rint(inverse))


def eligible_for_transformation(dvecs: Iterable[DepVector]) -> bool:
    """Paper's precondition: entries are exact numbers or ``+∞`` only."""
    for vector in dvecs:
        for entry in vector:
            if entry is ANY or entry is NEG:
                return False
    return True


def _carried_by_outermost(dvecs: Sequence[DepVector], matrix: Matrix) -> bool:
    return all(
        entry_is_positive(vector.transform(matrix)[0]) for vector in dvecs
    )


def _generators(n: int, skew_factors: Sequence[int]) -> List[Matrix]:
    out: List[Matrix] = []
    for i, j in itertools.permutations(range(n), 2):
        out.append(interchange(n, i, j))
        for factor in skew_factors:
            out.append(skew(n, i, j, factor))
    for i in range(n):
        out.append(reversal(n, i))
    return out


def find_transformation(
    dvecs: Sequence[DepVector],
    num_dims: int,
    max_depth: int = 3,
    skew_factors: Sequence[int] = (1, -1, 2, -2),
) -> Optional[Matrix]:
    """Search for a unimodular ``T`` carrying every dependence on level 0.

    Breadth-first over products of elementary transformations, bounded by
    ``max_depth`` factors.  Returns the first (shallowest) matrix found, or
    ``None`` when the search space is exhausted or the dependence set is
    ineligible.
    """
    vectors = list(dvecs)
    if not vectors or num_dims < 2:
        return None
    if not eligible_for_transformation(vectors):
        return None
    start = identity(num_dims)
    if _carried_by_outermost(vectors, start):
        return start
    generators = _generators(num_dims, skew_factors)
    frontier: List[Matrix] = [start]
    seen = {start}
    for _depth in range(max_depth):
        next_frontier: List[Matrix] = []
        for current in frontier:
            for generator in generators:
                candidate = _matmul(generator, current)
                if candidate in seen:
                    continue
                seen.add(candidate)
                if _carried_by_outermost(vectors, candidate):
                    return candidate
                next_frontier.append(candidate)
        frontier = next_frontier
    return None


def transform_point(matrix: Matrix, point: Sequence[int]) -> Tuple[int, ...]:
    """Apply a transformation matrix to a concrete iteration index."""
    return tuple(
        sum(coefficient * coordinate for coefficient, coordinate in zip(row, point))
        for row in matrix
    )
