"""Seed robustness: the paper-shape orderings must not be seed artifacts.

Each comparative claim asserted by the benchmarks (dep-aware ≈ serial ≪
data parallel; CM between them; STRADS ≡ Orion) is re-checked here on
miniature workloads across several seeds.  A claim that held only for one
lucky seed would be calibration theater; these tests make the shapes part
of the regression suite.
"""

import pytest

from repro.apps import MFHyper, SGDMFApp, build_sgd_mf
from repro.baselines import run_bosen, run_managed_comm, run_serial, run_strads
from repro.data import netflix_like
from repro.runtime.cluster import ClusterSpec

SEEDS = [1, 22, 333]
EPOCHS = 6


def _setup(seed):
    dataset = netflix_like(
        num_rows=70, num_cols=56, num_ratings=2500, seed=seed
    )
    hyper = MFHyper(rank=4, step_size=0.05)
    cluster = ClusterSpec(num_machines=4, workers_per_machine=4)
    return dataset, hyper, cluster


class TestShapeAcrossSeeds:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_dep_aware_beats_data_parallel(self, seed):
        dataset, hyper, cluster = _setup(seed)
        orion = build_sgd_mf(
            dataset, cluster=cluster, hyper=hyper, seed=seed
        ).run(EPOCHS)
        bosen = run_bosen(SGDMFApp(dataset, hyper), cluster, EPOCHS, seed=seed)
        assert orion.final_loss < bosen.final_loss

    @pytest.mark.parametrize("seed", SEEDS)
    def test_dep_aware_tracks_serial(self, seed):
        dataset, hyper, cluster = _setup(seed)
        serial = run_serial(SGDMFApp(dataset, hyper), EPOCHS, seed=seed)
        orion = build_sgd_mf(
            dataset, cluster=cluster, hyper=hyper, seed=seed
        ).run(EPOCHS)
        initial = serial.meta["initial_loss"]
        progress = initial - serial.final_loss
        assert abs(orion.final_loss - serial.final_loss) < 0.5 * progress

    @pytest.mark.parametrize("seed", SEEDS)
    def test_cm_improves_on_bosen_and_tracks_orion(self, seed):
        # The paper's robust claims: CM clearly improves on plain data
        # parallelism, and its per-iteration convergence is *similar* to
        # Orion's (Sec. 6.4 — on some workloads CM matches Orion; its cost
        # is bandwidth, not iterations).
        dataset, hyper, cluster = _setup(seed)
        app = SGDMFApp(dataset, hyper)
        bosen = run_bosen(app, cluster, EPOCHS, seed=seed)
        cm = run_managed_comm(
            app, cluster, EPOCHS, bandwidth_budget_mbps=1600, seed=seed
        )
        orion = build_sgd_mf(
            dataset, cluster=cluster, hyper=hyper, seed=seed
        ).run(EPOCHS)
        assert cm.final_loss < bosen.final_loss
        assert orion.final_loss < bosen.final_loss
        initial = bosen.meta["initial_loss"]
        progress = initial - min(orion.final_loss, cm.final_loss)
        assert abs(orion.final_loss - cm.final_loss) < 0.35 * progress
        # And CM pays for it in bandwidth.
        assert cm.traffic.total_bytes > bosen.traffic.total_bytes

    @pytest.mark.parametrize("seed", SEEDS)
    def test_strads_identical_to_orion(self, seed):
        dataset, hyper, cluster = _setup(seed)
        orion = build_sgd_mf(
            dataset, cluster=cluster, hyper=hyper, seed=seed
        ).run(3)
        strads = run_strads(
            lambda c: build_sgd_mf(dataset, cluster=c, hyper=hyper, seed=seed),
            cluster,
            3,
        )
        assert strads.losses == pytest.approx(orion.losses)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_unordered_vs_ordered_throughput(self, seed):
        dataset, hyper, cluster = _setup(seed)
        unordered = build_sgd_mf(
            dataset, cluster=cluster, hyper=hyper, seed=seed, ordered=False
        ).run(3)
        ordered = build_sgd_mf(
            dataset, cluster=cluster, hyper=hyper, seed=seed, ordered=True
        ).run(3)
        assert unordered.time_per_iteration() < ordered.time_per_iteration()
