"""A real multiprocess distributed runtime for compiled parallel loops.

The simulated executor (:mod:`repro.runtime.executor`) charges virtual time
while executing a linearization in-process.  This module runs the *same
compiled plan* on real OS processes: each worker process owns its array
partitions, executes its scheduled blocks, rotated partitions move between
processes as actual IPC messages (the paper's Fig. 8 dataflow, physically),
and the master doubles as the parameter server — shipping bulk-prefetched
values for server-placed arrays with each block and applying buffered
writes (through their UDFs) as flush messages arrive.

It exists to demonstrate that the plans the static analyzer produces are
executable by a genuinely distributed runtime, not just a model:

* for dependence-preserving plans the final parameters are *bitwise
  identical* to the simulated executor's linearization;
* for buffered (data-parallel) plans the semantics are the real thing —
  each block computes against the server values prefetched at dispatch
  time, so same-step blocks genuinely do not see each other's updates.

Design notes:

* Workers are forked, so the loop body (with its closure over DistArrays,
  buffers and accumulators) needs no pickling; each child holds copies of
  the driver's objects and treats only its assigned partitions as
  authoritative.
* The master mediates rotation and parameter service, which keeps the
  protocol deadlock-free at the cost of extra hops (this runtime is a
  fidelity proof, not a performance vehicle).
* Supported plans: 1D, 2D and data-parallel.  Unimodular plans place
  written arrays on the server, so they are covered by the same machinery.
* Accumulators are supported for zero-initial reduce-style accumulators
  (each block's contribution is shipped and folded master-side).
* Buffered writes synchronize once per block — the paper's once-per-
  partition bound.  The finer ``max_delay`` sub-block bound is a refinement
  the simulated executor models; honoring it here would need mid-block
  round trips to the server.
"""

from __future__ import annotations

import multiprocessing
from typing import Any, Dict, List, Tuple

import numpy as np

from repro.analysis.strategy import PlacementKind
from repro.api import ParallelLoop
from repro.core import access
from repro.errors import ExecutionError

__all__ = ["MultiprocessRunner"]


def _axis_slice(ndim: int, axis: int, lo: int, hi: int) -> Tuple[slice, ...]:
    """An indexing tuple selecting ``[lo:hi)`` along one axis."""
    return tuple(
        slice(lo, hi) if dim == axis else slice(None) for dim in range(ndim)
    )


def _canonical(index: Any) -> Tuple[Any, ...]:
    if not isinstance(index, tuple):
        index = (index,)
    out = []
    for item in index:
        if isinstance(item, slice):
            out.append(("__slice__", item.start, item.stop))
        else:
            out.append(int(item))
    return tuple(out)


def _runtime_index(key: Tuple[Any, ...]) -> Tuple[Any, ...]:
    out = []
    for item in key:
        if isinstance(item, tuple) and item and item[0] == "__slice__":
            out.append(slice(item[1], item[2]))
        else:
            out.append(item)
    return tuple(out)


class _WorkerProcess:
    """Code that runs inside one forked worker (no self-use in the parent)."""

    def __init__(self, worker_id: int, loop: ParallelLoop, conn) -> None:
        self.worker_id = worker_id
        self.loop = loop
        self.conn = conn
        self.arrays = loop.info.arrays  # the child's forked copies

    def serve(self) -> None:
        while True:
            message = self.conn.recv()
            kind = message[0]
            if kind == "stop":
                self.conn.send(("bye",))
                return
            if kind == "run_block":
                self._run_block(*message[1:])
            elif kind == "collect_local":
                self._collect_local(*message[1:])
            else:  # pragma: no cover - protocol error
                self.conn.send(("error", f"unknown message {kind!r}"))

    def _run_block(
        self,
        space_idx: int,
        time_idx: int,
        rotated_in: Dict[str, Tuple[Tuple[slice, ...], np.ndarray]],
        rotated_out_spec: Dict[str, Tuple[slice, ...]],
        server_in: Dict[str, List[Tuple[Tuple[Any, ...], Any]]],
    ) -> None:
        # Install incoming rotated partitions and prefetched server values
        # into the local copies.
        for name, (index, payload) in rotated_in.items():
            self.arrays[name].values[index] = payload
        for name, items in server_in.items():
            array = self.arrays[name]
            for key, payload in items:
                array.direct_set(_runtime_index(key), payload)
        block = self.loop.executor.partitions.block(space_idx, time_idx)
        body = self.loop.body
        with access.worker_scope(self.worker_id):
            for key, value in block:
                body(key, value)
        # Extract buffered writes (do NOT apply locally: the master's
        # parameter server owns the targets and the UDF state).
        flushes: Dict[str, Dict[Tuple[Any, ...], Any]] = {}
        for name, buffer in self.loop.info.buffers.items():
            pending = buffer._pending.pop(self.worker_id, None)
            if pending:
                flushes[name] = pending
        # Extract accumulator contributions.
        accumulators: Dict[str, Any] = {}
        for name, acc in self.loop.info.accumulator_refs.items():
            if self.worker_id in acc._slots:
                accumulators[name] = acc._slots.pop(self.worker_id)
        # Ship the (now updated) rotated partitions back to the master.
        outgoing = {
            name: (index, self.arrays[name].values[index].copy())
            for name, index in rotated_out_spec.items()
        }
        self.conn.send(
            ("block_done", space_idx, time_idx, outgoing, flushes, accumulators)
        )

    def _collect_local(self, local_spec: Dict[str, Any]) -> None:
        payload: Dict[str, Any] = {}
        for name, spec in local_spec.items():
            array = self.arrays[name]
            if spec[0] == "dense":
                index = spec[1]
                payload[name] = ("dense", index, array.values[index].copy())
            else:
                _tag, dim, lo, hi = spec
                entries = {
                    key: value
                    for key, value in array.entries()
                    if lo <= key[dim] < hi
                }
                payload[name] = ("sparse", entries)
        self.conn.send(("local_state", payload))


def _worker_entry(worker_id: int, loop: ParallelLoop, conn) -> None:
    _WorkerProcess(worker_id, loop, conn).serve()


class MultiprocessRunner:
    """Run a compiled :class:`~repro.api.ParallelLoop` on real processes.

    Usage::

        loop = ctx.parallel_for(ratings)(body)
        with MultiprocessRunner(loop) as runner:
            runner.run_epoch()

    After each epoch the master's DistArrays hold the authoritative state
    (local partitions collected back, server arrays maintained in the
    master), so driver-side loss evaluation works exactly as with the
    simulated executor.
    """

    def __init__(self, loop: ParallelLoop) -> None:
        if loop.plan.transform is not None:
            raise ExecutionError(
                "the multiprocess runtime does not execute unimodular-"
                "transformed plans (use the simulated executor)"
            )
        self.loop = loop
        self.executor = loop.executor
        self.partitions = self.executor.partitions
        self._context = multiprocessing.get_context("fork")
        self._connections: List[Any] = []
        self._processes: List[Any] = []
        #: Latest payload of each rotated array's time partition, keyed by
        #: (array_name, time_idx).
        self._rotated_state: Dict[Tuple[str, int], np.ndarray] = {}
        self._started = False

    # ---------------- lifecycle ---------------------------------------- #

    def _start(self) -> None:
        if self._started:
            return
        for worker in range(self.executor.num_workers):
            parent_conn, child_conn = self._context.Pipe()
            process = self._context.Process(
                target=_worker_entry,
                args=(worker, self.loop, child_conn),
                daemon=True,
            )
            process.start()
            child_conn.close()
            self._connections.append(parent_conn)
            self._processes.append(process)
        # Seed the rotated-partition table from the master's arrays.
        for name, placement in self.loop.plan.placements.items():
            if placement.kind is not PlacementKind.ROTATED:
                continue
            for time_idx in range(self.executor.num_time):
                index = self._rotated_index(name, time_idx)
                array = self.loop.info.arrays[name]
                self._rotated_state[(name, time_idx)] = (
                    array.values[index].copy()
                )
        self._started = True

    def close(self) -> None:
        """Stop every worker process."""
        for conn in self._connections:
            try:
                conn.send(("stop",))
                conn.recv()
                conn.close()
            except (OSError, EOFError):  # pragma: no cover - racy shutdown
                pass
        for process in self._processes:
            process.join(timeout=5)
        self._connections = []
        self._processes = []
        self._started = False

    def __enter__(self) -> "MultiprocessRunner":
        self._start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ---------------- partition indexing -------------------------------- #

    def _rotated_index(self, name: str, time_idx: int) -> Tuple[slice, ...]:
        placement = self.loop.plan.placements[name]
        array = self.loop.info.arrays[name]
        lo, hi = self.partitions.time_bounds[time_idx]
        return _axis_slice(array.ndim, placement.array_dim, lo, hi)

    def _local_spec(self, name: str, space_idx: int) -> Tuple[Any, ...]:
        """Worker-side collection spec for one local partition.

        Dense arrays collect a slice along the partitioned axis; sparse
        arrays collect the entries whose coordinate falls in the range.
        """
        placement = self.loop.plan.placements[name]
        array = self.loop.info.arrays[name]
        lo, hi = self.partitions.space_bounds[space_idx]
        if array.sparse:
            return ("sparse", placement.array_dim, lo, hi)
        return (
            "dense",
            _axis_slice(array.ndim, placement.array_dim, lo, hi),
        )

    def _names_with(self, kind: PlacementKind) -> List[str]:
        return [
            name
            for name, placement in self.loop.plan.placements.items()
            if placement.kind is kind and not name.startswith("<target:")
        ]

    # ---------------- messaging ------------------------------------------ #

    def _send(self, worker: int, message) -> None:
        try:
            self._connections[worker].send(message)
        except (OSError, BrokenPipeError) as exc:
            raise ExecutionError(
                f"worker {worker} died (send failed: {exc}); restore from a "
                "checkpoint and restart the runner"
            ) from exc

    def _recv(self, worker: int):
        try:
            return self._connections[worker].recv()
        except (EOFError, OSError) as exc:
            raise ExecutionError(
                f"worker {worker} died (connection closed); restore from a "
                "checkpoint and restart the runner"
            ) from exc

    # ---------------- parameter service --------------------------------- #

    def _server_payload(
        self, space_idx: int, time_idx: int
    ) -> Dict[str, List[Tuple[Tuple[Any, ...], Any]]]:
        """Prefetched server-array values for one block.

        With a synthesized prefetch function: exactly the indices the block
        will read.  Without one (data-dependent subscripts beyond even
        prefetch synthesis): the whole array, the conservative fallback.
        """
        server_names = self._names_with(PlacementKind.SERVER)
        if not server_names:
            return {}
        arrays = self.loop.info.arrays
        prefetch = self.executor.prefetch.prefetch_fn
        payload: Dict[str, List[Tuple[Tuple[Any, ...], Any]]] = {}
        if prefetch is None:
            for name in server_names:
                array = arrays[name]
                whole = _axis_slice(array.ndim, 0, 0, array.shape[0])
                payload[name] = [(_canonical(whole), array.values.copy())]
            return payload
        block = self.partitions.block(space_idx, time_idx)
        seen = set()
        for key, value in block:
            for name, index in prefetch(key, value):
                if name not in arrays:
                    continue
                signature = (name, _canonical(index))
                if signature in seen:
                    continue
                seen.add(signature)
                fetched = arrays[name].direct_get(index)
                if isinstance(fetched, np.ndarray):
                    fetched = fetched.copy()
                payload.setdefault(name, []).append(
                    (signature[1], fetched)
                )
        return payload

    def _apply_flushes(
        self, worker: int, flushes: Dict[str, Dict[Tuple[Any, ...], Any]]
    ) -> None:
        """Parameter-server write path: apply buffered writes via UDFs."""
        for name, pending in flushes.items():
            buffer = self.loop.info.buffers[name]
            slot = buffer._pending.setdefault(worker, {})
            for key, update in pending.items():
                if key in slot:
                    slot[key] = buffer.combiner(slot[key], update)
                else:
                    slot[key] = update
            buffer.flush_worker(worker)

    def _fold_accumulators(self, worker: int, values: Dict[str, Any]) -> None:
        for name, value in values.items():
            acc = self.loop.info.accumulator_refs[name]
            with access.worker_scope(worker):
                acc.add(value)

    # ---------------- execution ----------------------------------------- #

    def run_epoch(self) -> int:
        """Execute one full pass over the iteration space on the workers.

        Returns the number of blocks executed.  Tasks within a step are
        dispatched to all workers before any reply is awaited, so blocks
        the schedule claims concurrent genuinely execute concurrently —
        and blocks reading server arrays see exactly the values prefetched
        at dispatch time (real data-parallel staleness).
        """
        self._start()
        rotated_names = self._names_with(PlacementKind.ROTATED)
        blocks = 0
        for step_tasks in self.executor.steps:
            # Dispatch the whole step...
            for task in step_tasks:
                time_idx = task.time_idx or 0
                rotated_in = {}
                rotated_out = {}
                for name in rotated_names:
                    index = self._rotated_index(name, time_idx)
                    rotated_in[name] = (
                        index,
                        self._rotated_state[(name, time_idx)],
                    )
                    rotated_out[name] = index
                server_in = self._server_payload(task.space_idx, time_idx)
                self._send(
                    task.worker,
                    ("run_block", task.space_idx, time_idx, rotated_in,
                     rotated_out, server_in),
                )
            # ...then gather every reply, updating rotation/server state.
            for task in step_tasks:
                reply = self._recv(task.worker)
                if reply[0] != "block_done":  # pragma: no cover
                    raise ExecutionError(f"worker protocol error: {reply!r}")
                _kind, _space, time_idx, outgoing, flushes, accs = reply
                for name, (_index, payload) in outgoing.items():
                    self._rotated_state[(name, time_idx)] = payload
                self._apply_flushes(task.worker, flushes)
                self._fold_accumulators(task.worker, accs)
                blocks += 1
        self._collect()
        return blocks

    def _collect(self) -> None:
        """Pull authoritative state back into the master's DistArrays."""
        # Local partitions live on their owning workers.
        local_names = self._names_with(PlacementKind.LOCAL)
        for worker in range(self.executor.num_workers):
            spec = {
                name: self._local_spec(name, worker) for name in local_names
            }
            self._send(worker, ("collect_local", spec))
        for worker in range(self.executor.num_workers):
            reply = self._recv(worker)
            if reply[0] != "local_state":  # pragma: no cover
                raise ExecutionError(f"worker protocol error: {reply!r}")
            for name, payload in reply[1].items():
                array = self.loop.info.arrays[name]
                if payload[0] == "dense":
                    _tag, index, values = payload
                    array.values[index] = values
                else:
                    for key, value in payload[1].items():
                        array.direct_set(key, value)
        # Rotated partitions live in the master's rotation table; server
        # arrays are already authoritative in the master.
        for (name, time_idx), payload in self._rotated_state.items():
            index = self._rotated_index(name, time_idx)
            self.loop.info.arrays[name].values[index] = payload
