"""Fig. 13 — Orion vs. TensorFlow-style mini-batch SGD MF (single machine).

Paper results (one machine, CPU only):

* (a) over time: TF SGD MF converges much slower than Orion because
  parameters update once per mini-batch;
* (b) time per iteration: with a 25M-entry mini-batch TF is ~2.2x slower
  than Orion per data pass (dense-operator redundancy on sparse data);
  *smaller* mini-batches are slower still (cores underutilized, per-batch
  launch overhead), and larger ones run out of memory.

Also folds in the paper's TuX² observation (Sec. 6.1): a dependence-
violating engine can post higher raw throughput yet reach a given loss far
later than Orion.
"""

import pytest

import _workloads as wl
from repro.apps import SGDMFApp, build_sgd_mf
from repro.baselines import run_tensorflow_minibatch
from repro.errors import ExecutionError
from repro.runtime.cluster import ClusterSpec

EPOCHS = 8


def _run_all():
    dataset = wl.netflix_bench()
    cluster = ClusterSpec.single_machine(
        16, network=wl.BENCH_NETWORK, cost=wl.mf_cluster().cost
    )
    app = SGDMFApp(dataset, wl.MF_HYPER)
    quarter = dataset.num_entries // 4  # the paper's "TF_25M" analogue
    small = dataset.num_entries // 80   # the paper's "TF_806K" analogue
    runs = {
        "Orion": build_sgd_mf(
            dataset, cluster=cluster, hyper=wl.MF_HYPER
        ).run(EPOCHS),
        f"TF batch={quarter}": run_tensorflow_minibatch(
            app, cluster, EPOCHS, batch_size=quarter, step_scale=4.0
        ),
        f"TF batch={small}": run_tensorflow_minibatch(
            app, cluster, EPOCHS, batch_size=small, step_scale=4.0
        ),
    }
    return runs, quarter, small


@pytest.mark.benchmark(group="fig13")
def test_fig13_orion_vs_tensorflow(benchmark, report):
    runs, quarter, small = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    rows = [
        (
            label,
            f"{history.final_loss:.1f}",
            f"{history.time_per_iteration():.4f}",
            f"{history.total_time_s:.3f}",
        )
        for label, history in runs.items()
    ]
    report(
        "Fig 13: Orion vs TensorFlow-style SGD MF (single machine)",
        wl.fmt_table(
            ["engine", "final loss", "s/iter", "total time (s)"], rows
        )
        + "\npaper shape: Orion converges much faster over time; large-"
        "batch TF ~2.2x slower per iteration; small batches slower still",
    )
    orion = runs["Orion"]
    tf_big = runs[f"TF batch={quarter}"]
    tf_small = runs[f"TF batch={small}"]
    initial = tf_big.meta["initial_loss"]
    # (a) Convergence: Orion makes several times TF's progress.
    assert (initial - orion.final_loss) > 2 * (initial - tf_big.final_loss)
    # (b) Throughput: TF slower per pass at large batch (paper: 2.2x) and
    # even slower at small batch.
    big_ratio = tf_big.time_per_iteration() / orion.time_per_iteration()
    assert big_ratio > 1.5
    assert tf_small.time_per_iteration() > tf_big.time_per_iteration()


@pytest.mark.benchmark(group="fig13")
def test_fig13_oom_guard(benchmark, report):
    """TF runs out of memory above the largest working mini-batch size."""

    def _attempt():
        dataset = wl.netflix_bench()
        cluster = ClusterSpec.single_machine(16, cost=wl.mf_cluster().cost)
        app = SGDMFApp(dataset, wl.MF_HYPER)
        try:
            run_tensorflow_minibatch(
                app,
                cluster,
                1,
                batch_size=dataset.num_entries,
                oom_batch_entries=dataset.num_entries // 2,
            )
        except ExecutionError as exc:
            return str(exc)
        return None

    message = benchmark.pedantic(_attempt, rounds=1, iterations=1)
    report(
        "Fig 13 (OOM note)",
        f"full-dataset mini-batch raised: {message}\n"
        "paper: TF runs out of memory above 25M-entry mini-batches",
    )
    assert message is not None and "memory" in message
