"""Terminal reporting utilities for run histories.

Renders :class:`~repro.runtime.history.RunHistory` collections as aligned
tables and ASCII loss curves — the quick-look layer the examples and the
CLI use, and the closest offline equivalent of the paper's gnuplot panels.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.runtime.history import RunHistory

__all__ = ["comparison_table", "ascii_curves", "render_report"]


def comparison_table(histories: Sequence[RunHistory]) -> str:
    """One row per engine: final loss, time/iteration, total time, traffic."""
    headers = ["engine", "final loss", "s/iter", "total s", "MB sent"]
    rows: List[List[str]] = []
    for history in histories:
        rows.append(
            [
                history.label,
                f"{history.final_loss:.6g}",
                f"{history.time_per_iteration():.4g}",
                f"{history.total_time_s:.4g}",
                f"{history.traffic.total_bytes / 1e6:.3f}",
            ]
        )
    widths = [
        max(len(headers[col]), *(len(row[col]) for row in rows))
        for col in range(len(headers))
    ]

    def _line(cells: Iterable[str]) -> str:
        return "  ".join(
            cell.ljust(widths[0]) if col == 0 else cell.rjust(widths[col])
            for col, cell in enumerate(cells)
        )

    out = [_line(headers), _line("-" * w for w in widths)]
    out.extend(_line(row) for row in rows)
    return "\n".join(out)


def _scale(
    value: float, lo: float, hi: float, height: int, log: bool
) -> int:
    if log:
        value, lo, hi = math.log10(value), math.log10(lo), math.log10(hi)
    if hi <= lo:
        return 0
    frac = (value - lo) / (hi - lo)
    return min(height - 1, max(0, int(round(frac * (height - 1)))))


def ascii_curves(
    histories: Sequence[RunHistory],
    x_axis: str = "epoch",
    height: int = 12,
    width: int = 64,
    log_y: bool = False,
) -> str:
    """Plot each history's loss curve in one shared ASCII frame.

    Args:
        x_axis: ``"epoch"`` or ``"time"`` (virtual seconds).
        log_y: log-scale the loss axis (useful when engines diverge by
            orders of magnitude).
    """
    if x_axis not in ("epoch", "time"):
        raise ValueError(f"unknown x_axis {x_axis!r}")
    series: List[Tuple[str, List[float], List[float]]] = []
    for history in histories:
        xs = (
            [float(r.epoch) for r in history.records]
            if x_axis == "epoch"
            else [r.time_s for r in history.records]
        )
        ys = [r.loss for r in history.records]
        if xs:
            series.append((history.label, xs, ys))
    if not series:
        return "(no data)"
    all_x = [x for _l, xs, _y in series for x in xs]
    all_y = [y for _l, _x, ys in series for y in ys]
    if log_y:
        all_y = [y for y in all_y if y > 0]
        if not all_y:
            log_y = False
            all_y = [y for _l, _x, ys in series for y in ys]
    x_lo, x_hi = min(all_x), max(all_x)
    y_lo, y_hi = min(all_y), max(all_y)
    grid = [[" "] * width for _ in range(height)]
    markers = "ox+*#@%&"
    for index, (_label, xs, ys) in enumerate(series):
        marker = markers[index % len(markers)]
        for x, y in zip(xs, ys):
            if log_y and y <= 0:
                continue
            col = _scale(x, x_lo, x_hi, width, log=False)
            row = _scale(y, y_lo, y_hi, height, log=log_y)
            grid[height - 1 - row][col] = marker
    y_label_hi = f"{y_hi:.4g}"
    y_label_lo = f"{y_lo:.4g}"
    pad = max(len(y_label_hi), len(y_label_lo))
    lines = []
    for row_idx, row in enumerate(grid):
        prefix = (
            y_label_hi.rjust(pad)
            if row_idx == 0
            else y_label_lo.rjust(pad)
            if row_idx == height - 1
            else " " * pad
        )
        lines.append(f"{prefix} |" + "".join(row))
    lines.append(" " * pad + " +" + "-" * width)
    x_title = "epoch" if x_axis == "epoch" else "virtual seconds"
    lines.append(
        " " * pad
        + f"  {x_lo:.4g}"
        + f"{x_title:^{max(4, width - 16)}}"
        + f"{x_hi:.4g}"
    )
    legend = "   ".join(
        f"{markers[i % len(markers)]} {label}"
        for i, (label, _x, _y) in enumerate(series)
    )
    lines.append(" " * pad + "  " + legend)
    return "\n".join(lines)


def render_report(
    histories: Sequence[RunHistory],
    title: Optional[str] = None,
    x_axis: str = "epoch",
    log_y: bool = False,
) -> str:
    """Comparison table plus loss curves, ready to print."""
    parts = []
    if title:
        parts.append(title)
        parts.append("=" * len(title))
    parts.append(comparison_table(histories))
    parts.append("")
    parts.append(ascii_curves(histories, x_axis=x_axis, log_y=log_y))
    return "\n".join(parts)
