PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench-smoke clean

test:
	$(PYTHON) -m pytest -x -q

## Wall-clock kernel-vs-scalar throughput; writes BENCH_wallclock.json.
bench-smoke:
	$(PYTHON) benchmarks/bench_wallclock.py

clean:
	find . -name __pycache__ -type d -prune -exec rm -rf {} +
	rm -rf .pytest_cache
