"""Data-parallel neural-network training via dependence violation.

Paper Sec. 3.2: "DNNs commonly read and update all weights in each
iteration, therefore serializable parallelization over mini-batches is not
applicable.  DNN training is most commonly parallelized with data
parallelism, which can be achieved in Orion by permitting dependence
violation" — routing the dense weight updates through DistArray Buffers.

This example trains a one-hidden-layer MLP classifier: the loop body reads
every weight matrix with full slices and buffers whole-tensor gradient
updates with a bounded delay (`max_delay`), so static analysis selects 1D
data parallelism.  It also shows what happens when the staleness bound is
removed.

Run:  python examples/neural_network.py
"""

from repro import ClusterSpec
from repro.apps.mlp import MLPApp, MLPHyper, build_orion_program, make_blobs

NUM_FEATURES, NUM_CLASSES = 6, 3
entries = make_blobs(
    num_samples=600,
    num_features=NUM_FEATURES,
    num_classes=NUM_CLASSES,
    seed=4,
)
cluster = ClusterSpec(num_machines=2, workers_per_machine=4)
hyper = MLPHyper(hidden_units=16, step_size=0.05, max_delay=8)

program = build_orion_program(
    entries, NUM_FEATURES, NUM_CLASSES, cluster=cluster, hyper=hyper, seed=1
)
print("chosen parallelization:", program.plan.describe())
print(
    "placements:",
    {name: p.kind.value for name, p in program.plan.placements.items()},
)
print("(all weights server-resident: dense access, buffered updates)\n")

history = program.run(epochs=8)
print("mean cross-entropy by pass:")
print(f"  initial: {history.meta['initial_loss']:.4f}")
for record in history.records:
    print(f"  pass {record.epoch}: {record.loss:.4f}")

# Accuracy via the numpy twin sharing the same weights.
app = MLPApp(entries, NUM_FEATURES, NUM_CLASSES, hyper)
state = {
    "W1": program.arrays["W1"].values,
    "B1": program.arrays["B1"].values,
    "W2": program.arrays["W2"].values,
    "B2": program.arrays["B2"].values,
}
print(f"\ntraining accuracy: {app.accuracy(state):.1%}")

# The max_delay bound trades communication for freshness (paper Sec. 3.3:
# "the application program may optionally bound how long the writes can be
# buffered"): a tight bound flushes gradients often — more traffic, less
# staleness; an unbounded buffer flushes once per block.
print("\nmax_delay sweep (3 passes each):")
print(f"  {'max_delay':>10s} {'final loss':>12s} {'MB sent/pass':>14s}")
for max_delay in (2, 8, 32, 10_000):
    variant = build_orion_program(
        entries,
        NUM_FEATURES,
        NUM_CLASSES,
        cluster=cluster,
        hyper=MLPHyper(hidden_units=16, step_size=0.05, max_delay=max_delay),
        seed=1,
    )
    outcome = variant.run(epochs=3)
    mb_per_pass = outcome.records[-1].bytes_sent / 1e6
    print(f"  {max_delay:>10d} {outcome.final_loss:12.4f} {mb_per_pass:14.3f}")
