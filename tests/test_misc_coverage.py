"""Direct tests for small public helpers exercised only indirectly elsewhere."""

import numpy as np
import pytest

from repro.apps.gbt import GBTHyper, gbt_cost_model
from repro.apps.lda import lda_log_likelihood
from repro.apps.slr import SLRHyper, slr_cost_model
from repro.core import access
from repro.core.buffers import default_apply
from repro.core.distarray import key_value_entries
from repro.errors import (
    AnalysisError,
    DependenceError,
    ExecutionError,
    ParallelizationError,
    ReproError,
    SubscriptError,
)


class TestErrorHierarchy:
    def test_every_library_error_is_a_repro_error(self):
        for error_type in (
            AnalysisError,
            DependenceError,
            ExecutionError,
            ParallelizationError,
            SubscriptError,
        ):
            assert issubclass(error_type, ReproError)

    def test_single_except_clause_catches_all(self):
        try:
            raise ParallelizationError("nope")
        except ReproError as caught:
            assert "nope" in str(caught)


class TestWorkerContext:
    def test_defaults(self):
        assert access.current_broker() is None
        assert access.current_worker() == access.DRIVER_WORKER

    def test_nested_worker_scopes(self):
        with access.worker_scope(1):
            assert access.current_worker() == 1
            with access.worker_scope(2):
                assert access.current_worker() == 2
            assert access.current_worker() == 1
        assert access.current_worker() == access.DRIVER_WORKER

    def test_broker_installed_and_restored(self):
        broker = access.AccessBroker()
        with access.install_broker(broker):
            assert access.current_broker() is broker
        assert access.current_broker() is None


class TestSmallHelpers:
    def test_key_value_entries_sorted(self):
        entries = key_value_entries({(1, 0): "b", (0, 1): "a"})
        assert entries == [((0, 1), "a"), ((1, 0), "b")]

    def test_default_apply_adds(self):
        assert default_apply(2.0, 3.0) == 5.0
        assert np.array_equal(
            default_apply(np.ones(2), np.ones(2)), np.full(2, 2.0)
        )


class TestCostModelHelpers:
    def test_slr_adarev_costlier(self):
        plain = slr_cost_model(SLRHyper())
        ada = slr_cost_model(SLRHyper(adarev=True))
        assert ada.entry_cost_s > plain.entry_cost_s

    def test_gbt_cost_scales_with_features_and_depth(self):
        shallow = gbt_cost_model(GBTHyper(max_depth=2), num_features=4)
        deep = gbt_cost_model(GBTHyper(max_depth=4), num_features=8)
        assert deep.entry_cost_s == pytest.approx(4 * shallow.entry_cost_s)


class TestLdaLikelihood:
    def test_peaked_counts_beat_uniform(self):
        # A model whose counts concentrate on the actually-used topic/word
        # pairs scores higher likelihood than a flat one.
        entries = [((0, 0), 3), ((1, 1), 3)]
        peaked_dt = np.array([[3.0, 0.0], [0.0, 3.0]])
        peaked_wt = np.array([[3.0, 0.0], [0.0, 3.0]])
        flat_dt = np.full((2, 2), 1.5)
        flat_wt = np.full((2, 2), 1.5)
        good = lda_log_likelihood(peaked_dt, peaked_wt, entries, 0.01, 0.01)
        flat = lda_log_likelihood(flat_dt, flat_wt, entries, 0.01, 0.01)
        assert good > flat

    def test_per_token_normalization(self):
        entries_small = [((0, 0), 1)]
        entries_big = [((0, 0), 10)]
        dt = np.array([[5.0, 1.0]])
        wt = np.array([[5.0, 1.0], [1.0, 5.0]])
        small = lda_log_likelihood(dt, wt, entries_small, 0.5, 0.1)
        big = lda_log_likelihood(dt, wt, entries_big, 0.5, 0.1)
        assert small == pytest.approx(big)
