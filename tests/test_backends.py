"""Backend parity: one compiled plan, three execution engines.

The contract of :mod:`repro.runtime.backend`: for dependence-preserving
plans, ``simulated`` (the virtual-clock oracle), ``threaded`` (in-process
thread pool) and ``multiprocess`` (forked workers over shared memory)
produce *bitwise identical* final parameters.  Parametrized across the
four plan shapes — 1D, 2D rotation, data-parallel, and unimodular
(skewed/interchanged) — plus worker-crash behaviour.
"""

import numpy as np
import pytest

from repro.api import OrionContext
from repro.apps import MFHyper, build_sgd_mf
from repro.data import netflix_like
from repro.errors import ExecutionError
from repro.runtime.backend import BACKENDS
from repro.runtime.cluster import ClusterSpec


def _cluster() -> ClusterSpec:
    return ClusterSpec(num_machines=1, workers_per_machine=4)


def _build_one_d(backend):
    """Written array pinned by key[0] only → ONE_D plan."""
    ctx = OrionContext(cluster=_cluster(), seed=11)
    entries = [
        ((i, j), 0.01 * (3 * i + j + 1)) for i in range(32) for j in range(3)
    ]
    space = ctx.from_entries(entries, name="p1_space", shape=(32, 3))
    x = ctx.randn(32, name="p1_x")
    ctx.materialize(space, x)

    def body(key, value):
        x[key[0]] = x[key[0]] * 0.9 + value

    loop = ctx.parallel_for(space, backend=backend)(body)
    return loop, {"x": x}


def _build_two_d(backend):
    """SGD matrix factorization: the canonical 2D rotation plan."""
    data = netflix_like(num_rows=24, num_cols=20, num_ratings=300, seed=31)
    program = build_sgd_mf(
        data,
        cluster=_cluster(),
        hyper=MFHyper(rank=3, step_size=0.05),
        seed=7,
        backend=backend,
    )
    return program.train_loop, {
        "W": program.arrays["W"],
        "H": program.arrays["H"],
    }


def _build_data_parallel(backend):
    """Only buffered writes → DATA_PARALLEL plan.

    Every entry targets a distinct buffer key, so the combiner never adds
    two contributions and the result is bitwise order-independent.
    """
    ctx = OrionContext(cluster=_cluster(), seed=13)
    n = 48
    entries = []
    for i in range(n):
        entries.append(((i, 2 * i), 0.5 + 0.01 * i))
        entries.append(((i, 2 * i + 1), 1.5 - 0.01 * i))
    space = ctx.from_entries(entries, name="dp_space", shape=(n, 2 * n))
    y = ctx.zeros(2 * n, name="dp_y")
    ctx.materialize(space, y)
    y_buf = ctx.dist_array_buffer(y, name="dp_y_buf")

    def body(key, value):
        y_buf[key[1]] = value * 2.0

    loop = ctx.parallel_for(space, backend=backend)(body)
    return loop, {"y": y}


def _build_unimodular(backend):
    """Diagonal recurrence → unimodular transform (loop interchange).

    4 columns over 4 time partitions keeps every time partition width 1,
    so same-step blocks are dependence-free and all backends may run them
    concurrently.
    """
    ctx = OrionContext(cluster=_cluster(), seed=17)
    entries = [((i, j), 1.0) for i in range(6) for j in range(4)]
    space = ctx.from_entries(entries, name="uni_space", shape=(6, 4))
    grid = ctx.randn(6, 4, name="uni_grid")
    ctx.materialize(space, grid)

    def body(key, value):
        left = grid[key[0], key[1] - 1]
        diag = grid[key[0] - 1, key[1] - 1]
        grid[key[0], key[1]] = 0.5 * (left + diag)

    loop = ctx.parallel_for(space, ordered=True, backend=backend)(body)
    return loop, {"grid": grid}


BUILDERS = {
    "one_d": _build_one_d,
    "two_d": _build_two_d,
    "data_parallel": _build_data_parallel,
    "unimodular": _build_unimodular,
}


class TestBitwiseParity:
    @pytest.mark.parametrize("backend", list(BACKENDS))
    @pytest.mark.parametrize("shape", list(BUILDERS))
    def test_final_parameters_identical(self, shape, backend):
        oracle_loop, oracle_arrays = BUILDERS[shape]("simulated")
        oracle_loop.run(2)
        oracle_loop.close()
        loop, arrays = BUILDERS[shape](backend)
        try:
            loop.run(2)
        finally:
            loop.close()
        for name, oracle in oracle_arrays.items():
            assert np.array_equal(oracle.values, arrays[name].values), (
                shape,
                backend,
                name,
            )

    def test_unimodular_plan_has_transform(self):
        loop, _arrays = BUILDERS["unimodular"]("simulated")
        assert loop.plan.transform is not None

    def test_backend_name_reported(self):
        for backend in BACKENDS:
            loop, _arrays = _build_one_d(backend)
            assert loop.backend.name == backend
            loop.close()


class TestBackendSelection:
    def test_unknown_backend_rejected(self):
        ctx = OrionContext(cluster=_cluster(), seed=1)
        space = ctx.from_entries([((0, 0), 1.0)], name="bs", shape=(1, 1))
        x = ctx.zeros(1, name="bs_x")
        ctx.materialize(space, x)

        def body(key, value):
            x[key[0]] = value

        with pytest.raises(ExecutionError, match="unknown backend"):
            ctx.parallel_for(space, backend="gpu")(body)

    def test_multiprocess_rejects_checkpointing(self, tmp_path):
        from repro.runtime.checkpoint import CheckpointConfig
        from repro.runtime.options import LoopOptions

        data = netflix_like(num_rows=12, num_cols=10, num_ratings=60, seed=3)
        options = LoopOptions(
            backend="multiprocess",
            checkpoint=CheckpointConfig(directory=str(tmp_path)),
        )
        with pytest.raises(ExecutionError, match="not supported"):
            build_sgd_mf(data, cluster=_cluster(), seed=7, options=options)


class TestWorkerCrash:
    def test_dead_worker_raises_and_close_reaps(self):
        from repro.runtime.distributed import MultiprocessRunner

        data = netflix_like(num_rows=24, num_cols=20, num_ratings=300, seed=31)
        program = build_sgd_mf(data, cluster=_cluster(), seed=7)
        runner = MultiprocessRunner(
            program.train_loop, shutdown_timeout=1.0
        )
        try:
            runner.run_epoch()
            victim = runner._processes[0]
            victim.terminate()
            victim.join(timeout=5)
            with pytest.raises(ExecutionError, match="worker"):
                runner.run_epoch()
        finally:
            survivors = list(runner._processes)
            runner.close()
        # The escalating shutdown must reap workers that were blocked on
        # rotation tokens from the dead peer.
        assert all(not p.is_alive() for p in survivors)
