"""Sparse logistic regression via SGD (paper Table 2 rows 3-4).

Each sample reads and updates only the weights of its nonzero features —
subscripts that depend on runtime values, which static analysis cannot
bound.  Traditional dependence analysis would conservatively serialize the
loop; instead the program routes weight updates through a DistArray Buffer
(paper Sec. 3.3), turning the loop into 1D data parallelism, and the
weights are served by parameter servers with *bulk prefetching*
(Sec. 4.4): the synthesized prefetch function walks each sample's feature
list to collect weight indices, replacing per-read network round trips
with one bulk fetch per block.

The AdaRev variant applies buffered gradients with an AdaGrad-style
element-wise UDF — the atomic read-modify-write hook the paper highlights.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

import numpy as np

from repro.api import OrionContext
from repro.apps.base import (
    Entry,
    OrionProgram,
    SerialApp,
    resolve_kernel_option,
    resolve_loop_options,
)
from repro.data.synthetic import SLRDataset
from repro.runtime.cluster import ClusterSpec
from repro.runtime.simtime import CostModel

__all__ = ["SLRHyper", "SLRApp", "build_orion_program", "slr_cost_model", "logistic_loss"]


@dataclass(frozen=True)
class SLRHyper:
    """Hyperparameters for sparse logistic regression."""

    step_size: float = 0.1
    adarev: bool = False
    adarev_step: float = 0.5
    epsilon: float = 1e-8


def logistic_loss(weights: np.ndarray, entries: List[Entry]) -> float:
    """Mean logistic loss of ``weights`` over the training entries."""
    total = 0.0
    for (_sample,), (features, label) in entries:
        margin = sum(weights[fid] * fval for fid, fval in features)
        # log(1 + exp(-y·margin)) with y in {-1, +1}
        signed = margin if label == 1 else -margin
        total += float(np.log1p(np.exp(-signed)))
    return total / max(1, len(entries))


def slr_cost_model(hyper: SLRHyper, base_entry_cost: float = 2e-6) -> CostModel:
    """Per-sample compute cost (~nnz multiply-adds, heavier with AdaRev)."""
    factor = 1.6 if hyper.adarev else 1.0
    return CostModel(entry_cost_s=base_entry_cost * factor)


def _block_prep(block, kctx):
    """Flattened feature ids/values + per-sample extents, cached per block.

    Everything here derives from the immutable block entry list, so the
    first epoch builds it and later epochs reuse it.
    """
    prep = kctx.cache.get("prep")
    if prep is None:
        flat_fids: list = []
        meta = []
        for _key, (features, target) in block:
            flat_fids.extend(fid for fid, _fval in features)
            meta.append((len(features), target))
        flat_fvals = np.array(
            [fval for _key, (features, _t) in block for _fid, fval in features],
            dtype=np.float64,
        )
        fid_index = np.array(flat_fids, dtype=np.intp)
        kctx.cache["prep"] = prep = (flat_fids, fid_index, flat_fvals, meta)
    return prep


def build_orion_program(
    dataset: SLRDataset,
    cluster: Optional[ClusterSpec] = None,
    hyper: SLRHyper = SLRHyper(),
    seed: int = 0,
    label: Optional[str] = None,
    use_kernel: Any = True,
    **loop_opts,
) -> OrionProgram:
    """Build the SLR Orion program (1D data parallelism with buffers).

    ``use_kernel`` registers a batched block kernel: one weight gather for
    the whole block (legal because every update is buffered until the block
    boundary, so the weights are frozen during the block), sequential
    per-sample margin accumulation in the body's exact order, and one bulk
    buffer merge — bit-identical weights and traffic accounting to the
    scalar path.
    """
    cluster = cluster or ClusterSpec(num_machines=1, workers_per_machine=4)
    ctx = OrionContext(cluster=cluster, seed=seed)
    samples = ctx.from_entries(dataset.entries, name="samples", shape=dataset.shape)
    ctx.materialize(samples)
    weights = ctx.zeros(dataset.num_features, name="weights")
    ctx.materialize(weights)
    step_size = hyper.step_size

    if hyper.adarev:
        n2 = np.full(dataset.num_features, hyper.epsilon)
        ada_step = hyper.adarev_step

        def apply_adagrad(key, current, grad):
            n2[key[0]] += grad * grad
            return current - ada_step * grad / np.sqrt(n2[key[0]])

        weight_buf = ctx.dist_array_buffer(
            weights, apply_fn=apply_adagrad, name="weight_buf"
        )

        def body(key, sample):
            features, target = sample
            margin = 0.0
            for fid, fval in features:
                margin = margin + weights[fid] * fval
            prob = 1.0 / (1.0 + np.exp(-margin))
            grad_scale = prob - target
            for fid, fval in features:
                weight_buf[fid] = grad_scale * fval

        def coefficient(grad_scale):
            return grad_scale
    else:
        weight_buf = ctx.dist_array_buffer(weights, name="weight_buf")

        def body(key, sample):
            features, target = sample
            margin = 0.0
            for fid, fval in features:
                margin = margin + weights[fid] * fval
            prob = 1.0 / (1.0 + np.exp(-margin))
            grad_scale = prob - target
            for fid, fval in features:
                weight_buf[fid] = -step_size * grad_scale * fval

        def coefficient(grad_scale):
            return -step_size * grad_scale

    def kernel(block, kctx):
        flat_fids, fid_index, flat_fvals, meta = _block_prep(block, kctx)
        wd = weights.values
        # Buffered updates only reach the weights at the block boundary, so
        # one gather serves every sample's margin terms.
        products = wd[fid_index] * flat_fvals
        values = np.empty(len(flat_fvals))
        offset = 0
        for num_features, target in meta:
            end = offset + num_features
            # Sequential accumulation in the body's exact order (a
            # vectorized sum pairs terms differently).
            margin = 0.0
            for term in products[offset:end]:
                margin = margin + term
            prob = 1.0 / (1.0 + np.exp(-margin))
            grad_scale = prob - target
            values[offset:end] = coefficient(grad_scale) * flat_fvals[offset:end]
            offset = end
        kctx.buffer_add(weight_buf, flat_fids, values)
        kctx.account_point_reads(weights, flat_fids)

    kernel_opt = loop_opts.pop(
        "kernel", resolve_kernel_option(use_kernel, kernel)
    )
    opts = resolve_loop_options(loop_opts).merged_with(kernel=kernel_opt)
    loop = ctx.parallel_for(samples, options=opts)(body)

    def loss_fn() -> float:
        return logistic_loss(weights.values, dataset.entries)

    name = label or ("Orion SLR AdaRev" if hyper.adarev else "Orion SLR")
    return OrionProgram(
        label=name,
        ctx=ctx,
        epoch_fn=lambda: loop.run(),
        loss_fn=loss_fn,
        train_loop=loop,
        arrays={"samples": samples, "weights": weights},
        meta={"hyper": hyper},
    )


class SLRApp(SerialApp):
    """Numpy form of SLR for the baseline engines."""

    def __init__(self, dataset: SLRDataset, hyper: SLRHyper = SLRHyper()) -> None:
        self.dataset = dataset
        self.hyper = hyper
        self.name = "slr_adarev" if hyper.adarev else "slr"
        self.entry_cost_factor = 1.6 if hyper.adarev else 1.0

    def init_state(self, seed: int = 0) -> Dict[str, np.ndarray]:
        state = {"weights": np.zeros(self.dataset.num_features)}
        if self.hyper.adarev:
            state["n2"] = np.full(self.dataset.num_features, self.hyper.epsilon)
        return state

    def apply_entry(self, state: Dict[str, np.ndarray], key, value) -> None:
        features, target = value
        weights = state["weights"]
        margin = sum(weights[fid] * fval for fid, fval in features)
        prob = 1.0 / (1.0 + np.exp(-margin))
        grad_scale = prob - target
        if self.hyper.adarev:
            n2 = state["n2"]
            for fid, fval in features:
                grad = grad_scale * fval
                n2[fid] += grad * grad
                weights[fid] -= self.hyper.adarev_step * grad / np.sqrt(n2[fid])
        else:
            for fid, fval in features:
                weights[fid] -= self.hyper.step_size * grad_scale * fval

    def loss(self, state: Dict[str, np.ndarray]) -> float:
        return logistic_loss(state["weights"], self.dataset.entries)

    def entries(self) -> List[Entry]:
        return self.dataset.entries
