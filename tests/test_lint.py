"""Tests for the structured diagnostics engine (repro.analysis.lint).

Each documented lint code gets a minimal offending loop body asserting
the code fires with a real source location pointing into this file (or
into lint_demo.py for the demo catalog).
"""

import io

import pytest

from repro.analysis.lint import (
    CODES,
    Diagnostic,
    LintReport,
    SourceLocation,
    run_lint,
)
from repro.api import OrionContext
from repro.cli import main as cli_main
from repro.runtime.cluster import ClusterSpec


def _ctx(seed=5):
    return OrionContext(
        cluster=ClusterSpec(num_machines=2, workers_per_machine=2), seed=seed
    )


def _space(ctx, n=8):
    space = ctx.from_entries([((i,), 1.0) for i in range(n)], shape=(n,))
    ctx.materialize(space)
    return space


class TestDiagnosticType:
    def test_severity_and_title_from_code(self):
        assert Diagnostic(code="E102", message="m").severity == "error"
        assert Diagnostic(code="W201", message="m").severity == "warning"
        assert Diagnostic(code="S601", message="m").severity == "violation"
        assert "arity" in Diagnostic(code="E102", message="m").title

    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError):
            Diagnostic(code="E999", message="m")

    def test_describe_includes_location(self):
        diag = Diagnostic(
            code="W201",
            message="msg",
            location=SourceLocation(file="f.py", line=7),
            hint="do better",
        )
        text = diag.describe()
        assert text.startswith("f.py:7")
        assert "W201" in text and "msg" in text and "do better" in text

    def test_catalog_complete(self):
        # Every documented code family is present.
        assert {
            "E100", "E101", "E102", "E103", "E110",
            "W201", "W202", "W301", "W401",
            "S601", "S602", "S603", "S604",
        } <= set(CODES)


class TestLintCodes:
    """One minimal offending body per code."""

    def _sole_code(self, report: LintReport) -> str:
        assert report.diagnostics, report.describe()
        return report.diagnostics[0].code

    def test_e101_lambda_body(self):
        ctx = _ctx()
        space = _space(ctx)
        report = run_lint(lambda key, value: None, space)
        assert report.codes() == ["E101"]
        assert not report.ok

    def test_e102_arity_mismatch(self):
        ctx = _ctx()
        space = _space(ctx)
        grid = ctx.zeros(4, 4)
        ctx.materialize(grid)

        def body(key, value):
            grid[key[0]] = value

        report = run_lint(body, space)
        assert report.codes() == ["E102"]
        location = report.diagnostics[0].location
        assert location is not None
        assert location.file.endswith("test_lint.py")
        assert location.line > 0

    def test_e103_bad_signature(self):
        ctx = _ctx()
        space = _space(ctx)

        def body():
            pass

        report = run_lint(body, space)
        assert report.codes() == ["E103"]

    def test_e103_unmaterialized_space(self):
        ctx = _ctx()
        space = ctx.from_entries([((0,), 1.0)], shape=(1,))

        def body(key, value):
            pass

        report = run_lint(body, space)
        assert report.codes() == ["E103"]

    def test_e110_refused_parallelization(self):
        ctx = _ctx()
        space = _space(ctx)
        chain = ctx.zeros(16)
        ctx.materialize(chain)

        def body(key, value):
            chain[key[0]] = chain[key[0] + 1] + value

        report = run_lint(body, space, ordered=True)
        assert "E110" in report.codes()
        assert not report.ok

    def test_w201_data_dependent_subscript(self):
        ctx = _ctx()
        space = _space(ctx)
        table = ctx.zeros(100)
        ctx.materialize(table)
        acc = ctx.accumulator("sink", 0.0)

        def body(key, value):
            slot = int(value) % 100
            acc.add(table[slot])

        report = run_lint(body, space)
        assert "W201" in report.codes()
        assert report.ok  # warnings alone do not fail the lint
        assert report.plan_summary is not None

    def test_w202_aliased_arrays(self):
        ctx = _ctx()
        space = _space(ctx)
        params = ctx.zeros(8)
        ctx.materialize(params)
        alias = params

        def body(key, value):
            alias[key[0]] = params[key[0]] + value

        report = run_lint(body, space)
        assert "W202" in report.codes()
        message = next(
            d for d in report.diagnostics if d.code == "W202"
        ).message
        assert "alias" in message and "params" in message

    def test_w301_inherited_mutation(self):
        ctx = _ctx()
        space = _space(ctx)
        sink = ctx.zeros(8)
        ctx.materialize(sink)
        total = 0.0

        def body(key, value):
            nonlocal total
            sink[key[0]] = value
            total += value

        report = run_lint(body, space)
        assert "W301" in report.codes()

    def test_w401_global_randomness(self):
        import numpy as np

        ctx = _ctx()
        space = _space(ctx)
        noise = ctx.zeros(8)
        ctx.materialize(noise)

        def body(key, value):
            noise[key[0]] = value + np.random.uniform()

        report = run_lint(body, space)
        assert "W401" in report.codes()
        location = next(
            d for d in report.diagnostics if d.code == "W401"
        ).location
        assert location is not None
        assert location.file.endswith("test_lint.py")

    def test_clean_body_reports_nothing(self):
        ctx = _ctx()
        space = _space(ctx)
        out = ctx.zeros(8)
        ctx.materialize(out)

        def body(key, value):
            out[key[0]] = value * 2.0

        report = run_lint(body, space)
        assert report.codes() == []
        assert report.ok
        assert report.plan_summary is not None


class TestLoopDiagnostics:
    def test_compiled_loop_exposes_warnings(self):
        ctx = _ctx()
        space = _space(ctx)
        table = ctx.zeros(100)
        ctx.materialize(table)
        acc = ctx.accumulator("probe", 0.0)

        def body(key, value):
            acc.add(table[int(value) % 100])

        loop = ctx.parallel_for(space)(body)
        codes = [d.code for d in loop.diagnostics()]
        assert "W201" in codes
        # Compiled loops never carry error diagnostics — errors raise.
        assert all(code.startswith("W") for code in codes)

    def test_explain_includes_diagnostics(self):
        ctx = _ctx()
        space = _space(ctx)
        table = ctx.zeros(100)
        ctx.materialize(table)
        acc = ctx.accumulator("probe2", 0.0)

        def body(key, value):
            acc.add(table[int(value) % 100])

        loop = ctx.parallel_for(space)(body)
        text = loop.explain()
        assert "Diagnostics (lint)" in text
        assert "W201" in text


class TestDemoCatalog:
    def test_demo_covers_at_least_six_codes_with_locations(self):
        from repro.analysis.lint_demo import demo_reports

        codes = set()
        for _title, report in demo_reports():
            for diag in report.diagnostics:
                codes.add(diag.code)
                assert diag.location is not None, diag.describe()
                assert diag.location.file.endswith("lint_demo.py")
                assert diag.location.line > 0
        assert len(codes) >= 6
        assert codes <= set(CODES)


class TestLintCLI:
    def test_lint_demo_subcommand(self):
        out = io.StringIO()
        assert cli_main(["lint", "demo"], out=out) == 0
        text = out.getvalue()
        assert "demonstrated codes:" in text
        assert sum(code in text for code in CODES) >= 6

    def test_lint_app_subcommand_clean(self):
        out = io.StringIO()
        assert cli_main(["lint", "mf", "--scale", "0.25"], out=out) == 0
        assert "plan:" in out.getvalue()

    def test_lint_app_subcommand_warns(self):
        out = io.StringIO()
        # SLR legitimately carries a data-dependent subscript warning but
        # still lints clean (exit 0).
        assert cli_main(["lint", "slr", "--scale", "0.25"], out=out) == 0
        assert "W201" in out.getvalue()
