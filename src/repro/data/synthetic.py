"""Synthetic dataset generators standing in for the paper's datasets.

The paper evaluates on Netflix (100M movie ratings), NYTimes and ClueWeb
corpora, and KDD2010 (Algebra).  None are redistributable here, so each
generator produces a scaled-down synthetic dataset with the same *access
pattern* and the same statistical structure that drives the evaluation:

* :func:`netflix_like` — a sparse low-rank-plus-noise rating matrix with
  optionally power-law (skewed) row/column popularity.  Exercises the 2D
  iteration space and the dependence structure of SGD MF.
* :func:`lda_corpus` — bag-of-words documents drawn from an LDA generative
  model with a Zipfian vocabulary.  Exercises doc-indexed and word-indexed
  parameter access of collapsed Gibbs sampling.
* :func:`sparse_classification` — sparse binary-classification samples with
  power-law feature frequency.  Exercises the data-dependent subscripts
  that defeat static analysis and motivate buffers + bulk prefetch.
* :func:`regression_table` — a dense tabular regression set for GBT.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

import numpy as np

__all__ = [
    "MFDataset",
    "CorpusDataset",
    "SLRDataset",
    "TableDataset",
    "netflix_like",
    "lda_corpus",
    "sparse_classification",
    "regression_table",
]

Entry = Tuple[Tuple[int, ...], Any]


@dataclass
class MFDataset:
    """A sparse rating matrix for matrix factorization.

    ``entries`` maps ``(row, col) -> rating``; ``rank`` is the generative
    rank (the training rank may differ, as in the paper's rank-1000 runs).
    """

    entries: List[Entry]
    num_rows: int
    num_cols: int
    rank: int
    meta: Dict[str, Any] = field(default_factory=dict)

    @property
    def shape(self) -> Tuple[int, int]:
        """Iteration-space shape (rows × cols)."""
        return (self.num_rows, self.num_cols)

    @property
    def num_entries(self) -> int:
        """Number of observed ratings."""
        return len(self.entries)


def _skewed_coordinates(
    rng: np.random.Generator, extent: int, count: int, skew: float
) -> np.ndarray:
    """Sample ``count`` coordinates in ``[0, extent)``; ``skew=0`` uniform,
    larger values increasingly power-law (few hot rows/users)."""
    if skew <= 0:
        return rng.integers(0, extent, size=count)
    weights = 1.0 / np.power(np.arange(1, extent + 1), skew)
    weights /= weights.sum()
    return rng.choice(extent, size=count, p=weights)


def netflix_like(
    num_rows: int = 480,
    num_cols: int = 360,
    rank: int = 8,
    num_ratings: int = 20_000,
    noise: float = 0.1,
    skew: float = 0.0,
    seed: int = 0,
) -> MFDataset:
    """A low-rank + noise sparse rating matrix (Netflix stand-in).

    Ratings are ``u_i · v_j + noise`` at ``num_ratings`` distinct random
    positions; with ``skew > 0`` row/column popularity is power-law, which
    is what the histogram-balanced partitioner exists for.
    """
    rng = np.random.default_rng(seed)
    row_factors = rng.standard_normal((num_rows, rank)) / np.sqrt(rank)
    col_factors = rng.standard_normal((num_cols, rank)) / np.sqrt(rank)
    seen = set()
    entries: List[Entry] = []
    # Oversample then dedupe to hit the requested count.
    attempts = 0
    while len(entries) < num_ratings and attempts < 20:
        remaining = num_ratings - len(entries)
        rows = _skewed_coordinates(rng, num_rows, remaining * 2, skew)
        cols = _skewed_coordinates(rng, num_cols, remaining * 2, skew)
        for i, j in zip(rows, cols):
            position = (int(i), int(j))
            if position in seen:
                continue
            seen.add(position)
            value = float(
                row_factors[i] @ col_factors[j] + noise * rng.standard_normal()
            )
            entries.append((position, value))
            if len(entries) >= num_ratings:
                break
        attempts += 1
    return MFDataset(
        entries=entries,
        num_rows=num_rows,
        num_cols=num_cols,
        rank=rank,
        meta={"noise": noise, "skew": skew, "seed": seed},
    )


@dataclass
class CorpusDataset:
    """A bag-of-words corpus for LDA.

    ``entries`` maps ``(doc, word) -> occurrence count``; ``truth`` holds
    the generative topic-word distributions for sanity checks.
    """

    entries: List[Entry]
    num_docs: int
    vocab_size: int
    num_topics: int
    total_tokens: int
    truth: Dict[str, np.ndarray] = field(default_factory=dict)

    @property
    def shape(self) -> Tuple[int, int]:
        """Iteration-space shape (docs × vocabulary)."""
        return (self.num_docs, self.vocab_size)


def lda_corpus(
    num_docs: int = 300,
    vocab_size: int = 400,
    num_topics: int = 10,
    doc_length: int = 60,
    zipf_exponent: float = 1.1,
    seed: int = 0,
) -> CorpusDataset:
    """Documents drawn from an LDA generative model (NYTimes stand-in).

    Topic-word distributions are Dirichlet over a Zipf-reweighted
    vocabulary, so word frequencies are realistically skewed.
    """
    rng = np.random.default_rng(seed)
    base = 1.0 / np.power(np.arange(1, vocab_size + 1), zipf_exponent)
    topic_word = rng.dirichlet(base * vocab_size * 0.1, size=num_topics)
    doc_topic = rng.dirichlet(np.full(num_topics, 0.3), size=num_docs)
    counts: Dict[Tuple[int, int], int] = {}
    total = 0
    for doc in range(num_docs):
        topics = rng.choice(num_topics, size=doc_length, p=doc_topic[doc])
        for topic in topics:
            word = int(rng.choice(vocab_size, p=topic_word[topic]))
            counts[(doc, word)] = counts.get((doc, word), 0) + 1
            total += 1
    entries: List[Entry] = [
        ((doc, word), count) for (doc, word), count in sorted(counts.items())
    ]
    return CorpusDataset(
        entries=entries,
        num_docs=num_docs,
        vocab_size=vocab_size,
        num_topics=num_topics,
        total_tokens=total,
        truth={"topic_word": topic_word, "doc_topic": doc_topic},
    )


@dataclass
class SLRDataset:
    """Sparse binary classification data for logistic regression.

    ``entries`` maps ``(sample,) -> (features, label)`` where ``features``
    is a list of ``(feature_id, value)`` pairs — the data-dependent weight
    subscripts of SLR.
    """

    entries: List[Entry]
    num_samples: int
    num_features: int
    truth: Dict[str, np.ndarray] = field(default_factory=dict)

    @property
    def shape(self) -> Tuple[int]:
        """Iteration-space shape (samples,)."""
        return (self.num_samples,)


def sparse_classification(
    num_samples: int = 2_000,
    num_features: int = 1_000,
    nnz_per_sample: int = 12,
    feature_skew: float = 1.0,
    seed: int = 0,
) -> SLRDataset:
    """Sparse logistic-regression data (KDD2010 stand-in).

    Feature occurrence is power-law (like n-gram features in KDD2010), so
    a handful of weights are read by nearly every sample — the hot keys a
    parameter server must serve.
    """
    rng = np.random.default_rng(seed)
    true_w = rng.standard_normal(num_features) / np.sqrt(nnz_per_sample)
    entries: List[Entry] = []
    for sample in range(num_samples):
        ids = np.unique(
            _skewed_coordinates(rng, num_features, nnz_per_sample, feature_skew)
        )
        values = rng.standard_normal(len(ids))
        margin = float(true_w[ids] @ values)
        probability = 1.0 / (1.0 + np.exp(-margin))
        label = 1 if rng.random() < probability else 0
        features = [(int(f), float(v)) for f, v in zip(ids, values)]
        entries.append(((sample,), (features, label)))
    return SLRDataset(
        entries=entries,
        num_samples=num_samples,
        num_features=num_features,
        truth={"weights": true_w},
    )


@dataclass
class TableDataset:
    """Dense tabular regression data for gradient boosted trees.

    ``entries`` maps ``(sample,) -> (feature_vector, target)``.
    """

    entries: List[Entry]
    num_samples: int
    num_features: int
    features: np.ndarray = None
    targets: np.ndarray = None

    @property
    def shape(self) -> Tuple[int]:
        """Iteration-space shape (samples,)."""
        return (self.num_samples,)


def regression_table(
    num_samples: int = 1_500,
    num_features: int = 8,
    noise: float = 0.1,
    seed: int = 0,
) -> TableDataset:
    """A nonlinear additive regression problem that trees can fit well."""
    rng = np.random.default_rng(seed)
    features = rng.random((num_samples, num_features))
    targets = (
        np.sin(3.0 * features[:, 0])
        + (features[:, 1] > 0.5).astype(float)
        + 0.5 * features[:, 2] * features[:, 3 % num_features]
        + noise * rng.standard_normal(num_samples)
    )
    entries: List[Entry] = [
        ((i,), (features[i].copy(), float(targets[i])))
        for i in range(num_samples)
    ]
    return TableDataset(
        entries=entries,
        num_samples=num_samples,
        num_features=num_features,
        features=features,
        targets=targets,
    )
