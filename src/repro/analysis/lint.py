"""Structured diagnostics for the static analyzer and the sanitizer.

The paper's parallelizer either accepts a loop or rejects it with a bare
exception string; neither the acceptance nor the refusal is explained in a
machine-checkable way.  This module gives both sides a common currency:

* :class:`Diagnostic` — one finding with a stable code, severity, message
  and the user's ``file:line`` source location;
* the :data:`CODES` registry — every stable code with its one-line title
  (documented with examples in ``docs/analysis.md``);
* :func:`run_lint` — run the full static pipeline (analysis + strategy
  selection) over a loop body *without executing it*, converting hard
  failures into diagnostics instead of exceptions.  This powers the
  ``repro lint`` CLI subcommand and ``ParallelLoop.diagnostics()``.

Code space:

* ``E1xx`` — errors: the loop cannot be parallelized (analysis fails or
  no dependence-preserving plan exists).
* ``W2xx`` — subscript warnings: the loop parallelizes, but analysis had
  to be conservative or rests on an assumption worth knowing about.
* ``W3xx`` / ``W4xx`` — loop-body hygiene warnings (inherited-state
  mutation, global-state randomness).
* ``S6xx`` — sanitizer violations: the *dynamic* shadow-access check
  (:mod:`repro.sanitizer`) found actual behavior contradicting the
  static claims.  These are emitted at run time, never by ``run_lint``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

__all__ = [
    "CODES",
    "Diagnostic",
    "LintReport",
    "SourceLocation",
    "run_lint",
]


#: Every stable diagnostic code with its short title.  Codes are part of
#: the public interface: tests assert on them and docs catalogue them, so
#: a code is never renumbered once released.
CODES = {
    "E100": "loop analysis failed",
    "E101": "unsupported construct in loop body",
    "E102": "subscript arity mismatch",
    "E103": "invalid loop signature or iteration space",
    "E110": "no dependence-preserving parallelization",
    "W201": "data-dependent subscript",
    "W202": "aliased DistArray references",
    "W301": "mutation of inherited variable",
    "W401": "unseeded global-state randomness",
    "W501": "kernel synthesis fell back: unsupported construct",
    "W502": "kernel synthesis fell back: state-dependent access pattern",
    "W503": "kernel synthesis skipped: plan does not permit batching",
    "S601": "unreported loop-carried dependence",
    "S602": "kernel conflict group is not conflict-free",
    "S603": "buffered write aliases a directly-written element",
    "S604": "access outside the prefetch footprint",
}


@dataclass(frozen=True)
class SourceLocation:
    """A position in the *user's* source file (1-based line)."""

    file: str
    line: int
    col: int = 0

    def describe(self) -> str:
        """Clickable ``file:line`` (``file:line:col`` when the column is
        known)."""
        if self.col:
            return f"{self.file}:{self.line}:{self.col}"
        return f"{self.file}:{self.line}"


def _severity_for(code: str) -> str:
    if code.startswith("E"):
        return "error"
    if code.startswith("S"):
        return "violation"
    return "warning"


@dataclass(frozen=True)
class Diagnostic:
    """One analyzer or sanitizer finding with a stable code.

    Attributes:
        code: a key of :data:`CODES` (e.g. ``"W201"``).
        message: what was found, specific to this occurrence.
        location: where in the user's source, when attributable.
        hint: optional remediation advice.
        details: structured extras (e.g. the offending iteration pair a
            sanitizer violation reports) — kept hashable-free-form.
    """

    code: str
    message: str
    location: Optional[SourceLocation] = None
    hint: Optional[str] = None
    details: Tuple[Tuple[str, Any], ...] = field(default=(), compare=False)

    def __post_init__(self) -> None:
        if self.code not in CODES:
            raise ValueError(f"unknown diagnostic code {self.code!r}")

    @property
    def severity(self) -> str:
        """``"error"`` (E), ``"warning"`` (W) or ``"violation"`` (S)."""
        return _severity_for(self.code)

    @property
    def title(self) -> str:
        """The code's registry title."""
        return CODES[self.code]

    def describe(self) -> str:
        """One-line rendering: ``file:line: W201 <title>: <message>``."""
        prefix = self.location.describe() + ": " if self.location else ""
        out = f"{prefix}{self.code} {self.title}: {self.message}"
        if self.hint:
            out += f" (hint: {self.hint})"
        return out


@dataclass
class LintReport:
    """The diagnostics of one linted loop, with formatting helpers."""

    diagnostics: List[Diagnostic] = field(default_factory=list)
    #: One-line plan summary when strategy selection succeeded.
    plan_summary: Optional[str] = None

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "error"]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity != "error"]

    @property
    def ok(self) -> bool:
        """Whether the loop parallelizes (warnings do not fail a lint)."""
        return not self.errors

    def codes(self) -> List[str]:
        """The distinct codes present, sorted."""
        return sorted({d.code for d in self.diagnostics})

    def describe(self) -> str:
        lines = [d.describe() for d in self.diagnostics]
        if self.plan_summary is not None:
            lines.append(f"plan: {self.plan_summary}")
        lines.append(
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s)"
        )
        return "\n".join(lines)


def location_of(node: Any, file: Optional[str]) -> Optional[SourceLocation]:
    """Build a :class:`SourceLocation` from an AST node, if possible."""
    line = getattr(node, "lineno", None)
    if line is None or file is None:
        return None
    return SourceLocation(file=file, line=line, col=getattr(node, "col_offset", 0))


def run_lint(
    body: Any,
    iteration_space: Any,
    ordered: bool = False,
    force_dims: Optional[Tuple[int, ...]] = None,
) -> LintReport:
    """Statically lint one loop body without executing it.

    Runs the same pipeline ``parallel_for`` runs (analysis + strategy
    selection) but converts exceptions into E-code diagnostics instead of
    propagating, and collects the analyzer's W-code warnings either way.
    """
    # Lazy imports: loop_info/strategy import this module for Diagnostic.
    from repro.analysis.loop_info import analyze_loop_body
    from repro.analysis.strategy import choose_plan
    from repro.errors import ReproError

    report = LintReport()
    try:
        info = analyze_loop_body(body, iteration_space, ordered=ordered)
    except ReproError as exc:
        report.diagnostics.append(_diagnostic_from(exc))
        return report
    report.diagnostics.extend(info.diagnostics)
    try:
        plan = choose_plan(info, force_dims=force_dims)
    except ReproError as exc:
        report.diagnostics.append(_diagnostic_from(exc))
        return report
    report.plan_summary = plan.describe()
    return report


def _diagnostic_from(exc: Any) -> Diagnostic:
    """The exception's structured diagnostic, or a generic E100."""
    diagnostic = getattr(exc, "diagnostic", None)
    if diagnostic is not None:
        return diagnostic
    return Diagnostic(code="E100", message=str(exc))
