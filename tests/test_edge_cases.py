"""Edge-case tests collected from review: negative transformed coordinates,
object-valued sparse checkpoints, buffer usage patterns, loader round trips.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.unimodular import interchange, reversal, skew
from repro.core.buffers import DistArrayBuffer
from repro.core.distarray import DistArray
from repro.data.loader import (
    parse_json_line,
    parse_libsvm_line,
    parse_ratings_line,
    write_json_lines,
    write_libsvm_file,
    write_ratings_file,
)
from repro.runtime.partition import partition_transformed


class TestTransformedPartitionNegativeCoords:
    def _entries(self, n=5):
        return [((i, j), 1.0) for i in range(n) for j in range(n)]

    def test_reversal_transform(self):
        # q = (-i, j): transformed time coordinates are negative.
        partitions = partition_transformed(
            self._entries(), reversal(2, 0), num_space=2, num_time=3
        )
        assert partitions.total_entries == 25
        assert partitions.time_bounds[0][0] == -4
        assert partitions.time_bounds[-1][1] == 1

    def test_negative_skew(self):
        # q = (i - j, j) spans negative and positive time coordinates.
        partitions = partition_transformed(
            self._entries(), skew(2, 0, 1, -1), num_space=2, num_time=4
        )
        assert partitions.total_entries == 25
        for (space_idx, time_idx), block in partitions.blocks.items():
            tlo, thi = partitions.time_bounds[time_idx]
            for (i, j), _v in block:
                assert tlo <= i - j < thi

    def test_interchange_keeps_counts(self):
        partitions = partition_transformed(
            self._entries(), interchange(2, 0, 1), num_space=2, num_time=2
        )
        assert partitions.size_matrix().sum() == 25


class TestSparseObjectCheckpoints:
    def test_numpy_array_values_roundtrip(self, tmp_path):
        # LDA's assignments array stores numpy int arrays as values.
        array = DistArray.from_entries(
            [((0, 1), np.array([2, 0, 1])), ((1, 0), np.array([1]))],
            name="obj_sparse",
            shape=(2, 2),
        ).materialize()
        path = str(tmp_path / "obj.ckpt")
        array.checkpoint(path)
        restored = DistArray.load_checkpoint(path)
        assert np.array_equal(restored[(0, 1)], np.array([2, 0, 1]))
        assert np.array_equal(restored[(1, 0)], np.array([1]))

    def test_tuple_values_roundtrip(self, tmp_path):
        # SLR samples store (features, label) tuples.
        array = DistArray.from_entries(
            [((0,), ([(3, 1.0)], 1))], name="tup_sparse", shape=(1,)
        ).materialize()
        path = str(tmp_path / "tup.ckpt")
        array.checkpoint(path)
        restored = DistArray.load_checkpoint(path)
        assert restored[(0,)] == ([(3, 1.0)], 1)


class TestBufferUsagePatterns:
    def test_plain_assignment_is_the_supported_write(self):
        target = DistArray.zeros(4, name="bp_target").materialize()
        buffer = DistArrayBuffer(target)
        buffer[1] = 2.0
        buffer[1] = 3.0  # merges via the combiner
        buffer.flush_all()
        assert target[(1,)] == 5.0

    def test_augmented_assignment_on_empty_slot_fails_loudly(self):
        # `buf[i] += v` reads the pending value (None on an empty slot):
        # buffers are write-back queues, not readable caches.  The failure
        # mode is an immediate TypeError, not silent corruption.
        target = DistArray.zeros(4, name="bp_target2").materialize()
        buffer = DistArrayBuffer(target)
        with pytest.raises(TypeError):
            buffer[1] += 2.0


class TestLoaderRoundTripProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        entries=st.lists(
            st.tuples(
                st.tuples(st.integers(0, 99), st.integers(0, 99)),
                st.floats(-1e6, 1e6, allow_nan=False),
            ),
            min_size=1,
            max_size=20,
            unique_by=lambda e: e[0],
        )
    )
    def test_ratings_roundtrip(self, entries, tmp_path_factory):
        path = str(tmp_path_factory.mktemp("rt") / "r.txt")
        write_ratings_file(path, entries)
        with open(path) as handle:
            parsed = [parse_ratings_line(line) for line in handle]
        assert len(parsed) == len(entries)
        for (key, value), (pkey, pvalue) in zip(entries, parsed):
            assert pkey == key
            assert pvalue == pytest.approx(value, rel=1e-12)

    @settings(max_examples=50, deadline=None)
    @given(
        samples=st.lists(
            st.tuples(
                st.lists(
                    st.tuples(st.integers(0, 50), st.floats(-10, 10,
                                                            allow_nan=False)),
                    min_size=1,
                    max_size=5,
                ),
                st.integers(0, 1),
            ),
            min_size=1,
            max_size=10,
        )
    )
    def test_libsvm_roundtrip(self, samples, tmp_path_factory):
        entries = [((i,), sample) for i, sample in enumerate(samples)]
        path = str(tmp_path_factory.mktemp("lt") / "s.txt")
        write_libsvm_file(path, entries)
        with open(path) as handle:
            parsed = [parse_libsvm_line(line) for line in handle]
        for (key, (features, label)), (pkey, (pfeat, plabel)) in zip(
            entries, parsed
        ):
            assert pkey == key
            assert plabel == label
            assert [f for f, _v in pfeat] == [f for f, _v in features]

    @settings(max_examples=50, deadline=None)
    @given(
        entries=st.lists(
            st.tuples(
                st.tuples(st.integers(0, 20)),
                st.one_of(
                    st.floats(-100, 100, allow_nan=False),
                    st.text(max_size=10),
                    st.lists(st.integers(-5, 5), max_size=4),
                ),
            ),
            min_size=1,
            max_size=10,
        )
    )
    def test_json_roundtrip(self, entries, tmp_path_factory):
        path = str(tmp_path_factory.mktemp("jt") / "j.txt")
        write_json_lines(path, entries)
        with open(path) as handle:
            parsed = [parse_json_line(line) for line in handle]
        for (key, value), (pkey, pvalue) in zip(entries, parsed):
            assert pkey == key
            if isinstance(value, float):
                assert pvalue == pytest.approx(value)
            else:
                assert pvalue == value
