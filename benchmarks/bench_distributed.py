"""Real wall-clock scaling of the multiprocess backend vs one process.

The other benchmarks report *virtual* seconds from the cost model; this
one forks real workers.  Each app runs three ways:

* ``scalar_1proc`` — the single-process scalar interpreter (the
  pre-kernel baseline every speedup in the paper is against);
* ``multiprocess`` at 1/2/4 workers — forked workers over shared-memory
  partitions, batched kernels inside the workers, direct token rotation;
* the simulated oracle — same plan, virtual clock, used both for the
  side-by-side predicted epoch time and as the bitwise reference.

For dependence-preserving plans (SGD MF) the multiprocess run must
produce *bitwise identical* parameters to the oracle; the JSON records
the observed flag for every app (buffered apps relax dependences, LDA
additionally forks its sampler RNG, so those legitimately diverge).

Results land in ``BENCH_distributed.json`` at the repo root.

Run:  make bench-distributed
      (or: PYTHONPATH=src python benchmarks/bench_distributed.py)
      make distributed-smoke   # tiny datasets, asserts bitwise MF parity
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.apps.lda import LDAHyper
from repro.apps.lda import build_orion_program as build_lda
from repro.apps.sgd_mf import MFHyper
from repro.apps.sgd_mf import build_orion_program as build_mf
from repro.apps.slr import SLRHyper
from repro.apps.slr import build_orion_program as build_slr
from repro.data.synthetic import lda_corpus, netflix_like, sparse_classification
from repro.obs.insight import prediction_error
from repro.runtime.cluster import ClusterSpec

EPOCHS = 3
WORKER_COUNTS = (1, 2, 4)


def _dense_arrays(program) -> dict:
    return {
        name: array
        for name, array in program.arrays.items()
        if getattr(array, "_dense", None) is not None
    }


def _run_scalar(build, cluster, epochs: int) -> float:
    """Wall seconds for ``epochs`` passes of the scalar interpreter."""
    program = build(cluster, use_kernel=False)
    program.epoch_fn()  # warm-up: block materialization, caches
    start = time.perf_counter()
    for _ in range(epochs):
        program.epoch_fn()
    return time.perf_counter() - start


def _run_oracle(build, cluster, epochs: int):
    """Simulated run: (arrays, predicted total, per-epoch predictions)."""
    program = build(cluster, use_kernel=True)
    program.train_loop.run(1)  # align with the multiprocess warm-up pass
    results = program.train_loop.run(epochs)
    per_epoch = [r.epoch_time_s for r in results]
    return _dense_arrays(program), sum(per_epoch), per_epoch


def _run_multiprocess(build, cluster, epochs: int):
    """Forked run: (wall seconds, util, arrays, per-epoch wall seconds)."""
    program = build(cluster, use_kernel=True, backend="multiprocess")
    loop = program.train_loop
    try:
        loop.run(1)  # warm-up: fork, shared-memory adoption, kernel caches
        start = time.perf_counter()
        results = loop.run(epochs)
        wall = time.perf_counter() - start
    finally:
        loop.close()
    util = sum(r.utilization for r in results) / max(len(results), 1)
    per_epoch = [r.epoch_time_s for r in results]
    return wall, util, _dense_arrays(program), per_epoch


def _measure(build, num_entries: int, epochs: int, worker_counts) -> dict:
    out = {"workers": {}}
    for workers in worker_counts:
        cluster = ClusterSpec(num_machines=1, workers_per_machine=workers)
        scalar_wall = _run_scalar(build, cluster, epochs)
        oracle_arrays, predicted, predicted_epochs = _run_oracle(
            build, cluster, epochs
        )
        wall, util, mp_arrays, real_epochs = _run_multiprocess(
            build, cluster, epochs
        )
        bitwise = all(
            np.array_equal(oracle_arrays[name].values, mp_arrays[name].values)
            for name in oracle_arrays
        )
        row = {
            "scalar_1proc_wall_seconds": round(scalar_wall, 4),
            "wall_seconds": round(wall, 4),
            "entries_per_sec": round(epochs * num_entries / wall, 1),
            "speedup_vs_scalar": round(scalar_wall / wall, 2),
            "predicted_virtual_seconds": round(predicted, 4),
            "utilization": round(util, 3),
            "bitwise_identical_to_simulated": bitwise,
            # Per-epoch virtual-vs-real breakdown (how far the cost
            # model's prediction is from measured wall time).
            "prediction": prediction_error(real_epochs, predicted_epochs),
        }
        out["workers"][str(workers)] = row
    last = out["workers"][str(worker_counts[-1])]
    out["beats_scalar"] = last["speedup_vs_scalar"] > 1.0
    out["bitwise_identical"] = last["bitwise_identical_to_simulated"]
    return out


def run(out_path: Path, smoke: bool = False) -> dict:
    if smoke:
        epochs, worker_counts = 1, (2,)
        mf = netflix_like(num_rows=60, num_cols=48, num_ratings=1200, seed=5)
        slr = sparse_classification(
            num_samples=400, num_features=200, nnz_per_sample=8, seed=5
        )
        lda = lda_corpus(
            num_docs=40, vocab_size=60, num_topics=4, doc_length=10, seed=5
        )
    else:
        epochs, worker_counts = EPOCHS, WORKER_COUNTS
        mf = netflix_like(num_rows=300, num_cols=240, num_ratings=18000, seed=5)
        slr = sparse_classification(
            num_samples=4000, num_features=2000, nnz_per_sample=12, seed=5
        )
        lda = lda_corpus(
            num_docs=150, vocab_size=200, num_topics=8, doc_length=30, seed=5
        )

    apps = {
        "sgd_mf": (
            lambda cluster, **kw: build_mf(mf, cluster=cluster, seed=7, **kw),
            len(mf.entries),
        ),
        "sgd_mf_adarev": (
            lambda cluster, **kw: build_mf(
                mf, cluster=cluster, hyper=MFHyper(adarev=True), seed=7, **kw
            ),
            len(mf.entries),
        ),
        "slr": (
            lambda cluster, **kw: build_slr(
                slr, cluster=cluster, hyper=SLRHyper(step_size=0.2), seed=7,
                **kw
            ),
            len(slr.entries),
        ),
        "lda": (
            lambda cluster, **kw: build_lda(
                lda, cluster=cluster, hyper=LDAHyper(num_topics=4 if smoke
                                                     else 8), seed=7, **kw
            ),
            len(lda.entries),
        ),
    }
    results = {
        "epochs_timed": epochs,
        "worker_counts": list(worker_counts),
        "apps": {
            name: _measure(build, count, epochs, worker_counts)
            for name, (build, count) in apps.items()
        },
    }
    if not smoke:
        out_path.write_text(json.dumps(results, indent=2) + "\n")
    return results


def main() -> int:
    smoke = "--smoke" in sys.argv
    args = [a for a in sys.argv[1:] if a != "--smoke"]
    out_path = Path(args[0]) if args else (
        Path(__file__).resolve().parent.parent / "BENCH_distributed.json"
    )
    results = run(out_path, smoke=smoke)
    if not smoke:
        print(f"wrote {out_path}")
    width = max(len(name) for name in results["apps"])
    failures = []
    for name, row in results["apps"].items():
        for workers, cell in row["workers"].items():
            flag = "bitwise" if cell["bitwise_identical_to_simulated"] else "  -    "
            prediction = cell.get("prediction") or {}
            err = ""
            if prediction:
                err = f" (err {prediction['total_error_pct']:+.0f}%)"
            print(
                f"  {name:{width}s} x{workers}  "
                f"scalar {cell['scalar_1proc_wall_seconds']:7.3f}s  "
                f"mp {cell['wall_seconds']:7.3f}s  "
                f"({cell['speedup_vs_scalar']:5.2f}x, util "
                f"{cell['utilization']:.0%})  "
                f"predicted {cell['predicted_virtual_seconds']:7.3f}s"
                f"{err}  {flag}"
            )
    mf_row = results["apps"]["sgd_mf"]
    if not mf_row["bitwise_identical"]:
        failures.append("sgd_mf multiprocess run diverged from the oracle")
    if not smoke and not mf_row["beats_scalar"]:
        failures.append("sgd_mf multiprocess did not beat the scalar baseline")
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
