"""Setuptools shim enabling legacy editable installs on offline machines
(no `wheel` package available, so the PEP 517 editable path cannot build)."""

from setuptools import setup

setup()
