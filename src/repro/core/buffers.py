"""DistArray Buffers: write-back buffers exempt from dependence analysis.

Paper Sec. 3.3.  When DistArray subscripts are data dependent (e.g. sparse
logistic regression reads the weights of a sample's nonzero features) or the
access is dense, static analysis would conservatively mark all positions as
touched, blocking parallelization.  The application instead routes those
writes through a :class:`DistArrayBuffer`:

* each worker holds its own buffer instance, initialized empty;
* writes to the same index merge with a *combiner* (default: addition, the
  right merge for gradient contributions);
* buffered writes are applied to the target DistArray with an element-wise
  user-defined *apply function*, executed atomically per element — this is
  the hook adaptive gradient methods (AdaGrad, adaptive revision) use;
* ``max_delay`` bounds how many loop iterations a write may stay buffered.
"""

from __future__ import annotations

import inspect
from typing import Any, Callable, Dict, Optional, Tuple

from repro.core import access
from repro.core.distarray import DistArray

__all__ = ["DistArrayBuffer", "default_apply"]

#: Marker used to store (unhashable-before-3.12) slices in buffer keys.
_SLICE = "__slice__"


def _canonical_key(index: Any) -> Tuple[Any, ...]:
    """Hashable form of a buffer index; slices become tagged tuples."""
    if not isinstance(index, tuple):
        index = (index,)
    out = []
    for item in index:
        if isinstance(item, slice):
            out.append((_SLICE, item.start, item.stop))
        else:
            out.append(int(item))
    return tuple(out)


def _runtime_key(key: Tuple[Any, ...]) -> Tuple[Any, ...]:
    """Convert a canonical key back into a real subscript."""
    out = []
    for item in key:
        if isinstance(item, tuple) and item and item[0] == _SLICE:
            out.append(slice(item[1], item[2]))
        else:
            out.append(item)
    return tuple(out)


def default_apply(current: Any, update: Any) -> Any:
    """Default element-wise apply: add the buffered update to the element."""
    return current + update


def _default_combine(existing: Any, update: Any) -> Any:
    return existing + update


class DistArrayBuffer:
    """A per-worker write-back buffer in front of a target DistArray.

    Point writes (``buffer[idx] = value``) are exempt from dependence
    analysis; the static analyzer recognizes names bound to buffers and
    records them separately from DistArray writes.

    The apply UDF may take ``(current, update)`` or, for per-coordinate
    optimizer state, ``(key, current, update)`` — the arity is detected at
    construction.
    """

    def __init__(
        self,
        target: DistArray,
        apply_fn: Callable[..., Any] = default_apply,
        combiner: Callable[[Any, Any], Any] = _default_combine,
        max_delay: Optional[int] = None,
        name: Optional[str] = None,
    ) -> None:
        self.target = target
        self.apply_fn = apply_fn
        self.combiner = combiner
        self.max_delay = max_delay
        self.name = name or target.name + "_buffer"
        try:
            self._apply_arity = len(inspect.signature(apply_fn).parameters)
        except (TypeError, ValueError):
            self._apply_arity = 2
        # One pending-write dict per simulated worker (keyed by worker id).
        self._pending: Dict[int, Dict[Tuple[int, ...], Any]] = {}
        # Iterations executed since last flush, per worker, for max_delay.
        self._age: Dict[int, int] = {}

    # ------------------------------------------------------------------ #
    # Write path                                                          #
    # ------------------------------------------------------------------ #

    def __setitem__(self, index: Any, value: Any) -> None:
        broker = access.current_broker()
        if broker is not None:
            broker.buffer_write(self, index, value)
            return
        self.direct_buffer_write(index, value)

    def direct_buffer_write(self, index: Any, value: Any) -> None:
        """Record a write into the current worker's buffer instance.

        Point indices and slice (set-query) indices are both supported —
        dense models buffer whole-row or whole-matrix gradient updates.
        """
        worker = access.current_worker()
        key = _canonical_key(index)
        slot = self._pending.setdefault(worker, {})
        if key in slot:
            slot[key] = self.combiner(slot[key], value)
        else:
            slot[key] = value

    def direct_buffer_write_many(self, indices: Any, values: Any) -> None:
        """Record many writes in one call, merging in iteration order.

        Semantically identical to N :meth:`direct_buffer_write` calls (the
        combiner is applied left-to-right in the order given), but resolves
        the worker slot and method lookups once — the batched-kernel fast
        path uses this to flush a whole block's gradient contributions.
        """
        worker = access.current_worker()
        slot = self._pending.setdefault(worker, {})
        combiner = self.combiner
        for index, value in zip(indices, values):
            if isinstance(index, tuple):
                key = _canonical_key(index)
            else:
                key = (int(index),)
            if key in slot:
                slot[key] = combiner(slot[key], value)
            else:
                slot[key] = value

    def __getitem__(self, index: Any) -> Any:
        """Read the pending update at ``index`` for the current worker.

        Buffers expose the same point-query API as DistArrays; a read of an
        index with no pending write returns ``None``.
        """
        worker = access.current_worker()
        key = _canonical_key(index)
        return self._pending.get(worker, {}).get(key)

    # ------------------------------------------------------------------ #
    # Flushing                                                            #
    # ------------------------------------------------------------------ #

    def pending_count(self, worker: Optional[int] = None) -> int:
        """Number of pending (merged) writes for one worker or all workers."""
        if worker is not None:
            return len(self._pending.get(worker, {}))
        return sum(len(slot) for slot in self._pending.values())

    def pending_bytes(self, worker: Optional[int] = None) -> int:
        """Approximate payload size of pending writes, for comm accounting.

        Each pending write costs its index plus the number of target
        elements the (possibly sliced) subscript covers.
        """
        slots = (
            [self._pending.get(worker, {})]
            if worker is not None
            else list(self._pending.values())
        )
        total = 0
        for slot in slots:
            for key in slot:
                total += self._key_nbytes(key)
        return total

    def _key_nbytes(self, key: Tuple[Any, ...]) -> int:
        elements = 1
        for position, item in enumerate(key):
            if isinstance(item, tuple) and item and item[0] == _SLICE:
                try:
                    extent = self.target.shape[position]
                except Exception:
                    extent = 1
                lo = item[1] if item[1] is not None else 0
                hi = item[2] if item[2] is not None else extent
                elements *= max(1, hi - lo)
        return 8 * (len(key) + elements)

    def tick(self, worker: int, iterations: int = 1) -> bool:
        """Advance the worker's buffered-write age; return True when the
        ``max_delay`` bound forces a flush now."""
        if self.max_delay is None:
            return False
        age = self._age.get(worker, 0) + iterations
        self._age[worker] = age
        return age >= self.max_delay

    def flush_worker(self, worker: int) -> int:
        """Apply one worker's pending writes to the target, atomically per
        element, and clear them.  Returns the number of elements applied."""
        slot = self._pending.pop(worker, None)
        self._age[worker] = 0
        if not slot:
            return 0
        for key, update in slot.items():
            subscript = _runtime_key(key)
            current = self.target.direct_get(subscript)
            if self._apply_arity >= 3:
                new_value = self.apply_fn(subscript, current, update)
            else:
                new_value = self.apply_fn(current, update)
            self.target.direct_set(subscript, new_value)
        return len(slot)

    def flush_all(self) -> int:
        """Flush every worker's pending writes (driver-side convenience)."""
        applied = 0
        for worker in list(self._pending):
            applied += self.flush_worker(worker)
        return applied

    def clear(self) -> None:
        """Discard all pending writes without applying them."""
        self._pending.clear()
        self._age.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<DistArrayBuffer {self.name} -> {self.target.name} "
            f"pending={self.pending_count()}>"
        )
