"""Tests for the baseline engines (repro.baselines)."""

import numpy as np
import pytest

from repro.apps import LDAApp, LDAHyper, MFHyper, SGDMFApp, build_sgd_mf
from repro.baselines import (
    run_bosen,
    run_managed_comm,
    run_serial,
    run_strads,
    run_tensorflow_minibatch,
    shard_entries,
    strads_cluster,
)
from repro.errors import ExecutionError
from repro.runtime.cluster import ClusterSpec
from repro.runtime.simtime import CostModel


def _mf_app(dataset, step=0.05, rank=4, adarev=False):
    return SGDMFApp(dataset, MFHyper(rank=rank, step_size=step, adarev=adarev))


class TestSerial:
    def test_loss_decreases(self, mf_small):
        history = run_serial(_mf_app(mf_small), epochs=4)
        assert history.final_loss < history.meta["initial_loss"]

    def test_time_is_entries_times_cost(self, mf_small):
        cost = CostModel(entry_cost_s=1e-6)
        app = _mf_app(mf_small, rank=8)
        history = run_serial(app, epochs=2, cost=cost)
        expected = mf_small.num_entries * 1e-6
        assert history.records[0].epoch_time_s == pytest.approx(expected)

    def test_shuffle_each_epoch_changes_result(self, mf_small):
        fixed = run_serial(_mf_app(mf_small), epochs=2)
        shuffled = run_serial(_mf_app(mf_small), epochs=2, shuffle_each_epoch=True)
        assert fixed.final_loss != pytest.approx(shuffled.final_loss, abs=1e-12)

    def test_label(self, mf_small):
        assert run_serial(_mf_app(mf_small), epochs=1).label == "Serial sgd_mf"


class TestSharding:
    def test_all_entries_assigned_once(self, mf_small):
        shards = shard_entries(mf_small.entries, 7, seed=0)
        total = sum(len(s) for s in shards)
        assert total == mf_small.num_entries

    def test_shards_balanced(self, mf_small):
        shards = shard_entries(mf_small.entries, 7, seed=0)
        sizes = [len(s) for s in shards]
        assert max(sizes) - min(sizes) <= 1

    def test_seed_determinism(self, mf_small):
        a = shard_entries(mf_small.entries, 4, seed=1)
        b = shard_entries(mf_small.entries, 4, seed=1)
        assert a == b


class TestBosen:
    def test_converges_but_slower_than_serial(self, mf_small, cluster_mid):
        app = _mf_app(mf_small)
        epochs = 6
        serial = run_serial(app, epochs)
        bosen = run_bosen(app, cluster_mid, epochs)
        assert bosen.final_loss < bosen.meta["initial_loss"]
        # Dependence violation costs per-iteration progress (paper Fig. 9b).
        assert bosen.final_loss > serial.final_loss

    def test_more_workers_worse_per_iteration(self, mf_small):
        app = _mf_app(mf_small)
        few = run_bosen(app, ClusterSpec(num_machines=1, workers_per_machine=2), 4)
        many = run_bosen(app, ClusterSpec(num_machines=8, workers_per_machine=8), 4)
        assert many.final_loss > few.final_loss

    def test_more_syncs_help_convergence(self, mf_small, cluster_mid):
        app = _mf_app(mf_small)
        once = run_bosen(app, cluster_mid, 4, syncs_per_epoch=1)
        often = run_bosen(app, cluster_mid, 4, syncs_per_epoch=8)
        assert often.final_loss < once.final_loss

    def test_sync_traffic_recorded(self, mf_small, cluster_mid):
        history = run_bosen(_mf_app(mf_small), cluster_mid, 2)
        assert history.traffic.bytes_by_kind().get("sync", 0) > 0

    def test_works_for_lda(self, corpus_small, cluster_tiny):
        app = LDAApp(corpus_small, LDAHyper(num_topics=4))
        history = run_bosen(app, cluster_tiny, 3)
        assert history.final_loss < history.meta["initial_loss"]


class TestManagedComm:
    def test_between_bosen_and_serial(self, mf_small, cluster_mid):
        app = _mf_app(mf_small)
        epochs = 5
        bosen = run_bosen(app, cluster_mid, epochs)
        cm = run_managed_comm(
            app, cluster_mid, epochs, bandwidth_budget_mbps=1600
        )
        assert cm.final_loss < bosen.final_loss

    def test_uses_more_bandwidth_than_bosen(self, mf_small, cluster_mid):
        app = _mf_app(mf_small)
        bosen = run_bosen(app, cluster_mid, 3)
        cm = run_managed_comm(app, cluster_mid, 3, bandwidth_budget_mbps=1600)
        assert cm.traffic.total_bytes > bosen.traffic.total_bytes

    def test_cpu_overhead_slows_epochs(self, mf_small, cluster_mid):
        app = _mf_app(mf_small)
        cheap = run_managed_comm(
            app, cluster_mid, 2, 1600, cpu_overhead_s_per_mb=0.0
        )
        costly = run_managed_comm(
            app, cluster_mid, 2, 1600, cpu_overhead_s_per_mb=1.0
        )
        assert costly.total_time_s > cheap.total_time_s

    def test_managed_comm_traffic_kind(self, mf_small, cluster_mid):
        cm = run_managed_comm(_mf_app(mf_small), cluster_mid, 2, 1600)
        assert "managed_comm" in cm.traffic.bytes_by_kind()


class TestStrads:
    def test_matches_orion_convergence(self, mf_small, cluster_tiny):
        epochs = 4
        hyper = MFHyper(rank=4, step_size=0.05)
        orion = build_sgd_mf(mf_small, cluster=cluster_tiny, hyper=hyper).run(epochs)
        strads = run_strads(
            lambda c: build_sgd_mf(mf_small, cluster=c, hyper=hyper),
            cluster_tiny,
            epochs,
        )
        assert strads.losses == pytest.approx(orion.losses)

    def test_faster_when_speed_factor_below_one(self, mf_small, cluster_tiny):
        hyper = MFHyper(rank=4)
        orion = build_sgd_mf(mf_small, cluster=cluster_tiny, hyper=hyper).run(3)
        strads = run_strads(
            lambda c: build_sgd_mf(mf_small, cluster=c, hyper=hyper),
            cluster_tiny,
            3,
            speed_factor=0.5,
        )
        assert strads.total_time_s < orion.total_time_s

    def test_strads_cluster_zero_intra(self, cluster_tiny):
        tuned = strads_cluster(cluster_tiny, 0.5)
        assert tuned.network.intra_machine_factor == 0.0
        assert tuned.cost.overhead_factor == pytest.approx(0.5)

    def test_label(self, mf_small, cluster_tiny):
        strads = run_strads(
            lambda c: build_sgd_mf(mf_small, cluster=c), cluster_tiny, 1
        )
        assert strads.label.startswith("STRADS")


class TestTensorFlowLike:
    def test_converges_slower_per_iteration(self, mf_small):
        app = _mf_app(mf_small)
        cluster = ClusterSpec.single_machine(8)
        epochs = 5
        serial = run_serial(app, epochs)
        tf = run_tensorflow_minibatch(
            app, cluster, epochs, batch_size=mf_small.num_entries // 4
        )
        assert tf.final_loss > serial.final_loss

    def test_still_makes_progress(self, mf_small):
        app = _mf_app(mf_small)
        cluster = ClusterSpec.single_machine(8)
        tf = run_tensorflow_minibatch(
            app, cluster, 5, batch_size=100, step_scale=4.0
        )
        assert tf.final_loss < tf.meta["initial_loss"]

    def test_small_batches_slower_per_iteration(self, mf_small):
        app = _mf_app(mf_small)
        cluster = ClusterSpec.single_machine(8)
        big = run_tensorflow_minibatch(
            app, cluster, 2, batch_size=mf_small.num_entries // 2
        )
        small = run_tensorflow_minibatch(app, cluster, 2, batch_size=20)
        assert small.time_per_iteration() > big.time_per_iteration()

    def test_oom_guard(self, mf_small):
        app = _mf_app(mf_small)
        cluster = ClusterSpec.single_machine(8)
        with pytest.raises(ExecutionError, match="memory"):
            run_tensorflow_minibatch(
                app, cluster, 1, batch_size=10_000, oom_batch_entries=5_000
            )
