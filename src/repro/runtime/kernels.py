"""Batched-kernel execution support (the executor's vectorized fast path).

The scalar execution path runs ``body(key, value)`` once per sparse entry,
funnelling every DistArray element access through ``__getitem__`` → broker
→ per-element lookups.  Once the plan has proven a block safe to execute
as one sequential unit, that per-entry dispatch is pure overhead: an app
may instead register a *kernel* — ``kernel(block_entries, kctx)`` — that
applies the same updates with bulk NumPy operations over the whole block.

The contract a kernel must satisfy:

* **Bit-identical state**: after the kernel runs, every DistArray and
  DistArray Buffer must hold exactly the values the scalar body loop would
  have produced for the same block in entry order.  (In practice: vectorize
  elementwise arithmetic freely — NumPy broadcasting applies the same
  per-element operation chain — but keep reductions such as dot products
  in the scalar body's exact form, and split entries that touch the same
  parameter into sequential conflict-free groups, see
  :func:`conflict_free_groups`.)
* **Identical accounting**: declare every DistArray access the body would
  have made through the :class:`KernelContext` ``account_*`` methods, so
  traffic counters and the serializability validator see the same numbers
  as the scalar path.
* **Determinism**: per block, the same ``account_*`` call sequence every
  epoch (the declarations are memoized across epochs).

Kernels are only invoked when the plan legally permits block-batched
execution (see ``OrionExecutor``); otherwise the scalar body runs.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core import access
from repro.core.distarray import DistArray
from repro.runtime.pserver import index_nbytes

__all__ = [
    "KernelContext",
    "PlainBroker",
    "conflict_free_groups",
    "conflict_free_groups_nd",
    "normalize_index",
    "scalar_pow",
]

_FULL = slice(None)


class _NullStats:
    """Accounting sink for brokers that only move data."""

    __slots__ = ("server_reads", "server_read_bytes", "accesses")

    def __init__(self) -> None:
        self.server_reads = 0
        self.server_read_bytes = 0
        self.accesses: List[Tuple[str, Tuple[Any, ...], bool]] = []


class PlainBroker(access.AccessBroker):
    """Data-movement-only broker for running kernels outside the simulator.

    The multiprocess backend executes kernels *inside* worker processes,
    where virtual-clock accounting is meaningless (the master owns the
    timeline) and validation runs on the simulated oracle instead.  This
    broker direct-passes every read/write to the arrays and swallows the
    ``account_*`` declarations: no server byte counters, no access records,
    so :class:`KernelContext` stays usable verbatim in workers.
    """

    validate = False
    server_ids: frozenset = frozenset()

    def __init__(self) -> None:
        self.stats = _NullStats()


def normalize_index(index: Any) -> Tuple[Any, ...]:
    """Hashable normal form of a subscript, as the validator records it."""
    if not isinstance(index, tuple):
        index = (index,)
    out: List[Any] = []
    for item in index:
        if isinstance(item, slice):
            out.append(("range", item.start, item.stop))
        else:
            out.append(("pt", int(item)))
    return tuple(out)


def conflict_free_groups(
    rows: Sequence[int], cols: Sequence[int]
) -> List[Tuple[int, int]]:
    """Split entries into maximal runs with no repeated row or column.

    Within such a run, every entry reads and writes parameter columns no
    other run member touches, so a vectorized gather-update-scatter over
    the run is exactly the sequential per-entry execution.  Runs are
    returned as half-open ``(lo, hi)`` index ranges into the input order;
    executing runs in order preserves the scalar path's update sequence
    for conflicting entries.
    """
    groups: List[Tuple[int, int]] = []
    lo = 0
    seen_rows: set = set()
    seen_cols: set = set()
    for position in range(len(rows)):
        row, col = rows[position], cols[position]
        if row in seen_rows or col in seen_cols:
            groups.append((lo, position))
            lo = position
            seen_rows = {row}
            seen_cols = {col}
        else:
            seen_rows.add(row)
            seen_cols.add(col)
    if lo < len(rows):
        groups.append((lo, len(rows)))
    return groups


def conflict_free_groups_nd(
    seqs: Sequence[Sequence[int]],
) -> List[Tuple[int, int]]:
    """N-dimensional generalization of :func:`conflict_free_groups`.

    ``seqs`` holds one per-entry index sequence per conflict dimension
    (all the same length).  A run breaks as soon as any dimension repeats
    a value already seen in the current run; within a run, no two entries
    touch the same parameter index on any conflict dimension.
    """
    if not seqs:
        return []
    n = len(seqs[0])
    groups: List[Tuple[int, int]] = []
    lo = 0
    seen: List[set] = [set() for _ in seqs]
    for position in range(n):
        values = [seq[position] for seq in seqs]
        if any(v in s for v, s in zip(values, seen)):
            groups.append((lo, position))
            lo = position
            seen = [{v} for v in values]
        else:
            for s, v in zip(seen, values):
                s.add(v)
    if lo < n:
        groups.append((lo, n))
    return groups


def scalar_pow(base: Any, exponent: Any) -> Any:
    """Elementwise ``**`` that is bit-identical to the scalar interpreter.

    NumPy's vectorized ``**`` uses a SIMD pow that differs from Python's
    scalar pow in the last ulp for a few percent of inputs, which would
    break the kernel contract's bit-identity clause.  This helper applies
    Python-level ``**`` per element (``np.float64.__pow__`` matches
    ``float.__pow__`` exactly), trading speed for faithfulness on the rare
    bodies that exponentiate.
    """
    b, e = np.broadcast_arrays(np.asarray(base), np.asarray(exponent))
    out = np.empty(b.shape, dtype=np.result_type(b, e))
    flat_out = out.reshape(-1)
    flat_b = b.reshape(-1)
    flat_e = e.reshape(-1)
    for i in range(flat_out.size):
        flat_out[i] = flat_b[i] ** flat_e[i]
    return out


class KernelContext:
    """Handed to an app kernel for one block execution.

    Provides bulk data movement (:meth:`bulk_read`, :meth:`bulk_write`,
    :meth:`buffer_add`) and accounting-only declarations (``account_*``)
    for kernels that read and write the dense backing arrays directly.
    Accounting declarations reproduce exactly what the scalar body's
    per-element broker traffic would have recorded — server read counts
    and bytes, and (in validation mode) the normalized access records the
    serializability checker consumes.

    Attributes:
        worker: the simulated worker executing the block.
        cache: a per-block dict that persists across epochs — kernels use
            it to memoize index arrays, conflict-free groups, and anything
            else derivable from the (immutable) block entry list.
    """

    def __init__(self, broker: Any, worker: int, cache: Dict[Any, Any]) -> None:
        self.broker = broker
        self.worker = worker
        self.cache = cache
        self._seq = 0

    # ---------------- bulk data movement ------------------------------- #

    def bulk_read(self, array: DistArray, indices: Sequence[Any]) -> Any:
        """Accounted bulk point/set read through the broker."""
        return self.broker.bulk_read(array, indices)

    def bulk_write(
        self, array: DistArray, indices: Sequence[Any], values: Sequence[Any]
    ) -> None:
        """Accounted bulk point/set write through the broker."""
        self.broker.bulk_write(array, indices, values)

    def buffer_add(
        self, buffer: Any, indices: Sequence[Any], values: Sequence[Any]
    ) -> None:
        """Merge many writes into a DistArray Buffer, in order (exactly N
        scalar buffered writes)."""
        self.broker.bulk_buffer_write(buffer, indices, values)

    # ---------------- accounting-only declarations --------------------- #
    #
    # Each call declares the accesses the scalar body would have made; the
    # derived quantities (byte totals, normalized records) are memoized in
    # the block cache under the call's sequence number, so epochs after the
    # first pay one dict lookup per declaration.

    def account_point_reads(self, array: DistArray, keys: Sequence[Any]) -> None:
        """Declare N point reads (``array[key]`` per key)."""
        self._account(array, False, lambda: list(keys))

    def account_point_writes(self, array: DistArray, keys: Sequence[Any]) -> None:
        """Declare N point writes."""
        self._account(array, True, lambda: list(keys))

    def account_col_reads(self, array: DistArray, cols: Sequence[int]) -> None:
        """Declare N whole-column reads (``array[:, c]`` per c)."""
        self._account(array, False, lambda: [(_FULL, int(c)) for c in cols])

    def account_col_writes(self, array: DistArray, cols: Sequence[int]) -> None:
        """Declare N whole-column writes."""
        self._account(array, True, lambda: [(_FULL, int(c)) for c in cols])

    def account_row_reads(self, array: DistArray, rows: Sequence[int]) -> None:
        """Declare N whole-row reads (``array[r, :]`` per r)."""
        self._account(array, False, lambda: [(int(r), _FULL) for r in rows])

    def account_row_writes(self, array: DistArray, rows: Sequence[int]) -> None:
        """Declare N whole-row writes."""
        self._account(array, True, lambda: [(int(r), _FULL) for r in rows])

    def account_full_reads(self, array: DistArray, count: int) -> None:
        """Declare ``count`` full-array reads (``array[:]`` per entry)."""
        self._account(array, False, lambda: [_FULL] * count)

    def account_reads(self, array: DistArray, indices: Sequence[Any]) -> None:
        """Declare N reads with raw subscripts (ints, tuples, slices) —
        the generic form synthesized kernels emit for arbitrary sites."""
        self._account(array, False, lambda: list(indices))

    def account_writes(self, array: DistArray, indices: Sequence[Any]) -> None:
        """Declare N writes with raw subscripts."""
        self._account(array, True, lambda: list(indices))

    # ---------------- internals ---------------------------------------- #

    def _account(
        self,
        array: DistArray,
        write: bool,
        build_indices: Callable[[], List[Any]],
    ) -> None:
        broker = self.broker
        tag = ("acct", self._seq, array.name, write)
        self._seq += 1
        cached = self.cache.get(tag)
        if cached is None:
            indices = build_indices()
            count = len(indices)
            nbytes = 0
            if not write:
                nbytes = sum(index_nbytes(array, index) for index in indices)
            records: Optional[List[Tuple[str, Tuple[Any, ...], bool]]] = None
            if broker.validate:
                name = array.name
                records = [
                    (name, normalize_index(index), write) for index in indices
                ]
            self.cache[tag] = cached = (count, nbytes, records)
        count, nbytes, records = cached
        stats = broker.stats
        if not write and id(array) in broker.server_ids:
            stats.server_reads += count
            stats.server_read_bytes += nbytes
        if records is not None:
            stats.accesses.extend(records)
