"""Datasets: synthetic generators and text-file loaders."""

from repro.data.loader import (
    parse_json_line,
    parse_libsvm_line,
    parse_ratings_line,
    write_json_lines,
    write_libsvm_file,
    write_ratings_file,
)
from repro.data.synthetic import (
    CorpusDataset,
    MFDataset,
    SLRDataset,
    TableDataset,
    lda_corpus,
    netflix_like,
    regression_table,
    sparse_classification,
)

__all__ = [
    "parse_json_line",
    "parse_libsvm_line",
    "parse_ratings_line",
    "write_json_lines",
    "write_libsvm_file",
    "write_ratings_file",
    "CorpusDataset",
    "MFDataset",
    "SLRDataset",
    "TableDataset",
    "lda_corpus",
    "netflix_like",
    "regression_table",
    "sparse_classification",
]
