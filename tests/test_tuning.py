"""The trace-driven adaptive auto-tuner (docs/tuning.md).

Contract under test:

* ``tune="off"`` (the default) never imports :mod:`repro.tuning` and is
  bit-identical to the historical path;
* ``tune="auto"`` only applies plan-proven-legal adjustments, so final
  parameters stay bit-identical to the untuned run on every backend;
* the tuner is deterministic: same loop, same decisions, same times;
* the winning configuration round-trips through the run store's
  ``tuning.json`` and seeds a ``tune="cached"`` run from epoch 1;
* a mistuned ``pipeline_depth=1`` SGD MF run recovers to within 5% of
  the best fixed configuration by epoch 3 on the virtual clock;
* ``pipeline_depth="auto"`` resolves to a concrete depth surfaced by
  ``run_summary()``;
* the legacy bare-kwarg tail of ``parallel_for`` warns, options-first
  calls do not;
* ``repro perf`` grouping keeps tuned runs from aliasing untuned
  baselines.
"""

import json
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.api import OrionContext
from repro.apps import MFHyper, build_sgd_mf
from repro.apps.sgd_mf import mf_cost_model
from repro.data import netflix_like
from repro.errors import ExecutionError
from repro.obs import RunStore, check_store
from repro.runtime.cluster import ClusterSpec
from repro.runtime.options import LoopOptions

HYPER = MFHyper(rank=4, step_size=0.05)


@pytest.fixture(scope="module")
def mf_data():
    return netflix_like(num_rows=60, num_cols=50, num_ratings=1500, seed=5)


def _cluster() -> ClusterSpec:
    # Few workers, expensive inter-machine rotation: the regime where
    # pipeline depth genuinely matters (and the model scan can prove it).
    return ClusterSpec(
        num_machines=4, workers_per_machine=1, cost=mf_cost_model(HYPER)
    )


def _tuned_program(dataset, tune, store, backend="simulated", depth=1):
    return build_sgd_mf(
        dataset,
        cluster=_cluster(),
        hyper=HYPER,
        seed=3,
        options=LoopOptions(
            pipeline_depth=depth, tune=tune, run_store=store, backend=backend
        ),
    )


# ---------------------------------------------------------------------------
# tune="off": the disabled path


def test_tune_off_never_imports_tuning_package(tmp_path):
    """The default path must not even load repro.tuning (cold-start cost,
    and proof the historical path is untouched).  Subprocess so this
    test's verdict can't depend on import order elsewhere in the suite."""
    script = (
        "import sys\n"
        "from repro.apps import MFHyper, build_sgd_mf\n"
        "from repro.data import netflix_like\n"
        "from repro.runtime.cluster import ClusterSpec\n"
        "data = netflix_like(num_rows=30, num_cols=24, num_ratings=400, "
        "seed=1)\n"
        "program = build_sgd_mf(data, cluster=ClusterSpec(num_machines=1, "
        "workers_per_machine=2), hyper=MFHyper(rank=2))\n"
        "program.train_loop.run(1)\n"
        "assert not any(m.startswith('repro.tuning') for m in sys.modules), "
        "'repro.tuning imported on the tune=off path'\n"
    )
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    proc = subprocess.run(
        [sys.executable, "-c", script], env=env,
        capture_output=True, text=True,
    )
    assert proc.returncode == 0, proc.stderr


@pytest.mark.parametrize("backend", ["simulated", "threaded", "multiprocess"])
def test_tune_auto_bit_identical_to_off(mf_data, tmp_path, backend):
    """Whatever the tuner does, final parameters match the untuned run
    bitwise — on the virtual-clock backends (model-scan re-tiling) and
    the real-clock multiprocess backend (hill-climb) alike."""
    tuned = _tuned_program(mf_data, "auto", str(tmp_path), backend=backend)
    tuned.train_loop.run(3)
    untuned = _tuned_program(mf_data, "off", None, backend=backend)
    untuned.train_loop.run(3)
    assert np.array_equal(
        tuned.arrays["W"].values, untuned.arrays["W"].values
    )
    assert np.array_equal(
        tuned.arrays["H"].values, untuned.arrays["H"].values
    )
    # And the tuner did something worth testing.
    assert tuned.train_loop.tuning() is not None
    assert untuned.train_loop.tuning() is None


# ---------------------------------------------------------------------------
# determinism


def test_tuner_is_deterministic(mf_data, tmp_path):
    """Same loop, same trace, same decisions — twice."""
    trails = []
    times = []
    for run in range(2):
        store = str(tmp_path / f"store{run}")
        program = _tuned_program(mf_data, "auto", store)
        results = program.train_loop.run(4)
        tuner = program.train_loop.tuning()
        trails.append(
            [
                (d.epoch, d.knob, d.old, d.new, d.applied, d.reason)
                for d in tuner.decisions
            ]
        )
        times.append([r.epoch_time_s for r in results])
    assert trails[0] == trails[1]
    assert times[0] == times[1]
    assert any(d[4] for d in trails[0]), "expected at least one applied decision"


# ---------------------------------------------------------------------------
# the cross-run cache


def test_cache_round_trip_and_cached_seeding(mf_data, tmp_path):
    store = str(tmp_path)
    first = _tuned_program(mf_data, "auto", store)
    first_results = first.train_loop.run(4)
    tuner = first.train_loop.tuning()
    applied = [d for d in tuner.decisions if d.applied]
    assert applied, "tuner found nothing on the canonical workload"

    cache_path = os.path.join(store, "tuning.json")
    assert os.path.exists(cache_path)
    with open(cache_path) as handle:
        payload = json.load(handle)
    [(signature, entry)] = payload["entries"].items()
    assert signature == tuner.signature
    depth_decisions = [d for d in applied if d.knob == "pipeline_depth"]
    assert entry["config"]["pipeline_depth"] == depth_decisions[-1].new
    assert entry["clock"] == "virtual"

    # Second run only *reads* the cache and starts at the winner.
    second = _tuned_program(mf_data, "cached", store)
    assert second.train_loop.tuning().seeded  # seeded before any epoch
    second_results = second.train_loop.run(2)
    steady = first_results[-1].epoch_time_s
    assert second_results[0].epoch_time_s == pytest.approx(steady, rel=1e-9)
    # cached mode adapts nothing and writes nothing new
    assert not [
        d for d in second.train_loop.tuning().decisions if d.epoch > 0
    ]
    with open(cache_path) as handle:
        assert json.load(handle) == payload

    # The cache key ignores the tuned knobs: a differently-mistuned run
    # maps to the same entry.
    third = _tuned_program(mf_data, "cached", store, depth=2)
    assert third.train_loop.tuning().signature == signature


# ---------------------------------------------------------------------------
# the acceptance bar: recovery from a mistuned depth


def test_mistuned_mf_recovers_within_three_epochs(mf_data, tmp_path):
    """From pipeline_depth=1, tune="auto" must reach within 5% of the
    best fixed configuration's epoch makespan by epoch 3 (virtual
    clock), with numerics bit-identical to the untuned run."""
    fixed = {}
    for depth in (1, 2, 4, 8, 16):
        program = _tuned_program(mf_data, "off", None, depth=depth)
        results = program.train_loop.run(2)
        fixed[depth] = results[-1].epoch_time_s
    best = min(fixed.values())

    tuned = _tuned_program(mf_data, "auto", str(tmp_path), depth=1)
    results = tuned.train_loop.run(3)
    assert results[0].epoch_time_s == pytest.approx(fixed[1], rel=1e-9)
    assert results[2].epoch_time_s <= best * 1.05
    assert fixed[1] > best * 1.05, (
        "depth 1 is not actually mistuned on this workload; "
        "the recovery assertion above proved nothing"
    )


def test_tune_smoke_cli_exit_code(tmp_path):
    """`repro tune mf` is the acceptance check as a CLI: exit 0 iff the
    tuned run converges (it drives `make tune-smoke`)."""
    from repro.cli import main

    class _Sink:
        def write(self, _text):
            return None

    store = str(tmp_path / "store")
    assert main(
        ["tune", "mf", "--depth", "1", "--epochs", "4", "--store", store,
         "--scale", "0.5"],
        out=_Sink(),
    ) == 0
    assert main(
        ["tune", "mf", "--depth", "1", "--epochs", "3", "--store", store,
         "--scale", "0.5", "--mode", "cached"],
        out=_Sink(),
    ) == 0


# ---------------------------------------------------------------------------
# legality and mode validation


def test_tune_rejects_fault_injection(mf_data, tmp_path):
    from repro.faults.plan import FaultPlan

    with pytest.raises(ExecutionError, match="fault injection"):
        build_sgd_mf(
            mf_data,
            cluster=_cluster(),
            hyper=HYPER,
            options=LoopOptions(
                tune="auto",
                run_store=str(tmp_path),
                faults=FaultPlan.from_spec(
                    "seed=1,crashes=1", epochs=2, num_workers=4
                ),
            ),
        )


def test_invalid_tune_mode_rejected(mf_data):
    with pytest.raises(ExecutionError, match="tune"):
        build_sgd_mf(
            mf_data, cluster=_cluster(), hyper=HYPER,
            options=LoopOptions(tune="aggressive"),
        )


def test_illegal_retune_is_refused_not_fatal(mf_data):
    """Direct executor contract: a depth the plan can't tile (or that
    would move a worker's rotation start cut) raises ExecutionError and
    leaves the previous configuration fully intact."""
    program = _tuned_program(mf_data, "off", None, depth=2)
    loop = program.train_loop
    before = loop.run(1)[-1].epoch_time_s
    executor = loop.executor
    old_depth = executor.pipeline_depth
    with pytest.raises(ExecutionError):
        executor.retune(pipeline_depth=10_000)
    assert executor.pipeline_depth == old_depth
    after = loop.run(1)[-1].epoch_time_s
    assert after == pytest.approx(before, rel=1e-9)


# ---------------------------------------------------------------------------
# pipeline_depth="auto" and run_summary


def test_pipeline_depth_auto_resolves(mf_data):
    program = build_sgd_mf(
        mf_data, cluster=_cluster(), hyper=HYPER,
        options=LoopOptions(pipeline_depth="auto"),
    )
    loop = program.train_loop
    loop.run(1)
    summary = loop.run_summary()
    assert summary["requested"]["pipeline_depth"] == "auto"
    resolved = summary["resolved"]["pipeline_depth"]
    assert isinstance(resolved, int) and resolved >= 1


# ---------------------------------------------------------------------------
# the options-first API deprecation


def test_legacy_kwargs_warn_options_do_not(mf_small):
    ctx = OrionContext(
        cluster=ClusterSpec(num_machines=1, workers_per_machine=2), seed=1
    )
    space = ctx.from_entries(
        mf_small.entries, name="warn_space", shape=mf_small.shape
    )
    ctx.materialize(space)
    W = ctx.randn(2, mf_small.shape[0], name="warn_W")
    H = ctx.randn(2, mf_small.shape[1], name="warn_H")
    ctx.materialize(W, H)

    def body(key, rating):
        w = W[:, key[0]]
        h = H[:, key[1]]
        e = rating - float(np.dot(w, h))
        W[:, key[0]] = w + 0.01 * e * h
        H[:, key[1]] = h + 0.01 * e * w

    with pytest.warns(DeprecationWarning, match="pipeline_depth"):
        ctx.parallel_for(space, pipeline_depth=2)(body)

    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        ctx.parallel_for(space, options=LoopOptions(pipeline_depth=2))(body)


def test_app_builders_are_warning_free(mf_data, tmp_path):
    """The migrated builders reach parallel_for options-first even when
    driven through legacy-style builder kwargs."""
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        build_sgd_mf(
            mf_data, cluster=_cluster(), hyper=HYPER,
            pipeline_depth=2, run_store=str(tmp_path),
        )


# ---------------------------------------------------------------------------
# run-store grouping (the `repro perf compare` aliasing fix)


def test_perf_grouping_separates_tuned_from_untuned(mf_data, tmp_path):
    store = str(tmp_path)
    for _ in range(2):
        program = _tuned_program(mf_data, "off", store)
        program.train_loop.run(3)
    tuned = _tuned_program(mf_data, "auto", store)
    tuned.train_loop.run(3)

    records = RunStore(store).load()
    assert len(records) == 3
    assert records[0].signature == records[1].signature
    assert records[2].tuning and not records[0].tuning

    # The tuned run re-shapes its epoch timeline; were it grouped with
    # the untuned baselines, `repro perf check` would compare apples to
    # oranges.  It must sit in its own (single-record, hence skipped)
    # group: exactly one verdict, comparing the two untuned runs.
    verdicts = check_store(records)
    assert len(verdicts) == 1
    assert not verdicts[0].regressed
