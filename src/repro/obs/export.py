"""Exporters: Chrome trace-event / Perfetto JSON from a :class:`Tracer`.

The produced file loads directly in `ui.perfetto.dev` (or Chrome's
``about:tracing``): one Perfetto *process* per traced engine, one *thread
track* per simulated worker (plus network and epoch tracks), timestamps in
virtual microseconds.  Span ``args`` survive as event args, so clicking a
block in the viewer shows its compute/prefetch/flush breakdown.

Also provides :func:`validate_chrome_trace` — a schema check used by the
test suite and ``make trace-smoke`` — and :func:`add_traffic_spans`, which
lifts a :class:`~repro.runtime.network.TrafficLog` onto a tracer so
engines that only record traffic still get network tracks.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.obs.tracer import Tracer

__all__ = [
    "chrome_trace_events",
    "to_chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
    "add_traffic_spans",
]

#: Virtual seconds -> trace microseconds (the trace-event ``ts`` unit).
_US = 1e6


def _ids(tracer: Tracer) -> Dict[str, Any]:
    """Stable pid/tid assignment: processes and tracks in first-seen order."""
    pids: Dict[str, int] = {}
    tids: Dict[str, Dict[str, int]] = {}
    for process in tracer.processes():
        pids[process] = len(pids) + 1
        tids[process] = {
            track: index for index, track in enumerate(tracer.tracks(process))
        }
    return {"pids": pids, "tids": tids}


def chrome_trace_events(tracer: Tracer) -> List[Dict[str, Any]]:
    """The ``traceEvents`` list: metadata + complete ("X") + instant events."""
    ids = _ids(tracer)
    pids, tids = ids["pids"], ids["tids"]
    events: List[Dict[str, Any]] = []
    for process, pid in pids.items():
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": process},
            }
        )
        for track, tid in tids[process].items():
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": track},
                }
            )
    for span in tracer.spans:
        event: Dict[str, Any] = {
            "name": span.name,
            "cat": span.cat,
            "ph": "X",
            "ts": span.t_start * _US,
            "dur": span.duration * _US,
            "pid": pids[span.process],
            "tid": tids[span.process][span.track],
        }
        if span.args:
            event["args"] = dict(span.args)
        events.append(event)
    for span in tracer.instants:
        event = {
            "name": span.name,
            "cat": span.cat,
            "ph": "i",
            "s": "t",
            "ts": span.t_start * _US,
            "pid": pids[span.process],
            "tid": tids[span.process][span.track],
        }
        if span.args:
            event["args"] = dict(span.args)
        events.append(event)
    return events


def to_chrome_trace(tracer: Tracer) -> Dict[str, Any]:
    """The full JSON-object trace (``{"traceEvents": [...], ...}``)."""
    return {
        "traceEvents": chrome_trace_events(tracer),
        "displayTimeUnit": "ms",
        "otherData": {
            "clock": "virtual",
            "time_unit": "microseconds of simulated time",
        },
    }


def write_chrome_trace(tracer: Tracer, path: str) -> Dict[str, Any]:
    """Serialize the trace to ``path``; returns the written object."""
    trace = to_chrome_trace(tracer)
    with open(path, "w") as handle:
        json.dump(trace, handle)
    return trace


def validate_chrome_trace(trace: Any) -> List[str]:
    """Check ``trace`` against the Chrome trace-event JSON-object format.

    Returns a list of problems (empty when the trace is valid).  Checks the
    envelope, the per-event required fields, and the "X"-event invariants
    (numeric non-negative ``dur``, numeric ``ts``) that Perfetto's importer
    relies on.
    """
    problems: List[str] = []
    if not isinstance(trace, dict):
        return [f"trace must be a JSON object, got {type(trace).__name__}"]
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["trace.traceEvents must be a list"]
    for position, event in enumerate(events):
        where = f"traceEvents[{position}]"
        if not isinstance(event, dict):
            problems.append(f"{where} is not an object")
            continue
        phase = event.get("ph")
        if not isinstance(phase, str) or not phase:
            problems.append(f"{where} missing phase 'ph'")
            continue
        if not isinstance(event.get("name"), str):
            problems.append(f"{where} missing string 'name'")
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                problems.append(f"{where} missing integer {key!r}")
        if "args" in event and not isinstance(event["args"], dict):
            problems.append(f"{where} args must be an object")
        if phase == "M":
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)):
            problems.append(f"{where} missing numeric 'ts'")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)):
                problems.append(f"{where} X event missing numeric 'dur'")
            elif dur < 0:
                problems.append(f"{where} X event has negative dur {dur}")
        elif phase == "i" and event.get("s") not in (None, "t", "p", "g"):
            problems.append(f"{where} instant scope must be t/p/g")
    return problems


def add_traffic_spans(
    tracer: Tracer,
    traffic: Any,
    process: str = "run",
    t_offset: float = 0.0,
) -> int:
    """Lift a :class:`~repro.runtime.network.TrafficLog` onto ``tracer``.

    One span per recorded transfer, on a ``net:<kind>`` track of
    ``process``.  Used for engines that account traffic without native
    tracing; returns the number of spans added.
    """
    if not tracer.enabled:
        return 0
    count = 0
    for event in traffic.events:
        tracer.add_span(
            event.kind,
            event.kind,
            t_offset + event.t_start,
            t_offset + event.t_end,
            track=f"net:{event.kind}",
            process=process,
            args={"nbytes": event.nbytes},
        )
        count += 1
    return count
