"""Tests for the command-line runner (repro.cli)."""

import io

import pytest

from repro.cli import ENGINES, build_parser, main


def _run(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["mf"])
        assert args.engine == "orion"
        assert args.epochs == 5

    def test_engine_choices_cover_all(self):
        for engine in ENGINES:
            args = build_parser().parse_args(["mf", "--engine", engine])
            assert args.engine == engine

    def test_bad_app_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["resnet"])


class TestSingleEngineRuns:
    def test_orion_mf(self):
        code, output = _run(
            ["mf", "--engine", "orion", "--epochs", "2", "--scale", "0.3",
             "--machines", "2", "--workers-per-machine", "2"]
        )
        assert code == 0
        assert "Orion SGD MF" in output
        assert "pass" in output
        assert output.count("\n") >= 4

    def test_serial_slr(self):
        code, output = _run(
            ["slr", "--engine", "serial", "--epochs", "2", "--scale", "0.2"]
        )
        assert code == 0
        assert "Serial" in output

    def test_bosen_lda(self):
        code, output = _run(
            ["lda", "--engine", "bosen", "--epochs", "1", "--scale", "0.3",
             "--machines", "1", "--workers-per-machine", "2"]
        )
        assert code == 0
        assert "Bosen" in output

    def test_gbt_orion(self):
        code, output = _run(
            ["gbt", "--engine", "orion", "--epochs", "1", "--scale", "0.2"]
        )
        assert code == 0
        assert "Orion GBT" in output

    def test_adarev_variant(self):
        code, output = _run(
            ["mf-adarev", "--engine", "orion", "--epochs", "1",
             "--scale", "0.2", "--machines", "1",
             "--workers-per-machine", "2"]
        )
        assert code == 0
        assert "AdaRev" in output


class TestUnsupportedCombos:
    def test_tux2_requires_mf(self):
        code, output = _run(["slr", "--engine", "tux2", "--epochs", "1",
                             "--scale", "0.2"])
        assert code == 2
        assert "does not support" in output

    def test_serial_requires_numpy_app(self):
        code, output = _run(["gbt", "--engine", "serial", "--epochs", "1",
                             "--scale", "0.2"])
        assert code == 2


class TestAllEnginesTable:
    def test_comparison_table(self):
        code, output = _run(
            ["mf", "--engine", "all", "--epochs", "1", "--scale", "0.2",
             "--machines", "1", "--workers-per-machine", "2"]
        )
        assert code == 0
        header = output.splitlines()[0]
        assert "final loss" in header
        for engine in ("serial", "orion", "bosen", "strads", "tux2"):
            assert engine in output


class TestPlotFlag:
    def test_plot_renders_curves(self):
        code, output = _run(
            ["mf", "--engine", "orion", "--epochs", "2", "--scale", "0.2",
             "--machines", "1", "--workers-per-machine", "2", "--plot"]
        )
        assert code == 0
        assert "epoch" in output
        assert "|" in output


class TestLda1d:
    def test_lda_one_d_runs(self):
        code, output = _run(
            ["lda-1d", "--engine", "orion", "--epochs", "1", "--scale", "0.2",
             "--machines", "1", "--workers-per-machine", "2"]
        )
        assert code == 0
        assert "Orion LDA" in output
