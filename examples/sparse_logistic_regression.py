"""Sparse logistic regression: buffers, data parallelism, bulk prefetch.

SLR's weight subscripts depend on each sample's nonzero features — values
static analysis cannot bound.  The program routes weight updates through a
DistArray Buffer (opting into data parallelism, paper Sec. 3.3) and Orion
synthesizes a *bulk prefetch function* from the loop body so weight reads
are fetched in one request per block instead of one round trip per read
(paper Sec. 4.4 / Sec. 6.3).  This example prints the synthesized function
and measures the three configurations from the paper: no prefetch,
prefetch, prefetch with cached indices.

Run:  python examples/sparse_logistic_regression.py
"""

from repro import ClusterSpec
from repro.apps import SLRHyper, build_slr
from repro.apps.slr import slr_cost_model
from repro.data import sparse_classification

dataset = sparse_classification(
    num_samples=1200, num_features=500, nnz_per_sample=10, seed=5
)
hyper = SLRHyper(step_size=0.2)
cluster = ClusterSpec(
    num_machines=1, workers_per_machine=8, cost=slr_cost_model(hyper)
)

program = build_slr(dataset, cluster=cluster, hyper=hyper, seed=2)
print("chosen parallelization:", program.plan.describe())
print(
    "placements:",
    {name: p.kind.value for name, p in program.plan.placements.items()},
)

prefetch = program.train_loop.executor.prefetch.prefetch_fn
print("\nsynthesized bulk-prefetch function (paper Sec. 4.4):")
print("-" * 60)
print(prefetch.source)
print("-" * 60)

history = program.run(epochs=6)
print("\nlogistic loss by pass:")
print(f"  initial: {history.meta['initial_loss']:.4f}")
for record in history.records:
    print(f"  pass {record.epoch}: {record.loss:.4f}")

# The paper's Sec. 6.3 measurement: prefetching turns a communication-bound
# pass into a compute-bound one; caching the indices shaves the synthesis
# re-execution cost.
print("\nper-pass virtual time by prefetch configuration:")
for label, opts in [
    ("no prefetch (per-read round trips)", {"prefetch": "none"}),
    ("bulk prefetch", {"prefetch": "auto", "cache_prefetch": False}),
    ("bulk prefetch + cached indices", {"prefetch": "auto", "cache_prefetch": True}),
]:
    trial = build_slr(dataset, cluster=cluster, hyper=hyper, seed=2, **opts)
    trial.run(1)  # warm-up pass (populates caches)
    second = trial.run(1)
    print(f"  {label:38s}: {second.records[-1].epoch_time_s:9.4f} s/pass")
