"""Gradient boosted trees: 1D-parallel histogram GBT in the Orion model.

One boosting round is several parallel loops — histogram accumulation (with
buffered, data-dependent histogram writes), tree growing, and prediction
updates — interleaved with driver-side split selection.  Static analysis
pins the per-sample arrays by the sample dimension and parallelizes each
loop 1D over samples (the paper's Table 2 GBT entry).

Run:  python examples/gradient_boosted_trees.py
"""

import numpy as np

from repro import ClusterSpec
from repro.apps import GBTHyper, build_gbt
from repro.data import regression_table

dataset = regression_table(num_samples=1200, num_features=6, noise=0.05, seed=11)
hyper = GBTHyper(num_rounds=12, max_depth=3, learning_rate=0.3, num_bins=16)

program = build_gbt(
    dataset,
    cluster=ClusterSpec(num_machines=2, workers_per_machine=4),
    hyper=hyper,
)

print("chosen parallelization (histogram loop):", program.plan.describe())

history = program.run(epochs=hyper.num_rounds)
print("\nmean squared error by boosting round:")
print(f"  initial: {history.meta['initial_loss']:.4f}")
for record in history.records:
    print(f"  round {record.epoch:2d}: {record.loss:.4f}")

preds = program.arrays["preds"].values
residual = dataset.targets - preds
print(f"\nfinal RMSE: {np.sqrt(np.mean(residual ** 2)):.4f}")
print(f"target std: {dataset.targets.std():.4f}")
print(f"variance explained: {1 - residual.var() / dataset.targets.var():.1%}")
