"""Documentation-accuracy tests: the README quickstart must run, examples
and benchmarks must at least compile, and the docs must reference real
modules."""

import linecache
import pathlib
import py_compile
import re

import pytest

REPO = pathlib.Path(__file__).resolve().parent.parent


class TestReadmeQuickstart:
    def test_quickstart_block_executes(self):
        readme = (REPO / "README.md").read_text()
        blocks = re.findall(r"```python\n(.*?)```", readme, re.DOTALL)
        assert blocks, "README must contain a python quickstart block"
        snippet = blocks[0]
        # The snippet assumes a dataset in scope; provide one, then run it.
        preamble = (
            "from repro.data import netflix_like\n"
            "_ds = netflix_like(num_rows=40, num_cols=30, num_ratings=600,"
            " seed=99)\n"
            "entries = _ds.entries\n"
            "num_rows, num_cols, K = _ds.num_rows, _ds.num_cols, 4\n"
        )
        source = preamble + snippet
        filename = "<readme-quickstart>"
        linecache.cache[filename] = (
            len(source), None, source.splitlines(True), filename
        )
        namespace = {}
        exec(compile(source, filename, "exec"), namespace)
        loop = namespace["loop"]
        assert "2D unordered" in loop.plan.describe()

    def test_readme_module_paths_exist(self):
        readme = (REPO / "README.md").read_text()
        for match in re.findall(r"`benchmarks/(bench_\w+\.py)`", readme):
            assert (REPO / "benchmarks" / match).exists(), match

    def test_readme_referenced_files_exist(self):
        readme = (REPO / "README.md").read_text()
        for match in re.findall(r"\| `(\w+\.py)` \|", readme):
            assert (
                (REPO / "examples" / match).exists()
                or (REPO / "benchmarks" / match).exists()
            ), match


class TestEverythingCompiles:
    @pytest.mark.parametrize(
        "path",
        sorted(
            str(p.relative_to(REPO))
            for p in (REPO / "examples").glob("*.py")
        ),
    )
    def test_examples_compile(self, path):
        py_compile.compile(str(REPO / path), doraise=True)

    @pytest.mark.parametrize(
        "path",
        sorted(
            str(p.relative_to(REPO))
            for p in (REPO / "benchmarks").glob("*.py")
        ),
    )
    def test_benchmarks_compile(self, path):
        py_compile.compile(str(REPO / path), doraise=True)


class TestDesignDocConsistency:
    def test_design_modules_exist(self):
        design = (REPO / "DESIGN.md").read_text()
        for match in set(re.findall(r"`repro\.([\w.]+)`", design)):
            parts = match.split(".")
            # References may be dotted class paths; accept when any prefix
            # resolves to a module or package.
            resolved = False
            for depth in range(len(parts), 0, -1):
                candidate = REPO / "src" / "repro" / pathlib.Path(*parts[:depth])
                if (
                    candidate.with_suffix(".py").exists()
                    or (candidate / "__init__.py").exists()
                ):
                    resolved = True
                    break
            assert resolved, f"DESIGN.md references missing module repro.{match}"

    def test_experiments_benchmarks_exist(self):
        experiments = (REPO / "EXPERIMENTS.md").read_text()
        for match in set(re.findall(r"bench_\w+\.py", experiments)):
            assert (REPO / "benchmarks" / match).exists(), match


class TestReadmeQuickstartConverges:
    def test_snippet_training_actually_improves(self):
        """The README's quickstart must not just run — it must train."""
        readme = (REPO / "README.md").read_text()
        snippet = re.findall(r"```python\n(.*?)```", readme, re.DOTALL)[0]
        preamble = (
            "from repro.data import netflix_like\n"
            "_ds = netflix_like(num_rows=40, num_cols=30, num_ratings=600,"
            " seed=99)\n"
            "entries = _ds.entries\n"
            "num_rows, num_cols, K = _ds.num_rows, _ds.num_cols, 4\n"
        )
        source = preamble + snippet
        filename = "<readme-quickstart-2>"
        linecache.cache[filename] = (
            len(source), None, source.splitlines(True), filename
        )
        namespace = {}
        exec(compile(source, filename, "exec"), namespace)
        W, H = namespace["W"], namespace["H"]
        total = 0.0
        for (i, j), value in namespace["ratings"].entries():
            total += (value - W.values[:, i] @ H.values[:, j]) ** 2
        initial = sum(v * v for _k, v in entries_approx(namespace))
        assert total < initial


def entries_approx(namespace):
    # With 0.1-scale init, initial predictions are near zero: the initial
    # loss is approximately the sum of squared ratings.
    return list(namespace["ratings"].entries())
