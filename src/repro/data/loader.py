"""Text-file writing/parsing for DistArray creation (paper Sec. 3.1).

DistArrays load from text files through a user-defined parser.  This module
provides the standard parsers plus writers so synthetic datasets can round
trip through the same path real data would take.
"""

from __future__ import annotations

import json
from typing import Any, Iterable, List, Tuple

from repro.errors import MaterializationError

__all__ = [
    "parse_ratings_line",
    "parse_libsvm_line",
    "write_ratings_file",
    "write_libsvm_file",
    "parse_json_line",
    "write_json_lines",
]

Entry = Tuple[Tuple[int, ...], Any]


def parse_ratings_line(line: str) -> Entry:
    """Parse ``"row col rating"`` into ``((row, col), rating)``."""
    parts = line.split()
    if len(parts) != 3:
        raise MaterializationError(f"bad ratings line: {line!r}")
    return (int(parts[0]), int(parts[1])), float(parts[2])


def write_ratings_file(path: str, entries: Iterable[Entry]) -> int:
    """Write ``((row, col), rating)`` entries as a ratings text file."""
    count = 0
    with open(path, "w") as handle:
        for (row, col), value in entries:
            handle.write(f"{row} {col} {value}\n")
            count += 1
    return count


def parse_libsvm_line(line: str) -> Entry:
    """Parse a libsvm-style line ``"sample label f:v f:v ..."``.

    The first token is the sample id (this reproduction stores it inline so
    a single file maps to a 1-D iteration space), the second the label.
    """
    parts = line.split()
    if len(parts) < 2:
        raise MaterializationError(f"bad libsvm line: {line!r}")
    sample = int(parts[0])
    label = int(parts[1])
    features: List[Tuple[int, float]] = []
    for token in parts[2:]:
        fid, _, fval = token.partition(":")
        features.append((int(fid), float(fval)))
    return (sample,), (features, label)


def write_libsvm_file(path: str, entries: Iterable[Entry]) -> int:
    """Write SLR entries ``((sample,), (features, label))`` as libsvm text."""
    count = 0
    with open(path, "w") as handle:
        for (sample,), (features, label) in entries:
            tokens = " ".join(f"{fid}:{fval}" for fid, fval in features)
            handle.write(f"{sample} {label} {tokens}\n")
            count += 1
    return count


def parse_json_line(line: str) -> Entry:
    """Parse ``{"key": [...], "value": ...}`` JSON lines (generic records)."""
    try:
        record = json.loads(line)
        return tuple(int(c) for c in record["key"]), record["value"]
    except (json.JSONDecodeError, KeyError, TypeError) as exc:
        raise MaterializationError(f"bad json line: {line!r}: {exc}")


def write_json_lines(path: str, entries: Iterable[Entry]) -> int:
    """Write generic entries as JSON lines readable by
    :func:`parse_json_line`."""
    count = 0
    with open(path, "w") as handle:
        for key, value in entries:
            handle.write(json.dumps({"key": list(key), "value": value}) + "\n")
            count += 1
    return count
