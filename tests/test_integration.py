"""Cross-engine integration tests: the paper's comparative claims in miniature.

Each test runs two or more engines on the same workload and asserts the
*shape* the paper reports — who converges faster per iteration, who wins
over time, where throughput relations fall — not absolute numbers.
"""

import pytest

from repro.apps import (
    LDAApp,
    LDAHyper,
    MFHyper,
    SGDMFApp,
    build_lda,
    build_sgd_mf,
)
from repro.apps.sgd_mf import mf_cost_model
from repro.baselines import (
    run_bosen,
    run_managed_comm,
    run_serial,
    run_strads,
    run_tensorflow_minibatch,
)
from repro.runtime.cluster import ClusterSpec


@pytest.fixture(scope="module")
def mf_setup(request):
    from repro.data import netflix_like

    dataset = netflix_like(num_rows=80, num_cols=64, num_ratings=3000, seed=31)
    hyper = MFHyper(rank=4, step_size=0.05)
    cost = mf_cost_model(hyper)
    cluster = ClusterSpec(num_machines=4, workers_per_machine=4, cost=cost)
    return dataset, hyper, cluster


class TestFig9bShape:
    """Serial ≈ dependence-aware ≪ data parallelism, per iteration."""

    def test_orion_tracks_serial_per_iteration(self, mf_setup):
        dataset, hyper, cluster = mf_setup
        epochs = 6
        serial = run_serial(SGDMFApp(dataset, hyper), epochs)
        orion = build_sgd_mf(dataset, cluster=cluster, hyper=hyper).run(epochs)
        # Dependence-aware parallel execution is a serial execution in a
        # different order: same ballpark convergence (within 35%).
        assert orion.final_loss < serial.final_loss * 1.35
        assert orion.final_loss < orion.meta["initial_loss"] * 0.7

    def test_data_parallel_much_slower_per_iteration(self, mf_setup):
        dataset, hyper, cluster = mf_setup
        epochs = 6
        orion = build_sgd_mf(dataset, cluster=cluster, hyper=hyper).run(epochs)
        bosen = run_bosen(SGDMFApp(dataset, hyper), cluster, epochs)
        initial = bosen.meta["initial_loss"]
        orion_progress = initial - orion.final_loss
        bosen_progress = initial - bosen.final_loss
        # At 16 simulated workers the gap is already > 30%; the paper's 384
        # workers widen it much further (bench_fig09b runs that scale).
        assert orion_progress > 1.3 * bosen_progress

    def test_ordering_relaxation_negligible_for_convergence(self, mf_setup):
        dataset, hyper, cluster = mf_setup
        epochs = 5
        unordered = build_sgd_mf(
            dataset, cluster=cluster, hyper=hyper, ordered=False
        ).run(epochs)
        ordered = build_sgd_mf(
            dataset, cluster=cluster, hyper=hyper, ordered=True
        ).run(epochs)
        # Fig. 9b: ordering makes a negligible convergence difference.
        assert unordered.final_loss == pytest.approx(
            ordered.final_loss, rel=0.25
        )


class TestTable3Shape:
    """Unordered 2D beats ordered 2D on time per iteration (≥ 2x)."""

    def test_unordered_speedup(self, mf_setup):
        dataset, hyper, cluster = mf_setup
        epochs = 3
        unordered = build_sgd_mf(
            dataset, cluster=cluster, hyper=hyper, ordered=False
        ).run(epochs)
        ordered = build_sgd_mf(
            dataset, cluster=cluster, hyper=hyper, ordered=True
        ).run(epochs)
        speedup = ordered.time_per_iteration() / unordered.time_per_iteration()
        assert speedup > 1.5


class TestFig10Shape:
    """Orion vs Bösen (+CM): CM approaches Orion at a bandwidth price."""

    def test_cm_between_bosen_and_orion(self, mf_setup):
        dataset, hyper, cluster = mf_setup
        epochs = 5
        app = SGDMFApp(dataset, hyper)
        orion = build_sgd_mf(dataset, cluster=cluster, hyper=hyper).run(epochs)
        bosen = run_bosen(app, cluster, epochs)
        cm = run_managed_comm(app, cluster, epochs, bandwidth_budget_mbps=1600)
        assert orion.final_loss < cm.final_loss < bosen.final_loss

    def test_cm_bandwidth_exceeds_orion(self, mf_setup):
        dataset, hyper, cluster = mf_setup
        epochs = 3
        orion = build_sgd_mf(dataset, cluster=cluster, hyper=hyper).run(epochs)
        cm = run_managed_comm(
            SGDMFApp(dataset, hyper), cluster, epochs, bandwidth_budget_mbps=1600
        )
        assert cm.traffic.total_bytes > orion.traffic.total_bytes


class TestFig11Shape:
    """Orion matches STRADS per-iteration; STRADS faster per second on
    marshalling-heavy apps."""

    def test_identical_per_iteration_convergence(self, mf_setup):
        dataset, hyper, cluster = mf_setup
        epochs = 4
        orion = build_sgd_mf(dataset, cluster=cluster, hyper=hyper).run(epochs)
        strads = run_strads(
            lambda c: build_sgd_mf(dataset, cluster=c, hyper=hyper),
            cluster,
            epochs,
        )
        assert strads.losses == pytest.approx(orion.losses)

    def test_lda_strads_throughput_advantage(self, corpus_small):
        from repro.apps.lda import lda_cost_model

        hyper = LDAHyper(num_topics=4)
        # A compute-dominated regime (the paper's corpora are millions of
        # documents): per-entry cost large relative to fixed sync costs.
        cluster = ClusterSpec(
            num_machines=2,
            workers_per_machine=2,
            cost=lda_cost_model(hyper, base_entry_cost=5e-5),
        )
        epochs = 3
        orion = build_lda(corpus_small, cluster=cluster, hyper=hyper).run(epochs)
        strads = run_strads(
            lambda c: build_lda(corpus_small, cluster=c, hyper=hyper),
            cluster,
            epochs,
            speed_factor=0.4,
        )
        ratio = orion.time_per_iteration() / strads.time_per_iteration()
        assert ratio > 1.5  # paper: 1.8x (ClueWeb) to 4x (NYTimes)


class TestFig13Shape:
    """Orion vs TensorFlow-style mini-batching."""

    def test_orion_converges_much_faster(self, mf_setup):
        dataset, hyper, _cluster = mf_setup
        single = ClusterSpec.single_machine(16, cost=mf_cost_model(hyper))
        epochs = 5
        orion = build_sgd_mf(dataset, cluster=single, hyper=hyper).run(epochs)
        tf = run_tensorflow_minibatch(
            SGDMFApp(dataset, hyper),
            single,
            epochs,
            batch_size=dataset.num_entries // 4,
        )
        initial = tf.meta["initial_loss"]
        assert (initial - orion.final_loss) > 3 * (initial - tf.final_loss)

    def test_tf_slower_per_iteration_than_orion(self, mf_setup):
        dataset, hyper, _cluster = mf_setup
        single = ClusterSpec.single_machine(16, cost=mf_cost_model(hyper))
        orion = build_sgd_mf(dataset, cluster=single, hyper=hyper).run(2)
        tf = run_tensorflow_minibatch(
            SGDMFApp(dataset, hyper),
            single,
            2,
            batch_size=dataset.num_entries // 4,
        )
        assert tf.time_per_iteration() > orion.time_per_iteration()


class TestScalingShape:
    """Fig. 9a: Orion beats serial from a few workers, keeps speeding up."""

    def test_speedup_grows_with_workers(self, mf_setup):
        from repro.runtime.simtime import CostModel

        dataset, hyper, _cluster = mf_setup
        # Compute-dominated regime (the paper's Netflix runs use rank 1000).
        cost = CostModel(entry_cost_s=2e-5)
        times = {}
        for workers in (1, 4, 16):
            cluster = ClusterSpec(
                num_machines=max(1, workers // 4),
                workers_per_machine=min(workers, 4),
                cost=cost,
            )
            program = build_sgd_mf(dataset, cluster=cluster, hyper=hyper)
            times[workers] = program.run(3).time_per_iteration()
        assert times[4] < times[1]
        assert times[16] < times[4]

    def test_orion_beats_serial_at_four_workers(self, mf_setup):
        from repro.runtime.simtime import CostModel

        dataset, hyper, _cluster = mf_setup
        cost = CostModel(entry_cost_s=2e-5)
        serial = run_serial(SGDMFApp(dataset, hyper), 3, cost=cost)
        # Orion pays an abstraction overhead (paper Fig. 9a) yet wins with
        # a few workers.
        cluster = ClusterSpec(
            num_machines=1,
            workers_per_machine=4,
            cost=cost.with_overhead(1.3),
        )
        orion = build_sgd_mf(dataset, cluster=cluster, hyper=hyper).run(3)
        assert orion.time_per_iteration() < serial.time_per_iteration()
