"""Crash recovery for parallel loops: restore, replay, charge the clock.

One :class:`RecoveryManager` is attached to a :class:`~repro.api.ParallelLoop`
when its options carry a fault plan or a checkpoint config.  It

* drives a :class:`~repro.runtime.checkpoint.CheckpointPolicy` after each
  completed epoch (wiring Sec. 4.3's "checkpoint every N passes" into the
  epoch loop), charging the virtual clock for the write;
* snapshots accumulator slots alongside each checkpoint (and the initial
  state before epoch 1), so restored runs resume with consistent
  accumulator values, not post-crash garbage;
* on a detected crash, restores the latest *complete* checkpoint (or the
  initial snapshot when none exists yet), charges restart + restore time,
  and tells the loop which epoch to replay from.

The numeric restore is exact — array contents come back bit-identical —
so a recovered run converges to the same state as a fault-free run
resumed from the same checkpoint; the crash costs only virtual time.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import FaultError
from repro.faults.plan import RecoveryCosts
from repro.runtime.checkpoint import (
    CheckpointConfig,
    CheckpointPolicy,
    latest_complete_tag,
    manifest_meta,
)

__all__ = ["RecoveryManager"]


def _copy_value(value: Any) -> Any:
    return value.copy() if isinstance(value, np.ndarray) else value


class RecoveryManager:
    """Checkpoint/restore driver for one parallel loop.

    Args:
        arrays: the DistArrays to protect (the loop's mutated arrays and
            buffer flush targets, or the checkpoint config's explicit
            list).
        accumulators: name -> Accumulator referenced by the loop body.
        checkpoint: optional on-disk checkpoint config; without it,
            recovery restarts from an in-memory snapshot of the initial
            state (epoch 0).
        costs: virtual-time prices for detection/restart/restore.
        tracer / metrics: observability sinks (``checkpoint`` and
            ``recovery`` spans on the ``faults`` track).
        trace_process: Perfetto process label for emitted spans.
    """

    def __init__(
        self,
        arrays: List[Any],
        accumulators: Dict[str, Any],
        checkpoint: Optional[CheckpointConfig],
        costs: Optional[RecoveryCosts],
        tracer,
        metrics,
        trace_process: str = "orion",
    ) -> None:
        self.arrays = list(arrays)
        self.accumulators = dict(accumulators)
        self.costs = costs if costs is not None else RecoveryCosts()
        self.tracer = tracer
        self.metrics = metrics
        self.trace_process = trace_process
        self.policy: Optional[CheckpointPolicy] = None
        if checkpoint is not None:
            self.policy = CheckpointPolicy(
                self.arrays,
                checkpoint.directory,
                every_n_epochs=checkpoint.every_n_epochs,
                keep=checkpoint.keep,
            )
        #: Epoch of the newest checkpoint (0 = only the initial snapshot).
        self.checkpoint_epoch = 0
        self._initial = self._snapshot_arrays()
        self._acc_snapshot = self._snapshot_accumulators()

    # ---------------- snapshots ---------------------------------------- #

    def _snapshot_arrays(self) -> Dict[str, Tuple[str, Any]]:
        snapshot: Dict[str, Tuple[str, Any]] = {}
        for array in self.arrays:
            if not array.is_materialized:
                continue
            if array.sparse:
                snapshot[array.name] = (
                    "sparse",
                    {
                        key: _copy_value(value)
                        for key, value in array._entries.items()
                    },
                )
            else:
                snapshot[array.name] = ("dense", array._dense.copy())
        return snapshot

    def _restore_initial(self) -> None:
        by_name = {array.name: array for array in self.arrays}
        for name, (kind, data) in self._initial.items():
            array = by_name[name]
            if kind == "dense":
                array._dense[...] = data
            else:
                array._entries.clear()
                array._entries.update(
                    (key, _copy_value(value)) for key, value in data.items()
                )

    def _snapshot_accumulators(self) -> Dict[str, Dict[int, Any]]:
        return {
            name: {
                worker: _copy_value(value)
                for worker, value in acc._slots.items()
            }
            for name, acc in self.accumulators.items()
        }

    def _restore_accumulators(self) -> None:
        for name, slots in self._acc_snapshot.items():
            acc = self.accumulators[name]
            acc._slots.clear()
            acc._slots.update(
                (worker, _copy_value(value)) for worker, value in slots.items()
            )

    @property
    def nbytes(self) -> float:
        """Checkpointed payload, for restore-time accounting."""
        return float(sum(array.nbytes for array in self.arrays))

    # ---------------- checkpoint cadence -------------------------------- #

    def after_epoch(self, epoch: int, now: float) -> float:
        """Step the checkpoint policy after a completed epoch.

        Returns the virtual seconds to charge for the checkpoint write (0
        when none was due).  Replayed epochs at or before the restored
        checkpoint are skipped — re-writing an existing tag would only
        duplicate work the first execution already did.
        """
        if self.policy is None or epoch <= self.checkpoint_epoch:
            return 0.0
        if not self.policy.step(epoch):
            return 0.0
        self.checkpoint_epoch = epoch
        self._acc_snapshot = self._snapshot_accumulators()
        seconds = self.nbytes / self.costs.restore_bandwidth_bytes_per_s
        if self.tracer.enabled:
            self.tracer.add_span(
                f"checkpoint epoch{epoch}",
                "checkpoint",
                now,
                now + seconds,
                track="faults",
                process=self.trace_process,
                args={"epoch": epoch, "nbytes": self.nbytes},
            )
        if self.metrics.enabled:
            self.metrics.counter("checkpoints_total").inc()
            self.metrics.counter("checkpoint_seconds_total").inc(seconds)
        return seconds

    # ---------------- recovery ----------------------------------------- #

    def recover(self, now: float) -> Tuple[float, int, float]:
        """Restore state after a detected crash.

        Returns ``(seconds, replay_from, restored_nbytes)``: the virtual
        time the restore costs (restart + checkpoint read), the epoch the
        restored state corresponds to (replay resumes at ``replay_from +
        1``), and the bytes read back (0 for the in-memory snapshot).
        """
        restored_nbytes = 0.0
        replay_from = 0
        if self.policy is not None and latest_complete_tag(
            self.policy.directory
        ) is not None:
            tag = self.policy.restore_latest()
            meta = manifest_meta(self.policy.directory, tag)
            epoch = meta.get("epoch")
            if not isinstance(epoch, int):
                raise FaultError(
                    f"checkpoint tag {tag!r} has no epoch in its manifest; "
                    "cannot decide where to resume"
                )
            replay_from = epoch
            restored_nbytes = self.nbytes
        else:
            self._restore_initial()
        self._restore_accumulators()
        seconds = self.costs.restart_s + (
            restored_nbytes / self.costs.restore_bandwidth_bytes_per_s
        )
        if self.tracer.enabled:
            self.tracer.add_span(
                f"recovery (replay from epoch {replay_from})",
                "recovery",
                now,
                now + seconds,
                track="faults",
                process=self.trace_process,
                args={
                    "replay_from": replay_from,
                    "restored_nbytes": restored_nbytes,
                },
            )
        if self.metrics.enabled:
            self.metrics.counter("recoveries_total").inc()
            self.metrics.counter("recovery_seconds_total").inc(seconds)
        return seconds, replay_from, restored_nbytes
