"""Fig. 12 — network bandwidth usage over time, LDA on NYTimes.

Paper result: Bösen's managed communication sustains its full per-machine
bandwidth budget (~2560 Mbps x 12 machines) for the whole run, while Orion
communicates in short rotation/flush bursts at a far lower average rate —
CM pays an order of magnitude more traffic for its staleness reduction.
"""

import numpy as np
import pytest

import _workloads as wl
from repro.apps import LDAApp, build_lda
from repro.baselines import run_managed_comm

EPOCHS = 3


def _run_both():
    dataset = wl.nytimes_bench()
    cluster = wl.lda_cluster()
    orion = build_lda(
        dataset,
        cluster=cluster,
        hyper=wl.LDA_HYPER,
        pipeline_depth=wl.BENCH_PIPELINE_DEPTH,
    ).run(EPOCHS)
    cm = run_managed_comm(
        LDAApp(dataset, wl.LDA_HYPER, seed=0),
        cluster,
        EPOCHS,
        bandwidth_budget_mbps=2560,
        cpu_overhead_s_per_mb=5e-3,
    )
    return orion, cm


@pytest.mark.benchmark(group="fig12")
def test_fig12_bandwidth(benchmark, report):
    orion, cm = benchmark.pedantic(_run_both, rounds=1, iterations=1)
    horizon = max(orion.total_time_s, cm.total_time_s)
    bucket = horizon / 20.0
    rows = []
    series_blocks = []
    for label, history in [("Orion", orion), ("Bosen CM", cm)]:
        times, mbps = history.traffic.bandwidth_series(bucket, horizon)
        rows.append(
            (
                label,
                f"{history.traffic.total_bytes / 1e6:.2f}",
                f"{np.mean(mbps):.1f}",
                f"{np.max(mbps):.1f}",
            )
        )
        series_blocks.append(
            wl.fmt_series(
                f"{label} bandwidth (Mbps) over virtual time",
                [(f"{t:.2f}", float(m)) for t, m in zip(times, mbps)][:10],
                "{:.0f}",
            )
        )
    orion_kinds = ", ".join(
        f"{kind}={nbytes / 1e6:.2f}MB"
        for kind, nbytes in sorted(orion.traffic.bytes_by_kind().items())
    )
    report(
        "Fig 12: bandwidth usage over time, LDA (NYTimes-like)",
        wl.fmt_table(
            ["engine", "total MB", "mean Mbps", "peak Mbps"], rows
        )
        + "\n\n"
        + "\n".join(series_blocks)
        + f"\nOrion traffic breakdown: {orion_kinds}"
        + "\npaper shape: CM sustains its full budget; Orion uses far "
        "less bandwidth in bursts",
    )
    # CM moves substantially more data overall...
    assert cm.traffic.total_bytes > 3 * orion.traffic.total_bytes
    # ...and at a higher sustained rate.
    _t_orion, mbps_orion = orion.traffic.bandwidth_series(bucket, horizon)
    _t_cm, mbps_cm = cm.traffic.bandwidth_series(bucket, horizon)
    assert float(np.mean(mbps_cm)) > 2 * float(np.mean(mbps_orion))
