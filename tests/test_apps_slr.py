"""Tests for the SLR application (repro.apps.slr)."""

import numpy as np
import pytest

from repro.analysis.strategy import PlacementKind, Strategy
from repro.apps.slr import SLRApp, SLRHyper, build_orion_program, logistic_loss


class TestOrionProgram:
    def test_plan_is_data_parallel(self, slr_small, cluster_tiny):
        program = build_orion_program(slr_small, cluster=cluster_tiny)
        assert program.plan.strategy is Strategy.DATA_PARALLEL
        assert program.plan.uses_buffers

    def test_weights_on_server_with_prefetch(self, slr_small, cluster_tiny):
        program = build_orion_program(slr_small, cluster=cluster_tiny)
        assert program.plan.placements["weights"].kind is PlacementKind.SERVER
        prefetch = program.train_loop.executor.prefetch.prefetch_fn
        assert prefetch is not None
        assert prefetch.arrays == ("weights",)

    def test_prefetch_indices_cover_features(self, slr_small, cluster_tiny):
        program = build_orion_program(slr_small, cluster=cluster_tiny)
        prefetch = program.train_loop.executor.prefetch.prefetch_fn
        key, sample = slr_small.entries[0]
        recorded = {idx[0] for _name, idx in prefetch(key, sample)}
        assert recorded == {fid for fid, _v in sample[0]}

    def test_loss_decreases(self, slr_small, cluster_tiny):
        program = build_orion_program(slr_small, cluster=cluster_tiny)
        history = program.run(4)
        assert history.final_loss < history.meta["initial_loss"]

    def test_adarev_variant_decreases(self, slr_small, cluster_tiny):
        program = build_orion_program(
            slr_small, cluster=cluster_tiny, hyper=SLRHyper(adarev=True)
        )
        history = program.run(4)
        assert history.final_loss < history.meta["initial_loss"]

    def test_validation_clean(self, slr_small, cluster_tiny):
        # Buffered writes are exempt from the serializability check.
        program = build_orion_program(slr_small, cluster=cluster_tiny, validate=True)
        program.run(2)


class TestSerialApp:
    def test_serial_training_converges(self, slr_small):
        app = SLRApp(slr_small, SLRHyper(step_size=0.2))
        state = app.init_state(0)
        before = app.loss(state)
        for _ in range(4):
            for key, value in app.entries():
                app.apply_entry(state, key, value)
        after = app.loss(state)
        assert after < before
        assert after < 0.6  # meaningfully below chance-level log loss

    def test_only_sample_features_touched(self, slr_small):
        app = SLRApp(slr_small)
        state = app.init_state(0)
        key, value = app.entries()[0]
        app.apply_entry(state, key, value)
        touched = np.nonzero(state["weights"])[0]
        expected = {fid for fid, _v in value[0]}
        assert set(touched) <= expected

    def test_adarev_state(self, slr_small):
        app = SLRApp(slr_small, SLRHyper(adarev=True))
        state = app.init_state(0)
        assert "n2" in state
        key, value = app.entries()[0]
        app.apply_entry(state, key, value)
        assert state["n2"].max() > 1e-8

    def test_logistic_loss_at_zero_weights(self, slr_small):
        weights = np.zeros(slr_small.num_features)
        assert logistic_loss(weights, slr_small.entries) == pytest.approx(
            np.log(2.0)
        )
