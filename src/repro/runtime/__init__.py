"""Simulated distributed runtime: cluster, schedules, executor, costs."""

from repro.runtime.cluster import ClusterSpec
from repro.runtime.executor import EpochResult, OrionExecutor
from repro.runtime.history import EpochRecord, RunHistory
from repro.runtime.network import NetworkModel, TrafficLog
from repro.runtime.simtime import CostModel

__all__ = [
    "ClusterSpec",
    "EpochResult",
    "OrionExecutor",
    "EpochRecord",
    "RunHistory",
    "NetworkModel",
    "TrafficLog",
    "CostModel",
]
