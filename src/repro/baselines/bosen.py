"""Bösen-style data parallelism (paper Sec. 5/6; ref. [45]).

Bösen is a parameter server: the training set is randomly sharded across
workers, every worker processes its shard against a locally cached copy of
the model, and workers synchronize with the servers after processing the
entire local partition (once per data pass, in the paper's configuration).
Concurrent workers therefore compute against parameter values that are one
synchronization period stale — the conflicting accesses whose convergence
penalty motivates dependence-aware parallelization.

The engine executes that semantics literally: per sync period each worker
updates its own replica in place (its *own* updates are visible to it, as
in Bösen's client cache), and replica deltas are summed into the master at
the barrier.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.apps.base import Entry, SerialApp
from repro.obs.metrics import NULL_METRICS, MetricsRegistry
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.runtime.cluster import ClusterSpec
from repro.runtime.history import RunHistory

__all__ = ["run_bosen", "shard_entries"]


def shard_entries(
    entries: List[Entry], num_workers: int, seed: int
) -> List[List[Entry]]:
    """Random (data-parallel) sharding of the training set across workers."""
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(entries))
    shards: List[List[Entry]] = [[] for _ in range(num_workers)]
    for position, entry_index in enumerate(order):
        shards[position % num_workers].append(entries[int(entry_index)])
    return shards


def _merge_deltas(
    master: Dict[str, np.ndarray],
    base: Dict[str, np.ndarray],
    replicas: List[Dict[str, np.ndarray]],
) -> None:
    """Additive aggregation: master = base + Σ_k (replica_k - base)."""
    for name in master:
        delta = np.zeros_like(master[name])
        for replica in replicas:
            delta += replica[name] - base[name]
        master[name] = base[name] + delta


def run_bosen(
    app: SerialApp,
    cluster: ClusterSpec,
    epochs: int,
    seed: int = 0,
    syncs_per_epoch: int = 1,
    label: Optional[str] = None,
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
    trace_process: str = "bosen",
) -> RunHistory:
    """Train ``app`` with Bösen data parallelism on ``cluster``.

    Args:
        syncs_per_epoch: synchronization barriers per data pass (Bösen's
            default configuration in the paper synchronizes after the whole
            local partition, i.e. 1).
        tracer: observability tracer; per-worker shard spans and sync
            transfers are placed on the virtual timeline under the
            ``trace_process`` process, comparable side by side with Orion
            traces in one Perfetto file.
        metrics: observability metrics registry.
        trace_process: Perfetto process label for this run's spans.
    """
    tracer = tracer if tracer is not None else NULL_TRACER
    metrics = metrics if metrics is not None else NULL_METRICS
    workers = cluster.num_workers
    state = app.init_state(seed)
    shards = shard_entries(list(app.entries()), workers, seed)
    # The cost model is app-calibrated (e.g. mf_cost_model); engines use it
    # as-is so all engines charge identical per-entry compute.
    entry_cost = cluster.cost.entry_cost_s * cluster.cost.overhead_factor
    model_nbytes = app.model_nbytes(state)
    history = RunHistory(label=label or f"Bosen {app.name}")
    history.meta["initial_loss"] = app.loss(state)
    clock = 0.0

    for epoch in range(epochs):
        epoch_bytes = 0.0
        epoch_start = clock
        epoch_busy = 0.0
        for sync in range(syncs_per_epoch):
            sync_start = clock
            base = app.clone_state(state)
            replicas = []
            slowest = 0.0
            sync_entries = 0
            for worker in range(workers):
                shard = shards[worker]
                lo = len(shard) * sync // syncs_per_epoch
                hi = len(shard) * (sync + 1) // syncs_per_epoch
                replica = app.clone_state(base)
                for key, value in shard[lo:hi]:
                    app.apply_entry(replica, key, value)
                replicas.append(replica)
                work = (hi - lo) * entry_cost
                slowest = max(slowest, work)
                epoch_busy += work
                sync_entries += hi - lo
                tracer.add_span(
                    f"shard[{worker}] sync {sync}",
                    "block",
                    sync_start,
                    sync_start + work,
                    track=f"worker{worker}",
                    process=trace_process,
                    args={"entries": hi - lo},
                )
            metrics.counter("entries_total").inc(sync_entries)
            _merge_deltas(state, base, replicas)
            # Per machine: push aggregated deltas, pull fresh values.
            per_machine_bytes = 2.0 * model_nbytes
            sync_bytes = per_machine_bytes * cluster.num_machines
            transfer = cluster.network.transfer_time(per_machine_bytes)
            clock += slowest
            history.traffic.record(clock, clock + transfer, sync_bytes, "sync")
            tracer.add_span(
                "sync",
                "sync",
                clock,
                clock + transfer,
                track="net:sync",
                process=trace_process,
                args={"nbytes": sync_bytes},
            )
            metrics.counter("traffic_bytes_sync").inc(sync_bytes)
            clock += transfer + cluster.cost.sync_overhead_s
            tracer.add_span(
                "barrier",
                "barrier",
                clock - cluster.cost.sync_overhead_s,
                clock,
                track="epochs",
                process=trace_process,
                depth=1,
            )
            epoch_bytes += sync_bytes
        epoch_time = clock - epoch_start
        capacity = workers * epoch_time
        utilization = epoch_busy / capacity if capacity > 0 else 0.0
        tracer.add_span(
            f"epoch {epoch + 1}",
            "epoch",
            epoch_start,
            clock,
            track="epochs",
            process=trace_process,
            args={"utilization": utilization, "bytes_sent": epoch_bytes},
        )
        metrics.counter("epochs_total").inc()
        history.append(
            app.loss(state), epoch_time, epoch_bytes, utilization=utilization
        )
    history.meta["state"] = state
    return history
