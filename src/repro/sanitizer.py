"""Shadow-access race detector: dynamically verify the analyzer's claims.

The static parallelizer (Sec. 4 of the paper) makes four falsifiable
claims about every loop it accepts:

1. the reported dependence vectors are *complete* — every actual
   cross-iteration write/read (and, for ordered loops, write/write)
   conflict is covered by some reported vector;
2. batched-kernel ``conflict_free_groups`` really contain no two
   iterations touching the same row or column;
3. buffered writes — exempt from dependence analysis — never alias an
   element the loop also writes directly;
4. the access footprint stays inside what the prefetch oracle predicts
   for server-placed arrays.

Sanitize mode (``LoopOptions.sanitize`` / CLI ``--sanitize``) records the
actual DistArray elements each iteration reads and writes during
interpreted execution and cross-checks all four claims at every epoch
boundary, reporting violations as :class:`~repro.analysis.lint.Diagnostic`
objects (codes ``S601``–``S604``) with the offending iteration pair.

A record is the 4-tuple ``(iteration_key, storage_array_name,
normalized_index, kind)`` with ``kind`` one of ``"r"`` (read), ``"w"``
(direct write), ``"b"`` (buffered write).  Records use the *storage*
array name (``DistArray.name``) rather than the body's variable name so
that two variables aliasing one array collide here even though static
analysis treats them as distinct (the ``W202`` blind spot).
"""

from __future__ import annotations

from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.analysis.lint import Diagnostic
from repro.core import access
from repro.errors import ExecutionError

__all__ = [
    "AccessRecord",
    "RecordingBroker",
    "SanitizerError",
    "check_epoch",
    "verify_conflict_groups",
]

#: (iteration_key, storage_array_name, normalized_index, kind)
AccessRecord = Tuple[Any, str, Tuple[Any, ...], str]


class SanitizerError(ExecutionError):
    """Sanitize mode found actual accesses contradicting the static plan."""

    def __init__(self, diagnostics: Sequence[Diagnostic]) -> None:
        self.diagnostics = list(diagnostics)
        lines = [d.describe() for d in self.diagnostics]
        super().__init__(
            "sanitizer detected "
            f"{len(self.diagnostics)} violation(s):\n" + "\n".join(lines)
        )


class RecordingBroker(access.AccessBroker):
    """Pass-through broker that logs every element access per iteration.

    The executor (or a forked worker) sets :attr:`iteration` to the
    current loop key before running the body; every read/write the body
    performs while that key is current lands in :attr:`records`.
    Delegation goes straight to the arrays' ``direct_*`` accessors, so
    recording never changes what the loop computes.
    """

    def __init__(self) -> None:
        self.records: List[AccessRecord] = []
        self.iteration: Any = None

    def read(self, array: Any, index: Any) -> Any:
        self.records.append(
            (self.iteration, array.name, normalize_index(index), "r")
        )
        return array.direct_get(index)

    def write(self, array: Any, index: Any, value: Any) -> None:
        self.records.append(
            (self.iteration, array.name, normalize_index(index), "w")
        )
        array.direct_set(index, value)

    def buffer_write(self, buffer: Any, index: Any, value: Any) -> None:
        self.records.append(
            (self.iteration, buffer.target.name, normalize_index(index), "b")
        )
        buffer.direct_buffer_write(index, value)


def normalize_index(index: Any) -> Tuple[Any, ...]:
    """Canonical per-axis form: ``("pt", i)`` or ``("range", lo, hi)``."""
    from repro.runtime.kernels import normalize_index as _normalize

    return _normalize(index)


# --------------------------------------------------------------------- #
# Normalized-form geometry                                              #
# --------------------------------------------------------------------- #


def _axis_overlap(a: Tuple[Any, ...], b: Tuple[Any, ...]) -> bool:
    if a[0] == "pt" and b[0] == "pt":
        return a[1] == b[1]
    if a[0] == "pt":
        a, b = b, a
    if b[0] == "pt":
        lo, hi = a[1], a[2]
        return (lo is None or b[1] >= lo) and (hi is None or b[1] < hi)
    lo = max(x for x in (a[1], b[1]) if x is not None) \
        if (a[1] is not None or b[1] is not None) else None
    hi = min(x for x in (a[2], b[2]) if x is not None) \
        if (a[2] is not None or b[2] is not None) else None
    return lo is None or hi is None or lo < hi


def _forms_overlap(a: Tuple[Any, ...], b: Tuple[Any, ...]) -> bool:
    """Whether two normalized subscripts can touch a common element."""
    if len(a) != len(b):
        return True  # differing arity: stay conservative
    return all(_axis_overlap(x, y) for x, y in zip(a, b))


def _axis_contains(outer: Tuple[Any, ...], inner: Tuple[Any, ...]) -> bool:
    if outer[0] == "pt":
        return inner[0] == "pt" and inner[1] == outer[1]
    lo, hi = outer[1], outer[2]
    if inner[0] == "pt":
        return (lo is None or inner[1] >= lo) and (hi is None or inner[1] < hi)
    ilo, ihi = inner[1], inner[2]
    lo_ok = lo is None or (ilo is not None and ilo >= lo)
    hi_ok = hi is None or (ihi is not None and ihi <= hi)
    return lo_ok and hi_ok


def _form_contains(outer: Tuple[Any, ...], inner: Tuple[Any, ...]) -> bool:
    """Whether ``outer`` covers every element ``inner`` can touch."""
    if len(outer) != len(inner):
        return False
    return all(_axis_contains(o, i) for o, i in zip(outer, inner))


def _iter_vec(key: Any) -> Tuple[int, ...]:
    if isinstance(key, tuple):
        return tuple(int(k) for k in key)
    return (int(key),)


def _lexico_positive(delta: Tuple[int, ...]) -> Tuple[int, ...]:
    for entry in delta:
        if entry > 0:
            return delta
        if entry < 0:
            return tuple(-e for e in delta)
    return delta  # all-zero (caller skips these)


# --------------------------------------------------------------------- #
# Dependence-vector coverage                                            #
# --------------------------------------------------------------------- #


def _entry_covers(entry: Any, distance: int) -> bool:
    from repro.analysis.depvec import ANY, NEG, POS

    if entry is ANY:
        return True
    if entry is POS:
        return distance > 0
    if entry is NEG:
        return distance < 0
    return entry == distance


def _vector_covers(vector: Any, delta: Tuple[int, ...]) -> bool:
    if len(vector.entries) != len(delta):
        return False
    return all(_entry_covers(e, d) for e, d in zip(vector.entries, delta))


def _dvecs_by_storage_name(info: Any, plan: Any) -> Dict[str, Set[Any]]:
    """Reported dependence vectors, re-keyed by storage array name.

    ``plan.dvecs_by_array`` is keyed by the body's variable names; two
    variables aliasing one array each contribute their vectors to the
    shared storage-name entry."""
    out: Dict[str, Set[Any]] = {}
    for var_name, vectors in plan.dvecs_by_array.items():
        array = info.arrays.get(var_name)
        storage = array.name if array is not None else var_name
        out.setdefault(storage, set()).update(vectors)
    return out


# --------------------------------------------------------------------- #
# Epoch-boundary checks                                                 #
# --------------------------------------------------------------------- #


def _bucket_records(
    records: Iterable[AccessRecord],
) -> Dict[str, Dict[Tuple[Any, ...], Dict[str, Set[Any]]]]:
    """array -> normalized form -> kind -> set of iteration keys."""
    out: Dict[str, Dict[Tuple[Any, ...], Dict[str, Set[Any]]]] = {}
    for iteration, array_name, form, kind in records:
        forms = out.setdefault(array_name, {})
        kinds = forms.setdefault(form, {})
        kinds.setdefault(kind, set()).add(iteration)
    return out


def _conflict_deltas(
    iters_a: Set[Any], iters_b: Set[Any]
) -> Dict[Tuple[int, ...], Tuple[Any, Any]]:
    """Distinct lexicographically-positive deltas with one witness pair."""
    out: Dict[Tuple[int, ...], Tuple[Any, Any]] = {}
    for it_a in iters_a:
        vec_a = _iter_vec(it_a)
        for it_b in iters_b:
            if it_a == it_b:
                continue
            delta = tuple(b - a for a, b in zip(vec_a, _iter_vec(it_b)))
            if all(d == 0 for d in delta):
                continue  # same iteration point re-accessed: no dependence
            canonical = _lexico_positive(delta)
            out.setdefault(canonical, (it_a, it_b))
    return out


def check_epoch(
    info: Any,
    plan: Any,
    records: Sequence[AccessRecord],
    server_names: FrozenSet[str] = frozenset(),
    prefetch_fn: Optional[Any] = None,
    values: Optional[Dict[Any, Any]] = None,
) -> List[Diagnostic]:
    """Cross-check one epoch of recorded accesses against the static plan.

    Args:
        info: the loop's :class:`~repro.analysis.loop_info.LoopInfo`.
        plan: the chosen :class:`~repro.analysis.strategy.Plan`.
        records: every access recorded this epoch.
        server_names: storage names of server-placed arrays.  Like the
            serializability checker, cross-iteration conflicts on these
            are exempt from S601: the parameter server linearizes them by
            construction (the paper's Sec. 3.3 relaxation).
        prefetch_fn: the synthesized prefetch oracle, when one exists;
            enables the S604 footprint check for server-array reads.
        values: iteration key -> value map for oracles that use the loop
            value (built lazily from the iteration space when omitted).

    Returns the violations found (empty list when the epoch is clean).
    """
    diagnostics: List[Diagnostic] = []
    buckets = _bucket_records(records)
    reported = _dvecs_by_storage_name(info, plan)

    for array_name, forms in sorted(buckets.items()):
        if array_name not in server_names:
            diagnostics.extend(
                _check_dependence_completeness(
                    array_name, forms, reported.get(array_name, set()),
                    ordered=info.ordered,
                )
            )
        diagnostics.extend(_check_buffer_aliasing(array_name, forms))

    if prefetch_fn is not None and server_names:
        diagnostics.extend(
            _check_prefetch_footprint(
                info, records, server_names, prefetch_fn, values
            )
        )
    return diagnostics


def _check_dependence_completeness(
    array_name: str,
    forms: Dict[Tuple[Any, ...], Dict[str, Set[Any]]],
    reported: Set[Any],
    ordered: bool,
) -> List[Diagnostic]:
    """S601: every actual cross-iteration conflict must be covered.

    Mirrors Alg. 2's exemptions: read/read pairs never conflict, and
    write/write pairs are exempt when the loop is unordered (the paper
    reorders them freely).  Buffered writes (kind ``"b"``) are exempt
    here — S603 polices them separately."""
    diagnostics: List[Diagnostic] = []
    seen_deltas: Set[Tuple[int, ...]] = set()
    form_list = list(forms.items())
    for i, (form_a, kinds_a) in enumerate(form_list):
        for form_b, kinds_b in form_list[i:]:
            if not _forms_overlap(form_a, form_b):
                continue
            pairs = [("w", "r"), ("r", "w")]
            if ordered:
                pairs.append(("w", "w"))
            for kind_a, kind_b in pairs:
                iters_a = kinds_a.get(kind_a, set())
                iters_b = kinds_b.get(kind_b, set())
                if not iters_a or not iters_b:
                    continue
                for delta, witness in _conflict_deltas(iters_a, iters_b).items():
                    if delta in seen_deltas:
                        continue
                    seen_deltas.add(delta)
                    if any(_vector_covers(v, delta) for v in reported):
                        continue
                    it_a, it_b = witness
                    conflict = (
                        "write/write" if kind_a == kind_b else "write/read"
                    )
                    diagnostics.append(
                        Diagnostic(
                            code="S601",
                            message=(
                                f"iterations {it_a} and {it_b} have a "
                                f"{conflict} conflict on array "
                                f"{array_name!r} (distance {delta}) not "
                                "covered by any reported dependence vector"
                            ),
                            details=(
                                ("array", array_name),
                                ("iterations", witness),
                                ("delta", delta),
                            ),
                            hint="the static analyzer missed a loop-carried "
                            "dependence; check for aliased arrays (W202) or "
                            "data-dependent subscripts (W201)",
                        )
                    )
    return diagnostics


def _check_buffer_aliasing(
    array_name: str,
    forms: Dict[Tuple[Any, ...], Dict[str, Set[Any]]],
) -> List[Diagnostic]:
    """S603: a buffered write overlapping a *direct* write voids the
    buffered-write exemption — flush order vs. direct-store order is
    undefined for the shared element."""
    diagnostics: List[Diagnostic] = []
    buffered = [
        (form, kinds["b"]) for form, kinds in forms.items() if "b" in kinds
    ]
    direct = [
        (form, kinds["w"]) for form, kinds in forms.items() if "w" in kinds
    ]
    if not buffered or not direct:
        return diagnostics
    for form_b, iters_b in buffered:
        for form_w, iters_w in direct:
            if not _forms_overlap(form_b, form_w):
                continue
            it_b = next(iter(iters_b))
            it_w = next(iter(iters_w))
            diagnostics.append(
                Diagnostic(
                    code="S603",
                    message=(
                        f"buffered write {form_b} (iteration {it_b}) aliases "
                        f"direct write {form_w} (iteration {it_w}) on array "
                        f"{array_name!r}; the buffered-write exemption does "
                        "not hold for elements also written directly"
                    ),
                    details=(
                        ("array", array_name),
                        ("iterations", (it_b, it_w)),
                    ),
                    hint="route all writes to this array through the buffer, "
                    "or none",
                )
            )
            break  # one witness per buffered form is enough
    return diagnostics


def _check_prefetch_footprint(
    info: Any,
    records: Sequence[AccessRecord],
    server_names: FrozenSet[str],
    prefetch_fn: Any,
    values: Optional[Dict[Any, Any]],
) -> List[Diagnostic]:
    """S604: server-array reads must stay inside the prefetch oracle's
    predicted footprint — a miss means the oracle under-predicts and the
    runtime's admission/costing of server traffic is wrong."""
    diagnostics: List[Diagnostic] = []
    # Map body variable names to storage names once; the oracle predicts
    # in variable names, records are in storage names.
    storage_of = {var: arr.name for var, arr in info.arrays.items()}
    predicted_cache: Dict[Any, List[Tuple[str, Tuple[Any, ...]]]] = {}
    flagged: Set[Tuple[Any, str]] = set()

    def predicted_for(key: Any) -> List[Tuple[str, Tuple[Any, ...]]]:
        if key not in predicted_cache:
            value = None
            if values is not None:
                value = values.get(key)
            try:
                raw = prefetch_fn(key, value)
            except Exception:
                raw = None
            if raw is None:
                predicted_cache[key] = []
            else:
                predicted_cache[key] = [
                    (storage_of.get(name, name), normalize_index(index))
                    for name, index in raw
                ]
        return predicted_cache[key]

    for iteration, array_name, form, kind in records:
        if kind != "r" or array_name not in server_names:
            continue
        if (iteration, array_name) in flagged:
            continue
        predicted = predicted_for(iteration)
        covered = any(
            name == array_name and _form_contains(pform, form)
            for name, pform in predicted
        )
        if not covered:
            flagged.add((iteration, array_name))
            diagnostics.append(
                Diagnostic(
                    code="S604",
                    message=(
                        f"iteration {iteration} read {form} of server array "
                        f"{array_name!r} outside the prefetch oracle's "
                        "predicted footprint"
                    ),
                    details=(
                        ("array", array_name),
                        ("iteration", iteration),
                        ("form", form),
                    ),
                    hint="the synthesized prefetch function under-predicts; "
                    "check for data-dependent subscripts it cannot model",
                )
            )
    return diagnostics


def verify_conflict_groups(
    rows: Sequence[int],
    cols: Sequence[int],
    groups: Iterable[Tuple[int, int]],
) -> List[Diagnostic]:
    """S602: check that each claimed conflict-free group really contains
    no two entries sharing a row or a column.

    ``rows``/``cols`` are the per-entry coordinates a batched kernel
    updates; ``groups`` are half-open ``(lo, hi)`` index ranges claimed
    conflict-free (the output of ``conflict_free_groups``).  Sanitize
    mode forces scalar execution, so this check runs on the *claimed*
    grouping rather than live kernel traffic — tests also call it
    directly with planted bad groupings."""
    diagnostics: List[Diagnostic] = []
    for lo, hi in groups:
        seen_rows: Dict[int, int] = {}
        seen_cols: Dict[int, int] = {}
        for pos in range(lo, hi):
            row, col = rows[pos], cols[pos]
            clash = None
            if row in seen_rows:
                clash = ("row", row, seen_rows[row])
            elif col in seen_cols:
                clash = ("col", col, seen_cols[col])
            if clash is not None:
                axis, coord, other = clash
                diagnostics.append(
                    Diagnostic(
                        code="S602",
                        message=(
                            f"group ({lo}, {hi}) claimed conflict-free but "
                            f"entries {other} and {pos} share {axis} {coord}"
                        ),
                        details=(
                            ("group", (lo, hi)),
                            ("entries", (other, pos)),
                        ),
                        hint="the batched kernel would apply these updates "
                        "with undefined relative order",
                    )
                )
                break  # one witness per group
            seen_rows[row] = pos
            seen_cols[col] = pos
    return diagnostics
