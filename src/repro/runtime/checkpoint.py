"""Checkpointing helpers (paper Sec. 4.3, fault tolerance).

An Orion driver checkpoints parameter DistArrays by writing them to disk,
eagerly, typically every N data passes.  These helpers checkpoint/restore a
set of arrays atomically enough for the training-resume pattern: writes go
to a temp name and are renamed into place.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable

from repro.core.distarray import DistArray
from repro.errors import CheckpointError

__all__ = [
    "checkpoint_arrays",
    "restore_arrays",
    "checkpoint_path",
    "CheckpointPolicy",
]


def checkpoint_path(directory: str, name: str, tag: str) -> str:
    """Filesystem path for one array's checkpoint under a tag."""
    return os.path.join(directory, f"{name}.{tag}.ckpt")


def checkpoint_arrays(
    arrays: Iterable[DistArray], directory: str, tag: str
) -> Dict[str, str]:
    """Write each array's checkpoint under ``directory`` with ``tag``.

    Returns name -> path.  Each file is written to a temporary name first
    and renamed, so a crash mid-write never leaves a truncated checkpoint
    under the final name.
    """
    os.makedirs(directory, exist_ok=True)
    paths: Dict[str, str] = {}
    for array in arrays:
        final = checkpoint_path(directory, array.name, tag)
        temp = final + ".tmp"
        array.checkpoint(temp)
        try:
            os.replace(temp, final)
        except OSError as exc:
            raise CheckpointError(f"cannot finalize checkpoint {final!r}: {exc}")
        paths[array.name] = final
    return paths


class CheckpointPolicy:
    """Checkpoint every N data passes; restore the latest on demand.

    The paper's fault-tolerance pattern: "a common approach is to
    checkpoint the parameter DistArrays every N data passes".  Drive the
    policy from the training loop::

        policy = CheckpointPolicy([W, H], "/ckpts", every_n_epochs=5)
        for epoch in range(1, epochs + 1):
            loop.run()
            policy.step(epoch)
        ...
        policy.restore_latest()   # after a crash / for evaluation
    """

    def __init__(
        self,
        arrays: Iterable[DistArray],
        directory: str,
        every_n_epochs: int = 5,
        keep: int = 3,
    ) -> None:
        if every_n_epochs <= 0:
            raise CheckpointError("every_n_epochs must be positive")
        self.arrays = list(arrays)
        self.directory = directory
        self.every_n_epochs = every_n_epochs
        self.keep = max(1, keep)
        self._tags: list = []

    @property
    def latest_tag(self) -> str:
        """The most recent checkpoint tag, or raises when none exists."""
        if not self._tags:
            raise CheckpointError("no checkpoint has been written yet")
        return self._tags[-1]

    def step(self, epoch: int) -> bool:
        """Notify the policy that ``epoch`` finished; checkpoint when due.

        Returns whether a checkpoint was written.  Old checkpoints beyond
        ``keep`` are pruned.
        """
        if epoch % self.every_n_epochs != 0:
            return False
        tag = f"epoch{epoch}"
        checkpoint_arrays(self.arrays, self.directory, tag)
        self._tags.append(tag)
        while len(self._tags) > self.keep:
            stale = self._tags.pop(0)
            for array in self.arrays:
                path = checkpoint_path(self.directory, array.name, stale)
                try:
                    os.remove(path)
                except OSError:
                    pass
        return True

    def restore_latest(self) -> str:
        """Restore every array from the most recent checkpoint."""
        tag = self.latest_tag
        restore_arrays(self.arrays, self.directory, tag)
        return tag

    def restore(self, tag: str) -> None:
        """Restore every array from a specific tag."""
        restore_arrays(self.arrays, self.directory, tag)


def restore_arrays(
    arrays: Iterable[DistArray], directory: str, tag: str
) -> None:
    """Restore each array's storage in place from its tagged checkpoint."""
    for array in arrays:
        path = checkpoint_path(directory, array.name, tag)
        loaded = DistArray.load_checkpoint(path)
        if loaded.sparse != array.sparse:
            raise CheckpointError(
                f"checkpoint {path!r} is {'sparse' if loaded.sparse else 'dense'} "
                f"but target array is not"
            )
        if loaded.sparse:
            array._entries = loaded._entries
            array._shape = loaded._shape
        else:
            array.set_dense(loaded.values)
