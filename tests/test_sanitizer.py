"""Tests for sanitize mode (repro.sanitizer): seeded faults and clean runs.

The centerpiece planted fault: two variables aliasing one DistArray hide
a loop-carried dependence from the static analyzer (reads go through one
name, writes through the other, so Alg. 2 sees two independent arrays).
The loop compiles and runs silently — sanitize mode must catch the
actual write/read collision as S601 on both backends.
"""

from types import SimpleNamespace

import pytest

from repro.api import OrionContext
from repro.runtime.cluster import ClusterSpec
from repro.runtime.options import LoopOptions
from repro.sanitizer import (
    SanitizerError,
    check_epoch,
    normalize_index,
    verify_conflict_groups,
)


def _ctx(seed=5):
    return OrionContext(
        cluster=ClusterSpec(num_machines=2, workers_per_machine=2), seed=seed
    )


def _space(ctx, n=8):
    space = ctx.from_entries([((i,), 1.0) for i in range(n)], shape=(n,))
    ctx.materialize(space)
    return space


def _aliased_loop(ctx, **loop_kwargs):
    """A loop whose loop-carried dependence hides behind an alias.

    ``reads`` and ``writes`` are the same DistArray under two names:
    iteration i reads element i and writes element i+1, a distance-(1)
    write/read dependence the analyzer cannot see (it treats the names
    as distinct arrays, and each name alone carries no dependence).
    """
    space = _space(ctx)
    writes = ctx.zeros(16)
    ctx.materialize(writes)
    reads = writes

    def body(key, value):
        writes[key[0] + 1] = reads[key[0]] + value

    return ctx.parallel_for(space, **loop_kwargs)(body)


class TestPlantedMissedDependence:
    def test_analyzer_misses_it_statically(self):
        # The blind spot: the loop compiles, warns W202, and runs without
        # sanitize mode noticing anything.
        ctx = _ctx()
        loop = _aliased_loop(ctx)
        assert "W202" in [d.code for d in loop.diagnostics()]
        assert not any(
            vectors for vectors in loop.plan.dvecs_by_array.values()
        )
        loop.run()  # silently wrong without the sanitizer

    def test_sanitize_catches_s601_simulated(self):
        ctx = _ctx()
        loop = _aliased_loop(ctx, sanitize=True)
        with pytest.raises(SanitizerError) as excinfo:
            loop.run()
        codes = [d.code for d in excinfo.value.diagnostics]
        assert "S601" in codes
        s601 = next(
            d for d in excinfo.value.diagnostics if d.code == "S601"
        )
        assert ("delta", (1,)) in s601.details
        assert "write/read" in s601.message

    def test_sanitize_catches_s601_multiprocess(self):
        ctx = _ctx()
        loop = _aliased_loop(
            ctx, options=LoopOptions(sanitize=True, backend="multiprocess")
        )
        try:
            with pytest.raises(SanitizerError) as excinfo:
                loop.run()
            assert "S601" in [d.code for d in excinfo.value.diagnostics]
        finally:
            loop.close()


class TestConflictGroupCheck:
    def test_planted_non_conflict_free_group(self):
        # Entries 0 and 2 share row 0 inside the claimed-free group.
        diagnostics = verify_conflict_groups(
            rows=[0, 1, 0, 2], cols=[5, 6, 7, 8], groups=[(0, 3), (3, 4)]
        )
        assert [d.code for d in diagnostics] == ["S602"]
        assert ("entries", (0, 2)) in diagnostics[0].details

    def test_shared_column_detected(self):
        diagnostics = verify_conflict_groups(
            rows=[0, 1], cols=[4, 4], groups=[(0, 2)]
        )
        assert [d.code for d in diagnostics] == ["S602"]
        assert "col 4" in diagnostics[0].message

    def test_truly_conflict_free_groups_pass(self):
        assert verify_conflict_groups(
            rows=[0, 1, 2, 0], cols=[3, 4, 5, 6], groups=[(0, 3), (3, 4)]
        ) == []


def _fake_loop(ordered=False, arrays=None, dvecs=None):
    info = SimpleNamespace(ordered=ordered, arrays=arrays or {})
    plan = SimpleNamespace(dvecs_by_array=dvecs or {})
    return info, plan


class TestCheckEpochUnits:
    def test_s603_buffered_write_aliases_direct_write(self):
        info, plan = _fake_loop()
        records = [
            ((0,), "X", normalize_index(3), "b"),
            ((1,), "X", normalize_index(3), "w"),
        ]
        codes = [d.code for d in check_epoch(info, plan, records)]
        assert codes == ["S603"]

    def test_disjoint_buffer_and_direct_writes_pass(self):
        info, plan = _fake_loop()
        records = [
            ((0,), "X", normalize_index(3), "b"),
            ((1,), "X", normalize_index(4), "w"),
        ]
        assert check_epoch(info, plan, records) == []

    def test_s604_read_outside_prefetch_footprint(self):
        info, plan = _fake_loop()
        records = [((0,), "S", normalize_index(5), "r")]
        diagnostics = check_epoch(
            info, plan, records,
            server_names=frozenset({"S"}),
            prefetch_fn=lambda key, value: [("S", 3)],
        )
        assert [d.code for d in diagnostics] == ["S604"]

    def test_prefetch_covering_read_passes(self):
        info, plan = _fake_loop()
        records = [((0,), "S", normalize_index(5), "r")]
        assert check_epoch(
            info, plan, records,
            server_names=frozenset({"S"}),
            prefetch_fn=lambda key, value: [("S", slice(0, 10))],
        ) == []

    def test_server_arrays_exempt_from_s601(self):
        # The parameter server linearizes cross-iteration conflicts on
        # server-placed arrays; only non-server arrays raise S601.
        info, plan = _fake_loop()
        records = [
            ((0,), "S", normalize_index(2), "w"),
            ((1,), "S", normalize_index(2), "r"),
        ]
        assert check_epoch(
            info, plan, records, server_names=frozenset({"S"})
        ) == []
        assert [
            d.code for d in check_epoch(info, plan, records)
        ] == ["S601"]

    def test_write_write_only_conflicts_when_ordered(self):
        records = [
            ((0,), "X", normalize_index(2), "w"),
            ((1,), "X", normalize_index(2), "w"),
        ]
        info, plan = _fake_loop(ordered=False)
        assert check_epoch(info, plan, records) == []
        info, plan = _fake_loop(ordered=True)
        assert [d.code for d in check_epoch(info, plan, records)] == ["S601"]

    def test_reported_vector_silences_s601(self):
        from repro.analysis.depvec import DepVector

        array = SimpleNamespace(name="X")
        info, plan = _fake_loop(
            arrays={"x": array},
            dvecs={"x": {DepVector(entries=(1,))}},
        )
        records = [
            ((0,), "X", normalize_index(2), "w"),
            ((1,), "X", normalize_index(2), "r"),
        ]
        assert check_epoch(info, plan, records) == []


class TestSanitizedAppsRunClean:
    def test_mf_sanitized_epoch_clean(self, mf_small, cluster_tiny):
        from repro.apps.sgd_mf import build_orion_program

        program = build_orion_program(
            mf_small, cluster=cluster_tiny, sanitize=True
        )
        history = program.run(1)
        assert len(history.records) == 1

    def test_slr_sanitized_epoch_clean(self, slr_small, cluster_tiny):
        # SLR exercises the buffered-write (data-parallel) path and the
        # prefetch-footprint check on server-placed weights.
        from repro.apps.slr import build_orion_program

        program = build_orion_program(
            slr_small, cluster=cluster_tiny, sanitize=True
        )
        history = program.run(1)
        assert len(history.records) == 1

    def test_sanitize_forces_scalar_path(self, mf_small, cluster_tiny):
        from repro.apps.sgd_mf import build_orion_program

        program = build_orion_program(
            mf_small, cluster=cluster_tiny, sanitize=True
        )
        history = program.run(1)
        assert history.meta.get("kernel_path") is False
