"""Deterministic fault injection and recovery for the simulated cluster.

The paper's fault-tolerance story (Sec. 4.3) is checkpoint/restore of the
parameter DistArrays; this package makes it *exercisable*: a
:class:`FaultPlan` injects worker/machine crashes, transient message drops
and straggler slowdowns at virtual times, the simulated network retries
dropped messages with exponential backoff, and the executor detects a
crash at the next barrier and replays from the latest complete checkpoint.
Everything is keyed off seeds and virtual time, so a given plan produces
the same failures — and the same recovered state — on every run.

Quick use::

    from repro import FaultPlan, LoopOptions

    plan = FaultPlan.random(seed=7, epochs=10, num_workers=4, crashes=1)
    loop = ctx.parallel_for(data, options=LoopOptions(faults=plan))(body)
    loop.run(10)      # crashes, recovers, and charges the virtual clock

With no plan attached nothing changes: every run is bit-identical to an
uninstrumented one.
"""

from repro.faults.link import FaultyLink, LinkOutcome
from repro.faults.plan import (
    FaultPlan,
    FiredCrash,
    MessageDrops,
    RecoveryCosts,
    Straggler,
    WorkerCrash,
)
from repro.faults.recovery import RecoveryManager

__all__ = [
    "FaultPlan",
    "WorkerCrash",
    "Straggler",
    "MessageDrops",
    "RecoveryCosts",
    "FiredCrash",
    "FaultyLink",
    "LinkOutcome",
    "RecoveryManager",
]
