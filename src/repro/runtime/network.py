"""Network cost model and traffic accounting for the simulated cluster.

The paper's testbed is 42 machines on 40 Gbps Ethernet.  Here, transfers
take ``latency + bytes / bandwidth`` virtual seconds; transfers between
workers on the same machine are discounted (and systems like STRADS that
exchange data by pointer swapping can set the intra-machine factor to 0).
A :class:`TrafficLog` records every transfer with its virtual time span so
bandwidth-over-time figures (paper Fig. 12) can be regenerated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

__all__ = ["NetworkModel", "RetryPolicy", "TrafficEvent", "TrafficLog"]


@dataclass(frozen=True)
class RetryPolicy:
    """Timeout/retry semantics for unreliable links (fault injection).

    A dropped message is noticed after ``timeout_s`` virtual seconds and
    resent after an exponential backoff: attempt ``k`` (0-based) waits
    ``backoff_s * multiplier**k`` before retransmitting.  ``max_attempts``
    bounds the total number of sends; the fault injector guarantees the
    final attempt is delivered, so a drop costs time (and resent bytes)
    but never loses an update.
    """

    timeout_s: float = 5e-4
    backoff_s: float = 2e-4
    multiplier: float = 2.0
    max_attempts: int = 4

    def penalty_s(self, drops: int) -> float:
        """Extra virtual seconds caused by ``drops`` failed attempts."""
        total = 0.0
        for attempt in range(drops):
            total += self.timeout_s + self.backoff_s * self.multiplier ** attempt
        return total


@dataclass
class NetworkModel:
    """Point-to-point transfer costs.

    Attributes:
        bandwidth_bytes_per_s: per-link bandwidth (default 40 Gbps).
        latency_s: per-message fixed cost, covering round trip and
            marshalling setup.
        intra_machine_factor: multiplier on transfer time for worker pairs
            on the same machine (0 models pointer swapping, 1 models going
            through the full network stack regardless).
    """

    bandwidth_bytes_per_s: float = 40e9 / 8
    latency_s: float = 1e-4
    intra_machine_factor: float = 0.25

    def transfer_time(self, nbytes: float, intra_machine: bool = False) -> float:
        """Virtual seconds to move ``nbytes`` over one link."""
        base = self.latency_s + float(nbytes) / self.bandwidth_bytes_per_s
        if intra_machine:
            return base * self.intra_machine_factor
        return base

    def reliable_transfer_time(
        self,
        nbytes: float,
        drops: int,
        retry: RetryPolicy,
        intra_machine: bool = False,
    ) -> float:
        """Transfer time when the first ``drops`` attempts are lost.

        Each failed attempt costs its timeout plus the exponential backoff
        before the retransmission; the surviving attempt then pays the
        ordinary :meth:`transfer_time`.
        """
        return retry.penalty_s(drops) + self.transfer_time(nbytes, intra_machine)

    def random_access_time(self, num_accesses: int, nbytes: float) -> float:
        """Virtual seconds for ``num_accesses`` individual remote requests.

        Each request pays the full latency — this is exactly the cost bulk
        prefetching eliminates (paper Sec. 6.3: 7682 s/pass without it).
        """
        return num_accesses * self.latency_s + float(nbytes) / self.bandwidth_bytes_per_s


@dataclass(frozen=True)
class TrafficEvent:
    """One recorded transfer: virtual time span, size and category."""

    t_start: float
    t_end: float
    nbytes: float
    kind: str


@dataclass
class TrafficLog:
    """Accumulates transfers for bandwidth accounting and Fig. 12."""

    events: List[TrafficEvent] = field(default_factory=list)

    def record(self, t_start: float, t_end: float, nbytes: float, kind: str) -> None:
        """Record one transfer spanning ``[t_start, t_end]`` virtual seconds."""
        if t_end < t_start:
            t_end = t_start
        self.events.append(TrafficEvent(t_start, t_end, float(nbytes), kind))

    @property
    def total_bytes(self) -> float:
        """Sum of all recorded transfer sizes."""
        return sum(event.nbytes for event in self.events)

    def bytes_by_kind(self) -> dict:
        """Total bytes per category (rotation / flush / prefetch / ...)."""
        out: dict = {}
        for event in self.events:
            out[event.kind] = out.get(event.kind, 0.0) + event.nbytes
        return out

    def bandwidth_series(
        self, bucket_s: float, horizon_s: float = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Aggregate transfers into a (times, Mbps) series.

        Each event's bytes are spread uniformly over its time span and
        binned into ``bucket_s``-second buckets — an event that crosses a
        bin boundary contributes to each bin proportionally to the overlap.
        Instantaneous events (``t_end == t_start``) deposit all their bytes
        into their containing bin rather than losing them to a zero-length
        overlap.  The returned rate is in megabits per second, matching the
        paper's Fig. 12 axis.
        """
        if not self.events:
            return np.zeros(0), np.zeros(0)
        end = horizon_s if horizon_s is not None else max(
            event.t_end for event in self.events
        )
        num_buckets = max(1, int(np.ceil(end / bucket_s)))
        series = np.zeros(num_buckets)
        for event in self.events:
            first = int(event.t_start / bucket_s)
            if first >= num_buckets:
                continue  # starts beyond the horizon
            span = event.t_end - event.t_start
            if span <= 0.0:
                series[first] += event.nbytes
                continue
            last = min(int(event.t_end / bucket_s), num_buckets - 1)
            for bucket in range(first, last + 1):
                lo = max(event.t_start, bucket * bucket_s)
                hi = min(event.t_end, (bucket + 1) * bucket_s)
                if hi > lo:
                    series[bucket] += event.nbytes * (hi - lo) / span
        times = (np.arange(num_buckets) + 0.5) * bucket_s
        mbps = series * 8.0 / 1e6 / bucket_s
        return times, mbps

    # ---- JSON round-trip (machine-readable run histories) ------------- #

    def to_json(self) -> List[dict]:
        """Events as a JSON-safe list of dicts."""
        return [
            {
                "t_start": event.t_start,
                "t_end": event.t_end,
                "nbytes": event.nbytes,
                "kind": event.kind,
            }
            for event in self.events
        ]

    @classmethod
    def from_json(cls, data: List[dict]) -> "TrafficLog":
        """Rebuild a log from :meth:`to_json` output."""
        log = cls()
        for item in data:
            log.events.append(
                TrafficEvent(
                    float(item["t_start"]),
                    float(item["t_end"]),
                    float(item["nbytes"]),
                    str(item["kind"]),
                )
            )
        return log
