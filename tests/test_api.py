"""Integration tests for the driver API (repro.api)."""

import numpy as np
import pytest

from repro.api import OrionContext, ParallelLoop
from repro.errors import AccumulatorError, ParallelizationError
from repro.runtime.cluster import ClusterSpec


def _ctx(seed=5):
    return OrionContext(
        cluster=ClusterSpec(num_machines=2, workers_per_machine=2), seed=seed
    )


class TestArrayCreation:
    def test_randn_seeded_reproducibly(self):
        a = OrionContext(seed=9).randn(4, 4).materialize()
        b = OrionContext(seed=9).randn(4, 4).materialize()
        assert np.array_equal(a.values, b.values)

    def test_randn_distinct_arrays_differ(self):
        ctx = _ctx()
        a = ctx.randn(4, 4).materialize()
        b = ctx.randn(4, 4).materialize()
        assert not np.array_equal(a.values, b.values)

    def test_from_entries_and_materialize(self):
        ctx = _ctx()
        array = ctx.from_entries([((0, 1), 2.0)], shape=(2, 2))
        ctx.materialize(array)
        assert array[(0, 1)] == 2.0

    def test_text_file(self, tmp_path):
        path = tmp_path / "r.txt"
        path.write_text("0 0 1.5\n")
        ctx = _ctx()
        array = ctx.text_file(str(path))
        ctx.materialize(array)
        assert array[(0, 0)] == 1.5

    def test_zeros_full_rand(self):
        ctx = _ctx()
        z = ctx.zeros(2, 2)
        f = ctx.full((2, 2), 3.0)
        r = ctx.rand(2, 2)
        ctx.materialize(z, f, r)
        assert z.values.sum() == 0.0
        assert f.values.sum() == 12.0
        assert 0.0 <= r.values.min() <= r.values.max() < 1.0


class TestAccumulators:
    def test_accumulator_through_loop(self):
        ctx = _ctx()
        space = ctx.from_entries(
            [((i,), float(i)) for i in range(8)], shape=(8,)
        )
        ctx.materialize(space)
        err = ctx.accumulator("err", 0.0)

        def body(key, value):
            err.add(value)

        loop = ctx.parallel_for(space)(body)
        loop.run()
        assert ctx.get_aggregated_value("err") == pytest.approx(sum(range(8)))

    def test_accumulator_persists_across_runs(self):
        ctx = _ctx()
        space = ctx.from_entries([((i,), 1.0) for i in range(4)], shape=(4,))
        ctx.materialize(space)
        total = ctx.accumulator("total", 0.0)

        def body(key, value):
            total.add(value)

        loop = ctx.parallel_for(space)(body)
        loop.run(epochs=3)
        assert ctx.get_aggregated_value("total") == pytest.approx(12.0)

    def test_reset_accumulator(self):
        ctx = _ctx()
        acc = ctx.accumulator("x", 0.0)
        acc.add(5.0)
        ctx.reset_accumulator("x")
        assert ctx.get_aggregated_value("x") == 0.0

    def test_unknown_accumulator_raises(self):
        with pytest.raises(AccumulatorError):
            _ctx().get_aggregated_value("nope")


class TestParallelFor:
    def test_returns_parallel_loop_with_plan(self):
        ctx = _ctx()
        space = ctx.from_entries(
            [((i, j), 1.0) for i in range(6) for j in range(6)], shape=(6, 6)
        )
        ctx.materialize(space)
        W = ctx.randn(2, 6)
        ctx.materialize(W)

        def body(key, value):
            W[:, key[0]] = W[:, key[0]] * 0.9

        loop = ctx.parallel_for(space)(body)
        assert isinstance(loop, ParallelLoop)
        assert loop.plan.space_dim == 0

    def test_run_advances_clock_and_traffic(self):
        ctx = _ctx()
        space = ctx.from_entries(
            [((i, j), 1.0) for i in range(6) for j in range(6)], shape=(6, 6)
        )
        ctx.materialize(space)
        W = ctx.randn(2, 6)
        H = ctx.randn(2, 6)
        ctx.materialize(W, H)

        def body(key, value):
            W[:, key[0]] = W[:, key[0]] + 0.1 * H[:, key[1]]
            H[:, key[1]] = H[:, key[1]] * 0.99

        loop = ctx.parallel_for(space)(body)
        assert ctx.now == 0.0
        loop.run(epochs=2)
        assert ctx.now > 0.0
        assert ctx.traffic.total_bytes > 0
        # Events were shifted into the global timeline.
        assert max(e.t_end for e in ctx.traffic.events) <= ctx.now * 1.5

    def test_callable_shorthand(self):
        ctx = _ctx()
        space = ctx.from_entries([((i,), 1.0) for i in range(4)], shape=(4,))
        ctx.materialize(space)
        vec = ctx.zeros(4)
        ctx.materialize(vec)

        def body(key, value):
            vec[key[0]] = value

        loop = ctx.parallel_for(space)(body)
        results = loop(epochs=2)
        assert len(results) == 2

    def test_unparallelizable_body_raises_at_decoration(self):
        ctx = _ctx()
        space = ctx.from_entries([((i,), 1.0) for i in range(4)], shape=(4,))
        ctx.materialize(space)
        cell = ctx.zeros(1)
        ctx.materialize(cell)

        def body(key, value):
            cell[0] = cell[0] + value

        with pytest.raises(ParallelizationError):
            ctx.parallel_for(space)(body)

    def test_ordered_flag_reaches_plan(self):
        ctx = _ctx()
        space = ctx.from_entries(
            [((i, j), 1.0) for i in range(6) for j in range(6)], shape=(6, 6)
        )
        ctx.materialize(space)
        W = ctx.randn(2, 6)
        H = ctx.randn(2, 6)
        ctx.materialize(W, H)

        def body(key, value):
            W[:, key[0]] = W[:, key[0]] + 0.1 * H[:, key[1]]
            H[:, key[1]] = H[:, key[1]] * 0.99

        loop = ctx.parallel_for(space, ordered=True)(body)
        assert loop.plan.ordered

    def test_buffer_factory(self):
        ctx = _ctx()
        target = ctx.zeros(5)
        ctx.materialize(target)
        buf = ctx.dist_array_buffer(target, max_delay=7)
        assert buf.target is target
        assert buf.max_delay == 7

    def test_default_cluster_when_none(self):
        ctx = OrionContext()
        assert ctx.cluster.num_workers == 4
