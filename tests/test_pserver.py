"""Unit tests for parameter-server costs and prefetch management
(repro.runtime.pserver)."""

import pytest

from repro.analysis.loop_info import analyze_loop_body
from repro.analysis.prefetch import synthesize_prefetch
from repro.core.distarray import DistArray
from repro.runtime.cluster import ClusterSpec
from repro.runtime.network import NetworkModel
from repro.runtime.pserver import PrefetchManager, index_nbytes
from repro.runtime.simtime import CostModel


table = DistArray.randn(4, 20, name="table_ps", seed=6).materialize()
weights = DistArray.zeros(20, name="weights_ps").materialize()


class TestIndexNbytes:
    def test_point_index(self):
        assert index_nbytes(weights, (3,)) == 8

    def test_scalar_index(self):
        assert index_nbytes(weights, 3) == 8

    def test_full_slice_column(self):
        assert index_nbytes(table, (slice(None), 3)) == 8 * 4

    def test_bounded_slice(self):
        assert index_nbytes(table, (slice(1, 3), 0)) == 8 * 2

    def test_two_point_axes(self):
        assert index_nbytes(table, (1, 2)) == 8


def _cluster():
    return ClusterSpec(
        num_machines=1,
        workers_per_machine=2,
        network=NetworkModel(bandwidth_bytes_per_s=1e8, latency_s=1e-3),
        cost=CostModel(entry_cost_s=1e-6),
    )


def _entries():
    return [((i,), float(i % 5)) for i in range(10)]


def _prefetch_fn():
    space = DistArray.from_entries(_entries(), name="ps_sp", shape=(10,))
    space.materialize()

    def body(key, value):
        w = weights[int(value)]
        return w

    info = analyze_loop_body(body, space)
    return synthesize_prefetch(body, info, ["weights"])


class TestPrefetchManager:
    def test_bulk_cost_single_request(self):
        manager = PrefetchManager(
            _cluster(), {"weights": weights}, _prefetch_fn()
        )
        cost = manager.block_read_cost("block0", _entries())
        assert cost.num_requests == 1
        # 5 unique indices (values cycle mod 5): 40 payload bytes.
        assert cost.nbytes == 5 * 8
        assert cost.seconds > 0

    def test_bulk_beats_random_access(self):
        manager = PrefetchManager(
            _cluster(), {"weights": weights}, _prefetch_fn()
        )
        bulk = manager.block_read_cost("b", _entries())
        scattered = manager.random_access_cost_from_counts(10, 80.0)
        assert scattered.seconds > 3 * bulk.seconds

    def test_cache_skips_cpu_on_second_call(self):
        manager = PrefetchManager(
            _cluster(), {"weights": weights}, _prefetch_fn(), cache_indices=True
        )
        first = manager.block_read_cost("b", _entries())
        second = manager.block_read_cost("b", _entries())
        assert second.seconds < first.seconds
        assert second.nbytes == first.nbytes

    def test_distinct_blocks_cached_separately(self):
        manager = PrefetchManager(
            _cluster(), {"weights": weights}, _prefetch_fn(), cache_indices=True
        )
        manager.block_read_cost("b0", _entries()[:5])
        cost = manager.block_read_cost("b1", _entries()[5:])
        assert cost.num_requests == 1

    def test_no_arrays_is_free(self):
        manager = PrefetchManager(_cluster(), {}, None)
        cost = manager.block_read_cost("b", _entries())
        assert cost.seconds == 0.0
        assert cost.nbytes == 0.0

    def test_no_prefetch_fn_defers_to_counts(self):
        manager = PrefetchManager(_cluster(), {"weights": weights}, None)
        cost = manager.block_read_cost("b", _entries())
        assert cost.seconds == 0.0  # executor uses measured counts instead
        measured = manager.random_access_cost_from_counts(100, 800.0)
        assert measured.seconds == pytest.approx(100 * 1e-3 + 800.0 / 1e8)
